"""Design-space exploration of hybrid NoCs (paper Section III-B, Fig. 5).

Sweeps every base-mesh technology x express-link technology x hop count,
ranks the options by network CLEAR, and reports the paper's two
recommended designs: the overall CLEAR winner (HyPPI base + HyPPI express)
and the latency-first choice (electronic base + HyPPI express).

The sweep runs through the experiment engine: `jobs=2` evaluates design
points on a process pool (bit-identical to serial), and the explorer's
evaluation cache makes the second `explore()` free.

Run:  python examples/design_space_exploration.py
"""

from repro.core import DesignSpaceExplorer
from repro.util import ascii_bar_chart, format_table


def main() -> None:
    explorer = DesignSpaceExplorer(jobs=2)
    points = explorer.explore()
    print(f"evaluated {explorer.cache.misses} design points "
          f"(cache: {explorer.cache.stats})")

    rows = [
        [
            pt.label,
            pt.evaluation.latency_clks,
            pt.evaluation.power.total_w,
            pt.evaluation.area_mm2,
            pt.evaluation.clear,
        ]
        for pt in sorted(points, key=lambda p: -p.evaluation.clear)
    ]
    print(
        format_table(
            ["design point", "latency (clk)", "power (W)", "area (mm2)", "CLEAR"],
            rows,
            title="Hybrid NoC design space, ranked by CLEAR (inj. rate 0.1)",
        )
    )

    print()
    print(
        ascii_bar_chart(
            [pt.label for pt in points],
            [pt.evaluation.clear for pt in points],
            title="CLEAR by design point (paper Fig. 5 a/b/c)",
        )
    )

    best = DesignSpaceExplorer.best_by_clear(points)
    fastest = DesignSpaceExplorer.best_by_latency(points)
    print(f"\nBest CLEAR            : {best.label} ({best.evaluation.clear:.4g})")
    print(
        f"Lowest latency        : {fastest.label} "
        f"({fastest.evaluation.latency_clks:.2f} clk)"
    )
    print(
        "\nPaper's conclusions: HyPPI base gives the best CLEAR; an"
        " electronic base + HyPPI express links is the latency-first pick."
    )


if __name__ == "__main__":
    main()
