"""What-if study: an improved HyPPI device generation.

The paper's conclusion frames HyPPI as "an excellent technology choice for
the future". This example shows how to use the library for forward-looking
what-ifs: define a hypothetical next-generation HyPPI with a better
plasmonic detector (responsivity 0.1 -> 0.4 A/W, one of the knobs the HyPPI
journal paper flags as maturing) and a lower-loss coupler (1.0 -> 0.5 dB),
then re-run the link-level CLEAR sweep and the all-optical energy budget.

Run:  python examples/custom_technology.py
"""

import dataclasses

import numpy as np

from repro.core import sweep_link_clear
from repro.tech import HYPPI, OpticalLinkModel
from repro.tech.optical import laser_energy_fj_per_bit
from repro.util import format_table

LENGTHS = np.array([100e-6, 1e-3, 5e-3, 20e-3])


def improved_hyppi():
    """Next-generation HyPPI parameter set (documented deltas only)."""
    detector = dataclasses.replace(
        HYPPI.photodetector, responsivity_a_per_w=0.4
    )
    waveguide = dataclasses.replace(HYPPI.waveguide, coupling_loss_db=0.5)
    return dataclasses.replace(
        HYPPI, photodetector=detector, waveguide=waveguide
    )


def main() -> None:
    today = OpticalLinkModel(HYPPI)
    future = OpticalLinkModel(improved_hyppi())

    sweep_today = sweep_link_clear(today, LENGTHS)
    sweep_future = sweep_link_clear(future, LENGTHS)
    rows = [
        [
            length * 1e3,
            sweep_today.clear[i],
            sweep_future.clear[i],
            sweep_future.clear[i] / sweep_today.clear[i],
        ]
        for i, length in enumerate(LENGTHS)
    ]
    print(
        format_table(
            ["length (mm)", "CLEAR today", "CLEAR improved", "gain"],
            rows,
            title="HyPPI link CLEAR: Table I devices vs improved generation",
        )
    )

    # The detector improvement cuts the laser budget 4x at every loss point.
    for loss_db in (3.0, 10.0):
        e_today = laser_energy_fj_per_bit(HYPPI, loss_db)
        e_future = laser_energy_fj_per_bit(improved_hyppi(), loss_db)
        print(
            f"laser energy at {loss_db:.0f} dB path loss: "
            f"{e_today:7.1f} -> {e_future:6.1f} fJ/bit "
            f"({e_today / e_future:.1f}x)"
        )
    print(
        "\nEvery model in the library accepts such parameter sets, so device"
        "\nroadmaps can be swept the same way the paper sweeps topologies."
    )


if __name__ == "__main__":
    main()
