"""All-optical NoC projections (paper Section V, Table VI, Fig. 8).

Compares the electronic mesh against fully optical NoCs built from the
paper's two router designs — 8 microring switches (photonic) vs 8 compact
plasmonic MOS switches (HyPPI) — on latency, energy per bit, and area.

Run:  python examples/all_optical_projection.py
"""

from repro.optical import (
    HYPPI_ROUTER,
    PHOTONIC_ROUTER,
    optimal_port_assignment,
    project_all_optical,
)
from repro.util import format_table


def main() -> None:
    # Table VI: the two all-optical router designs.
    rows = []
    for name, router in (("photonic", PHOTONIC_ROUTER), ("HyPPI", HYPPI_ROUTER)):
        lo, hi = router.loss_range_db()
        assignment, expected = optimal_port_assignment(router)
        rows.append(
            [
                name,
                router.control_energy_fj_per_bit(),
                f"{lo:.2f} - {hi:.2f}",
                router.area_um2(),
                expected,
            ]
        )
    print(
        format_table(
            ["router", "control (fJ/bit)", "loss range (dB)", "area (um2)",
             "expected loss under X-Y (dB)"],
            rows,
            title="Table VI — all-optical 5-port routers",
        )
    )
    print(
        "\nThe HyPPI router's loss range is wide (its plasmonic 2x2 switch"
        "\nis very asymmetric), but the optimal port assignment parks the"
        "\nexpensive paths on transitions X-Y routing never makes.\n"
    )

    # Fig. 8: the radar comparison.
    cmp = project_all_optical()
    print(
        format_table(
            ["network", "latency (clk)", "energy/bit (fJ)", "area (mm2)"],
            [p.radar_row() for p in cmp.all()],
            title="Fig. 8 — smaller is better on every axis",
        )
    )
    print(
        f"\nall-HyPPI vs electronic energy : "
        f"{cmp.energy_ratio_electronic_over_hyppi:.0f}x better "
        "(paper: ~255x)"
    )
    print(
        f"all-HyPPI vs all-photonic area : "
        f"{cmp.area_ratio_photonic_over_hyppi:.0f}x smaller "
        "(paper: ~100x)"
    )


if __name__ == "__main__":
    main()
