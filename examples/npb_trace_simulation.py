"""Trace-driven cycle simulation of NAS Parallel Benchmark traffic.

Reproduces the paper's Section IV experiment at example scale: synthetic
FT / CG / MG / LU traces run through the cycle-accurate simulator on the
base electronic mesh and a HyPPI-express hybrid, reporting average packet
latency and dynamic energy.

Run:  python examples/npb_trace_simulation.py            (CG, quick)
      python examples/npb_trace_simulation.py FT 3e-3    (kernel, scale)
"""

import sys

from repro.simulation import Simulator, sim_dynamic_energy_j
from repro.tech import Technology
from repro.topology import build_express_mesh, build_mesh
from repro.traffic import npb_trace
from repro.util import format_table

# Per-kernel example scales chosen for ~seconds of runtime.
DEFAULT_SCALES = {"FT": 3e-3, "CG": 3e-4, "MG": 5e-3, "LU": 1e-2}


def main(kernel: str = "CG", volume_scale: float | None = None) -> None:
    kernel = kernel.upper()
    scale = DEFAULT_SCALES[kernel] if volume_scale is None else volume_scale
    trace = npb_trace(kernel, volume_scale=scale)
    print(
        f"{kernel}: {trace.n_packets} packets, {trace.total_flits} flits, "
        f"{trace.duration_cycles} injection cycles (volume scale {scale:g})"
    )

    networks = {
        "electronic mesh": build_mesh(),
        "mesh + HyPPI express x3": build_express_mesh(
            hops=3, express_technology=Technology.HYPPI
        ),
        "mesh + HyPPI express x15": build_express_mesh(
            hops=15, express_technology=Technology.HYPPI
        ),
    }
    rows = []
    for name, topo in networks.items():
        stats = Simulator(topo).run(trace)
        energy = sim_dynamic_energy_j(topo, stats)
        rows.append(
            [
                name,
                stats.avg_latency,
                stats.p99_latency,
                stats.cycles,
                energy.dynamic_j * 1e3,
            ]
        )
    print(
        format_table(
            ["network", "avg latency (clk)", "p99 (clk)", "runtime (clk)",
             "dynamic energy (mJ)"],
            rows,
            title=f"NPB {kernel} on 16x16 networks (paper Fig. 6 / Table V)",
        )
    )
    base = rows[0][1]
    for row in rows[1:]:
        print(f"{row[0]}: latency improvement {base / row[1]:.2f}x over the mesh")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        args[0] if args else "CG",
        float(args[1]) if len(args) > 1 else None,
    )
