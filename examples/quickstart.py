"""Quickstart: evaluate a hybrid NoC in ~20 lines.

Builds the paper's 16x16 electronic mesh, augments it with HyPPI express
links (Hops=3), drives both with the Soteriou statistical traffic model and
compares them on the CLEAR figure of merit.

Run:  python examples/quickstart.py
"""

from repro.analysis import evaluate_network
from repro.tech import Technology
from repro.topology import build_express_mesh, build_mesh
from repro.traffic import soteriou_traffic
from repro.util import format_table


def main() -> None:
    plain = build_mesh()  # 16x16, 1 mm spacing, electronic links
    hybrid = build_express_mesh(
        hops=3,
        base_technology=Technology.ELECTRONIC,
        express_technology=Technology.HYPPI,
    )

    rows = []
    for topo in (plain, hybrid):
        traffic = soteriou_traffic(topo, p=0.02, sigma=0.4, injection_rate=0.1)
        ev = evaluate_network(topo, traffic)
        rows.append(
            [
                topo.name,
                ev.capability_gbps,
                ev.latency_clks,
                ev.power.total_w,
                ev.area_mm2,
                ev.clear,
            ]
        )

    print(
        format_table(
            ["network", "C (Gb/s)", "latency (clk)", "power (W)",
             "area (mm2)", "CLEAR"],
            rows,
            title="Electronic mesh vs HyPPI-augmented hybrid (paper Fig. 5a)",
        )
    )
    improvement = rows[1][-1] / rows[0][-1]
    print(
        f"\nCLEAR improvement from HyPPI express links: {improvement:.2f}x "
        "(paper: up to 1.8x)"
    )


if __name__ == "__main__":
    main()
