"""Link-level CLEAR sweep (paper Fig. 3).

Plots (in ASCII) the CLEAR figure of merit of all four link technologies
across six decades of link length, and reports the technology hand-off
points: electronics for on-die hops, HyPPI at inter-core distances,
photonics at chip-crossing lengths, plasmonics confined to micrometres.

Run:  python examples/link_clear_sweep.py
"""

import numpy as np

from repro.core import find_crossover_m, sweep_link_clear
from repro.tech import (
    ElectronicLinkModel,
    HyPPILinkModel,
    PhotonicLinkModel,
    PlasmonicLinkModel,
)
from repro.util import ascii_xy_plot


def main() -> None:
    models = {
        "electronic": ElectronicLinkModel(),
        "photonic": PhotonicLinkModel(),
        "plasmonic": PlasmonicLinkModel(),
        "hyppi": HyPPILinkModel(),
    }
    lengths = np.logspace(-6, np.log10(0.05), 80)
    # Pure plasmonics is plotted only to 1 mm: past that its 440 dB/cm loss
    # drags the log axis through dozens of decades and flattens the rest.
    plasmonic_lengths = np.logspace(-6, -3, 50)
    sweeps = {
        name: sweep_link_clear(
            m, plasmonic_lengths if name == "plasmonic" else lengths
        )
        for name, m in models.items()
    }

    print(
        ascii_xy_plot(
            {name: (s.lengths_m, s.clear) for name, s in sweeps.items()},
            logx=True,
            logy=True,
            width=78,
            height=24,
            title="Fig. 3 — CLEAR vs link length (log-log; higher is better)",
        )
    )

    e, h, p = models["electronic"], models["hyppi"], models["photonic"]
    x_eh = find_crossover_m(e, h, 1e-6, 10e-3)
    x_ep = find_crossover_m(e, p, 1e-6, 50e-3)
    print(f"\nelectronics -> HyPPI hand-off : {x_eh * 1e6:8.1f} um")
    print(f"electronics -> photonics hand-off : {x_ep * 1e6:8.1f} um")
    print(
        "\nPaper's reading: electronics for short interconnects, HyPPI for"
        "\ninter-core (mm) distances, photonics for chip-crossing lengths;"
        "\npure plasmonics dies within tens of micrometres (440 dB/cm)."
    )


if __name__ == "__main__":
    main()
