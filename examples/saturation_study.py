"""Open-loop saturation study: where do the networks stop scaling?

Goes beyond the paper's fixed 0.1 injection rate: sweeps offered load on
the plain mesh, the HyPPI-express hybrid, and a full HyPPI-wrap torus, with
uniform and hotspot traffic, and writes the curves as a JSON report.

Run:  python examples/saturation_study.py [output.json]
"""

import sys

import numpy as np

from repro.analysis.report import load_points_to_dicts, save_report
from repro.simulation import latency_throughput_sweep
from repro.tech import Technology
from repro.topology import build_express_mesh, build_mesh, build_torus
from repro.traffic import hotspot_traffic, uniform_traffic
from repro.util import format_table

RATES = np.array([0.02, 0.05, 0.1, 0.2])


def main(out_path: str | None = None) -> None:
    networks = {
        "mesh": build_mesh(),
        "h3-hyppi": build_express_mesh(hops=3, express_technology=Technology.HYPPI),
        "torus-hyppi": build_torus(wrap_technology=Technology.HYPPI),
    }
    patterns = {"uniform": uniform_traffic, "hotspot": hotspot_traffic}

    report: dict = {}
    for pat_name, pattern in patterns.items():
        rows = []
        curves = {}
        for net_name, topo in networks.items():
            points = latency_throughput_sweep(
                topo, pattern(topo), RATES, cycles=800, seed=0
            )
            curves[net_name] = points
            report[f"{pat_name}/{net_name}"] = load_points_to_dicts(points)
        for i, rate in enumerate(RATES):
            rows.append(
                [rate]
                + [
                    curves[n][i].avg_latency if curves[n][i].drained else float("nan")
                    for n in networks
                ]
            )
        print(
            format_table(
                ["rate"] + list(networks),
                rows,
                title=f"avg latency (clk) — {pat_name} traffic",
            )
        )
        print()

    if out_path:
        save_report(report, out_path)
        print(f"JSON report written to {out_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
