"""Extension bench — observability overhead and hot-path throughput.

Guards :mod:`repro.obs`'s performance contracts the same way
``bench_telemetry`` guards the sampler's:

* ``obs_disabled_run`` — the *same* workload as ``simulator_run`` driven
  through ``Simulator.run(profile=None)``: the CI bench-smoke job
  asserts its median stays within 5 % of ``simulator_run`` (the phase
  hooks must be free when profiling is off);
* ``obs_span_throughput`` — recording + draining a burst of nested
  spans (the tracer's enabled-path cost: two clock reads and one
  append per span);
* ``obs_metrics_snapshot`` — a deterministic registry snapshot over a
  populated registry (the ``/api/v1/metrics`` hot path);
* ``obs_sampler_tick`` — one telemetry-pipeline sampling tick
  (snapshot -> frame -> ring append) over a populated registry: the
  recurring background cost a serving process pays every
  ``--sample-interval`` seconds;
* ``obs_prom_render`` — Prometheus text exposition over that snapshot
  (the root ``/metrics`` scrape body);
* ``obs_ledger_append`` — a burst of run-ledger lifecycle appends
  (line-atomic NDJSON writes: the per-point cost every sweep pays with
  the ledger on);
* ``obs_progress_render`` — the full ``repro obs top`` screen render
  over a fleet of progress documents (the watch-loop redraw cost).

All are ``smoke``-tagged so the perf CI gate watches them.
Correctness rides along: the disabled run must produce a profile-free
``SimStats`` identical in shape to ``simulator_run``'s, the span burst
must drain exactly what it recorded with parents intact, and the
snapshot must round-trip its counter values.
"""

from repro.bench import benchmark_spec, load_sibling
from repro.obs import (
    MetricsRegistry,
    MetricsSampler,
    RunLedger,
    SeriesStore,
    enable_tracing,
    load_ledger,
    render_prometheus,
    render_top,
    span,
    take_spans,
    tracing_enabled,
)

# The CI disabled-overhead gate divides obs_disabled_run's median by
# simulator_run's; sharing the fixture makes "identical workload" a
# structural fact rather than a copy-paste invariant.
_sim_perf = load_sibling(__file__, "bench_simulator_perf")
N_PACKETS = _sim_perf.N_PACKETS

N_SPANS = 5000
N_METRICS = 100


@benchmark_spec(
    "obs_disabled_run",
    setup=_sim_perf._simulator_fixture,
    points=N_PACKETS,
    tags=("perf", "obs", "smoke"),
)
def run_disabled(fixture):
    """simulator_run's workload through the profile=None path (must be free)."""
    sim, trace = fixture
    return sim.run(trace, profile=None)


@benchmark_spec(
    "obs_span_throughput",
    points=N_SPANS,
    tags=("perf", "obs", "smoke"),
)
def run_span_burst():
    """Record and drain N_SPANS nested spans on the process tracer."""
    was_enabled = tracing_enabled()
    enable_tracing(True)
    try:
        for i in range(N_SPANS // 2):
            with span("bench.outer", i=i):
                with span("bench.inner"):
                    pass
        return take_spans()
    finally:
        enable_tracing(was_enabled)


def _registry_fixture():
    reg = MetricsRegistry()
    for i in range(N_METRICS):
        reg.counter(f"bench.counter.{i:03d}").inc(i)
        reg.gauge(f"bench.gauge.{i:03d}").set(float(i))
        reg.histogram(f"bench.hist.{i:03d}").observe(float(i))
    return reg


@benchmark_spec(
    "obs_metrics_snapshot",
    setup=_registry_fixture,
    points=3 * N_METRICS,
    tags=("perf", "obs", "smoke"),
)
def run_snapshot(reg):
    """Deterministic full-registry snapshot (the /metrics hot path)."""
    return reg.snapshot()


def _sampler_fixture():
    # Bounded ring: repeated ticks overwrite instead of growing, so the
    # bench measures steady-state sampling, not list growth.
    store = SeriesStore(capacity=64)
    return MetricsSampler(store, registry=_registry_fixture())


@benchmark_spec(
    "obs_sampler_tick",
    setup=_sampler_fixture,
    points=3 * N_METRICS,
    tags=("perf", "obs", "smoke"),
)
def run_sampler_tick(sampler):
    """One pipeline sampling tick over a populated registry."""
    sampler.tick()
    return sampler.store


def _snapshot_fixture():
    return _registry_fixture().snapshot()


@benchmark_spec(
    "obs_prom_render",
    setup=_snapshot_fixture,
    points=3 * N_METRICS,
    tags=("perf", "obs", "smoke"),
)
def run_prom_render(snapshot):
    """Prometheus text exposition of the full registry snapshot."""
    return render_prometheus(snapshot)


N_LEDGER_EVENTS = 1000
N_TOP_JOBS = 50


def _ledger_fixture():
    import pathlib
    import tempfile

    path = pathlib.Path(tempfile.mkdtemp()) / "bench.ndjson"
    return RunLedger(path, job_id="job-bench")


@benchmark_spec(
    "obs_ledger_append",
    setup=_ledger_fixture,
    points=N_LEDGER_EVENTS,
    tags=("perf", "obs", "smoke"),
)
def run_ledger_append(ledger):
    """A burst of per-point lifecycle appends (write+flush per line)."""
    for i in range(N_LEDGER_EVENTS // 2):
        ledger.append("point.dispatched", point=i, engine="interpreter")
        ledger.append("point.completed", point=i, cached=False)
    return ledger


def _progress_docs_fixture():
    return [
        {
            "job_id": f"job-{i:06d}",
            "state": "running" if i % 3 else "done",
            "n_points": 200,
            "points_done": (i * 7) % 201,
            "in_flight": i % 5,
            "throughput_pps": 0.5 + i / 100.0,
            "eta_s": float(i),
        }
        for i in range(N_TOP_JOBS)
    ]


@benchmark_spec(
    "obs_progress_render",
    setup=_progress_docs_fixture,
    points=N_TOP_JOBS,
    tags=("perf", "obs", "smoke"),
)
def run_progress_render(docs):
    """One full ``repro obs top`` screen over N_TOP_JOBS progress docs."""
    return render_top(docs, sparkline=[float(i % 9) for i in range(32)])


def test_perf_disabled_run(run_bench):
    stats = run_bench("obs_disabled_run")
    assert stats.drained


def test_perf_span_throughput(run_bench):
    spans = run_bench("obs_span_throughput")
    assert len(spans) == N_SPANS
    inner = [s for s in spans if s.name == "bench.inner"]
    assert len(inner) == N_SPANS // 2
    assert all(s.parent_id is not None for s in inner)


def test_perf_metrics_snapshot(run_bench):
    snap = run_bench("obs_metrics_snapshot")
    assert len(snap["counters"]) == N_METRICS
    assert snap["counters"]["bench.counter.042"] == 42
    assert snap["histograms"]["bench.hist.007"]["count"] == 1


def test_perf_sampler_tick(run_bench):
    store = run_bench("obs_sampler_tick")
    assert len(store) >= 1
    assert store.latest().counters["bench.counter.042"] == 42


def test_perf_prom_render(run_bench):
    text = run_bench("obs_prom_render")
    assert text.count("# TYPE ") == 3 * N_METRICS
    assert "repro_bench_counter_042_total 42" in text


def test_perf_ledger_append(run_bench):
    ledger = run_bench("obs_ledger_append")
    ledger.close()
    events = load_ledger(ledger.path)
    # At least one timed call's worth of appends, seq strictly dense.
    assert len(events) >= N_LEDGER_EVENTS
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert events[0]["event"] == "point.dispatched"


def test_perf_progress_render(run_bench):
    screen = run_bench("obs_progress_render")
    assert screen.count("job-") == N_TOP_JOBS
    assert "points/s" in screen
    # Running jobs sort above terminal ones.
    first_row = next(l for l in screen.splitlines() if "job-" in l)
    assert "running" in first_row
