"""Throughput benchmarks of the substrates themselves.

Not a paper figure: these track the speed of the cycle simulator, the
flow-assignment kernel, the routing-table build and the parallel
experiment runner — the hot paths of the reproduction (the HPC guides'
rule: measure before optimizing). The runner benchmark emits a JSON
record (points/sec at jobs=1 vs jobs=4) for the perf trajectory.
"""

import json
import time

import numpy as np

from repro.analysis import assign_flows
from repro.experiments import Runner, scenario_family
from repro.simulation import Simulator
from repro.topology import RoutingTable, build_mesh
from repro.traffic import PacketRecord, Trace, uniform_traffic


def _uniform_trace(n_packets=2000, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n_packets):
        s, d = rng.choice(256, size=2, replace=False)
        records.append(PacketRecord(int(rng.integers(0, 2000)), int(s), int(d), 1))
    return Trace(256, records)


def test_perf_cycle_simulator(benchmark):
    mesh = build_mesh()
    routing = RoutingTable(mesh)
    trace = _uniform_trace()
    sim = Simulator(mesh, routing)
    stats = benchmark.pedantic(
        lambda: sim.run(trace), rounds=3, iterations=1, warmup_rounds=1
    )
    assert stats.drained


def test_perf_flow_assignment(benchmark):
    mesh = build_mesh()
    routing = RoutingTable(mesh)
    tm = uniform_traffic(mesh)
    assign_flows(mesh, tm, routing)  # warm the path cache
    flows = benchmark(assign_flows, mesh, tm, routing)
    assert flows.total_traffic > 0


def test_perf_routing_table_build(benchmark):
    mesh = build_mesh()

    def build():
        rt = RoutingTable(mesh)
        rt.build_all()
        return rt

    rt = benchmark.pedantic(build, rounds=3, iterations=1)
    assert rt.hop_count(0, 255) == 30


def test_perf_parallel_runner(results_dir):
    """Experiment-engine throughput: points/sec serial vs process pool.

    Records whatever the hardware gives: near-linear speedup on multi-core
    hosts, below 1.0 on single-core CI boxes (pool overhead with no
    parallelism). Correctness is asserted either way — executor choice
    must never change a metric.
    """
    scenarios = scenario_family(
        "saturation-sweep",
        rates=[0.01 + 0.01 * i for i in range(8)],
        cycles=500,
        seed=0,
    )

    throughput = {}
    metrics_by_jobs = {}
    for jobs in (1, 4):
        runner = Runner(jobs=jobs)  # fresh cache: every point evaluates
        t0 = time.perf_counter()
        results = runner.run(scenarios)
        elapsed = time.perf_counter() - t0
        throughput[jobs] = len(results) / elapsed
        metrics_by_jobs[jobs] = [res.metrics for res in results]
        assert runner.cache.misses == len(scenarios)

    # Parallel execution must not change a single metric.
    assert metrics_by_jobs[1] == metrics_by_jobs[4]

    record = {
        "benchmark": "parallel_runner_throughput",
        "n_points": len(scenarios),
        "points_per_sec_jobs1": throughput[1],
        "points_per_sec_jobs4": throughput[4],
        "speedup_jobs4": throughput[4] / throughput[1],
    }
    path = results_dir / "runner_throughput.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{json.dumps(record, indent=2)}\n[saved to {path}]")
