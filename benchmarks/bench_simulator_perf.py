"""Throughput benchmarks of the substrates themselves.

Not a paper figure: these track the speed of the cycle simulator, the
flow-assignment kernel, the routing-table build and the parallel
experiment runner — the hot paths of the reproduction (the HPC guides'
rule: measure before optimizing). All timing goes through the
:mod:`repro.bench` harness; ``simulator_run`` is the record the perf CI
gate watches for cycle-simulator regressions.
"""

import numpy as np

from repro.analysis import assign_flows
from repro.bench import HEAVY_POLICY, benchmark_spec
from repro.experiments import Runner, scenario_family
from repro.simulation import Simulator
from repro.topology import RoutingTable, build_mesh
from repro.traffic import PacketRecord, Trace, uniform_traffic

N_PACKETS = 2000


def _uniform_trace(n_packets=N_PACKETS, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for _ in range(n_packets):
        s, d = rng.choice(256, size=2, replace=False)
        records.append(PacketRecord(int(rng.integers(0, 2000)), int(s), int(d), 1))
    return Trace(256, records)


def _simulator_fixture():
    mesh = build_mesh()
    return Simulator(mesh, RoutingTable(mesh)), _uniform_trace()


@benchmark_spec(
    "simulator_run",
    setup=_simulator_fixture,
    points=N_PACKETS,
    tags=("perf", "simulation", "smoke"),
)
def run_simulator(fixture):
    """One full cycle-simulation of 2000 uniform packets on the 16x16 mesh."""
    sim, trace = fixture
    return sim.run(trace)


def _flow_fixture():
    mesh = build_mesh()
    routing = RoutingTable(mesh)
    tm = uniform_traffic(mesh)
    assign_flows(mesh, tm, routing)  # warm the path cache
    return mesh, tm, routing


@benchmark_spec(
    "flow_assignment", setup=_flow_fixture, points=256 * 255, tags=("perf", "smoke")
)
def run_flow_assignment(fixture):
    """Flow assignment of the full 256-node uniform traffic matrix."""
    mesh, tm, routing = fixture
    return assign_flows(mesh, tm, routing)


@benchmark_spec(
    "routing_table_build", setup=build_mesh, points=256 * 255, tags=("perf", "smoke")
)
def run_routing_table_build(mesh):
    """Full all-pairs routing-table construction on the 16x16 mesh."""
    rt = RoutingTable(mesh)
    rt.build_all()
    return rt


def _runner_scenarios():
    return scenario_family(
        "saturation-sweep",
        rates=[0.01 + 0.01 * i for i in range(8)],
        cycles=500,
        seed=0,
    )


def _run_with_jobs(jobs: int):
    scenarios = _runner_scenarios()
    runner = Runner(jobs=jobs)  # fresh cache: every point evaluates
    results = runner.run(scenarios)
    assert runner.cache.misses == len(scenarios)
    return [res.metrics for res in results]


@benchmark_spec(
    "runner_serial", points=8, policy=HEAVY_POLICY, tags=("perf", "simulation")
)
def run_runner_serial():
    """Experiment-engine throughput, serial executor (8 sweep points)."""
    return _run_with_jobs(1)


@benchmark_spec(
    "runner_pool4", points=8, policy=HEAVY_POLICY, tags=("perf", "simulation")
)
def run_runner_pool4():
    """Experiment-engine throughput, 4-process pool (same 8 points)."""
    return _run_with_jobs(4)


def test_perf_cycle_simulator(run_bench):
    stats = run_bench("simulator_run")
    assert stats.drained


def test_perf_flow_assignment(run_bench):
    flows = run_bench("flow_assignment")
    assert flows.total_traffic > 0


def test_perf_routing_table_build(run_bench):
    rt = run_bench("routing_table_build")
    assert rt.hop_count(0, 255) == 30


def test_perf_parallel_runner(run_bench):
    """Executor choice must never change a metric — the speedup itself is
    whatever the hardware gives (compare the two BENCH records)."""
    serial = run_bench("runner_serial")
    pooled = run_bench("runner_pool4")
    assert serial == pooled
