"""Throughput benchmarks of the substrates themselves.

Not a paper figure: these track the speed of the cycle simulator, the
flow-assignment kernel and the routing-table build, the three hot paths of
the reproduction (the HPC guides' rule: measure before optimizing).
"""

import numpy as np

from repro.analysis import assign_flows
from repro.simulation import Simulator
from repro.topology import RoutingTable, build_mesh
from repro.traffic import PacketRecord, Trace, uniform_traffic


def _uniform_trace(n_packets=2000, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n_packets):
        s, d = rng.choice(256, size=2, replace=False)
        records.append(PacketRecord(int(rng.integers(0, 2000)), int(s), int(d), 1))
    return Trace(256, records)


def test_perf_cycle_simulator(benchmark):
    mesh = build_mesh()
    routing = RoutingTable(mesh)
    trace = _uniform_trace()
    sim = Simulator(mesh, routing)
    stats = benchmark.pedantic(
        lambda: sim.run(trace), rounds=3, iterations=1, warmup_rounds=1
    )
    assert stats.drained


def test_perf_flow_assignment(benchmark):
    mesh = build_mesh()
    routing = RoutingTable(mesh)
    tm = uniform_traffic(mesh)
    assign_flows(mesh, tm, routing)  # warm the path cache
    flows = benchmark(assign_flows, mesh, tm, routing)
    assert flows.total_traffic > 0


def test_perf_routing_table_build(benchmark):
    mesh = build_mesh()

    def build():
        rt = RoutingTable(mesh)
        rt.build_all()
        return rt

    rt = benchmark.pedantic(build, rounds=3, iterations=1)
    assert rt.hop_count(0, 255) == 30
