"""Table V — total dynamic energy, FT benchmark.

Analytical flow-based accounting (the paper's method: flit counts between
pairs x modified-DSENT per-flit energies along the routed paths), on a
Class-A-scale FT volume. Also reports the optical always-on overhead
(laser + thermal tuning x runtime) separately, since the paper's photonic
column (0.9353 J flat) is only reachable when that overhead is folded in
(EXPERIMENTS.md discusses the accounting).
"""

import numpy as np

from repro.analysis import (
    network_static_power_w,
    trace_dynamic_energy_j,
)
from repro.bench import HEAVY_POLICY, benchmark_spec
from repro.tech import Technology
from repro.topology import RoutingTable, build_express_mesh, build_mesh
from repro.traffic import TrafficMatrix
from repro.util import format_table

PAPER_J = {
    "base": 0.0042,
    (Technology.ELECTRONIC, 3): 0.0054,
    (Technology.ELECTRONIC, 5): 0.0066,
    (Technology.ELECTRONIC, 15): 0.0128,
    (Technology.PHOTONIC, 3): 0.9353,
    (Technology.PHOTONIC, 5): 0.9353,
    (Technology.PHOTONIC, 15): 0.9353,
    (Technology.HYPPI, 3): 0.0049,
    (Technology.HYPPI, 5): 0.0049,
    (Technology.HYPPI, 15): 0.0049,
}

#: Class-A-scale FT volume for energy accounting (analytical, so the full
#: volume is tractable). 0.3 gives ~28M flits, the Class A order.
FT_VOLUME_SCALE = 0.3

#: Nominal application runtime for amortizing optical always-on power: the
#: FT Class A wall-clock on the paper's 256-rank Cray is ~0.5 s.
APP_RUNTIME_S = 0.5


def _ft_flit_matrix(volume_scale: float, iterations: int) -> TrafficMatrix:
    """All-to-all flit counts at Class-A scale, built directly (the trace's
    temporal structure is irrelevant for Table V's accounting)."""
    n = 256
    per_pair_bytes = max(1, int(128 * 1024 * 1024 * volume_scale) // (n * n))
    per_pair_flits = -(-per_pair_bytes // 8) * iterations
    m = np.full((n, n), float(per_pair_flits))
    np.fill_diagonal(m, 0.0)
    return TrafficMatrix(m, name="ft-class-a")


@benchmark_spec(
    "table5_dynamic_energy", points=10, policy=HEAVY_POLICY, tags=("table",)
)
def compute_table5() -> dict:
    """FT-volume dynamic energy for the base mesh and every express point."""
    counts = _ft_flit_matrix(FT_VOLUME_SCALE, iterations=6)
    results = {}
    mesh = build_mesh()
    base_static = network_static_power_w(mesh)
    results["base"] = (
        trace_dynamic_energy_j(mesh, counts, RoutingTable(mesh)).dynamic_j,
        0.0,
    )
    for tech in (Technology.ELECTRONIC, Technology.PHOTONIC, Technology.HYPPI):
        for hops in (3, 5, 15):
            topo = build_express_mesh(hops=hops, express_technology=tech)
            dyn = trace_dynamic_energy_j(topo, counts, RoutingTable(topo)).dynamic_j
            optical_overhead = (
                max(0.0, network_static_power_w(topo) - base_static) * APP_RUNTIME_S
            )
            results[(tech, hops)] = (dyn, optical_overhead)
    return results


def test_table5_dynamic_energy(run_bench, save_result):
    results = run_bench("table5_dynamic_energy")
    rows = [["base mesh", "-", results["base"][0], 0.0, PAPER_J["base"]]]
    for tech in (Technology.ELECTRONIC, Technology.PHOTONIC, Technology.HYPPI):
        for hops in (3, 5, 15):
            dyn, overhead = results[(tech, hops)]
            rows.append([tech.value, hops, dyn, overhead, PAPER_J[(tech, hops)]])
    save_result(
        "table5_dynamic_energy",
        format_table(
            ["express tech", "hops", "dynamic (J)",
             "always-on delta x runtime (J)", "paper (J)"],
            rows,
            title="Table V — FT benchmark energy",
        ),
    )

    base = results["base"][0]
    # HyPPI express: negligible increase, flat across hops (paper: 4.9 mJ
    # against a 4.2 mJ base).
    hyppi = [results[(Technology.HYPPI, h)][0] for h in (3, 5, 15)]
    assert all(v < 1.6 * base for v in hyppi)
    assert max(hyppi) < 1.15 * min(hyppi)
    # Electronic express: grows with hop length (delay-optimal repeaters).
    elec = [results[(Technology.ELECTRONIC, h)][0] for h in (3, 5, 15)]
    assert elec[0] < elec[1] < elec[2]
    assert elec[0] > base
    # Photonic express: once the always-on overhead is included, orders of
    # magnitude above everything else (the paper's 0.94 J column).
    phot_total = [sum(results[(Technology.PHOTONIC, h)]) for h in (3, 5, 15)]
    assert all(v > 20 * base for v in phot_total)
