"""Extension bench — workload generator throughput and trace I/O.

Tracks the speed of the :mod:`repro.workloads` subsystem's hot paths: the
ON/OFF temporal generator (the default bursty model every sweep reaches
for), the application-skeleton phase scheduler, and the npz trace-store
round-trip. All three are `smoke`-tagged so the perf CI gate watches them
alongside the cycle simulator.

Correctness asserted on the same payloads: the bursty generator hits its
mean rate and out-bursts Bernoulli, and the store round-trips exactly.
"""

import pathlib
import tempfile

import pytest

from repro.bench import benchmark_spec
from repro.simulation import synthetic_trace
from repro.topology import build_mesh
from repro.traffic import uniform_traffic
from repro.workloads import (
    allreduce_trace,
    load_trace_npz,
    onoff_trace,
    save_trace_npz,
    stencil_trace,
    trace_stats,
)

GEN_CYCLES = 3000  # ~77k packets at rate 0.1 on the 16x16 mesh


def _matrix_fixture():
    return uniform_traffic(build_mesh(16, 16), injection_rate=0.1)


@benchmark_spec(
    "workload_onoff_gen",
    setup=_matrix_fixture,
    points=lambda trace: trace.n_packets,
    tags=("workload", "smoke"),
)
def gen_onoff(tm):
    """ON/OFF bursty trace generation, 256 nodes x 3000 cycles at rate 0.1."""
    return onoff_trace(
        tm, injection_rate=0.1, cycles=GEN_CYCLES, duty=0.25, seed=0
    )


@benchmark_spec(
    "workload_skeleton_gen",
    points=lambda trace: trace.n_packets,
    tags=("workload", "smoke"),
)
def gen_skeletons():
    """Skeleton phase scheduling: 16x16 stencil + butterfly all-reduce."""
    st = stencil_trace(16, 16, iterations=4)
    ar = allreduce_trace(16, 16, iterations=2)
    # Return the larger for the throughput denominator; both are built.
    return st if st.n_packets >= ar.n_packets else ar


def _io_fixture():
    tm = uniform_traffic(build_mesh(16, 16), injection_rate=0.1)
    trace = onoff_trace(tm, injection_rate=0.1, cycles=1500, duty=0.25, seed=1)
    # The TemporaryDirectory handle rides along in the fixture so the
    # directory outlives every timed repeat and is removed on GC.
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-io-")
    return trace, pathlib.Path(tmpdir.name) / "trace.npz", tmpdir


@benchmark_spec(
    "workload_trace_io",
    setup=_io_fixture,
    points=lambda pair: pair[0].n_packets,
    tags=("workload", "smoke"),
)
def trace_io_round_trip(fixture):
    """npz trace store: save + load round-trip of a ~38k-packet trace."""
    trace, path, _tmpdir = fixture
    save_trace_npz(trace, path)
    return load_trace_npz(path), trace


def test_workload_onoff_gen(run_bench):
    trace = run_bench("workload_onoff_gen")
    measured = trace.total_flits / (256 * GEN_CYCLES)
    assert measured == pytest.approx(0.1, rel=0.1)
    # The point of the model: same mean rate, far burstier than Bernoulli.
    bern = synthetic_trace(
        _matrix_fixture(), injection_rate=0.1, cycles=GEN_CYCLES, seed=0
    )
    assert trace_stats(trace).burstiness > 2 * trace_stats(bern).burstiness


def test_workload_skeleton_gen(run_bench):
    trace = run_bench("workload_skeleton_gen")
    assert trace.n_packets > 0
    assert trace_stats(trace, gap=128).n_phases > 1


def test_workload_trace_io(run_bench):
    loaded, original = run_bench("workload_trace_io")
    assert loaded == original
