"""Fig. 5 — the full hybrid-NoC design-space exploration grid.

Regenerates all twelve panels' data: CLEAR / Latency / Power / Area for
each base-mesh technology (Electronic, Photonic, HyPPI) x express-link
technology x hop count (3, 5, 15), plus each plain mesh, at injection
rate 0.1 with Soteriou traffic (p=0.02, sigma=0.4).
"""

from repro.bench import HEAVY_POLICY, benchmark_spec
from repro.core import DesignSpaceExplorer
from repro.tech import Technology
from repro.util import format_table


@benchmark_spec("fig5_design_space", points=len, policy=HEAVY_POLICY, tags=("figure",))
def explore_design_space():
    """Evaluate the full Fig. 5 grid on a fresh explorer (cold cache, so
    calibrated repeats time real evaluations, not cache hits)."""
    return DesignSpaceExplorer().explore()


def test_fig5_design_space(run_bench, save_result):
    points = run_bench("fig5_design_space")
    rows = [
        [
            pt.label,
            pt.evaluation.capability_gbps,
            pt.evaluation.latency_clks,
            pt.evaluation.power.total_w,
            pt.evaluation.area_mm2,
            pt.evaluation.r_slope,
            pt.evaluation.clear,
        ]
        for pt in points
    ]
    save_result(
        "fig5_design_space",
        format_table(
            ["design point", "C (Gb/s)", "latency (clk)", "power (W)",
             "area (mm2)", "R", "CLEAR"],
            rows,
            title="Fig. 5 — hybrid NoC design-space exploration "
            "(injection rate 0.1)",
        ),
    )

    by_key = {
        (pt.base_technology, pt.express_technology, pt.hops): pt.evaluation
        for pt in points
    }
    E, P, H = Technology.ELECTRONIC, Technology.PHOTONIC, Technology.HYPPI

    # Fig. 5a: with an electronic base, HyPPI express wins; photonic express
    # is the worst option (power), below electronic express.
    assert by_key[(E, H, 3)].clear > by_key[(E, E, 3)].clear > by_key[(E, P, 3)].clear
    # Fig. 5b reverse trend: photonic base prefers photonic over electronic
    # long links (area, and the base already pays the optical power).
    assert by_key[(P, P, 3)].clear > by_key[(P, E, 3)].clear
    # HyPPI base gives the globally best CLEAR.
    best = max(points, key=lambda pt: pt.evaluation.clear)
    assert best.base_technology is H
    # Increasing hop length reduces CLEAR (paper: "In all the plots, we
    # notice that increasing the hop length reduces CLEAR"). For photonic
    # express links the trend is borderline even with the paper's own
    # Table IV statics — the power saved by dropping links nearly cancels
    # the capability loss — so the strict ordering is asserted for the
    # electronic and HyPPI express flavours (see EXPERIMENTS.md).
    for base in (E, P, H):
        for express in (E, H):
            assert (
                by_key[(base, express, 3)].clear
                > by_key[(base, express, 5)].clear
                > by_key[(base, express, 15)].clear
            )
        assert (
            by_key[(base, P, 5)].clear > by_key[(base, P, 15)].clear
        )
    # Headline: E-base + HyPPI x3 over plain E-mesh >= 1.8x.
    plain = by_key[(E, None, 0)]
    assert by_key[(E, H, 3)].clear / plain.clear >= 1.8


def test_fig5_cache_reuse():
    """A re-exploration routes through the experiment engine and is served
    entirely from the evaluation cache (small grid: the property, not the
    full-workload timing, is what is under test here)."""
    explorer = DesignSpaceExplorer()
    points = explorer.explore(hops_options=[3])
    evaluated = explorer.cache.misses
    again = explorer.explore(hops_options=[3])
    assert explorer.cache.misses == evaluated
    assert [pt.evaluation for pt in again] == [pt.evaluation for pt in points]
