"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures. Timing
goes through the :mod:`repro.bench` harness — under pytest in *quick*
mode (one timed iteration; calibrated multi-repeat timing is the CLI's
job: ``python -m repro bench run``) — and each run writes its canonical
``BENCH_<name>.json`` record. Rendered artefacts land next to them in
``benchmarks/results/`` (gitignored) so the reproduction can be diffed
against the paper after a run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import BenchSuite, get_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_suite(results_dir) -> BenchSuite:
    return BenchSuite(results_dir, quick=True)


@pytest.fixture()
def run_bench(bench_suite):
    """Run a registered benchmark through the harness; returns the payload
    result so the test can assert on it. Writes ``BENCH_<name>.json``."""

    def _run(name: str):
        result = bench_suite.run_one(get_benchmark(name))
        print(f"\n[{name}: {result.median_ns / 1e6:.2f} ms, BENCH_{name}.json saved]")
        return result.value

    return _run


@pytest.fixture()
def save_result(results_dir):
    """Write a rendered table/figure to the results directory and echo it."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
