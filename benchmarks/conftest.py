"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures; the
rendered artefact is written to ``benchmarks/results/<name>.txt`` so the
reproduction can be diffed against the paper after a run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Write a rendered table/figure to the results directory and echo it."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
