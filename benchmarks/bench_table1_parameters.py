"""Table I — photonic / plasmonic / HyPPI link parameters.

Renders the transcribed device table and benchmarks the derived link-budget
computations that every other experiment leans on.
"""

from repro.bench import benchmark_spec
from repro.tech import HYPPI, PHOTONIC, PLASMONIC
from repro.util import format_table


@benchmark_spec("table1_render", tags=("table", "smoke"))
def render_table1() -> str:
    """Render the transcribed Table I device-parameter table."""
    cols = {"Photonic": PHOTONIC, "Plasmonic": PLASMONIC, "HyPPI": HYPPI}
    rows = [
        ["Laser efficiency (%)"] + [p.laser.efficiency * 100 for p in cols.values()],
        ["Laser area (um2)"] + [p.laser.area_um2 for p in cols.values()],
        ["Mod. device rate (Gb/s)"]
        + [p.modulator.device_rate_gbps for p in cols.values()],
        ["Mod. SERDES rate (Gb/s)"]
        + [p.modulator.serdes_rate_gbps for p in cols.values()],
        ["Mod. energy (fJ/bit)"]
        + [p.modulator.energy_fj_per_bit for p in cols.values()],
        ["Mod. insertion loss (dB)"]
        + [p.modulator.insertion_loss_db for p in cols.values()],
        ["Mod. extinction ratio (dB)"]
        + [p.modulator.extinction_ratio_db for p in cols.values()],
        ["Mod. area (um2)"] + [p.modulator.area_um2 for p in cols.values()],
        ["Mod. capacitance (fF)"]
        + [p.modulator.capacitance_ff for p in cols.values()],
        ["Det. rate (Gb/s)"] + [p.photodetector.rate_gbps for p in cols.values()],
        ["Det. energy (fJ/bit)"]
        + [p.photodetector.energy_fj_per_bit for p in cols.values()],
        ["Det. responsivity (A/W)"]
        + [p.photodetector.responsivity_a_per_w for p in cols.values()],
        ["Det. area (um2)"] + [p.photodetector.area_um2 for p in cols.values()],
        ["WG prop. loss (dB/cm)"]
        + [p.waveguide.propagation_loss_db_per_cm for p in cols.values()],
        ["WG coupling loss (dB)"]
        + [p.waveguide.coupling_loss_db for p in cols.values()],
        ["WG pitch (um)"] + [p.waveguide.pitch_um for p in cols.values()],
        ["WG width (um)"] + [p.waveguide.width_um for p in cols.values()],
    ]
    return format_table(
        ["Parameter", "Photonic", "Plasmonic", "HyPPI"],
        rows,
        title="Table I — link technology parameters (transcribed)",
    )


@benchmark_spec("table1_loss_budgets", points=3, tags=("table", "smoke"))
def compute_loss_budgets() -> dict[str, float]:
    """1 mm path-loss budgets for the three optical technologies."""
    return {
        p.technology.value: p.path_loss_db(1e-3)
        for p in (PHOTONIC, PLASMONIC, HYPPI)
    }


def test_table1_parameters(run_bench, save_result):
    table = run_bench("table1_render")
    save_result("table1_parameters", table)
    assert "2100" in table  # HyPPI's 2.1 Tb/s modulator
    assert "440" in table  # plasmonic ohmic loss


def test_table1_loss_budgets(run_bench):
    losses = run_bench("table1_loss_budgets")
    # Plasmonics pays 44 dB/mm; the others stay near their fixed losses.
    assert losses["plasmonic"] > 40
    assert losses["photonic"] < 2
    assert losses["hyppi"] < 3
