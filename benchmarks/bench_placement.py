"""Extension bench — greedy express-link placement vs uniform grids.

The paper's express links are uniform (every row, fixed hop count); this
bench asks what a traffic-aware placement buys: on a workload whose
long-range traffic lives in a few rows, a small budget of well-placed HyPPI
links recovers most of the latency benefit of the full uniform grid.
"""

import numpy as np

from repro.analysis import average_latency_cycles
from repro.bench import benchmark_spec
from repro.core import optimize_express_placement
from repro.topology import RoutingTable, build_express_mesh, build_mesh
from repro.traffic import TrafficMatrix
from repro.util import format_table

WIDTH = HEIGHT = 8
N = WIDTH * HEIGHT


def _skewed_traffic() -> TrafficMatrix:
    """Long-range traffic concentrated in rows 1 and 5, light elsewhere."""
    m = np.full((N, N), 0.01)
    np.fill_diagonal(m, 0.0)
    for row in (1, 5):
        for c in range(3):
            s = row * WIDTH + c
            d = row * WIDTH + (WIDTH - 1 - c)
            m[s, d] += 4.0
            m[d, s] += 4.0
    return TrafficMatrix(m, name="row-skewed")


@benchmark_spec("placement_greedy", points=3, tags=("extension", "smoke"))
def compute_placement():
    """Mesh / uniform-grid / greedy-placement latency comparison."""
    tm = _skewed_traffic()
    mesh = build_mesh(WIDTH, HEIGHT)
    lat_mesh = average_latency_cycles(mesh, tm, RoutingTable(mesh))

    uniform = build_express_mesh(WIDTH, HEIGHT, hops=3)
    lat_uniform = average_latency_cycles(uniform, tm, RoutingTable(uniform))
    n_uniform = len(uniform.express_links()) // 2

    placed = optimize_express_placement(
        tm, budget=2, width=WIDTH, height=HEIGHT, min_span=3, max_span=7
    )
    return {
        "mesh": (lat_mesh, 0),
        "uniform h3": (lat_uniform, n_uniform),
        "greedy budget=2": (placed.final_latency_clks, len(placed.placement)),
    }, placed


def test_placement_vs_uniform(run_bench, save_result):
    results, placed = run_bench("placement_greedy")
    rows = [
        [name, latency, links, results["mesh"][0] / latency]
        for name, (latency, links) in results.items()
    ]
    save_result(
        "placement_vs_uniform",
        format_table(
            ["network", "avg latency (clk)", "express links", "speedup"],
            rows,
            title="Greedy placement vs uniform express grid (row-skewed traffic)",
        )
        + "\n\nchosen placement: "
        + ", ".join(str(s) for s in placed.placement),
    )

    lat_mesh, _ = results["mesh"]
    lat_uniform, n_uniform = results["uniform h3"]
    lat_greedy, n_greedy = results["greedy budget=2"]
    # The greedy placement improves on the mesh...
    assert lat_greedy < lat_mesh
    # ...targets the hot rows...
    assert {s.row for s in placed.placement} <= {1, 5}
    # ...and captures a large share of the uniform grid's gain with a
    # fraction of the links.
    assert n_greedy <= 2 < n_uniform
    gain_uniform = lat_mesh - lat_uniform
    gain_greedy = lat_mesh - lat_greedy
    assert gain_greedy > 0.4 * gain_uniform
