"""Ablation benches for the design choices DESIGN.md calls out.

* Injection-rate sweep — the paper: "We also varied the injection rate
  from 0.01 to 0.1, and noticed only a small reduction in CLEAR value".
* Router pipeline depth — Table II fixes 3 stages; how sensitive are the
  express-link gains to that choice?
* Circuit-switched latency — the paper adopts ref [22]'s 50% rule; compare
  against a first-principles setup+transfer estimate.
"""

import pytest

from repro.bench import HEAVY_POLICY, benchmark_spec
from repro.core import DesignSpaceExplorer
from repro.optical import paper_latency_approximation, setup_transfer_latency
from repro.simulation import SimConfig, Simulator
from repro.tech import Technology
from repro.topology import build_express_mesh, build_mesh
from repro.traffic import cg_trace
from repro.util import format_table


@benchmark_spec("ablation_injection_rate", points=8, tags=("ablation",))
def sweep_injection_rate():
    """CLEAR at injection rates 0.01-0.1, plain vs HyPPI-express."""
    out = []
    for rate in (0.01, 0.02, 0.05, 0.1):
        ex = DesignSpaceExplorer(injection_rate=rate)
        plain = ex.evaluate_point(Technology.ELECTRONIC).evaluation.clear
        hyppi = ex.evaluate_point(
            Technology.ELECTRONIC, Technology.HYPPI, 3
        ).evaluation.clear
        out.append((rate, plain, hyppi, hyppi / plain))
    return out


@benchmark_spec(
    "ablation_router_pipeline",
    points=6,
    policy=HEAVY_POLICY,
    tags=("ablation", "simulation"),
)
def sweep_router_pipeline():
    """CG latency at 2/3/4 router pipeline stages, mesh vs h3 express."""
    trace = cg_trace(volume_scale=2e-4, iterations=1)
    mesh = build_mesh()
    e3 = build_express_mesh(hops=3, express_technology=Technology.HYPPI)
    out = []
    for stages in (2, 3, 4):
        cfg = SimConfig(router_pipeline=stages)
        base = Simulator(mesh, config=cfg).run(trace).avg_latency
        express = Simulator(e3, config=cfg).run(trace).avg_latency
        out.append((stages, base, express, base / express))
    return out


@benchmark_spec("ablation_circuit_latency", points=3, tags=("ablation", "smoke"))
def compare_circuit_latency_models():
    """Paper's 50% rule vs a first-principles setup+transfer estimate."""
    from repro.analysis import average_latency_cycles
    from repro.topology import RoutingTable
    from repro.traffic import soteriou_traffic

    mesh = build_mesh()
    routing = RoutingTable(mesh)
    tm = soteriou_traffic(mesh)
    # Compare like with like: a 32-flit packet on both networks.
    e_lat = average_latency_cycles(mesh, tm, routing, packet_flits=32)
    paper = paper_latency_approximation(e_lat)
    # First-principles: average 10.6-hop path, 32-flit payload.
    dist = 10.6
    first_principles = setup_transfer_latency(
        dist, 32, path_length_m=dist * 1e-3
    )
    return e_lat, paper, first_principles


def test_ablation_injection_rate(run_bench, save_result):
    rows = run_bench("ablation_injection_rate")
    save_result(
        "ablation_injection_rate",
        format_table(
            ["injection rate", "CLEAR plain", "CLEAR E+HyPPIx3", "ratio"],
            rows,
            title="Ablation — CLEAR vs injection rate",
        ),
    )
    plain = [r[1] for r in rows]
    ratio = [r[3] for r in rows]
    # CLEAR decreases mildly with injection rate (power grows), and the
    # HyPPI advantage persists across the whole range.
    assert plain[0] > plain[-1] > 0.25 * plain[0]
    assert min(ratio) > 1.5


def test_ablation_router_pipeline(run_bench, save_result):
    rows = run_bench("ablation_router_pipeline")
    save_result(
        "ablation_router_pipeline",
        format_table(
            ["pipeline stages", "mesh latency", "h3 latency", "speedup"],
            rows,
            title="Ablation — router pipeline depth (CG)",
        ),
    )
    # Deeper pipelines raise absolute latency but the express advantage
    # survives every depth.
    lats = [r[1] for r in rows]
    assert lats[0] < lats[1] < lats[2]
    assert all(r[3] > 1.02 for r in rows)


def test_ablation_circuit_latency_model(run_bench, save_result):
    e_lat, paper, fp = run_bench("ablation_circuit_latency")
    save_result(
        "ablation_circuit_latency",
        format_table(
            ["model", "latency (clk)"],
            [
                ["electronic mesh (analytical)", e_lat],
                ["all-optical, paper 50% rule", paper],
                ["all-optical, setup+transfer estimate", fp],
            ],
            title="Ablation — circuit-switched latency models",
        ),
    )
    # The 50% rule and the first-principles estimate agree on the headline:
    # both sit well below the packet-switched electronic mesh.
    assert paper < e_lat
    assert fp < e_lat
    assert fp == pytest.approx(paper, rel=1.0)  # same order of magnitude
