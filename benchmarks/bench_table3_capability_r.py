"""Table III — capability C and utilization slope R per topology.

C is exact topology arithmetic (validated against the paper's numbers);
R is the Soteriou-traffic utilization slope, whose *ordering* across
topologies is the paper's finding (absolute values depend on the authors'
unpublished utilization normalization; see EXPERIMENTS.md).
"""

import pytest

from repro.analysis import aggregate_capability_gbps, rate_of_utilization_increase
from repro.bench import benchmark_spec
from repro.topology import build_express_mesh, build_mesh
from repro.traffic import soteriou_traffic
from repro.util import format_table

PAPER_C = {0: 187.5, 3: 218.75, 5: 206.25, 15: 193.75}
PAPER_R = {0: 1.122, 3: 0.808, 5: 0.885, 15: 1.050}


def _topologies():
    return {0: build_mesh(), 3: build_express_mesh(hops=3),
            5: build_express_mesh(hops=5), 15: build_express_mesh(hops=15)}


@benchmark_spec("table3_capability_r", points=4, tags=("table", "smoke"))
def compute_table3() -> dict[int, tuple[float, float]]:
    """C and R for the plain mesh and the three express hop counts."""
    out = {}
    for hops, topo in _topologies().items():
        c = aggregate_capability_gbps(topo) / topo.n_nodes
        r = rate_of_utilization_increase(topo, soteriou_traffic(topo))
        out[hops] = (c, r)
    return out


def test_table3(run_bench, save_result):
    results = run_bench("table3_capability_r")
    rows = [
        [
            "plain mesh" if hops == 0 else f"express hops={hops}",
            c,
            PAPER_C[hops],
            r,
            PAPER_R[hops],
        ]
        for hops, (c, r) in sorted(results.items())
    ]
    save_result(
        "table3_capability_r",
        format_table(
            ["topology", "C (Gb/s)", "paper C", "R", "paper R"],
            rows,
            title="Table III — capability and utilization slope",
        ),
    )
    # C matches the paper exactly.
    for hops, (c, _) in results.items():
        assert c == pytest.approx(PAPER_C[hops])
    # R ordering matches the paper: h3 < h5 < h15 < plain.
    rs = {hops: r for hops, (_, r) in results.items()}
    assert rs[3] < rs[5] < rs[15] < rs[0]
