"""Extension bench — latency vs offered load (saturation behaviour).

Supports the paper's motivating argument that "Optical links ... typically
show good performance at high injection rates, since the static power is
amortized across their high data rate. Hence realistic injection ratios are
important": sweeps open-loop uniform traffic on the plain mesh and the
HyPPI-express hybrid up to the paper's 0.1 operating point and beyond,
locating where each network's latency departs from the zero-load regime.
"""

import numpy as np

from repro.simulation import latency_throughput_sweep
from repro.tech import Technology
from repro.topology import RoutingTable, build_express_mesh, build_mesh
from repro.traffic import uniform_traffic
from repro.util import format_table

RATES = np.array([0.02, 0.05, 0.1, 0.2, 0.3])


def _sweep():
    out = {}
    for name, topo in (
        ("mesh", build_mesh()),
        ("h3-hyppi", build_express_mesh(hops=3, express_technology=Technology.HYPPI)),
    ):
        routing = RoutingTable(topo)
        out[name] = latency_throughput_sweep(
            topo,
            uniform_traffic(topo),
            RATES,
            cycles=1200,
            routing=routing,
            seed=0,
        )
    return out


def test_saturation_sweep(benchmark, save_result):
    curves = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for i, rate in enumerate(RATES):
        rows.append(
            [
                rate,
                curves["mesh"][i].avg_latency,
                curves["h3-hyppi"][i].avg_latency,
                curves["mesh"][i].avg_latency / curves["h3-hyppi"][i].avg_latency,
            ]
        )
    save_result(
        "saturation_sweep",
        format_table(
            ["injection rate", "mesh latency", "h3 latency", "speedup"],
            rows,
            title="Latency vs offered load, uniform traffic",
        ),
    )
    # At the paper's 0.1 operating point both networks are unsaturated and
    # the express network is at least as fast.
    i_01 = int(np.argwhere(RATES == 0.1)[0][0])
    assert curves["mesh"][i_01].drained
    assert curves["h3-hyppi"][i_01].drained
    assert (
        curves["h3-hyppi"][i_01].avg_latency
        <= 1.05 * curves["mesh"][i_01].avg_latency
    )
    # Latency grows with offered load on the plain mesh.
    mesh_lat = [pt.avg_latency for pt in curves["mesh"]]
    assert mesh_lat[-1] > mesh_lat[0]
