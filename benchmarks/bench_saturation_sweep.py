"""Extension bench — latency vs offered load (saturation behaviour).

Supports the paper's motivating argument that "Optical links ... typically
show good performance at high injection rates, since the static power is
amortized across their high data rate. Hence realistic injection ratios are
important": sweeps open-loop uniform traffic on the plain mesh and the
HyPPI-express hybrid up to the paper's 0.1 operating point and beyond,
locating where each network's latency departs from the zero-load regime.

The sweep is expressed as engine scenarios (``"saturation-sweep"``
family) and run through the :class:`~repro.experiments.Runner`, so the
same points are addressable from the CLI (``python -m repro sweep``) and
share its per-point deterministic seeding.
"""

import numpy as np

from repro.bench import HEAVY_POLICY, benchmark_spec
from repro.experiments import Runner, scenario_family
from repro.util import format_table

RATES = [0.02, 0.05, 0.1, 0.2, 0.3]


@benchmark_spec(
    "saturation_sweep",
    points=2 * len(RATES),
    policy=HEAVY_POLICY,
    tags=("extension", "simulation"),
)
def sweep_saturation():
    """Latency-vs-load curves for the plain mesh and the h3 hybrid."""
    out = {}
    for name, hops in (("mesh", 0), ("h3-hyppi", 3)):
        scenarios = scenario_family(
            "saturation-sweep", rates=RATES, hops=hops, cycles=1200, seed=0
        )
        out[name] = [res.metrics for res in Runner(jobs=1).run(scenarios)]
    return out


def test_saturation_sweep(run_bench, save_result):
    curves = run_bench("saturation_sweep")
    rows = []
    for i, rate in enumerate(RATES):
        rows.append(
            [
                rate,
                curves["mesh"][i]["avg_latency"],
                curves["h3-hyppi"][i]["avg_latency"],
                curves["mesh"][i]["avg_latency"]
                / curves["h3-hyppi"][i]["avg_latency"],
            ]
        )
    save_result(
        "saturation_sweep",
        format_table(
            ["injection rate", "mesh latency", "h3 latency", "speedup"],
            rows,
            title="Latency vs offered load, uniform traffic",
        ),
    )
    # At the paper's 0.1 operating point both networks are unsaturated and
    # the express network is at least as fast.
    i_01 = RATES.index(0.1)
    assert curves["mesh"][i_01]["drained"]
    assert curves["h3-hyppi"][i_01]["drained"]
    assert (
        curves["h3-hyppi"][i_01]["avg_latency"]
        <= 1.05 * curves["mesh"][i_01]["avg_latency"]
    )
    # Latency grows with offered load on the plain mesh.
    mesh_lat = [m["avg_latency"] for m in curves["mesh"]]
    assert mesh_lat[-1] > mesh_lat[0]
    assert not np.isnan(mesh_lat).any()
