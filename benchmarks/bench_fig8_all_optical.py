"""Fig. 8 — all-optical WDM NoC vs electronic NoC (radar comparison).

Regenerates the three-way Latency / Energy-per-bit / Area comparison:
electronic mesh, all-photonic NoC, all-HyPPI NoC. Smaller is better on
every axis ("the triangle that encloses smaller area is the better
option").
"""

import pytest

from repro.bench import benchmark_spec
from repro.optical import project_all_optical
from repro.util import ascii_bar_chart, format_table

PAPER = {
    # name: (energy fJ/bit, area mm2)
    "electronic-mesh": (89_700_000.0, 22.1),  # 89.7 nJ/bit as printed
    "all-photonic": (352.0, 127.7),
    "all-hyppi": (354.0, 1.24),
}


@benchmark_spec("fig8_all_optical", points=3, tags=("figure", "smoke"))
def project():
    """The three-way all-optical projection (latency / energy / area)."""
    return project_all_optical()


def test_fig8_projection(run_bench, save_result):
    cmp = run_bench("fig8_all_optical")
    rows = []
    for proj in cmp.all():
        paper_e, paper_a = PAPER[proj.name]
        rows.append(
            [proj.name, proj.latency_clks, proj.energy_per_bit_fj, paper_e,
             proj.area_mm2, paper_a]
        )
    table = format_table(
        ["network", "latency (clk)", "E/bit (fJ)", "paper E/bit",
         "area (mm2)", "paper area"],
        rows,
        title="Fig. 8 — all-optical projections",
    )
    bars = ascii_bar_chart(
        [p.name for p in cmp.all()],
        [p.energy_per_bit_fj for p in cmp.all()],
        title="energy per bit (fJ, log-scale differences are the story)",
    )
    save_result("fig8_all_optical", table + "\n\n" + bars)

    # Areas land on the paper's values (they are mostly arithmetic).
    assert cmp.electronic.area_mm2 == pytest.approx(22.1, rel=0.05)
    assert cmp.photonic.area_mm2 == pytest.approx(127.7, rel=0.05)
    assert cmp.hyppi.area_mm2 == pytest.approx(1.24, rel=0.2)
    # Energy: optical two orders below electronic; photonic ~ HyPPI.
    assert cmp.energy_ratio_electronic_over_hyppi > 100
    assert (
        0.5
        < cmp.photonic.energy_per_bit_fj / cmp.hyppi.energy_per_bit_fj
        < 2.0
    )
    # Latency: all-optical at 50% of the electronic mesh (paper ref [22]).
    assert cmp.hyppi.latency_clks == pytest.approx(
        0.5 * cmp.electronic.latency_clks
    )


def test_fig8_radar_dominance(run_bench):
    cmp = run_bench("fig8_all_optical")
    # all-HyPPI dominates all-photonic on every axis (smaller triangle).
    assert cmp.hyppi.latency_clks <= cmp.photonic.latency_clks
    assert cmp.hyppi.area_mm2 < cmp.photonic.area_mm2
    assert cmp.hyppi.energy_per_bit_fj < 2 * cmp.photonic.energy_per_bit_fj
