"""Batched-engine throughput vs the reference interpreter.

Not a paper figure: these records quantify the two wins of
:class:`repro.simulation.BatchSimulator` — the vectorized per-cycle hot
loop on a single run, and the amortization of one scenario family's
shared state across a whole rate sweep. ``interpreter_sweep_16pt`` and
``batch_engine_sweep_16pt`` time the *identical* 16-point 8x8 saturation
family through both engines; the CI bench-smoke gate asserts the batched
sweep sustains >= 3x the interpreter's points/sec (the engines are
bit-identical, so the comparison is purely about speed).
"""

import numpy as np

from repro.bench import benchmark_spec
from repro.simulation import BatchSimulator, Simulator
from repro.topology import RoutingTable, build_mesh
from repro.traffic import PacketRecord, Trace

SWEEP_RATES = [0.02 + 0.02 * i for i in range(16)]
"""Injection rates of the 8x8 saturation family, all in the drained
(pre-saturation) region where the batched engine's exact-replay fallback
never fires."""
SWEEP_WINDOW = 600
N_NODES = 64


def _rate_trace(seed: int, rate: float) -> Trace:
    rng = np.random.default_rng(seed)
    n_packets = int(rate * N_NODES * SWEEP_WINDOW)
    records = []
    for _ in range(n_packets):
        s, d = rng.choice(N_NODES, size=2, replace=False)
        records.append(
            PacketRecord(int(rng.integers(0, SWEEP_WINDOW)), int(s), int(d), 1)
        )
    return Trace(N_NODES, records)


def _sweep_fixture():
    """Mesh, routing and the 16 family traces, built outside the timer —
    both engines receive identical inputs."""
    mesh = build_mesh(8, 8)
    routing = RoutingTable(mesh)
    traces = [
        _rate_trace(1000 + i, rate) for i, rate in enumerate(SWEEP_RATES)
    ]
    return mesh, routing, traces


@benchmark_spec(
    "interpreter_sweep_16pt",
    setup=_sweep_fixture,
    points=len(SWEEP_RATES),
    tags=("perf", "simulation", "smoke"),
)
def run_interpreter_sweep(fixture):
    """16-point 8x8 saturation family, one interpreter run per point."""
    mesh, routing, traces = fixture
    sim = Simulator(mesh, routing)
    return [sim.run(trace, max_cycles=2_000_000) for trace in traces]


@benchmark_spec(
    "batch_engine_sweep_16pt",
    setup=_sweep_fixture,
    points=len(SWEEP_RATES),
    tags=("perf", "simulation", "smoke"),
)
def run_batch_engine_sweep(fixture):
    """The same 16-point family as one amortized run_batch call."""
    mesh, routing, traces = fixture
    bsim = BatchSimulator(mesh, routing)
    return bsim.run_batch(traces, max_cycles=2_000_000)


def _single_fixture():
    mesh = build_mesh(8, 8)
    return BatchSimulator(mesh, RoutingTable(mesh)), _rate_trace(77, 0.24)


@benchmark_spec(
    "batch_engine_single_run",
    setup=_single_fixture,
    points=1,
    tags=("perf", "simulation", "smoke"),
)
def run_batch_engine_single(fixture):
    """One vectorized cycle-loop run (B=1) of a 0.24-rate 8x8 trace."""
    bsim, trace = fixture
    return bsim.run(trace, max_cycles=2_000_000)


def test_perf_batch_engine_single(run_bench):
    stats = run_bench("batch_engine_single_run")
    assert stats.drained


def test_perf_sweep_amortization(run_bench):
    """Both engines must produce bit-identical sweeps; the speedup itself
    is gated in CI from the two BENCH records."""
    ref = run_bench("interpreter_sweep_16pt")
    got = run_bench("batch_engine_sweep_16pt")
    assert len(ref) == len(got) == len(SWEEP_RATES)
    for a, b in zip(ref, got):
        assert a.drained and b.drained
        assert a.cycles == b.cycles
        assert np.array_equal(a.packet_latencies, b.packet_latencies)
        assert np.array_equal(a.link_flit_counts, b.link_flit_counts)
