"""Extension bench — telemetry sampler overhead and trace conversion.

Guards the telemetry subsystem's two performance contracts:

* ``telemetry_disabled_run`` — the *same* workload as ``simulator_run``
  driven through ``Simulator.run(telemetry=None)``: the CI bench-smoke
  job asserts its median stays within 5 % of ``simulator_run`` (the
  sampler hook must be free when disabled);
* ``telemetry_sampler`` — the same run with a 64-cycle window, tracking
  the enabled-sampling cost (snapshot diffs per window, not per event);
* ``telemetry_power_trace`` — windowed power conversion + detectors over
  a prebuilt telemetry trace (the post-processing hot path).

All three are ``smoke``-tagged so the perf CI gate watches them.
Correctness is asserted on the same payloads: disabled runs attach no
telemetry, sampled runs conserve counts exactly, and the power-trace
total is bit-identical to the whole-run energy.
"""

import numpy as np

from repro.bench import benchmark_spec, load_sibling
from repro.simulation import sim_dynamic_energy_j
from repro.telemetry import TelemetryConfig, analyze, power_trace

WINDOW = 64

# The CI disabled-overhead gate divides telemetry_disabled_run's median
# by simulator_run's; sharing the fixture makes "identical workload" a
# structural fact rather than a copy-paste invariant.
_sim_perf = load_sibling(__file__, "bench_simulator_perf")
N_PACKETS = _sim_perf.N_PACKETS


def _simulator_fixture():
    sim, trace = _sim_perf._simulator_fixture()
    return sim.topology, sim, trace


@benchmark_spec(
    "telemetry_disabled_run",
    setup=_simulator_fixture,
    points=N_PACKETS,
    tags=("perf", "telemetry", "smoke"),
)
def run_disabled(fixture):
    """simulator_run's workload through the telemetry=None path (must be free)."""
    _, sim, trace = fixture
    return sim.run(trace, telemetry=None)


@benchmark_spec(
    "telemetry_sampler",
    setup=_simulator_fixture,
    points=N_PACKETS,
    tags=("perf", "telemetry", "smoke"),
)
def run_sampled(fixture):
    """The same run with 64-cycle windowed sampling enabled."""
    _, sim, trace = fixture
    return sim.run(trace, telemetry=TelemetryConfig(window=WINDOW))


def _telemetry_fixture():
    mesh, sim, trace = _simulator_fixture()
    stats = sim.run(trace, telemetry=TelemetryConfig(window=WINDOW))
    return mesh, stats


@benchmark_spec(
    "telemetry_power_trace",
    setup=_telemetry_fixture,
    points=lambda result: result[0].n_windows,
    tags=("perf", "telemetry", "smoke"),
)
def run_power_conversion(fixture):
    """Windowed power conversion + all streaming detectors."""
    mesh, stats = fixture
    return power_trace(mesh, stats.telemetry), analyze(stats.telemetry)


def test_perf_disabled_overhead(run_bench):
    stats = run_bench("telemetry_disabled_run")
    assert stats.drained
    assert stats.telemetry is None


def test_perf_sampler(run_bench):
    stats = run_bench("telemetry_sampler")
    assert stats.telemetry is not None
    assert np.array_equal(
        stats.telemetry.total_link_flits(), stats.link_flit_counts
    )
    assert stats.telemetry.total_delivered() == stats.packet_latencies.size


def test_perf_power_conversion(run_bench):
    power, findings = run_bench("telemetry_power_trace")
    mesh, stats = _telemetry_fixture()
    assert power.total.dynamic_j == sim_dynamic_energy_j(mesh, stats).dynamic_j
    assert power.series_conservation_error() < 1e-12
    assert findings.baseline_latency > 0
