"""Extension bench — closed-loop sources, knee search, disabled overhead.

Guards the control subsystem's performance contracts:

* ``control_disabled_run`` — the *same* workload as ``simulator_run``
  driven through ``Simulator.run(closed_loop=None, control=None)``: the
  CI bench-smoke job asserts its median stays within 5 % of
  ``simulator_run`` (the control hooks must be free when disabled, like
  the telemetry sentinel);
* ``control_closed_loop_run`` — a full request/reply run with an
  outstanding-request window on the 8x8 mesh (session hook + dynamic
  packet registration cost);
* ``control_knee_search`` — a complete detector-driven bisection
  (fresh evaluation cache per iteration, so every probe simulates).

All three are ``smoke``-tagged so the perf CI gate watches them.
Correctness is asserted on the same payloads: disabled runs attach no
control records, closed-loop runs conserve requests exactly, and the
knee search lands inside its final bracket.
"""

from repro.bench import benchmark_spec, load_sibling
from repro.control import ClosedLoopConfig, ClosedLoopSession, locate_knee
from repro.simulation import Simulator
from repro.simulation import synthetic_trace
from repro.topology import build_mesh
from repro.traffic import Trace, uniform_traffic

# The CI control-disabled overhead gate divides control_disabled_run's
# median by simulator_run's; sharing the fixture keeps the workloads
# structurally identical (same pattern as bench_telemetry).
_sim_perf = load_sibling(__file__, "bench_simulator_perf")
N_PACKETS = _sim_perf.N_PACKETS

CLOSED_RATE = 0.5
CLOSED_CYCLES = 800


@benchmark_spec(
    "control_disabled_run",
    setup=_sim_perf._simulator_fixture,
    points=N_PACKETS,
    tags=("perf", "control", "smoke"),
)
def run_disabled(fixture):
    """simulator_run's workload through the control-less path (must be free)."""
    sim, trace = fixture
    return sim.run(trace, closed_loop=None, control=None)


def _closed_loop_fixture():
    mesh = build_mesh(8, 8)
    tm = uniform_traffic(mesh, injection_rate=1.0)
    demand = synthetic_trace(
        tm, injection_rate=CLOSED_RATE, cycles=CLOSED_CYCLES, seed=0
    )
    return mesh, demand


@benchmark_spec(
    "control_closed_loop_run",
    setup=_closed_loop_fixture,
    points=lambda stats: stats.closed_loop.replies_delivered,
    tags=("perf", "control", "smoke"),
)
def run_closed_loop(fixture):
    """Windowed request/reply run of an 8x8 Bernoulli demand schedule."""
    mesh, demand = fixture
    session = ClosedLoopSession(ClosedLoopConfig(window=4), demand)
    sim = Simulator(mesh)
    return sim.run(Trace(mesh.n_nodes, []), max_cycles=200_000, closed_loop=session)


@benchmark_spec(
    "control_knee_search",
    points=lambda result: result.n_simulations,
    tags=("perf", "control", "smoke"),
)
def run_knee_search():
    """Full bisection knee search on a 4x4 mesh (fresh cache: all probes
    simulate)."""
    return locate_knee(
        lo=0.2,
        hi=0.95,
        tolerance=0.1,
        width=4,
        height=4,
        cycles=800,
        window=64,
        drain_budget=4000,
    )


def test_perf_control_disabled(run_bench):
    stats = run_bench("control_disabled_run")
    assert stats.drained
    assert stats.closed_loop is None and stats.control is None


def test_perf_closed_loop_run(run_bench):
    stats = run_bench("control_closed_loop_run")
    cl = stats.closed_loop
    assert stats.drained
    assert cl.requests_issued == cl.replies_delivered == cl.demand_total
    assert cl.peak_outstanding <= 4


def test_perf_knee_search(run_bench):
    result = run_bench("control_knee_search")
    assert result.lo < result.knee_rate < result.hi
    assert result.n_simulations >= 3
