"""Fig. 6 — average packet latency, NAS Parallel Benchmarks.

Cycle-simulates synthetic NPB traces (FT, CG, MG, LU) on the base
electronic mesh and on express meshes with Hops = 3, 5, 15. Express links
are optical (photonic or HyPPI — "the latency is the same in both cases,
because their individual link latencies are identical", so one run covers
both).

Trace scales are simulation-budget bound; EXPERIMENTS.md records the
scaling and the resulting paper-vs-measured ratios.
"""

import pytest

from repro.bench import HEAVY_POLICY, benchmark_spec
from repro.experiments import Runner, scenario_family
from repro.util import format_table

KERNELS = ("FT", "CG", "MG", "LU")
HOPS_OPTIONS = (0, 3, 5, 15)

PAPER_SPEEDUPS = {  # best express configuration per kernel, from the text
    "CG": 1.25,
    "MG": 1.64,
    "FT": 1.30,
    "LU": 1.0,
}


@benchmark_spec(
    "fig6_npb_latency",
    points=len(KERNELS) * len(HOPS_OPTIONS),
    policy=HEAVY_POLICY,
    tags=("figure", "simulation"),
)
def simulate_npb_grid():
    """Cycle-simulate every NPB kernel on every topology option."""
    # The engine's NPB family carries the same per-kernel volume scales /
    # iteration counts this bench used to hand-roll (DEFAULT_NPB_WORKLOADS).
    scenarios = scenario_family(
        "npb-kernels", kernels=KERNELS, hops_options=HOPS_OPTIONS
    )
    results = Runner(jobs=1).run(scenarios)
    out = {}
    for scenario, res in zip(scenarios, results):
        kernel = dict(scenario.traffic.params)["kernel"]
        hops = scenario.topology.hops
        name = "mesh" if hops == 0 else f"h{hops}"
        assert res.metrics["drained"], f"{kernel}@{name} undrained"
        out[kernel, name] = res.metrics["avg_latency"]
    return out


def test_fig6_npb_latency(run_bench, save_result):
    lat = run_bench("fig6_npb_latency")
    kernels = ("FT", "CG", "MG", "LU")
    rows = []
    for k in kernels:
        base = lat[k, "mesh"]
        best = min(lat[k, n] for n in ("h3", "h5", "h15"))
        rows.append(
            [
                k,
                base,
                lat[k, "h3"],
                lat[k, "h5"],
                lat[k, "h15"],
                base / best,
                PAPER_SPEEDUPS[k],
            ]
        )
    save_result(
        "fig6_npb_latency",
        format_table(
            ["kernel", "mesh (clk)", "h3", "h5", "h15",
             "best speedup", "paper best"],
            rows,
            title="Fig. 6 — NPB average latency (cycle simulation)",
        ),
    )

    # Shape assertions (paper Section IV-A).
    assert lat["CG", "mesh"] / min(lat["CG", "h3"], lat["CG", "h5"]) > 1.1
    assert lat["MG", "mesh"] / lat["MG", "h15"] > 1.03
    assert lat["FT", "mesh"] / min(
        lat["FT", n] for n in ("h3", "h5", "h15")
    ) > 1.2
    for name in ("h3", "h5", "h15"):
        assert lat["LU", "mesh"] / lat["LU", name] == pytest.approx(1.0, abs=0.1)
