"""Table VI — WDM-based photonic vs HyPPI all-optical routers.

Regenerates the router comparison (control energy, loss range, area) and
the optimal port assignment the paper applies to tame the HyPPI router's
wide loss range under X-Y routing.
"""

import pytest

from repro.bench import benchmark_spec
from repro.optical import (
    HYPPI_ROUTER,
    PHOTONIC_ROUTER,
    optimal_port_assignment,
)
from repro.util import format_table

PAPER = {
    "photonic": {"control": 68.2, "loss": (0.39, 1.5), "area": 480_000.0},
    "hyppi": {"control": 3.73, "loss": (0.32, 9.1), "area": 500.0},
}


@benchmark_spec("table6_routers", points=2, tags=("table", "smoke"))
def compute_table6() -> dict:
    """Control energy, loss range, area, E[loss|XY] for both routers."""
    out = {}
    for name, router in (("photonic", PHOTONIC_ROUTER), ("hyppi", HYPPI_ROUTER)):
        lo, hi = router.loss_range_db()
        _, expected = optimal_port_assignment(router)
        out[name] = {
            "control": router.control_energy_fj_per_bit(),
            "loss": (lo, hi),
            "area": router.area_um2(),
            "expected_loss": expected,
        }
    return out


def test_table6_routers(run_bench, save_result):
    results = run_bench("table6_routers")
    rows = []
    for name in ("photonic", "hyppi"):
        r, p = results[name], PAPER[name]
        rows.append(
            [
                name,
                r["control"],
                p["control"],
                f"{r['loss'][0]:.2f}-{r['loss'][1]:.2f}",
                f"{p['loss'][0]}-{p['loss'][1]}",
                r["area"],
                p["area"],
                r["expected_loss"],
            ]
        )
    save_result(
        "table6_routers",
        format_table(
            ["router", "control (fJ/bit)", "paper", "loss range (dB)",
             "paper", "area (um2)", "paper", "E[loss|XY] (dB)"],
            rows,
            title="Table VI — all-optical router comparison",
        ),
    )

    for name in ("photonic", "hyppi"):
        r, p = results[name], PAPER[name]
        assert r["control"] == pytest.approx(p["control"], rel=0.07)
        assert r["loss"][0] == pytest.approx(p["loss"][0], abs=0.02)
        assert r["loss"][1] == pytest.approx(p["loss"][1], rel=0.1)
        assert r["area"] == pytest.approx(p["area"], rel=0.05)
    # The optimal assignment keeps the HyPPI router's *used* loss well
    # below its worst case — the paper's justification for the design.
    assert results["hyppi"]["expected_loss"] < 2.0
