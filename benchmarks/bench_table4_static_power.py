"""Table IV — total NoC static power, electronic base mesh + express links.

Regenerates the static-power grid for express technologies x hop counts,
next to the paper's values. Calibration anchors: the 1.53 W base mesh and
the ~1.5 W photonic-express adder (DESIGN.md section 5).
"""

import pytest

from repro.analysis import network_static_power_w
from repro.bench import benchmark_spec
from repro.tech import Technology
from repro.topology import build_express_mesh, build_mesh
from repro.util import format_table

PAPER = {
    (Technology.ELECTRONIC, 3): 1.532,
    (Technology.ELECTRONIC, 5): 1.533,
    (Technology.ELECTRONIC, 15): 1.547,
    (Technology.PHOTONIC, 3): 3.076,
    (Technology.PHOTONIC, 5): 2.458,
    (Technology.PHOTONIC, 15): 1.839,
    (Technology.HYPPI, 3): 1.545,
    (Technology.HYPPI, 5): 1.539,
    (Technology.HYPPI, 15): 1.533,
}
PAPER_BASE = 1.53


@benchmark_spec("table4_static_power", points=10, tags=("table", "smoke"))
def compute_static_power_grid() -> dict:
    """Static power for the base mesh and every express tech x hops point."""
    grid = {"base": network_static_power_w(build_mesh())}
    for (tech, hops) in PAPER:
        topo = build_express_mesh(hops=hops, express_technology=tech)
        grid[(tech, hops)] = network_static_power_w(topo)
    return grid


def test_table4_static_power(run_bench, save_result):
    grid = run_bench("table4_static_power")
    rows = [["base electronic mesh", "-", grid["base"], PAPER_BASE]]
    for tech in (Technology.ELECTRONIC, Technology.PHOTONIC, Technology.HYPPI):
        for hops in (3, 5, 15):
            rows.append(
                [tech.value, hops, grid[(tech, hops)], PAPER[(tech, hops)]]
            )
    save_result(
        "table4_static_power",
        format_table(
            ["express technology", "hops", "static power (W)", "paper (W)"],
            rows,
            title="Table IV — total NoC static power",
        ),
    )

    # Anchor: base mesh within 3% of the paper.
    assert grid["base"] == pytest.approx(PAPER_BASE, rel=0.03)
    # Shape: photonic express dominates and decreases with hops; HyPPI and
    # electronic stay within a few percent of the base mesh.
    assert grid[(Technology.PHOTONIC, 3)] > grid[(Technology.PHOTONIC, 5)]
    assert grid[(Technology.PHOTONIC, 5)] > grid[(Technology.PHOTONIC, 15)]
    assert grid[(Technology.PHOTONIC, 3)] > 1.8 * grid["base"]
    for hops in (3, 5, 15):
        assert grid[(Technology.HYPPI, hops)] < 1.06 * grid["base"]
        assert grid[(Technology.ELECTRONIC, hops)] < 1.10 * grid["base"]
