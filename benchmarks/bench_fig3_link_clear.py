"""Fig. 3 — CLEAR figure of merit for point-to-point links vs length.

Regenerates the link-level comparison of Electronic / Photonic / Plasmonic
/ HyPPI across 1 µm - 5 cm, in both rate conventions (Table I, †):
``device`` (bare device rates, the paper's Fig. 3) and ``serdes``
(50 Gb/s-capped, the system-level convention). Prints the log-log curves
and the technology hand-off points.
"""

import numpy as np

from repro.bench import benchmark_spec
from repro.core import find_crossover_m, sweep_link_clear
from repro.tech import (
    CapabilityMode,
    ElectronicLinkModel,
    HyPPILinkModel,
    PhotonicLinkModel,
    PlasmonicLinkModel,
    Technology,
)
from repro.util import ascii_xy_plot, format_table

MODELS = {
    Technology.ELECTRONIC: ElectronicLinkModel(),
    Technology.PHOTONIC: PhotonicLinkModel(),
    Technology.PLASMONIC: PlasmonicLinkModel(),
    Technology.HYPPI: HyPPILinkModel(),
}

LENGTHS = np.logspace(-6, np.log10(0.05), 60)

#: Plot range for pure plasmonics: beyond ~1 mm its 440 dB/cm loss drives
#: CLEAR through dozens of decades, which would compress every other curve
#: into the top rows of the log-log plot. Tables keep the full sweep.
PLASMONIC_PLOT_LENGTHS = np.logspace(-6, -3, 40)


def _sweep_all(mode: CapabilityMode):
    return {
        tech.value: sweep_link_clear(
            model,
            PLASMONIC_PLOT_LENGTHS
            if tech is Technology.PLASMONIC
            else LENGTHS,
            mode=mode,
        )
        for tech, model in MODELS.items()
    }


@benchmark_spec("fig3_device_sweep", points=4 * 60, tags=("figure", "smoke"))
def sweep_device_mode():
    """CLEAR-vs-length sweep of all four technologies at device rates."""
    return _sweep_all(CapabilityMode.DEVICE)


@benchmark_spec("fig3_serdes_sweep", points=4 * 60, tags=("figure", "smoke"))
def sweep_serdes_mode():
    """CLEAR-vs-length sweep at SERDES-capped (50 Gb/s) rates."""
    return _sweep_all(CapabilityMode.SERDES)


@benchmark_spec("fig3_crossovers", points=2, tags=("figure", "smoke"))
def compute_crossovers():
    """Technology hand-off lengths (electronic -> HyPPI / photonic)."""
    e = MODELS[Technology.ELECTRONIC]
    return {
        "electronic->hyppi": find_crossover_m(
            e, MODELS[Technology.HYPPI], 1e-6, 10e-3
        ),
        "electronic->photonic": find_crossover_m(
            e, MODELS[Technology.PHOTONIC], 1e-6, 50e-3
        ),
    }


def test_fig3_device_mode(run_bench, save_result):
    sweeps = run_bench("fig3_device_sweep")
    plot = ascii_xy_plot(
        {name: (s.lengths_m, s.clear) for name, s in sweeps.items()},
        logx=True,
        logy=True,
        title="Fig. 3 — link CLEAR vs length (device rates, log-log)",
    )
    rows = []
    for name, s in sweeps.items():
        n = len(s.lengths_m)
        for idx in (0, n // 3, 2 * n // 3, n - 1):
            rows.append([name, s.lengths_m[idx] * 1e3, s.clear[idx]])
    table = format_table(
        ["technology", "length (mm)", "CLEAR"],
        rows,
        title="Fig. 3 samples",
    )
    save_result("fig3_link_clear_device", plot + "\n\n" + table)

    # Paper claims: electronics best at short range; HyPPI best at
    # inter-core (1 mm) distances; photonics beats electronics by 20 mm.
    def at(name, length):
        s = sweeps[name]
        return float(np.interp(length, s.lengths_m, s.clear))

    assert at("electronic", 5e-6) == max(at(n, 5e-6) for n in sweeps)
    assert at("hyppi", 1e-3) == max(at(n, 1e-3) for n in sweeps)
    assert at("photonic", 20e-3) > at("electronic", 20e-3)


def test_fig3_crossovers(run_bench, save_result):
    points = run_bench("fig3_crossovers")
    rows = [[k, "-" if v is None else v * 1e3] for k, v in points.items()]
    save_result(
        "fig3_crossovers",
        format_table(
            ["hand-off", "length (mm)"], rows, title="Fig. 3 crossover points"
        ),
    )
    assert points["electronic->hyppi"] is not None
    assert points["electronic->hyppi"] < 1e-3  # before the 1 mm core spacing
    assert points["electronic->photonic"] is not None
    # Photonics takes over from electronics later than HyPPI does.
    assert points["electronic->photonic"] > points["electronic->hyppi"]


def test_fig3_serdes_mode(run_bench, save_result):
    sweeps = run_bench("fig3_serdes_sweep")
    plot = ascii_xy_plot(
        {name: (s.lengths_m, s.clear) for name, s in sweeps.items()},
        logx=True,
        logy=True,
        title="Fig. 3 variant — link CLEAR, SERDES-limited rates",
    )
    save_result("fig3_link_clear_serdes", plot)

    # With rates equalized at 50 Gb/s, plasmonics wins over the other
    # *optical* options at micrometre scale (its natural niche).
    def at(name, length):
        s = sweeps[name]
        return float(np.interp(length, s.lengths_m, s.clear))

    assert at("plasmonic", 5e-6) > at("hyppi", 5e-6)
    assert at("plasmonic", 5e-6) > at("photonic", 5e-6)
    # And still collapses by 1 mm.
    assert at("plasmonic", 1e-3) < 1e-3 * at("plasmonic", 5e-6)
