"""The canonical ``BENCH_<name>.json`` record schema (v1).

One schema for every benchmark in the repo, so perf trajectories are
diffable across commits and machines:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "name": "simulator_run",
      "quick": false,
      "warmup": 1,
      "repeats": 5,
      "times_ns": [1200345, ...],
      "median_ns": 1200345,
      "mean_ns": 1201000.5,
      "stdev_ns": 4321.0,
      "min_ns": 1199000,
      "points": 2000,
      "points_per_sec": 1665.3,
      "tags": ["simulation"],
      "environment": {"python": "3.12.1", "cpu_count": 8, "git_sha": "..."}
    }

``points``/``points_per_sec`` are ``null`` for benchmarks without a
throughput denominator. Suite documents (``repro.bench/v1-suite``) bundle
many records with one shared environment block.
"""

from __future__ import annotations

from typing import Any

from repro.bench.runner import BenchResult

__all__ = [
    "SCHEMA",
    "SUITE_SCHEMA",
    "record_from_result",
    "validate_record",
    "validate_suite",
]

SCHEMA = "repro.bench/v1"
SUITE_SCHEMA = "repro.bench/v1-suite"

#: record key -> allowed types (bool before int: bool is an int subclass).
_FIELDS: dict[str, tuple[type, ...]] = {
    "schema": (str,),
    "name": (str,),
    "quick": (bool,),
    "warmup": (int,),
    "repeats": (int,),
    "times_ns": (list,),
    "median_ns": (int,),
    "mean_ns": (int, float),
    "stdev_ns": (int, float),
    "min_ns": (int,),
    "points": (int, type(None)),
    "points_per_sec": (int, float, type(None)),
    "tags": (list,),
}


def record_from_result(
    result: BenchResult, *, quick: bool, tags: tuple[str, ...] = ()
) -> dict[str, Any]:
    """Serialize one run to the canonical record (environment excluded —
    the suite writer attaches it once per document)."""
    return {
        "schema": SCHEMA,
        "name": result.name,
        "quick": quick,
        "warmup": result.warmup,
        "repeats": result.repeats,
        "times_ns": list(result.times_ns),
        "median_ns": result.median_ns,
        "mean_ns": result.mean_ns,
        "stdev_ns": result.stdev_ns,
        "min_ns": result.min_ns,
        "points": result.points,
        "points_per_sec": result.points_per_sec,
        "tags": list(tags),
    }


def validate_record(record: Any) -> dict[str, Any]:
    """Check one record against the v1 schema; returns it for chaining.

    Raises:
        ValueError: on any structural mismatch, naming the offending key —
            a corrupted perf baseline must fail loudly, not compare as 0ns.
    """
    if not isinstance(record, dict):
        raise ValueError(f"bench record must be an object, got {type(record).__name__}")
    if record.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported bench schema {record.get('schema')!r} (expected {SCHEMA!r})"
        )
    for key, types in _FIELDS.items():
        if key not in record:
            raise ValueError(f"bench record missing key {key!r}")
        value = record[key]
        if bool not in types and isinstance(value, bool):
            raise ValueError(f"bench record key {key!r} must not be a bool")
        if not isinstance(value, types):
            raise ValueError(
                f"bench record key {key!r} has type {type(value).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )
    times = record["times_ns"]
    if not times or not all(isinstance(t, int) and t >= 0 for t in times):
        raise ValueError("times_ns must be a non-empty list of non-negative ints")
    if record["repeats"] != len(times):
        raise ValueError(
            f"repeats ({record['repeats']}) != len(times_ns) ({len(times)})"
        )
    if record["median_ns"] < 0 or record["min_ns"] < 0:
        raise ValueError("negative timing aggregate")
    if not all(isinstance(t, str) for t in record["tags"]):
        raise ValueError("tags must be strings")
    return record


def validate_suite(doc: Any) -> dict[str, Any]:
    """Check a suite document; returns it for chaining."""
    if not isinstance(doc, dict):
        raise ValueError(f"suite must be an object, got {type(doc).__name__}")
    if doc.get("schema") != SUITE_SCHEMA:
        raise ValueError(
            f"unsupported suite schema {doc.get('schema')!r} "
            f"(expected {SUITE_SCHEMA!r})"
        )
    if not isinstance(doc.get("environment"), dict):
        raise ValueError("suite missing environment object")
    results = doc.get("results")
    if not isinstance(results, list):
        raise ValueError("suite missing results list")
    for record in results:
        validate_record(record)
    names = [r["name"] for r in results]
    if len(names) != len(set(names)):
        raise ValueError(f"suite has duplicate benchmark names: {sorted(names)}")
    return doc
