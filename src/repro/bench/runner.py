"""Timing engine: run one :class:`~repro.bench.spec.Benchmark`.

``perf_counter_ns`` end-to-end: warmup iterations (untimed, also used as
the calibration probe), an auto-calibrated repeat count, then one
``BenchResult`` carrying the raw per-repeat samples, robust aggregates
(median/mean/stdev/min) and the points-per-second throughput. The runner
is deliberately free of I/O — persistence is :mod:`repro.bench.suite`'s
job — so tests can time payloads and still assert on their return values.
"""

from __future__ import annotations

import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.bench.spec import QUICK_POLICY, Benchmark, RepeatPolicy

__all__ = ["BenchResult", "BenchRunner", "environment_fingerprint"]


def environment_fingerprint() -> dict[str, object]:
    """Where a record was measured: enough to judge comparability.

    Fields are stable identifiers only (no timestamps): records measured
    in identical environments fingerprint identically.
    """
    import numpy

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return {
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": numpy.__version__,
        "git_sha": sha or "unknown",
    }


@dataclass(frozen=True)
class BenchResult:
    """One benchmark execution: samples, aggregates, and the last payload
    return value (``value``, for correctness assertions in tests)."""

    name: str
    times_ns: tuple[int, ...]
    warmup: int
    points: int | None
    value: object = field(repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not self.times_ns:
            raise ValueError("benchmark produced no samples")

    @property
    def repeats(self) -> int:
        return len(self.times_ns)

    @property
    def median_ns(self) -> int:
        return int(statistics.median(self.times_ns))

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.times_ns)

    @property
    def stdev_ns(self) -> float:
        """Sample stdev (0.0 with a single repeat)."""
        if len(self.times_ns) < 2:
            return 0.0
        return statistics.stdev(self.times_ns)

    @property
    def min_ns(self) -> int:
        return min(self.times_ns)

    @property
    def points_per_sec(self) -> float | None:
        """Throughput at the median sample (None if points undeclared)."""
        if self.points is None:
            return None
        return self.points / (self.median_ns / 1e9)


class BenchRunner:
    """Times benchmarks under their repeat policy (or the quick policy)."""

    def __init__(self, *, quick: bool = False) -> None:
        self.quick = quick

    def policy_for(self, bench: Benchmark) -> RepeatPolicy:
        """Effective policy: quick mode overrides per-spec calibration."""
        return QUICK_POLICY if self.quick else bench.policy

    def run(self, bench: Benchmark) -> BenchResult:
        """Execute ``bench``: setup, warmup, calibrate, measure."""
        policy = self.policy_for(bench)
        args = () if bench.setup is None else (bench.setup(),)

        estimate_ns = 0
        for _ in range(policy.warmup):
            t0 = time.perf_counter_ns()
            bench.payload(*args)
            estimate_ns = time.perf_counter_ns() - t0

        if policy.warmup == 0 or estimate_ns == 0:
            # No warmup to calibrate from: probe once, and count the probe
            # as the first timed sample so quick mode stays single-run.
            t0 = time.perf_counter_ns()
            value = bench.payload(*args)
            estimate_ns = time.perf_counter_ns() - t0
            samples = [estimate_ns]
        else:
            value = None
            samples = []

        repeats = policy.calibrate(estimate_ns)
        while len(samples) < repeats:
            t0 = time.perf_counter_ns()
            value = bench.payload(*args)
            samples.append(time.perf_counter_ns() - t0)

        return BenchResult(
            name=bench.name,
            times_ns=tuple(samples),
            warmup=policy.warmup,
            points=bench.resolve_points(value),
            value=value,
        )
