"""Benchmark specifications and the process-wide registry.

A :class:`Benchmark` declares *what* to measure — an optional ``setup``
building fixture state, a ``payload`` that is the timed region, and how to
convert the payload's return value into a throughput denominator — while
the repeat policy declares *how long* to measure (warmup iterations plus
auto-calibration toward a minimum total runtime). Timing itself lives in
:mod:`repro.bench.runner`; persistence and comparison in
:mod:`repro.bench.suite`.

Benchmark modules register specs with the :func:`benchmark_spec`
decorator; the CLI and the pytest fixtures both look them up by name in
the shared registry.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

__all__ = [
    "Benchmark",
    "RepeatPolicy",
    "HEAVY_POLICY",
    "QUICK_POLICY",
    "benchmark_spec",
    "clear_registry",
    "get_benchmark",
    "register",
    "registered_benchmarks",
]

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]*$")


@dataclass(frozen=True)
class RepeatPolicy:
    """How many times to run a payload and how to auto-calibrate.

    The runner always executes ``warmup`` untimed iterations, then picks a
    repeat count ``r`` with ``min_repeats <= r <= max_repeats`` such that
    the *estimated* total timed runtime reaches ``min_runtime_s`` (using
    the last warmup — or one probe iteration — as the estimate). Slow
    payloads therefore run ``min_repeats`` times; microbenchmarks run
    enough repeats for a stable median.
    """

    warmup: int = 1
    min_repeats: int = 3
    max_repeats: int = 50
    min_runtime_s: float = 0.5

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.min_repeats < 1:
            raise ValueError(f"min_repeats must be >= 1, got {self.min_repeats}")
        if self.max_repeats < self.min_repeats:
            raise ValueError(
                f"max_repeats ({self.max_repeats}) < min_repeats ({self.min_repeats})"
            )
        if self.min_runtime_s < 0:
            raise ValueError(f"min_runtime_s must be >= 0, got {self.min_runtime_s}")

    def calibrate(self, estimate_ns: int) -> int:
        """Repeat count for a payload estimated at ``estimate_ns`` per run."""
        if estimate_ns <= 0:
            return self.max_repeats
        wanted = int(self.min_runtime_s * 1e9 // estimate_ns) + 1
        return max(self.min_repeats, min(self.max_repeats, wanted))


#: Policy for smoke runs (CI, pytest): one timed iteration, no calibration.
QUICK_POLICY = RepeatPolicy(warmup=0, min_repeats=1, max_repeats=1, min_runtime_s=0.0)

#: Policy for multi-second simulation payloads: no warmup (the probe run
#: counts as the first sample), at most a handful of repeats.
HEAVY_POLICY = RepeatPolicy(warmup=0, min_repeats=1, max_repeats=3, min_runtime_s=2.0)


@dataclass(frozen=True)
class Benchmark:
    """One named, timeable workload.

    ``payload`` is the timed region. If ``setup`` is given, it runs once,
    untimed, and its return value is passed to every payload invocation —
    fixture construction (topologies, traces) stays out of the
    measurement. ``points`` turns the payload result into a throughput
    denominator: an ``int`` for a fixed per-run quantum, or a callable on
    the payload's return value (e.g. ``len``); ``None`` disables the
    points-per-second metric.
    """

    name: str
    payload: Callable[..., object]
    setup: Callable[[], object] | None = None
    points: int | Callable[[object], int] | None = None
    policy: RepeatPolicy = RepeatPolicy()
    tags: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"benchmark name must be [a-z0-9_.-] and start alphanumeric, "
                f"got {self.name!r}"
            )
        if isinstance(self.points, int) and self.points < 1:
            raise ValueError(f"points must be >= 1, got {self.points}")

    def resolve_points(self, result: object) -> int | None:
        """Throughput denominator for one payload run (None = no metric)."""
        if self.points is None:
            return None
        if callable(self.points):
            n = int(self.points(result))
        else:
            n = self.points
        if n < 1:
            raise ValueError(f"benchmark {self.name!r} resolved points {n} < 1")
        return n


_REGISTRY: dict[str, Benchmark] = {}


def register(bench: Benchmark) -> Benchmark:
    """Add ``bench`` to the registry (same-name re-registration replaces,
    so module reloads under pytest/importlib stay idempotent)."""
    _REGISTRY[bench.name] = bench
    return bench


def benchmark_spec(
    name: str,
    *,
    setup: Callable[[], object] | None = None,
    points: int | Callable[[object], int] | None = None,
    policy: RepeatPolicy = RepeatPolicy(),
    tags: Sequence[str] = (),
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Decorator: register the function as a benchmark payload.

    The decorated function is returned unchanged, so it stays directly
    callable from tests (assertions run on its result, untimed).
    """

    def wrap(fn: Callable[..., object]) -> Callable[..., object]:
        register(
            Benchmark(
                name=name,
                payload=fn,
                setup=setup,
                points=points,
                policy=policy,
                tags=tuple(tags),
                description=(fn.__doc__ or "").strip().splitlines()[0]
                if fn.__doc__
                else "",
            )
        )
        return fn

    return wrap


def registered_benchmarks(
    *, tags: Sequence[str] = (), names: Sequence[str] = ()
) -> list[Benchmark]:
    """Registered specs sorted by name, optionally filtered.

    ``tags`` keeps benchmarks carrying *all* given tags; ``names`` keeps
    exact names and raises on unknown ones (typos must not silently skip).
    """
    found = sorted(_REGISTRY.values(), key=lambda b: b.name)
    if names:
        unknown = sorted(set(names) - set(_REGISTRY))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {unknown}; registered: {sorted(_REGISTRY)}"
            )
        found = [b for b in found if b.name in set(names)]
    if tags:
        want = set(tags)
        found = [b for b in found if want <= set(b.tags)]
    return found


def get_benchmark(name: str) -> Benchmark:
    """Look up one spec by exact name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def clear_registry() -> None:
    """Drop all registrations (test isolation)."""
    _REGISTRY.clear()
