"""``repro.bench`` — the unified benchmarking harness.

One way to time anything in the repro: declare a
:class:`~repro.bench.spec.Benchmark` (setup + payload + repeat policy),
run it through the :class:`~repro.bench.runner.BenchRunner`
(``perf_counter_ns``, warmup, min-runtime auto-calibration), persist the
canonical ``BENCH_<name>.json`` record via
:class:`~repro.bench.suite.BenchSuite`, and gate regressions with
:func:`~repro.bench.suite.compare`. The ``repro bench`` CLI and the
``benchmarks/`` pytest suite are both thin clients of this package.
"""

from repro.bench.runner import BenchResult, BenchRunner, environment_fingerprint
from repro.bench.schema import (
    SCHEMA,
    SUITE_SCHEMA,
    record_from_result,
    validate_record,
    validate_suite,
)
from repro.bench.spec import (
    HEAVY_POLICY,
    QUICK_POLICY,
    Benchmark,
    RepeatPolicy,
    benchmark_spec,
    clear_registry,
    get_benchmark,
    register,
    registered_benchmarks,
)
from repro.bench.suite import BenchSuite, Comparison, Delta, compare, load_records
from repro.bench.discovery import discover, load_sibling

__all__ = [
    "SCHEMA",
    "SUITE_SCHEMA",
    "HEAVY_POLICY",
    "QUICK_POLICY",
    "Benchmark",
    "BenchResult",
    "BenchRunner",
    "BenchSuite",
    "Comparison",
    "Delta",
    "RepeatPolicy",
    "benchmark_spec",
    "clear_registry",
    "compare",
    "discover",
    "load_sibling",
    "environment_fingerprint",
    "get_benchmark",
    "load_records",
    "record_from_result",
    "register",
    "registered_benchmarks",
    "validate_record",
    "validate_suite",
]
