"""Load ``bench_*.py`` modules so their specs land in the registry.

Benchmark definitions live next to their pytest assertions in the
repository's ``benchmarks/`` directory (outside the installed package),
so the CLI imports them by file path. Import is registration: each module
decorates its payloads with :func:`~repro.bench.spec.benchmark_spec` at
import time. Modules are imported under a stable synthetic package name
(``repro_bench_defs.<stem>``) — re-discovering is idempotent thanks to
``sys.modules`` and replace-on-reregister semantics.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

__all__ = ["discover", "load_sibling"]

_MODULE_PREFIX = "repro_bench_defs"


def load_sibling(requester: str | pathlib.Path, stem: str):
    """Import a sibling benchmark module to share its fixtures.

    Resolves whichever loader got there first — pytest (plain ``stem``)
    or the CLI's path-based discovery (``repro_bench_defs.<stem>``) —
    and falls back to loading the file next to ``requester`` directly.
    Re-registration of the sibling's specs is safe (the registry
    replaces same-name entries).
    """
    for name in (f"{_MODULE_PREFIX}.{stem}", stem):
        module = sys.modules.get(name)
        if module is not None:
            return module
    path = pathlib.Path(requester).with_name(f"{stem}.py")
    spec = importlib.util.spec_from_file_location(f"{_MODULE_PREFIX}.{stem}", path)
    if spec is None or spec.loader is None:  # pragma: no cover
        raise ValueError(f"cannot load sibling benchmark module {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def discover(directory: str | pathlib.Path) -> list[str]:
    """Import every ``bench_*.py`` under ``directory``; returns module stems.

    Raises:
        ValueError: missing directory or a module that fails to import —
            a broken benchmark file must fail the run, not shrink it.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        raise ValueError(f"benchmark directory not found: {directory}")
    stems: list[str] = []
    for path in sorted(directory.glob("bench_*.py")):
        module_name = f"{_MODULE_PREFIX}.{path.stem}"
        if module_name not in sys.modules:
            spec = importlib.util.spec_from_file_location(module_name, path)
            if spec is None or spec.loader is None:  # pragma: no cover
                raise ValueError(f"cannot load benchmark module {path}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            try:
                spec.loader.exec_module(module)
            except Exception as exc:
                del sys.modules[module_name]
                raise ValueError(f"benchmark module {path} failed to import: {exc}")
        stems.append(path.stem)
    return stems
