"""Suite execution, persistence, and regression comparison.

:class:`BenchSuite` runs a set of specs through the
:class:`~repro.bench.runner.BenchRunner` and writes the canonical
artefacts — one ``BENCH_<name>.json`` per benchmark plus a bundled
``BENCH_SUITE.json`` — into a results directory. :func:`compare` is the
perf gate: given two recordings (suite or single-record files) it flags
every benchmark whose median slowed down by more than a threshold factor,
plus benchmarks that disappeared, and says whether the gate passes.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any

from repro.bench.runner import BenchResult, BenchRunner, environment_fingerprint
from repro.bench.schema import (
    SUITE_SCHEMA,
    record_from_result,
    validate_record,
    validate_suite,
)
from repro.bench.spec import Benchmark

__all__ = ["BenchSuite", "Comparison", "Delta", "compare", "load_records"]

SUITE_FILENAME = "BENCH_SUITE.json"


def _bench_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def _dump(path: pathlib.Path, doc: dict[str, Any]) -> None:
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


class BenchSuite:
    """Runs benchmarks and persists canonical records under one directory."""

    def __init__(
        self, results_dir: str | pathlib.Path, *, quick: bool = False
    ) -> None:
        self.results_dir = pathlib.Path(results_dir)
        self.runner = BenchRunner(quick=quick)
        self.environment = environment_fingerprint()

    def run_one(self, bench: Benchmark) -> BenchResult:
        """Time one spec and write its ``BENCH_<name>.json``."""
        result = self.runner.run(bench)
        record = record_from_result(result, quick=self.runner.quick, tags=bench.tags)
        record["environment"] = self.environment
        self.results_dir.mkdir(parents=True, exist_ok=True)
        _dump(self.results_dir / _bench_filename(bench.name), record)
        return result

    def run(self, benchmarks: list[Benchmark]) -> list[BenchResult]:
        """Time every spec, then bundle all records into the suite file."""
        results = [self.run_one(b) for b in benchmarks]
        self.write_suite(results, [b.tags for b in benchmarks])
        return results

    def write_suite(
        self, results: list[BenchResult], tags: list[tuple[str, ...]] | None = None
    ) -> pathlib.Path:
        """Write (and validate) the bundled ``BENCH_SUITE.json``."""
        tag_list = tags if tags is not None else [()] * len(results)
        doc = {
            "schema": SUITE_SCHEMA,
            "environment": self.environment,
            "results": [
                record_from_result(res, quick=self.runner.quick, tags=t)
                for res, t in zip(results, tag_list)
            ],
        }
        validate_suite(doc)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.results_dir / SUITE_FILENAME
        _dump(path, doc)
        return path


def load_records(path: str | pathlib.Path) -> dict[str, dict[str, Any]]:
    """Load a recording — suite document or single record — as name->record.

    Raises:
        ValueError: unreadable JSON or schema violation.
    """
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(f"bench recording not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"bench recording {path} is not valid JSON: {exc}") from None
    if isinstance(doc, dict) and doc.get("schema") == SUITE_SCHEMA:
        validate_suite(doc)
        return {r["name"]: r for r in doc["results"]}
    validate_record(doc)
    return {doc["name"]: doc}


@dataclass(frozen=True)
class Delta:
    """One benchmark's old-vs-new movement."""

    name: str
    old_median_ns: int
    new_median_ns: int

    @property
    def ratio(self) -> float:
        """new/old median (>1 slower, <1 faster); inf when old was 0."""
        if self.old_median_ns == 0:
            return float("inf") if self.new_median_ns > 0 else 1.0
        return self.new_median_ns / self.old_median_ns

    @property
    def speedup(self) -> float:
        """old/new median (the human-friendly direction)."""
        if self.new_median_ns == 0:
            return float("inf") if self.old_median_ns > 0 else 1.0
        return self.old_median_ns / self.new_median_ns


@dataclass(frozen=True)
class Comparison:
    """Outcome of a perf gate between two recordings."""

    deltas: list[Delta]
    threshold: float
    missing: list[str]
    """Benchmarks present in the old recording but absent from the new one
    (a vanished benchmark would otherwise hide its own regression)."""
    added: list[str]

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.ratio > self.threshold]

    @property
    def improvements(self) -> list[Delta]:
        return [d for d in self.deltas if d.ratio < 1.0 / self.threshold]

    @property
    def ok(self) -> bool:
        """Gate verdict: no regressions and no vanished benchmarks."""
        return not self.regressions and not self.missing


def compare(
    old: str | pathlib.Path | dict[str, dict[str, Any]],
    new: str | pathlib.Path | dict[str, dict[str, Any]],
    *,
    threshold: float = 1.25,
) -> Comparison:
    """Compare two recordings; ``threshold`` is the allowed slowdown factor.

    Benchmarks only present in ``new`` are reported as ``added`` but never
    fail the gate (new coverage must not need a baseline refresh first).
    """
    if threshold < 1.0:
        raise ValueError(f"threshold must be >= 1.0, got {threshold}")
    old_records = old if isinstance(old, dict) else load_records(old)
    new_records = new if isinstance(new, dict) else load_records(new)
    deltas = [
        Delta(
            name=name,
            old_median_ns=old_records[name]["median_ns"],
            new_median_ns=new_records[name]["median_ns"],
        )
        for name in sorted(set(old_records) & set(new_records))
    ]
    return Comparison(
        deltas=deltas,
        threshold=threshold,
        missing=sorted(set(old_records) - set(new_records)),
        added=sorted(set(new_records) - set(old_records)),
    )
