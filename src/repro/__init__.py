"""repro — reproduction of "HyPPI NoC: Bringing Hybrid Plasmonics to an
Opto-Electronic Network-on-Chip" (Narayana et al., ICPP 2017).

Subpackages:

* :mod:`repro.tech` — Table I device parameters and per-technology link
  physics (electronic, photonic, plasmonic, HyPPI).
* :mod:`repro.core` — the CLEAR figure of merit (link and network level)
  and the hybrid-NoC design-space exploration.
* :mod:`repro.dsent` — modified-DSENT power/area substrate at 11 nm.
* :mod:`repro.topology` — mesh / express-mesh topologies + oblivious routing.
* :mod:`repro.traffic` — Soteriou statistical traffic, classic patterns,
  synthetic NPB (FT/CG/MG/LU) traces.
* :mod:`repro.analysis` — analytical flows, utilization (R), latency,
  power/energy, network CLEAR.
* :mod:`repro.simulation` — cycle-accurate flit-level NoC simulator.
* :mod:`repro.optical` — all-optical routers, path losses, Fig. 8
  projections.
* :mod:`repro.experiments` — declarative scenarios, the serial /
  process-pool runner and the evaluation cache behind every sweep.
* :mod:`repro.obs` — observability for the *stack itself*: structured
  logging, process metrics, span tracing and engine phase profiling
  (distinct from :mod:`repro.telemetry`, which observes the simulated
  network).
* :mod:`repro.service` — the engine as a long-running HTTP/JSON job
  service with checkpointed resume and versioned npz releases.
* :mod:`repro.api` — the stable, flat public facade over all of the
  above; external callers should import from here.
"""

from repro import (
    analysis,
    api,
    core,
    dsent,
    experiments,
    obs,
    optical,
    service,
    simulation,
    tech,
    topology,
    traffic,
    util,
)

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "api",
    "core",
    "dsent",
    "experiments",
    "obs",
    "optical",
    "service",
    "simulation",
    "tech",
    "topology",
    "traffic",
    "util",
    "__version__",
]
