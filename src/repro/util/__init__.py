"""Shared utilities: units, deterministic RNG, sweeps, ASCII tables."""

from repro.util import units
from repro.util.rng import derive_seed, ensure_rng, spawn_child
from repro.util.sweep import grid, lin_space, log_space
from repro.util.tables import ascii_bar_chart, ascii_xy_plot, format_series, format_table

__all__ = [
    "units",
    "derive_seed",
    "ensure_rng",
    "spawn_child",
    "grid",
    "lin_space",
    "log_space",
    "ascii_bar_chart",
    "ascii_xy_plot",
    "format_series",
    "format_table",
]
