"""Parameter-sweep helpers for design-space exploration and benchmarks."""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

import numpy as np

__all__ = ["grid", "log_space", "lin_space"]


def grid(axes: Mapping[str, Sequence[Any]]) -> Iterator[dict[str, Any]]:
    """Yield the Cartesian product of named axes as dictionaries.

    This is the enumeration primitive behind the experiment engine's
    scenario families (:mod:`repro.experiments.registry`): an axes
    mapping *is* a declarative sweep, and each yielded dictionary names
    one scenario's parameters.

    >>> list(grid({"a": [1, 2], "b": ["x"]}))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, combo))


def log_space(lo: float, hi: float, n: int) -> np.ndarray:
    """``n`` log-spaced points from ``lo`` to ``hi`` inclusive (both > 0)."""
    if lo <= 0 or hi <= 0:
        raise ValueError(f"log_space bounds must be > 0, got ({lo}, {hi})")
    if n < 2:
        raise ValueError(f"need at least 2 points, got {n}")
    return np.logspace(np.log10(lo), np.log10(hi), n)


def lin_space(lo: float, hi: float, n: int) -> np.ndarray:
    """``n`` linearly spaced points from ``lo`` to ``hi`` inclusive."""
    if n < 2:
        raise ValueError(f"need at least 2 points, got {n}")
    return np.linspace(lo, hi, n)
