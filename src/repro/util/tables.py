"""ASCII rendering of result tables and simple figures.

Every benchmark in ``benchmarks/`` regenerates one of the paper's tables or
figures; these helpers render them as monospace text so the reproduction can
be compared against the paper without a plotting stack.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series", "ascii_bar_chart", "ascii_xy_plot"]


def _cell(value: object, fmt: str) -> str:
    if isinstance(value, float):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as a boxed monospace table.

    Floats are formatted with ``float_fmt``; all other values with ``str``.
    """
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(sep: str = "-", junction: str = "+") -> str:
        return junction + junction.join(sep * (w + 2) for w in widths) + junction

    def render(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line())
    out.append(render(headers))
    out.append(line("="))
    for row in str_rows:
        out.append(render(row))
    out.append(line())
    return "\n".join(out)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], *, float_fmt: str = ".4g"
) -> str:
    """Render a named (x, y) series as two aligned columns."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    return format_table(["x", name], list(zip(xs, ys)), float_fmt=float_fmt)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    float_fmt: str = ".4g",
) -> str:
    """Render a horizontal bar chart, bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError(f"labels/values mismatch: {len(labels)} vs {len(values)}")
    if not values:
        return title or ""
    vmax = max(values)
    label_w = max(len(s) for s in labels)
    out: list[str] = []
    if title:
        out.append(title)
    for label, value in zip(labels, values):
        n = 0 if vmax <= 0 else int(round(width * value / vmax))
        out.append(f"{label.ljust(label_w)} | {'#' * n} {format(value, float_fmt)}")
    return "\n".join(out)


def ascii_xy_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
) -> str:
    """Render multiple (x, y) series on a shared character grid.

    Each series is drawn with a distinct marker (its name's first letter).
    Intended for eyeballing crossovers (e.g. Fig. 3's CLEAR-vs-length plot),
    not for precision reading.
    """
    # Distinct markers even when names share a first letter (e.g.
    # "photonic" vs "plasmonic"): first unused character of the name,
    # falling back to digits.
    markers: dict[str, str] = {}
    used: set[str] = set()
    for name in series:
        marker = next(
            (c for c in (name or "*") if c not in used and not c.isspace()),
            None,
        )
        if marker is None:
            marker = next(d for d in "0123456789*" if d not in used)
        markers[name] = marker
        used.add(marker)

    pts: list[tuple[float, float, str]] = []
    for name, (xs, ys) in series.items():
        marker = markers[name]
        for x, y in zip(xs, ys):
            if logx and x <= 0 or logy and y <= 0:
                continue
            px = math.log10(x) if logx else x
            py = math.log10(y) if logy else y
            pts.append((px, py, marker))
    if not pts:
        return title or ""
    xmin = min(p[0] for p in pts)
    xmax = max(p[0] for p in pts)
    ymin = min(p[1] for p in pts)
    ymax = max(p[1] for p in pts)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for px, py, marker in pts:
        col = min(width - 1, int((px - xmin) / xspan * (width - 1)))
        row = min(height - 1, int((py - ymin) / yspan * (height - 1)))
        grid[height - 1 - row][col] = marker
    out: list[str] = []
    if title:
        out.append(title)
    out.extend("|" + "".join(row) for row in grid)
    out.append("+" + "-" * width)
    legend = "  ".join(f"{markers[name]}={name}" for name in series)
    out.append(legend)
    return "\n".join(out)
