"""Unit helpers used throughout the HyPPI NoC reproduction.

The paper mixes engineering units freely (dB, fJ/bit, Gb/s, µm², mm², W).
Internally every model works in SI base units (seconds, joules, metres,
bits/second, watts); these helpers convert at the boundaries and keep the
conversions auditable.

The only non-linear helpers are the decibel conversions; everything else is a
multiplicative constant, exposed both as a conversion function and as a module
constant so call sites can choose whichever reads better.
"""

from __future__ import annotations

import math

__all__ = [
    "PICO",
    "NANO",
    "MICRO",
    "MILLI",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "FEMTO",
    "SPEED_OF_LIGHT_M_S",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "um_to_m",
    "m_to_um",
    "mm_to_m",
    "m_to_mm",
    "cm_to_m",
    "um2_to_m2",
    "m2_to_um2",
    "m2_to_mm2",
    "mm2_to_m2",
    "gbps_to_bps",
    "bps_to_gbps",
    "fj_to_j",
    "j_to_fj",
    "pj_to_j",
    "j_to_pj",
    "ps_to_s",
    "s_to_ps",
    "ns_to_s",
    "s_to_ns",
    "ghz_to_hz",
    "hz_to_ghz",
    "db_per_cm_to_db_per_m",
]

FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

#: Vacuum speed of light, m/s. Group velocity in silicon waveguides is
#: ``SPEED_OF_LIGHT_M_S / group_index``.
SPEED_OF_LIGHT_M_S = 299_792_458.0


def db_to_linear(db: float) -> float:
    """Convert a power ratio in decibels to a linear ratio (>= 0)."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be > 0, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert optical power in dBm to watts (0 dBm == 1 mW)."""
    return MILLI * db_to_linear(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert optical power in watts to dBm.

    Raises:
        ValueError: if ``watts`` is not strictly positive.
    """
    if watts <= 0.0:
        raise ValueError(f"power must be > 0 W, got {watts!r}")
    return linear_to_db(watts / MILLI)


def um_to_m(um: float) -> float:
    """Micrometres to metres."""
    return um * MICRO


def m_to_um(m: float) -> float:
    """Metres to micrometres."""
    return m / MICRO


def mm_to_m(mm: float) -> float:
    """Millimetres to metres."""
    return mm * MILLI


def m_to_mm(m: float) -> float:
    """Metres to millimetres."""
    return m / MILLI


def cm_to_m(cm: float) -> float:
    """Centimetres to metres."""
    return cm * 1e-2


def um2_to_m2(um2: float) -> float:
    """Square micrometres to square metres."""
    return um2 * MICRO * MICRO


def m2_to_um2(m2: float) -> float:
    """Square metres to square micrometres."""
    return m2 / (MICRO * MICRO)


def m2_to_mm2(m2: float) -> float:
    """Square metres to square millimetres."""
    return m2 / (MILLI * MILLI)


def mm2_to_m2(mm2: float) -> float:
    """Square millimetres to square metres."""
    return mm2 * MILLI * MILLI


def gbps_to_bps(gbps: float) -> float:
    """Gigabits per second to bits per second."""
    return gbps * GIGA


def bps_to_gbps(bps: float) -> float:
    """Bits per second to gigabits per second."""
    return bps / GIGA


def fj_to_j(fj: float) -> float:
    """Femtojoules to joules."""
    return fj * FEMTO


def j_to_fj(j: float) -> float:
    """Joules to femtojoules."""
    return j / FEMTO


def pj_to_j(pj: float) -> float:
    """Picojoules to joules."""
    return pj * PICO


def j_to_pj(j: float) -> float:
    """Joules to picojoules."""
    return j / PICO


def ps_to_s(ps: float) -> float:
    """Picoseconds to seconds."""
    return ps * PICO


def s_to_ps(s: float) -> float:
    """Seconds to picoseconds."""
    return s / PICO


def ns_to_s(ns: float) -> float:
    """Nanoseconds to seconds."""
    return ns * NANO


def s_to_ns(s: float) -> float:
    """Seconds to nanoseconds."""
    return s / NANO


def ghz_to_hz(ghz: float) -> float:
    """Gigahertz to hertz."""
    return ghz * GIGA


def hz_to_ghz(hz: float) -> float:
    """Hertz to gigahertz."""
    return hz / GIGA


def db_per_cm_to_db_per_m(db_per_cm: float) -> float:
    """Waveguide propagation loss dB/cm to dB/m."""
    return db_per_cm * 100.0
