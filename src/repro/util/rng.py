"""Deterministic random-number helpers.

All stochastic components in the reproduction (synthetic traffic, trace
synthesis) accept either an integer seed or a pre-built generator; this module
centralizes the coercion so the whole pipeline is reproducible from a single
seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_child", "derive_seed"]

SeedLike = int | np.random.Generator | None


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a default-seeded generator (seed 0) rather than entropy
    from the OS: experiments must be reproducible by default.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a named sub-stream.

    Used when one experiment drives several stochastic components that must
    not perturb each other's draws when one of them changes its consumption.
    """
    if stream < 0:
        raise ValueError(f"stream index must be >= 0, got {stream}")
    seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng([int(seed), stream])


def derive_seed(base_seed: int, *keys: int) -> int:
    """Deterministic integer child seed for an indexed sub-experiment.

    Unlike drawing successive seeds from one shared generator, the result
    depends only on ``(base_seed, *keys)`` — point ``i`` of a sweep gets
    the same workload whether points run serially, in parallel, or alone.
    """
    if any(k < 0 for k in keys):
        raise ValueError(f"seed keys must be >= 0, got {keys}")
    state = np.random.SeedSequence([int(base_seed), *map(int, keys)])
    return int(state.generate_state(1, dtype=np.uint64)[0])
