"""Deterministic random-number helpers.

All stochastic components in the reproduction (synthetic traffic, trace
synthesis) accept either an integer seed or a pre-built generator; this module
centralizes the coercion so the whole pipeline is reproducible from a single
seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_child"]

SeedLike = int | np.random.Generator | None


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a default-seeded generator (seed 0) rather than entropy
    from the OS: experiments must be reproducible by default.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a named sub-stream.

    Used when one experiment drives several stochastic components that must
    not perturb each other's draws when one of them changes its consumption.
    """
    if stream < 0:
        raise ValueError(f"stream index must be >= 0, got {stream}")
    seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng([int(seed), stream])
