"""Stable public facade for driving the repro experiment engine.

Everything an external caller (scripts, notebooks, the benchmark suite,
the experiment service) needs lives here under one flat namespace, so
downstream code never reaches into submodule paths that are free to move
between releases:

* **describe** a design point — :class:`Scenario`, :class:`SimSpec`,
  :class:`TopologySpec`, :class:`TrafficSpec`, the named families
  (:func:`scenario_family`, :func:`paper_point`), and the stable
  content hash / JSON codec (:func:`scenario_hash`,
  :func:`scenario_to_json`, :func:`scenario_from_json`);
* **run** it — :class:`Runner` (serial / process pool, submit/poll via
  :class:`SweepHandle`), :func:`evaluate_scenario`,
  :func:`simulate_scenario`, the :func:`run_batch` convenience, and
  :class:`EvaluationCache` for cross-run reuse;
* **persist** results — the byte-deterministic npz archive primitives
  (:func:`write_npz_archive`, :func:`open_npz_archive`) plus the trace
  and telemetry stores built on them;
* **serve** it — :func:`serve` / :func:`make_server` boot the HTTP/JSON
  experiment service and :class:`ServiceClient` talks to one;
* **observe** the stack — :func:`span` tracing with
  :func:`enable_tracing` / :func:`export_trace`, the process-metrics
  snapshot (:func:`metrics_snapshot`), structured logging
  (:func:`setup_logging`), and per-phase engine profiling
  (:func:`profile_simulation` / :func:`render_profiles` /
  :class:`PhaseProfile`). Not to be confused with
  :func:`profile_scenario`, which samples the *simulated network's*
  telemetry rather than the stack's own performance. Sweep
  introspection rides on the same layer: the durable run ledger
  (:class:`RunLedger`, :func:`load_ledger`, :func:`replay_ledger`,
  :func:`export_ledger`), live progress/ETA tracking
  (:class:`ProgressTracker`, :func:`render_top`), and sweep-level
  profile aggregation (:func:`merge_profiles`, :class:`SweepProfile`,
  :func:`render_sweep_profile`);
* **operate** it — the telemetry pipeline: :class:`MetricsSampler`
  feeding a :class:`SeriesStore` (persisted via
  :func:`save_history_npz` / :func:`load_history_npz`), Prometheus
  text exposition (:func:`render_prometheus`), and declarative SLO
  alerting (:class:`SloRule`, :class:`SloEngine`,
  :func:`load_slo_rules`).

The deep modules stay importable (nothing here is a wrapper — every name
is a re-export), but this module is the compatibility surface: names
listed in ``__all__`` below are the ones the project promises to keep.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.experiments import (
    EvaluationCache,
    Runner,
    Scenario,
    ScenarioResult,
    SimSpec,
    SweepHandle,
    TopologySpec,
    TrafficSpec,
    evaluate_scenario,
    family_names,
    paper_point,
    register_family,
    scenario_family,
    scenario_from_json,
    scenario_hash,
    scenario_to_json,
    simulate_scenario,
)
from repro.obs import (
    MetricsSampler,
    PhaseProfile,
    ProgressTracker,
    RunLedger,
    SeriesStore,
    SloEngine,
    SloRule,
    SweepProfile,
    enable_tracing,
    export_ledger,
    export_trace,
    load_history_npz,
    load_ledger,
    load_slo_rules,
    merge_profiles,
    metrics_snapshot,
    profile_simulation,
    render_profiles,
    render_prometheus,
    render_sweep_profile,
    render_top,
    replay_ledger,
    save_history_npz,
    setup_logging,
    span,
)
from repro.service import ServiceClient, make_server, serve
from repro.telemetry import (
    load_telemetry_npz,
    profile_scenario,
    save_telemetry_npz,
)
from repro.workloads import (
    load_trace_npz,
    open_npz_archive,
    save_trace_npz,
    write_npz_archive,
)

__all__ = [
    "EvaluationCache",
    "MetricsSampler",
    "PhaseProfile",
    "ProgressTracker",
    "RunLedger",
    "Runner",
    "Scenario",
    "ScenarioResult",
    "SeriesStore",
    "ServiceClient",
    "SimSpec",
    "SloEngine",
    "SloRule",
    "SweepHandle",
    "SweepProfile",
    "TopologySpec",
    "TrafficSpec",
    "enable_tracing",
    "evaluate_scenario",
    "export_ledger",
    "export_trace",
    "family_names",
    "load_history_npz",
    "load_ledger",
    "load_slo_rules",
    "load_telemetry_npz",
    "load_trace_npz",
    "make_server",
    "merge_profiles",
    "metrics_snapshot",
    "open_npz_archive",
    "paper_point",
    "profile_scenario",
    "profile_simulation",
    "register_family",
    "render_profiles",
    "render_prometheus",
    "render_sweep_profile",
    "render_top",
    "replay_ledger",
    "run_batch",
    "save_history_npz",
    "save_telemetry_npz",
    "save_trace_npz",
    "scenario_family",
    "scenario_from_json",
    "scenario_hash",
    "scenario_to_json",
    "serve",
    "setup_logging",
    "simulate_scenario",
    "span",
    "write_npz_archive",
]


def run_batch(
    scenarios: Iterable[Scenario],
    *,
    jobs: int = 1,
    cache: EvaluationCache | None = None,
) -> list[ScenarioResult]:
    """Evaluate ``scenarios`` and return ordered results.

    The one-call entry point: builds a :class:`Runner` (serial for
    ``jobs=1``, a process pool otherwise — results are bit-identical
    either way) and runs the batch through it. Pass a shared
    :class:`EvaluationCache` to reuse evaluations across calls.
    """
    return Runner(jobs=jobs, cache=cache).run(list(scenarios))
