"""Workload specifications and the model registry.

A :class:`WorkloadSpec` names one workload — a temporal model (or
application skeleton), its destination traffic matrix, operating point
and seed — as a frozen, hashable, JSON-serializable record, mirroring how
:class:`~repro.experiments.spec.Scenario` treats design points. Because a
workload is *data*, the experiment engine can sweep it, the CLI can
generate it to a trace file, and the trace header can embed it as
provenance.

Two model families are addressable by name:

* **temporal models** (``bernoulli``, ``onoff``, ``pareto``,
  ``modulated``) — open-loop injection processes driving destinations
  drawn from a named traffic matrix (``uniform``, ``soteriou``,
  ``transpose``, ...). Matrix-generator keywords use a ``traffic_``
  prefix in ``params`` (e.g. ``traffic_p=0.05`` for the Soteriou model);
  ``hotspot_nodes`` / ``hotspot_fraction`` apply the hotspot overlay to
  any matrix.
* **application skeletons** (``stencil``, ``allreduce``,
  ``fft_transpose``, ``wavefront``) — phase-structured bulk-synchronous
  traces; ``injection_rate`` and the traffic matrix do not apply.

Register new models with :func:`register_temporal_model` /
:func:`register_skeleton` to make them addressable from the CLI and the
``"workload-saturation"`` scenario family.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.simulation.workload import synthetic_trace
from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.trace import Trace
from repro.workloads import skeletons as _skeletons
from repro.workloads import temporal as _temporal
from repro.workloads.temporal import hotspot_overlay

__all__ = [
    "SKELETONS",
    "TEMPORAL_MODELS",
    "WorkloadSpec",
    "build_traffic_matrix",
    "matrix_generator_names",
    "register_skeleton",
    "register_temporal_model",
    "workload_model_names",
]

#: Traffic-matrix generators a temporal workload may name; values are
#: ``(module, function, seeded)`` triples resolved lazily.
_MATRIX_GENERATORS: dict[str, tuple[str, str, bool]] = {
    "soteriou": ("repro.traffic.synthetic", "soteriou_traffic", True),
    "uniform": ("repro.traffic.synthetic", "uniform_traffic", False),
    "transpose": ("repro.traffic.synthetic", "transpose_traffic", False),
    "bit_complement": ("repro.traffic.synthetic", "bit_complement_traffic", False),
    "neighbor": ("repro.traffic.synthetic", "neighbor_traffic", False),
    "shuffle": ("repro.traffic.patterns", "shuffle_traffic", False),
    "bit_reverse": ("repro.traffic.patterns", "bit_reverse_traffic", False),
    "tornado": ("repro.traffic.patterns", "tornado_traffic", False),
    "hotspot": ("repro.traffic.patterns", "hotspot_traffic", False),
}

TEMPORAL_MODELS: dict[str, Callable[..., Trace]] = {}
SKELETONS: dict[str, Callable[..., Trace]] = {}

#: Spec-level param keys consumed by :meth:`WorkloadSpec.build` itself
#: (everything else is forwarded to the model / skeleton builder).
_OVERLAY_KEYS = ("hotspot_nodes", "hotspot_fraction")
_TRAFFIC_PREFIX = "traffic_"


def register_temporal_model(name: str) -> Callable[[Callable[..., Trace]], Callable[..., Trace]]:
    """Decorator: register an injection-process builder under ``name``.

    The builder signature is ``fn(traffic_matrix, *, injection_rate,
    cycles, packet_flits, seed, **params) -> Trace``.
    """

    def wrap(fn: Callable[..., Trace]) -> Callable[..., Trace]:
        if name in TEMPORAL_MODELS or name in SKELETONS:
            raise ValueError(f"workload model {name!r} already registered")
        TEMPORAL_MODELS[name] = fn
        return fn

    return wrap


def register_skeleton(name: str) -> Callable[[Callable[..., Trace]], Callable[..., Trace]]:
    """Decorator: register an application-skeleton builder under ``name``.

    The builder signature is ``fn(width, height, **params) -> Trace``.
    """

    def wrap(fn: Callable[..., Trace]) -> Callable[..., Trace]:
        if name in TEMPORAL_MODELS or name in SKELETONS:
            raise ValueError(f"workload model {name!r} already registered")
        SKELETONS[name] = fn
        return fn

    return wrap


def workload_model_names() -> list[str]:
    """All registered workload model names (temporal + skeletons), sorted."""
    return sorted((*TEMPORAL_MODELS, *SKELETONS))


def matrix_generator_names() -> list[str]:
    """All traffic-matrix generator names, sorted.

    The single source of truth for matrix generators — the experiment
    engine's :class:`~repro.experiments.spec.TrafficSpec` validates and
    builds against this registry too.
    """
    return sorted(_MATRIX_GENERATORS)


def build_traffic_matrix(
    generator: str,
    topo: Topology,
    *,
    injection_rate: float,
    seed: int = 0,
    **kwargs: Any,
) -> TrafficMatrix:
    """Build a named destination matrix for a temporal workload."""
    try:
        module, fn_name, seeded = _MATRIX_GENERATORS[generator]
    except KeyError:
        raise ValueError(
            f"unknown traffic generator {generator!r}; "
            f"one of {sorted(_MATRIX_GENERATORS)}"
        ) from None
    import importlib

    fn = getattr(importlib.import_module(module), fn_name)
    if seeded:
        kwargs["seed"] = seed
    return fn(topo, injection_rate=injection_rate, **kwargs)


def _hashable(value: Any) -> Any:
    """Recursively turn lists/tuples into tuples and mappings into sorted
    ``(key, value)`` tuples (deep, so nested structures like the mix
    model's ``components`` — whose per-component params may arrive as
    dicts — stay hashable)."""
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple((k, _hashable(v)) for k, v in sorted(value.items()))
    return value


def params_tuple(params: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Sorted, hashable ``((key, value), ...)`` view of keyword params.

    Sequence values are normalized to tuples — recursively, so nested
    CLI literals (e.g. ``hotspot_nodes=[0, 119]`` or the mix model's
    ``components=[["onoff", 0.5], ["bernoulli", 0.5]]``) stay hashable.
    Shared with :class:`repro.experiments.spec.TrafficSpec`.
    """
    return tuple((k, _hashable(v)) for k, v in sorted(params.items()))


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: model + traffic + operating point + seed."""

    model: str = "bernoulli"
    injection_rate: float = 0.1
    cycles: int = 1000
    packet_flits: int = 1
    seed: int = 0
    traffic: str = "uniform"
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.model not in TEMPORAL_MODELS and self.model not in SKELETONS:
            raise ValueError(
                f"unknown workload model {self.model!r}; "
                f"one of {workload_model_names()}"
            )
        if self.model in TEMPORAL_MODELS:
            if self.traffic not in _MATRIX_GENERATORS:
                raise ValueError(
                    f"unknown traffic generator {self.traffic!r}; "
                    f"one of {sorted(_MATRIX_GENERATORS)}"
                )
            if not 0 < self.injection_rate <= 1:
                raise ValueError(
                    f"injection rate must be in (0, 1], got {self.injection_rate}"
                )
            if self.cycles < 1:
                raise ValueError(f"cycles must be >= 1, got {self.cycles}")

    @classmethod
    def make(
        cls,
        model: str,
        *,
        injection_rate: float = 0.1,
        cycles: int = 1000,
        packet_flits: int = 1,
        seed: int = 0,
        traffic: str = "uniform",
        **params: Any,
    ) -> "WorkloadSpec":
        """Build a spec from keyword model parameters."""
        return cls(
            model=model,
            injection_rate=injection_rate,
            cycles=cycles,
            packet_flits=packet_flits,
            seed=seed,
            traffic=traffic,
            params=params_tuple(params),
        )

    @property
    def is_skeleton(self) -> bool:
        """True for phase-structured application skeletons."""
        return self.model in SKELETONS

    def split_params(self) -> tuple[dict[str, Any], dict[str, Any], dict[str, Any]]:
        """``(model_kwargs, traffic_kwargs, overlay_kwargs)`` views of params."""
        model_kwargs: dict[str, Any] = {}
        traffic_kwargs: dict[str, Any] = {}
        overlay_kwargs: dict[str, Any] = {}
        for key, value in self.params:
            if key in _OVERLAY_KEYS:
                overlay_kwargs[key] = value
            elif key.startswith(_TRAFFIC_PREFIX):
                traffic_kwargs[key[len(_TRAFFIC_PREFIX):]] = value
            else:
                model_kwargs[key] = value
        return model_kwargs, traffic_kwargs, overlay_kwargs

    def matrix(self, topo: Topology) -> TrafficMatrix:
        """The destination matrix (temporal models only), overlay applied."""
        if self.is_skeleton:
            raise ValueError(f"skeleton workload {self.model!r} has no matrix")
        _, traffic_kwargs, overlay_kwargs = self.split_params()
        tm = build_traffic_matrix(
            self.traffic,
            topo,
            injection_rate=self.injection_rate,
            seed=self.seed,
            **traffic_kwargs,
        )
        if overlay_kwargs:
            if "hotspot_nodes" not in overlay_kwargs:
                raise ValueError("hotspot_fraction needs hotspot_nodes")
            tm = hotspot_overlay(
                tm,
                hotspots=overlay_kwargs["hotspot_nodes"],
                fraction=overlay_kwargs.get("hotspot_fraction", 0.2),
            )
        return tm

    def build(self, topo: Topology) -> Trace:
        """Materialize the workload trace on ``topo``'s node grid."""
        model_kwargs, _, _ = self.split_params()
        if self.is_skeleton:
            return SKELETONS[self.model](topo.width, topo.height, **model_kwargs)
        return TEMPORAL_MODELS[self.model](
            self.matrix(topo),
            injection_rate=self.injection_rate,
            cycles=self.cycles,
            packet_flits=self.packet_flits,
            seed=self.seed,
            **model_kwargs,
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "injection_rate": self.injection_rate,
            "cycles": self.cycles,
            "packet_flits": self.packet_flits,
            "seed": self.seed,
            "traffic": self.traffic,
            "params": [[k, list(v) if isinstance(v, tuple) else v]
                       for k, v in self.params],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "WorkloadSpec":
        return cls.make(
            data["model"],
            injection_rate=data["injection_rate"],
            cycles=data["cycles"],
            packet_flits=data["packet_flits"],
            seed=data["seed"],
            traffic=data["traffic"],
            **dict(data["params"]),
        )


@register_temporal_model("bernoulli")
def _bernoulli(traffic: TrafficMatrix, **kwargs: Any) -> Trace:
    """Memoryless Bernoulli open loop (the paper's baseline process)."""
    return synthetic_trace(traffic, **kwargs)


register_temporal_model("onoff")(_temporal.onoff_trace)
register_temporal_model("pareto")(_temporal.pareto_onoff_trace)
register_temporal_model("modulated")(_temporal.modulated_trace)
register_temporal_model("mix")(_temporal.mix_trace)
register_skeleton("stencil")(_skeletons.stencil_trace)
register_skeleton("allreduce")(_skeletons.allreduce_trace)
register_skeleton("fft_transpose")(_skeletons.fft_transpose_trace)
register_skeleton("wavefront")(_skeletons.wavefront_trace)
