"""Trace statistics: burstiness, spatial load skew, phase profile.

Summarizes any :class:`~repro.traffic.trace.Trace` (or the raw columns of
a stored trace file) into the figures that distinguish workload shapes:

* **burstiness** — the index of dispersion of windowed flit counts
  (variance / mean over fixed windows). A memoryless Bernoulli process
  scores ~1; ON/OFF and heavy-tailed models score well above 1, and the
  score *grows* with window size for self-similar traffic.
* **node_load_cv** — coefficient of variation of per-source flit totals:
  0 for perfectly balanced injection, large when few nodes (or hotspot
  overlays) dominate.
* **phase profile** — the number of activity bursts separated by quiet
  gaps, recovering the bulk-synchronous phase count of skeleton/NPB
  traces (1 for open-loop synthetic traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.trace import Trace

__all__ = ["TraceStats", "stats_from_arrays", "trace_stats"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one packet trace."""

    n_nodes: int
    n_packets: int
    total_flits: int
    duration_cycles: int
    mean_rate: float
    """Mean offered load in flits/node/cycle over the trace duration."""
    peak_window_rate: float
    """Highest windowed offered load (flits/node/cycle)."""
    burstiness: float
    """Index of dispersion of windowed flit counts (Bernoulli ~ 1)."""
    node_load_cv: float
    """Coefficient of variation of per-source flit totals."""
    n_phases: int
    """Activity bursts separated by quiet gaps > ``gap`` cycles."""
    window: int
    """Window length (cycles) used for the rate/burstiness figures."""
    gap: int
    """Quiet-gap threshold (cycles) used for the phase profile."""

    def rows(self) -> list[list[object]]:
        """(metric, value) rows for table rendering."""
        return [
            ["nodes", self.n_nodes],
            ["packets", self.n_packets],
            ["flits", self.total_flits],
            ["duration (cycles)", self.duration_cycles],
            ["mean rate (flits/node/cycle)", round(self.mean_rate, 6)],
            ["peak windowed rate", round(self.peak_window_rate, 6)],
            [f"burstiness (window {self.window})", round(self.burstiness, 3)],
            ["node load CV", round(self.node_load_cv, 3)],
            [f"phases (gap > {self.gap})", self.n_phases],
        ]


def stats_from_arrays(
    n_nodes: int,
    time: np.ndarray,
    src: np.ndarray,
    size_flits: np.ndarray,
    *,
    window: int = 64,
    gap: int = 64,
) -> TraceStats:
    """Compute :class:`TraceStats` from packet columns (vectorized)."""
    if n_nodes < 2:
        raise ValueError(f"trace needs >= 2 nodes, got {n_nodes}")
    if window < 1:
        raise ValueError(f"window must be >= 1 cycle, got {window}")
    if gap < 1:
        raise ValueError(f"gap must be >= 1 cycle, got {gap}")
    time = np.asarray(time, dtype=np.int64)
    src = np.asarray(src, dtype=np.int64)
    size_flits = np.asarray(size_flits, dtype=np.int64)
    n_packets = int(time.shape[0])
    if n_packets == 0:
        return TraceStats(
            n_nodes, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0, window, gap
        )
    total_flits = int(size_flits.sum())
    duration = int(time.max()) + 1

    n_windows = -(-duration // window)
    window_flits = np.bincount(
        time // window, weights=size_flits, minlength=n_windows
    )
    # A trailing partial window would read as a spurious dip; score the
    # dispersion over complete windows only (unless none exists).
    full = window_flits[: duration // window] if duration >= window else window_flits
    mean_count = full.mean()
    burstiness = float(full.var() / mean_count) if mean_count > 0 else 0.0
    peak_window_rate = float(window_flits.max() / (window * n_nodes))

    node_flits = np.bincount(src, weights=size_flits, minlength=n_nodes)
    mean_load = node_flits.mean()
    node_load_cv = float(node_flits.std() / mean_load) if mean_load > 0 else 0.0

    # Injection times arrive sorted (Trace orders by time); stored columns
    # preserve that order, so consecutive diffs give the quiet gaps.
    times_sorted = time if np.all(np.diff(time) >= 0) else np.sort(time)
    n_phases = int(np.count_nonzero(np.diff(times_sorted) > gap)) + 1

    return TraceStats(
        n_nodes=n_nodes,
        n_packets=n_packets,
        total_flits=total_flits,
        duration_cycles=duration,
        mean_rate=total_flits / (duration * n_nodes),
        peak_window_rate=peak_window_rate,
        burstiness=burstiness,
        node_load_cv=node_load_cv,
        n_phases=n_phases,
        window=window,
        gap=gap,
    )


def trace_stats(trace: Trace, *, window: int = 64, gap: int = 64) -> TraceStats:
    """Compute :class:`TraceStats` for an in-memory trace."""
    cols = trace.columns()
    return stats_from_arrays(
        trace.n_nodes,
        cols["time"],
        cols["src"],
        cols["size_flits"],
        window=window,
        gap=gap,
    )
