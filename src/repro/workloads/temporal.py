"""Temporal injection models beyond the Bernoulli open loop.

The paper's evaluations drive networks with two temporal shapes only: the
memoryless Bernoulli process (`repro.simulation.workload.synthetic_trace`)
and phase-structured NPB traces. Real interconnect traffic is neither —
measured NoC/datacenter workloads burst on many timescales. This module
adds the standard temporal models of the traffic literature, all emitting
the same :class:`~repro.traffic.trace.Trace` records the simulator already
consumes:

* :func:`onoff_trace` — two-state ON/OFF (MMPP-style) bursty injection
  with geometric sojourn times; the classic Markov-modulated burst model.
* :func:`pareto_onoff_trace` — superposed ON/OFF sources with
  Pareto-distributed periods; heavy-tailed sojourns make the aggregate
  self-similar (Willinger et al., the canonical LRD traffic construction).
* :func:`modulated_trace` — a Bernoulli process under a deterministic
  time-varying rate envelope (sine / square / ramp), for diurnal-style
  load swings and rate steps.
* :func:`hotspot_overlay` — a *spatial* overlay usable with any temporal
  model: redirects a fraction of every source's traffic onto hotspot
  destinations while preserving per-source injection rates.

Every model draws per-source streams from :func:`repro.util.rng.derive_seed`,
so a trace is a pure function of ``(matrix, params, seed)`` — independent
of source iteration order and safe to regenerate in worker processes.
All models hit the requested *mean* rate; they differ in how the same
flit budget clumps in time, which is exactly the axis the Bernoulli
model cannot express.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.trace import MAX_PACKET_FLITS, PacketRecord, Trace
from repro.util.rng import derive_seed

__all__ = [
    "ENVELOPES",
    "hotspot_overlay",
    "mix_trace",
    "modulated_trace",
    "onoff_trace",
    "pareto_onoff_trace",
]

#: Supported rate-envelope shapes for :func:`modulated_trace`.
ENVELOPES = ("sine", "square", "ramp")


def _validate_common(injection_rate: float, cycles: int, packet_flits: int) -> None:
    if not 0 < injection_rate <= 1:
        raise ValueError(f"injection rate must be in (0, 1], got {injection_rate}")
    if cycles < 1:
        raise ValueError(f"need >= 1 cycle, got {cycles}")
    if not 1 <= packet_flits <= MAX_PACKET_FLITS:
        raise ValueError(
            f"packet size must be 1..{MAX_PACKET_FLITS}, got {packet_flits}"
        )


def _per_source_rates(
    traffic: TrafficMatrix, injection_rate: float, packet_flits: int
) -> tuple[np.ndarray, np.ndarray]:
    """(packet rates, destination probabilities) per source node."""
    tm = traffic.scaled_to_injection_rate(injection_rate)
    rates = tm.injection_rates() / packet_flits  # packets/node/cycle
    row_sums = tm.matrix.sum(axis=1, keepdims=True)
    dest_probs = np.divide(
        tm.matrix, row_sums, out=np.zeros_like(tm.matrix), where=row_sums > 0
    )
    return rates, dest_probs


def _source_rng(seed: int, source: int) -> np.random.Generator:
    return np.random.default_rng(derive_seed(int(seed), source))


def _records_for_source(
    rng: np.random.Generator,
    times: np.ndarray,
    source: int,
    dest_probs: np.ndarray,
    packet_flits: int,
) -> list[PacketRecord]:
    """Draw destinations in one vectorized call and build the records."""
    if times.size == 0:
        return []
    dsts = rng.choice(dest_probs.size, size=times.size, p=dest_probs)
    return [
        PacketRecord(int(t), source, int(d), packet_flits)
        for t, d in zip(times, dsts)
    ]


def _bernoulli_times(
    rng: np.random.Generator, start: int, stop: int, prob: float
) -> list[int]:
    """Arrival cycles of a Bernoulli(prob) process on [start, stop)."""
    if prob <= 0 or start >= stop:
        return []
    times: list[int] = []
    t = start + int(rng.geometric(min(1.0, prob))) - 1
    while t < stop:
        times.append(t)
        t += int(rng.geometric(min(1.0, prob)))
    return times


def onoff_trace(
    traffic: TrafficMatrix,
    *,
    injection_rate: float,
    cycles: int,
    burst_len: float = 32.0,
    duty: float = 0.25,
    packet_flits: int = 1,
    seed: int = 0,
    name: str | None = None,
) -> Trace:
    """Two-state ON/OFF (MMPP-style) bursty injection trace.

    Each source alternates geometric ON periods of mean ``burst_len``
    cycles with geometric OFF periods sized so the long-run ON fraction is
    ``duty``. While ON it injects Bernoulli packets at ``rate / duty``, so
    the *mean* flit rate matches ``injection_rate`` but the offered load
    arrives in bursts ``1 / duty`` times the mean — at equal mean rate an
    ON/OFF workload therefore saturates a network no later than Bernoulli.

    Args:
        traffic: destination weights (rows; zero diagonal enforced by
            :class:`TrafficMatrix`).
        injection_rate: mean flits/node/cycle.
        cycles: injection window length.
        burst_len: mean ON-period length in cycles.
        duty: long-run fraction of time spent ON, in (0, 1]. The peak
            per-node packet rate ``rate / (duty * packet_flits)`` must not
            exceed one packet per cycle.
        packet_flits: packet size in flits.
        seed: integer base seed (per-source streams are derived from it).
        name: optional trace name.
    """
    _validate_common(injection_rate, cycles, packet_flits)
    if not 0 < duty <= 1:
        raise ValueError(f"duty must be in (0, 1], got {duty}")
    if burst_len < 1:
        raise ValueError(f"burst length must be >= 1 cycle, got {burst_len}")
    rates, dest_probs = _per_source_rates(traffic, injection_rate, packet_flits)
    peak = rates / duty
    if np.any(peak > 1.0):
        raise ValueError(
            "peak per-node packet rate exceeds 1/cycle; lower the injection "
            "rate, raise the duty cycle, or use larger packets"
        )
    p_on_end = 1.0 / burst_len
    mean_off = burst_len * (1.0 - duty) / duty
    if 0.0 < mean_off < 1.0:
        # A sub-cycle mean OFF period cannot be realized (OFF draws floor
        # at one cycle), which would silently undershoot the mean rate.
        raise ValueError(
            f"mean OFF period {mean_off:.3g} cycles is < 1 "
            f"(burst_len {burst_len:g}, duty {duty:g}); raise burst_len, "
            "lower the duty, or use duty=1 for no OFF periods"
        )
    records: list[PacketRecord] = []
    for s in range(traffic.n_nodes):
        if rates[s] <= 0:
            continue
        rng = _source_rng(seed, s)
        times: list[int] = []
        t = 0
        # Stationary start: begin OFF with probability (1 - duty).
        if duty < 1.0 and rng.random() >= duty:
            t += int(rng.geometric(1.0 / mean_off))
        while t < cycles:
            on_len = int(rng.geometric(p_on_end))
            times.extend(_bernoulli_times(rng, t, min(t + on_len, cycles), peak[s]))
            t += on_len
            if duty < 1.0:
                t += int(rng.geometric(1.0 / mean_off))
        records.extend(
            _records_for_source(
                rng, np.asarray(times, dtype=np.int64), s, dest_probs[s], packet_flits
            )
        )
    return Trace(
        traffic.n_nodes,
        records,
        name=name or f"onoff-r{injection_rate:g}-d{duty:g}",
    )


def pareto_onoff_trace(
    traffic: TrafficMatrix,
    *,
    injection_rate: float,
    cycles: int,
    alpha: float = 1.5,
    min_on: float = 8.0,
    duty: float = 0.25,
    packet_flits: int = 1,
    seed: int = 0,
    name: str | None = None,
) -> Trace:
    """Pareto-period ON/OFF sources (self-similar aggregate traffic).

    Like :func:`onoff_trace` but ON and OFF sojourns are Pareto distributed
    with tail index ``alpha``; for ``1 < alpha < 2`` the superposition of
    many such sources exhibits long-range dependence (burstiness that does
    not smooth out under aggregation), the classic heavy-tail construction
    of self-similar network traffic.

    Args:
        alpha: Pareto tail index; must exceed 1 so periods have a finite
            mean (values below 2 give the self-similar regime).
        min_on: minimum ON-period length in cycles (the Pareto scale).
        duty: long-run ON fraction in (0, 1]; the OFF scale is derived so
            the mean rate matches ``injection_rate``.
    """
    _validate_common(injection_rate, cycles, packet_flits)
    if alpha <= 1:
        raise ValueError(f"alpha must be > 1 for a finite mean period, got {alpha}")
    if min_on < 1:
        raise ValueError(f"min ON period must be >= 1 cycle, got {min_on}")
    if not 0 < duty <= 1:
        raise ValueError(f"duty must be in (0, 1], got {duty}")
    rates, dest_probs = _per_source_rates(traffic, injection_rate, packet_flits)
    peak = rates / duty
    if np.any(peak > 1.0):
        raise ValueError(
            "peak per-node packet rate exceeds 1/cycle; lower the injection "
            "rate, raise the duty cycle, or use larger packets"
        )
    min_off = min_on * (1.0 - duty) / duty
    if 0.0 < min_off < 1.0:
        # OFF periods floor at one cycle; a sub-cycle scale would inflate
        # them and silently undershoot the mean rate.
        raise ValueError(
            f"minimum OFF period {min_off:.3g} cycles is < 1 "
            f"(min_on {min_on:g}, duty {duty:g}); raise min_on, lower the "
            "duty, or use duty=1 for no OFF periods"
        )
    records: list[PacketRecord] = []
    for s in range(traffic.n_nodes):
        if rates[s] <= 0:
            continue
        rng = _source_rng(seed, s)
        times: list[int] = []
        t = 0
        if duty < 1.0 and rng.random() >= duty:
            t += max(1, round(min_off * (1.0 + rng.pareto(alpha))))
        while t < cycles:
            on_len = max(1, round(min_on * (1.0 + rng.pareto(alpha))))
            times.extend(_bernoulli_times(rng, t, min(t + on_len, cycles), peak[s]))
            t += on_len
            if duty < 1.0:
                t += max(1, round(min_off * (1.0 + rng.pareto(alpha))))
        records.extend(
            _records_for_source(
                rng, np.asarray(times, dtype=np.int64), s, dest_probs[s], packet_flits
            )
        )
    return Trace(
        traffic.n_nodes,
        records,
        name=name or f"pareto-r{injection_rate:g}-a{alpha:g}",
    )


def modulated_trace(
    traffic: TrafficMatrix,
    *,
    injection_rate: float,
    cycles: int,
    period: float = 256.0,
    depth: float = 0.5,
    envelope: str = "sine",
    packet_flits: int = 1,
    seed: int = 0,
    name: str | None = None,
) -> Trace:
    """Bernoulli injection under a deterministic time-varying rate envelope.

    The instantaneous rate is ``injection_rate * f(t)`` where ``f`` swings
    between ``1 - depth`` and ``1 + depth`` with period ``period`` cycles
    and unit mean, so the long-run rate still matches ``injection_rate``:

    * ``"sine"`` — smooth diurnal-style swing;
    * ``"square"`` — alternating high/low half-periods (rate steps);
    * ``"ramp"`` — sawtooth climb from low to high, then reset.

    Implemented by thinning a peak-rate Bernoulli process, which keeps the
    per-source work O(packets) instead of O(cycles).
    """
    _validate_common(injection_rate, cycles, packet_flits)
    if envelope not in ENVELOPES:
        raise ValueError(f"unknown envelope {envelope!r}; one of {ENVELOPES}")
    if not 0 <= depth < 1:
        raise ValueError(f"depth must be in [0, 1), got {depth}")
    if period < 2:
        raise ValueError(f"period must be >= 2 cycles, got {period}")
    rates, dest_probs = _per_source_rates(traffic, injection_rate, packet_flits)
    peak = rates * (1.0 + depth)
    if np.any(peak > 1.0):
        raise ValueError(
            "peak per-node packet rate exceeds 1/cycle; lower the injection "
            "rate or the modulation depth"
        )

    def factor(t: np.ndarray) -> np.ndarray:
        phase = (t % period) / period
        if envelope == "sine":
            return 1.0 + depth * np.sin(2.0 * np.pi * phase)
        if envelope == "square":
            return np.where(phase < 0.5, 1.0 + depth, 1.0 - depth)
        return 1.0 - depth + 2.0 * depth * phase  # ramp

    records: list[PacketRecord] = []
    for s in range(traffic.n_nodes):
        if rates[s] <= 0:
            continue
        rng = _source_rng(seed, s)
        candidates = np.asarray(
            _bernoulli_times(rng, 0, cycles, peak[s]), dtype=np.int64
        )
        if candidates.size:
            accept = rng.random(candidates.size) < (
                factor(candidates) / (1.0 + depth)
            )
            candidates = candidates[accept]
        records.extend(
            _records_for_source(rng, candidates, s, dest_probs[s], packet_flits)
        )
    return Trace(
        traffic.n_nodes,
        records,
        name=name or f"{envelope}-r{injection_rate:g}-d{depth:g}",
    )


def mix_trace(
    traffic: TrafficMatrix,
    *,
    injection_rate: float,
    cycles: int,
    components: Sequence[Sequence],
    packet_flits: int = 1,
    seed: int = 0,
    name: str | None = None,
) -> Trace:
    """Superpose several registered temporal models on one network.

    Real machines never run a single traffic class: a latency-sensitive
    request stream shares the fabric with bursty bulk transfers. Each
    ``components`` entry is ``(model, share)`` or ``(model, share,
    params)`` — ``model`` names a registered temporal model (not a
    skeleton, not ``"mix"`` itself), ``share`` is its positive weight of
    the total ``injection_rate`` (shares are normalized, so they need
    not sum to 1), and ``params`` is an optional mapping / ``(key,
    value)`` pair sequence of model keywords. All components draw
    destinations from the same ``traffic`` matrix and span the same
    ``cycles``.

    Component ``i`` seeds its own stream via ``derive_seed(seed, i)``,
    so the mix is a pure function of ``(matrix, components, seed)`` —
    adding a third component does not perturb the draws of the first
    two, and every component hits its exact mean-rate share (the
    superposition therefore hits ``injection_rate`` exactly in the
    mean, like every other model here).
    """
    # Lazy: the registry lives in workloads.spec, which imports this
    # module at load time.
    from repro.workloads.spec import TEMPORAL_MODELS

    _validate_common(injection_rate, cycles, packet_flits)
    if len(components) < 2:
        raise ValueError(
            f"a mix needs >= 2 components, got {len(components)}"
        )
    parsed: list[tuple[str, float, dict]] = []
    for entry in components:
        if not 2 <= len(entry) <= 3:
            raise ValueError(
                f"mix component must be (model, share[, params]), got {entry!r}"
            )
        model, share = str(entry[0]), float(entry[1])
        params = dict(entry[2]) if len(entry) == 3 else {}
        if model == "mix" or model not in TEMPORAL_MODELS:
            eligible = sorted(m for m in TEMPORAL_MODELS if m != "mix")
            raise ValueError(
                f"mix component model {model!r} must be one of {eligible}"
            )
        if share <= 0:
            raise ValueError(f"component share must be > 0, got {share}")
        parsed.append((model, share, params))
    total_share = sum(share for _, share, _ in parsed)
    records: list[PacketRecord] = []
    for i, (model, share, params) in enumerate(parsed):
        component = TEMPORAL_MODELS[model](
            traffic,
            injection_rate=injection_rate * share / total_share,
            cycles=cycles,
            packet_flits=packet_flits,
            seed=derive_seed(seed, i),
            **params,
        )
        records.extend(component.packets)
    return Trace(
        traffic.n_nodes,
        records,
        name=name
        or "mix-" + "+".join(m for m, _, _ in parsed) + f"-r{injection_rate:g}",
    )


def hotspot_overlay(
    traffic: TrafficMatrix,
    *,
    hotspots: Sequence[int],
    fraction: float,
    name: str | None = None,
) -> TrafficMatrix:
    """Redirect a fraction of every source's traffic onto hotspot nodes.

    Returns a new matrix where each source keeps ``1 - fraction`` of its
    row shape and sends the remaining ``fraction`` uniformly to the
    ``hotspots`` (excluding itself). Row sums — per-source injection rates
    — are preserved exactly, so the overlay composes with any temporal
    model without shifting the operating point. A hotspot source with no
    other hotspot to target keeps its base row untouched.
    """
    if not 0 <= fraction <= 1:
        raise ValueError(f"hotspot fraction must be in [0, 1], got {fraction}")
    nodes = sorted(set(int(h) for h in hotspots))
    n = traffic.n_nodes
    if not nodes:
        raise ValueError("need at least one hotspot node")
    if nodes[0] < 0 or nodes[-1] >= n:
        raise ValueError(f"hotspot nodes must be in 0..{n - 1}, got {nodes}")
    out = traffic.matrix.copy()
    for s in range(n):
        row_sum = out[s].sum()
        if row_sum == 0:
            continue
        targets = [h for h in nodes if h != s]
        if not targets:
            continue
        out[s] *= 1.0 - fraction
        out[s, targets] += fraction * row_sum / len(targets)
    return TrafficMatrix(out, name=name or f"{traffic.name}+hotspot{len(nodes)}")
