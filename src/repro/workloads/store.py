"""Persistent trace store: compressed NPY columns + JSON header.

The text format in :mod:`repro.traffic.io` is human-readable but scales
poorly (tens of bytes per packet, full parse on load). This module adds
the binary interchange format for large generated workloads::

    trace.npz (a ZIP archive, deflate-compressed)
    ├── header.json   format id, version, n_nodes, name, counts, extras
    ├── time.npy      int64  injection cycle per packet
    ├── src.npy       int32  source node per packet
    ├── dst.npy       int32  destination node per packet
    └── size.npy      int32  packet size in flits

Design points:

* **Versioned** — ``header.json`` carries ``format``/``version``; loaders
  reject unknown formats and newer versions loudly instead of
  misinterpreting bytes.
* **Byte-deterministic** — entry order, ZIP metadata (timestamps fixed to
  the DOS epoch), JSON key order and compression level are all pinned, so
  the same :class:`~repro.traffic.trace.Trace` always serializes to the
  identical file. That makes trace files content-addressable and lets CI
  diff them.
* **Streaming** — :func:`iter_trace_packets` yields packets without
  materializing a :class:`Trace` (one list entry per packet); consumers
  that want vectorized access use :func:`trace_columns` directly.
"""

from __future__ import annotations

import io
import json
import pathlib
import zipfile
from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.traffic.trace import PacketRecord, Trace

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "iter_trace_packets",
    "load_trace_npz",
    "open_npz_archive",
    "read_trace_header",
    "save_trace_npz",
    "trace_columns",
    "write_npz_archive",
]

TRACE_FORMAT = "repro-trace-npz"
TRACE_VERSION = 1

_HEADER_NAME = "header.json"
#: (zip entry, header column key, dtype) for each packet column.
_COLUMNS = (
    ("time.npy", "time", np.int64),
    ("src.npy", "src", np.int32),
    ("dst.npy", "dst", np.int32),
    ("size.npy", "size_flits", np.int32),
)
#: DOS epoch: the zip timestamp every entry gets, for byte determinism.
_FIXED_DATE = (1980, 1, 1, 0, 0, 0)
_COMPRESS_LEVEL = 6


def _write_entry(zf: zipfile.ZipFile, name: str, payload: bytes) -> None:
    info = zipfile.ZipInfo(name, date_time=_FIXED_DATE)
    info.compress_type = zipfile.ZIP_DEFLATED
    info.create_system = 3  # fixed "unix" id, independent of writer OS
    info.external_attr = 0o644 << 16
    zf.writestr(info, payload, compresslevel=_COMPRESS_LEVEL)


def write_npz_archive(
    path: str | pathlib.Path,
    header: dict[str, Any],
    arrays: list[tuple[str, np.ndarray]],
) -> None:
    """Write a versioned, byte-deterministic npz column archive.

    The reusable core of the trace store: a canonical-JSON ``header.json``
    (which must carry ``format`` and ``version`` keys) followed by one NPY
    entry per ``(name, array)`` pair, in the given order, with pinned ZIP
    metadata. The same inputs always produce the identical file — the
    telemetry store (:mod:`repro.telemetry.report`) shares this writer.
    """
    if "format" not in header or "version" not in header:
        raise ValueError("archive header needs 'format' and 'version' keys")
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    with zipfile.ZipFile(pathlib.Path(path), "w") as zf:
        _write_entry(zf, _HEADER_NAME, header_bytes)
        for entry, arr in arrays:
            buf = io.BytesIO()
            np.save(buf, arr)
            _write_entry(zf, entry, buf.getvalue())


def open_npz_archive(
    path: str | pathlib.Path,
    *,
    expected_format: str,
    max_version: int,
    required_entries: tuple[str, ...] = (),
    kind: str = "trace",
) -> tuple[zipfile.ZipFile, dict[str, Any]]:
    """Open and validate an archive written by :func:`write_npz_archive`.

    Returns the open zip handle plus the parsed header; the caller owns
    closing the handle. Unknown formats, newer versions and missing
    entries fail loudly with the offending path in the message; ``kind``
    is the human-readable noun those messages use.
    """
    p = pathlib.Path(path)
    try:
        zf = zipfile.ZipFile(p, "r")
    except (zipfile.BadZipFile, OSError) as exc:
        raise ValueError(f"{p} is not a readable {kind} archive: {exc}") from exc
    try:
        names = set(zf.namelist())
        if _HEADER_NAME not in names:
            raise ValueError(
                f"{p}: missing {_HEADER_NAME}; not a {kind} file"
            )
        header = json.loads(zf.read(_HEADER_NAME).decode("utf-8"))
        if header.get("format") != expected_format:
            raise ValueError(
                f"{p}: format {header.get('format')!r} != {expected_format!r}"
            )
        version = header.get("version")
        if not isinstance(version, int) or version < 1 or version > max_version:
            raise ValueError(
                f"{p}: unsupported {kind} version {version!r} "
                f"(this reader handles <= {max_version})"
            )
        missing = [entry for entry in required_entries if entry not in names]
        if missing:
            raise ValueError(f"{p}: missing column entries {missing}")
        return zf, header
    except Exception:
        zf.close()
        raise


def save_trace_npz(
    trace: Trace, path: str | pathlib.Path, *, extra: dict[str, Any] | None = None
) -> None:
    """Write ``trace`` to ``path`` in the versioned npz trace format.

    ``extra`` is an optional JSON-safe metadata dictionary persisted in
    the header (e.g. the generating workload spec); it must round-trip
    through ``json.dumps`` or saving fails.
    """
    p = pathlib.Path(path)
    columns = trace.columns()
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "n_nodes": trace.n_nodes,
        "name": trace.name,
        "n_packets": trace.n_packets,
        "total_flits": trace.total_flits,
        "duration_cycles": trace.duration_cycles,
        "columns": [entry for entry, _, _ in _COLUMNS],
        "extra": extra or {},
    }
    write_npz_archive(
        p,
        header,
        [
            (entry, columns[key].astype(dtype, copy=False))
            for entry, key, dtype in _COLUMNS
        ],
    )


def _open_validated(path: str | pathlib.Path) -> tuple[zipfile.ZipFile, dict[str, Any]]:
    return open_npz_archive(
        path,
        expected_format=TRACE_FORMAT,
        max_version=TRACE_VERSION,
        required_entries=tuple(entry for entry, _, _ in _COLUMNS),
    )


def read_trace_header(path: str | pathlib.Path) -> dict[str, Any]:
    """Read and validate only the JSON header of a trace file."""
    zf, header = _open_validated(path)
    zf.close()
    return header


def trace_columns(
    path: str | pathlib.Path,
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Load ``(header, columns)`` — the vectorized view of a trace file."""
    zf, header = _open_validated(path)
    with zf:
        columns: dict[str, np.ndarray] = {}
        for entry, key, _ in _COLUMNS:
            columns[key] = np.load(io.BytesIO(zf.read(entry)), allow_pickle=False)
    lengths = {key: arr.shape[0] for key, arr in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"{path}: ragged column lengths {lengths}")
    if lengths["time"] != header["n_packets"]:
        raise ValueError(
            f"{path}: header says {header['n_packets']} packets, "
            f"columns hold {lengths['time']}"
        )
    return header, columns


def iter_trace_packets(path: str | pathlib.Path) -> Iterator[PacketRecord]:
    """Stream a trace file's packets without building a full Trace.

    Column arrays are held in memory (a few bytes per packet), but
    :class:`PacketRecord` objects are materialized one at a time — the
    per-packet Python-object overhead of :func:`load_trace_npz` never
    accumulates.
    """
    _, cols = trace_columns(path)
    time, src, dst, size = (
        cols["time"], cols["src"], cols["dst"], cols["size_flits"]
    )
    for i in range(time.shape[0]):
        yield PacketRecord(int(time[i]), int(src[i]), int(dst[i]), int(size[i]))


def load_trace_npz(path: str | pathlib.Path) -> Trace:
    """Load a trace file into a :class:`Trace` (exact save round-trip)."""
    header, cols = trace_columns(path)
    packets = [
        PacketRecord(int(t), int(s), int(d), int(f))
        for t, s, d, f in zip(
            cols["time"], cols["src"], cols["dst"], cols["size_flits"]
        )
    ]
    return Trace(int(header["n_nodes"]), packets, name=str(header["name"]))
