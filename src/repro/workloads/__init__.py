"""Workload subsystem: temporal traffic models, application skeletons,
and the persistent trace store.

Three pillars on top of :mod:`repro.traffic`:

* :mod:`repro.workloads.temporal` — injection processes beyond Bernoulli
  (ON/OFF bursts, Pareto self-similar sources, rate envelopes, hotspot
  overlays);
* :mod:`repro.workloads.skeletons` — bulk-synchronous application
  archetypes (stencil, all-reduce butterfly, FFT transpose, wavefront);
* :mod:`repro.workloads.store` / :mod:`repro.workloads.stats` — a
  versioned, byte-deterministic on-disk trace format plus the statistics
  that characterize a workload's shape.

:class:`WorkloadSpec` names any of these declaratively; the experiment
engine (``"workload"`` traffic generator, ``"workload-saturation"``
scenario family) and the ``repro workload`` CLI group both address
workloads through it.
"""

from repro.workloads.skeletons import (
    allreduce_trace,
    fft_transpose_trace,
    stencil_trace,
    wavefront_trace,
)
from repro.workloads.spec import (
    SKELETONS,
    TEMPORAL_MODELS,
    WorkloadSpec,
    build_traffic_matrix,
    matrix_generator_names,
    register_skeleton,
    register_temporal_model,
    workload_model_names,
)
from repro.workloads.stats import TraceStats, stats_from_arrays, trace_stats
from repro.workloads.store import (
    TRACE_FORMAT,
    TRACE_VERSION,
    iter_trace_packets,
    load_trace_npz,
    open_npz_archive,
    read_trace_header,
    save_trace_npz,
    trace_columns,
    write_npz_archive,
)
from repro.workloads.temporal import (
    ENVELOPES,
    hotspot_overlay,
    mix_trace,
    modulated_trace,
    onoff_trace,
    pareto_onoff_trace,
)

__all__ = [
    "ENVELOPES",
    "SKELETONS",
    "TEMPORAL_MODELS",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceStats",
    "WorkloadSpec",
    "allreduce_trace",
    "build_traffic_matrix",
    "fft_transpose_trace",
    "hotspot_overlay",
    "iter_trace_packets",
    "load_trace_npz",
    "matrix_generator_names",
    "mix_trace",
    "modulated_trace",
    "onoff_trace",
    "open_npz_archive",
    "pareto_onoff_trace",
    "read_trace_header",
    "register_skeleton",
    "register_temporal_model",
    "save_trace_npz",
    "stats_from_arrays",
    "stencil_trace",
    "trace_columns",
    "trace_stats",
    "wavefront_trace",
    "workload_model_names",
    "write_npz_archive",
]
