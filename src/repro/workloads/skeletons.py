"""Application communication skeletons (bulk-synchronous phase traces).

The NPB generators (`repro.traffic.npb`) reproduce four specific Class-A
kernels. This module provides the *archetypes* those kernels instantiate —
parameterized generators for the canonical bulk-synchronous communication
patterns of parallel computing — so any mesh size and message volume can
be phase-scheduled onto the network:

* :func:`stencil_trace` — iterative halo exchange on the processor grid
  (the Jacobi/CFD archetype; nearest-neighbour, optionally with corners).
* :func:`allreduce_trace` — recursive-doubling butterfly all-reduce
  (the collective behind every distributed optimizer step); partner
  distances double each phase, covering 1-hop to cross-chip traffic.
* :func:`fft_transpose_trace` — 2-D pencil-decomposed FFT: all-to-all
  within processor rows, then within columns (the transpose archetype).
* :func:`wavefront_trace` — diagonal pipeline sweeps with true wavefront
  phase structure (the SSOR/Smith-Waterman archetype): one phase per
  anti-diagonal, so parallelism ramps up and down during the sweep.

All return :class:`~repro.traffic.trace.Trace` via
:func:`~repro.traffic.trace.schedule_phases`: within a phase every source
serializes its packets at the pacing interval, and the next phase starts
only after the slowest source finishes plus a compute gap — the same
bulk-synchronous structure the paper's NPB traces follow. Nodes are
row-major on a ``width x height`` grid (node ``y * width + x``), matching
the mesh topology's coordinate layout.
"""

from __future__ import annotations

from repro.traffic.trace import Message, Trace, schedule_phases

__all__ = [
    "allreduce_trace",
    "fft_transpose_trace",
    "stencil_trace",
    "wavefront_trace",
]


def _check_grid(width: int, height: int) -> int:
    if width < 2 or height < 1 or width * height < 2:
        raise ValueError(f"grid must have >= 2 nodes, got {width}x{height}")
    return width * height


def _check_positive(**values: float) -> None:
    for key, value in values.items():
        if value < 1:
            raise ValueError(f"{key} must be >= 1, got {value}")


def stencil_trace(
    width: int = 16,
    height: int = 16,
    *,
    halo_bytes: int = 4096,
    iterations: int = 4,
    corners: bool = False,
    flit_interval: int = 2,
    inter_phase_gap: int = 256,
) -> Trace:
    """Iterative 2-D stencil halo exchange (Jacobi archetype).

    Each iteration is one phase in which every node exchanges
    ``halo_bytes`` with each in-grid neighbour (4-point, or 8-point with
    ``corners=True``; corner halos carry a token byte volume since real
    corner exchanges are a single cell wide).
    """
    _check_grid(width, height)
    _check_positive(halo_bytes=halo_bytes, iterations=iterations)
    corner_bytes = max(1, halo_bytes // max(width, height))

    def phase() -> list[Message]:
        msgs: list[Message] = []
        for y in range(height):
            for x in range(width):
                src = y * width + x
                sides = ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1))
                diag = ((x - 1, y - 1), (x + 1, y - 1), (x - 1, y + 1), (x + 1, y + 1))
                for nx, ny in sides:
                    if 0 <= nx < width and 0 <= ny < height:
                        msgs.append(Message(src, ny * width + nx, halo_bytes))
                if corners:
                    for nx, ny in diag:
                        if 0 <= nx < width and 0 <= ny < height:
                            msgs.append(Message(src, ny * width + nx, corner_bytes))
        return msgs

    return schedule_phases(
        width * height,
        [phase() for _ in range(iterations)],
        flit_interval=flit_interval,
        inter_phase_gap=inter_phase_gap,
        name=f"stencil-{width}x{height}",
    )


def allreduce_trace(
    width: int = 16,
    height: int = 16,
    *,
    message_bytes: int = 8192,
    iterations: int = 4,
    flit_interval: int = 2,
    inter_phase_gap: int = 256,
) -> Trace:
    """Recursive-doubling butterfly all-reduce across all nodes.

    Each iteration runs ``log2(N)`` phases; in phase ``i`` every node
    exchanges ``message_bytes`` with its butterfly partner at XOR distance
    ``2**i``. Early phases are neighbour traffic, late phases span half
    the chip — the pattern that benefits most from express links.
    Requires a power-of-two node count.
    """
    n = _check_grid(width, height)
    _check_positive(message_bytes=message_bytes, iterations=iterations)
    stages = n.bit_length() - 1
    if 1 << stages != n:
        raise ValueError(f"all-reduce needs a power-of-two node count, got {n}")
    phases = [
        [Message(s, s ^ (1 << i), message_bytes) for s in range(n)]
        for _ in range(iterations)
        for i in range(stages)
    ]
    return schedule_phases(
        n,
        phases,
        flit_interval=flit_interval,
        inter_phase_gap=inter_phase_gap,
        name=f"allreduce-{width}x{height}",
    )


def fft_transpose_trace(
    width: int = 16,
    height: int = 16,
    *,
    volume_bytes: int = 1 << 20,
    iterations: int = 1,
    flit_interval: int = 4,
    inter_phase_gap: int = 1024,
) -> Trace:
    """2-D pencil-decomposed FFT transpose (row then column all-to-all).

    Each iteration performs two phases: an all-to-all among the nodes of
    every processor *row* (the x-pencil to y-pencil transpose), then an
    all-to-all among every *column*. ``volume_bytes`` is the per-node data
    volume; each exchange slices it evenly across the row (resp. column)
    partners. Destination order is rank-staggered like an MPI_Alltoall so
    exchange steps pair distinct (src, dst) sets.
    """
    n = _check_grid(width, height)
    _check_positive(volume_bytes=volume_bytes, iterations=iterations)
    if width < 2 or height < 2:
        raise ValueError(f"FFT transpose needs a 2-D grid, got {width}x{height}")
    row_bytes = max(1, volume_bytes // width)
    col_bytes = max(1, volume_bytes // height)

    def row_phase() -> list[Message]:
        msgs: list[Message] = []
        for y in range(height):
            base = y * width
            for k in range(1, width):
                for x in range(width):
                    msgs.append(
                        Message(base + x, base + (x + k) % width, row_bytes)
                    )
        return msgs

    def col_phase() -> list[Message]:
        msgs: list[Message] = []
        for x in range(width):
            for k in range(1, height):
                for y in range(height):
                    msgs.append(
                        Message(y * width + x, ((y + k) % height) * width + x, col_bytes)
                    )
        return msgs

    phases: list[list[Message]] = []
    for _ in range(iterations):
        phases.append(row_phase())
        phases.append(col_phase())
    return schedule_phases(
        n,
        phases,
        flit_interval=flit_interval,
        inter_phase_gap=inter_phase_gap,
        name=f"fft-{width}x{height}",
    )


def wavefront_trace(
    width: int = 16,
    height: int = 16,
    *,
    pencil_bytes: int = 2048,
    sweeps: int = 2,
    flit_interval: int = 1,
    inter_phase_gap: int = 64,
) -> Trace:
    """Diagonal wavefront sweeps with per-diagonal phase structure.

    A forward sweep runs one phase per anti-diagonal: nodes on diagonal
    ``x + y = d`` forward ``pencil_bytes`` east and south, releasing the
    next diagonal — so activity ramps from one node up to the full
    diagonal and back down, the defining shape of pipelined wavefront
    codes. The backward sweep mirrors it (west/north). Unlike the NPB LU
    generator (all ranks in one phase), the true dependency structure is
    preserved, which makes the network's diameter visible in the
    end-to-end makespan.
    """
    n = _check_grid(width, height)
    _check_positive(pencil_bytes=pencil_bytes, sweeps=sweeps)

    def sweep(forward: bool) -> list[list[Message]]:
        phases: list[list[Message]] = []
        diagonals = range(width + height - 1)
        for d in diagonals if forward else reversed(diagonals):
            phase: list[Message] = []
            for y in range(height):
                x = d - y
                if not 0 <= x < width:
                    continue
                src = y * width + x
                step = 1 if forward else -1
                nx, ny = x + step, y + step
                if 0 <= nx < width:
                    phase.append(Message(src, y * width + nx, pencil_bytes))
                if 0 <= ny < height:
                    phase.append(Message(src, ny * width + x, pencil_bytes))
            if phase:
                phases.append(phase)
        return phases

    phases: list[list[Message]] = []
    for _ in range(sweeps):
        phases.extend(sweep(forward=True))
        phases.extend(sweep(forward=False))
    return schedule_phases(
        n,
        phases,
        flit_interval=flit_interval,
        inter_phase_gap=inter_phase_gap,
        name=f"wavefront-{width}x{height}",
    )
