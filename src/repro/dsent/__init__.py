"""Modified-DSENT substrate: bottom-up power/area models at 11 nm.

Reimplements the modelling structure of DSENT (Sun et al., NOCS 2012) that
the paper used — technology node -> electrical components -> router/link
roll-ups — extended with the HyPPI device parameters of Table I, mirroring
the authors' "modified DSENT".
"""

from repro.dsent.electrical import (
    Allocator,
    ClockTree,
    ComponentPower,
    Crossbar,
    FlitBuffer,
    RepeatedWire,
)
from repro.dsent.link_model import LinkFigures, NocLinkConfig, NocLinkModel
from repro.dsent.optical import (
    RING_THERMAL_TUNING_MW,
    NocOpticalLink,
    OpticalLinkConfig,
)
from repro.dsent.router_model import RouterConfig, RouterPowerArea
from repro.dsent.serdes import MAX_SERDES_RATE_GBPS, Serdes, SerdesConfig
from repro.dsent.tech_node import TECH_11NM, TechNode

__all__ = [
    "Allocator",
    "ClockTree",
    "ComponentPower",
    "Crossbar",
    "FlitBuffer",
    "RepeatedWire",
    "LinkFigures",
    "NocLinkConfig",
    "NocLinkModel",
    "RING_THERMAL_TUNING_MW",
    "NocOpticalLink",
    "OpticalLinkConfig",
    "RouterConfig",
    "RouterPowerArea",
    "MAX_SERDES_RATE_GBPS",
    "Serdes",
    "SerdesConfig",
    "TECH_11NM",
    "TechNode",
]
