"""Technology-node constants for the modified-DSENT substrate.

DSENT models on-chip components bottom-up from a technology node: supply
voltage, device/wire capacitances, leakage densities. The paper evaluates all
NoC-level energy and area "using DSENT ... using 11 nm technology node",
after modifying it with the HyPPI device parameters of Table I.

The constants below are our 11 nm calibration. They are chosen to be
physically plausible *and* to land the paper's published aggregates
(DESIGN.md section 5): a 5-port 64-bit 4-VC router at 0.78125 GHz comes out
near 5.7 mW static / ~3 pJ per flit / ~0.015 mm², which rolls up to the
paper's 1.53 W static for the 16x16 electronic base mesh and ~22 mm² total
electronic NoC area.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechNode", "TECH_11NM"]


@dataclass(frozen=True)
class TechNode:
    """Electrical technology-node parameters used by all DSENT models."""

    name: str
    vdd_v: float
    """Nominal supply voltage."""

    dff_energy_fj: float
    """Energy to clock + write one D flip-flop bit (includes local clock
    buffer share), fJ per event."""

    dff_leakage_uw: float
    """Leakage of one flip-flop bit, µW."""

    dff_area_um2: float
    """Layout area of one flip-flop bit, µm²."""

    gate_energy_fj: float
    """Energy per switched 2-input gate equivalent, fJ."""

    gate_leakage_uw: float
    """Leakage per gate equivalent, µW."""

    gate_area_um2: float
    """Area per gate equivalent, µm²."""

    wire_cap_ff_per_mm: float
    """Global-layer wire capacitance, fF/mm."""

    wire_energy_fj_per_bit_mm: float
    """Full-swing switching energy of a repeated global wire, fJ/bit/mm
    (≈ ``0.5 * activity * C * Vdd²`` folded with repeater loading)."""

    wire_energy_express_factor: float
    """Energy multiplier for delay-optimal (express) repeatered wires.
    Express links must cross many millimetres within one clock, which costs
    oversized repeaters; this is why the paper's Table V shows electronic
    express energy *growing* with hop length."""

    wire_delay_ps_per_mm: float
    """Optimally repeated wire delay, ps/mm."""

    wire_leakage_uw_per_mm: float
    """Repeater leakage per wire millimetre, µW/mm."""

    wire_pitch_um: float
    """Wire width + spacing on the NoC routing layer, µm (paper: 160 nm
    width + 160 nm spacing)."""

    wire_repeater_area_um2_per_mm: float
    """Repeater area amortized per wire millimetre, µm²/mm."""

    clock_power_uw_per_ghz_per_bit: float
    """Ungated clock-distribution power per buffered state bit per GHz, µW.
    DSENT treats the un-gateable fraction of the clock tree as always-on;
    we fold it into static power."""

    def __post_init__(self) -> None:
        if self.vdd_v <= 0:
            raise ValueError(f"vdd must be > 0, got {self.vdd_v}")
        numeric = (
            self.dff_energy_fj,
            self.dff_leakage_uw,
            self.dff_area_um2,
            self.gate_energy_fj,
            self.gate_leakage_uw,
            self.gate_area_um2,
            self.wire_cap_ff_per_mm,
            self.wire_energy_fj_per_bit_mm,
            self.wire_delay_ps_per_mm,
            self.wire_leakage_uw_per_mm,
            self.wire_pitch_um,
            self.wire_repeater_area_um2_per_mm,
            self.clock_power_uw_per_ghz_per_bit,
        )
        if any(v <= 0 for v in numeric):
            raise ValueError(f"all TechNode parameters must be > 0: {self}")
        if self.wire_energy_express_factor < 1.0:
            raise ValueError("express wires cannot cost less than normal wires")


TECH_11NM = TechNode(
    name="11nm",
    vdd_v=0.7,
    dff_energy_fj=4.0,
    dff_leakage_uw=0.47,
    dff_area_um2=0.8,
    gate_energy_fj=0.4,
    gate_leakage_uw=0.02,
    gate_area_um2=0.25,
    wire_cap_ff_per_mm=200.0,
    wire_energy_fj_per_bit_mm=100.0,
    wire_energy_express_factor=1.6,
    wire_delay_ps_per_mm=50.0,
    wire_leakage_uw_per_mm=1.0,
    wire_pitch_um=0.32,
    wire_repeater_area_um2_per_mm=8.0,
    clock_power_uw_per_ghz_per_bit=0.30,
)
"""Calibrated 11 nm node used for every NoC-level estimate in the paper."""
