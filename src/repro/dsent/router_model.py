"""Electronic router power/area model (DSENT front-end).

Assembles the electrical components of :mod:`repro.dsent.electrical` into the
router of the paper's Table II: 64-bit flits, 5 base ports (mesh) or 5 + 2
express ports (hybrid), 4 VCs x 8 flit buffers per base port, 3-stage
pipeline, 0.78125 GHz.

Express ports are *lightweight* (paper Fig. 4): the optical express link
reuses the router's output staging register at the sender and adds a 1-flit
receive register — there is no full VC buffer bank behind express ports.
This matches the paper's Table IV, where going from the 5-port plain-mesh
router to the 7-port hybrid router barely moves the static power
(1.530 W -> 1.532 W across all 256 routers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsent.electrical import (
    Allocator,
    ClockTree,
    ComponentPower,
    Crossbar,
    FlitBuffer,
)
from repro.dsent.tech_node import TECH_11NM, TechNode

__all__ = ["RouterConfig", "RouterPowerArea"]


@dataclass(frozen=True)
class RouterConfig:
    """Microarchitectural parameters of one router (paper Table II)."""

    flit_bits: int = 64
    base_ports: int = 5
    express_ports: int = 0
    n_vcs: int = 4
    buffers_per_vc: int = 8
    pipeline_stages: int = 3
    frequency_ghz: float = 0.78125

    def __post_init__(self) -> None:
        if self.flit_bits < 1:
            raise ValueError(f"flit size must be >= 1 bit, got {self.flit_bits}")
        if self.base_ports < 2:
            raise ValueError(f"router needs >= 2 base ports, got {self.base_ports}")
        if self.express_ports < 0:
            raise ValueError(f"express ports must be >= 0, got {self.express_ports}")
        if self.n_vcs < 1 or self.buffers_per_vc < 1:
            raise ValueError(
                f"VC config must be >= 1: vcs={self.n_vcs}, depth={self.buffers_per_vc}"
            )
        if self.pipeline_stages < 1:
            raise ValueError(f"pipeline must be >= 1 stage, got {self.pipeline_stages}")
        if self.frequency_ghz <= 0:
            raise ValueError(f"frequency must be > 0, got {self.frequency_ghz}")

    @property
    def total_ports(self) -> int:
        """Crossbar radix (base + express ports)."""
        return self.base_ports + self.express_ports


class RouterPowerArea:
    """DSENT-style roll-up of one router's static power / energy / area."""

    def __init__(self, config: RouterConfig = RouterConfig(), tech: TechNode = TECH_11NM):
        self.config = config
        self.tech = tech

    # -- component constructors ------------------------------------------

    def _base_buffers(self) -> ComponentPower:
        bank = FlitBuffer(
            self.config.flit_bits,
            self.config.n_vcs,
            self.config.buffers_per_vc,
            self.tech,
        ).evaluate()
        return bank.scaled(self.config.base_ports)

    def _express_staging(self) -> ComponentPower:
        if self.config.express_ports == 0:
            return ComponentPower(0.0, 0.0, 0.0)
        reg = FlitBuffer(self.config.flit_bits, 1, 1, self.tech).evaluate()
        return reg.scaled(self.config.express_ports)

    def _crossbar(self) -> ComponentPower:
        n = self.config.total_ports
        return Crossbar(n, n, self.config.flit_bits, self.tech).evaluate()

    def _allocator(self) -> ComponentPower:
        return Allocator(
            self.config.total_ports,
            self.config.total_ports,
            self.config.n_vcs,
            self.tech,
        ).evaluate()

    def _clock(self) -> ComponentPower:
        clocked_bits = (
            self.config.base_ports
            * self.config.n_vcs
            * self.config.buffers_per_vc
            * self.config.flit_bits
            + self.config.express_ports * self.config.flit_bits
        )
        # Only a fraction of buffer flops see the free-running clock; the
        # rest are clock-gated when their VC is idle.
        UNGATED_FRACTION = 0.35
        return ClockTree(
            int(clocked_bits * UNGATED_FRACTION), self.config.frequency_ghz, self.tech
        ).evaluate()

    # -- public roll-ups ---------------------------------------------------

    def evaluate(self) -> ComponentPower:
        """Static power (W), dynamic energy per flit traversal (J), area (m²).

        The dynamic event is one flit passing through the router: buffer
        write+read, one allocation, one crossbar traversal.
        """
        return (
            self._base_buffers()
            + self._express_staging()
            + self._crossbar()
            + self._allocator()
            + self._clock()
        )

    def breakdown(self) -> dict[str, ComponentPower]:
        """Per-component figures (DSENT-style breakdown report)."""
        return {
            "input_buffers": self._base_buffers(),
            "express_staging": self._express_staging(),
            "crossbar": self._crossbar(),
            "allocator": self._allocator(),
            "clock": self._clock(),
        }

    def static_power_w(self) -> float:
        """Leakage + un-gateable clock power, watts."""
        return self.evaluate().static_w

    def dynamic_energy_j_per_flit(self) -> float:
        """Energy for one flit to traverse the router, joules."""
        return self.evaluate().dynamic_j_per_event

    def area_m2(self) -> float:
        """Router layout area, m²."""
        return self.evaluate().area_m2

    def latency_cycles(self) -> int:
        """Router pipeline depth in cycles (paper Table II: 3 stages)."""
        return self.config.pipeline_stages
