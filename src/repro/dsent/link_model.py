"""Per-technology NoC link power/area models (DSENT front-end).

Dispatches a link of any :class:`~repro.tech.parameters.Technology` to the
appropriate substrate model:

* electronic links -> :class:`~repro.dsent.electrical.RepeatedWire`
  (64 parallel wires; express links use delay-optimal repeaters);
* optical links (photonic / plasmonic / HyPPI) ->
  :class:`~repro.dsent.optical.NocOpticalLink` (laser + tuning + SERDES).

All figures are for ONE link direction; the topology layer counts both
directions of the paper's bidirectional links explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsent.electrical import ComponentPower, RepeatedWire
from repro.dsent.optical import NocOpticalLink, OpticalLinkConfig
from repro.dsent.tech_node import TECH_11NM, TechNode
from repro.tech.parameters import Technology

__all__ = ["NocLinkConfig", "NocLinkModel", "LinkFigures"]


@dataclass(frozen=True)
class NocLinkConfig:
    """One NoC link direction: technology, physical length, express or not."""

    technology: Technology
    length_m: float
    flit_bits: int = 64
    data_rate_gbps: float = 50.0
    express: bool = False
    """Express links: electronic ones use delay-optimal (more energetic)
    repeaters to cross multiple hops in one cycle; optical ones are the same
    hardware regardless (distance costs only waveguide loss)."""

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ValueError(f"link length must be > 0, got {self.length_m}")
        if self.flit_bits < 1:
            raise ValueError(f"flit size must be >= 1, got {self.flit_bits}")
        if self.data_rate_gbps <= 0:
            raise ValueError(f"data rate must be > 0, got {self.data_rate_gbps}")


@dataclass(frozen=True)
class LinkFigures:
    """Evaluated figures for one link direction."""

    static_w: float
    dynamic_j_per_flit: float
    area_m2: float
    latency_cycles: int
    """Link traversal latency in clock cycles: 1 for electronic links, 2 for
    optical links (paper Table II / Section III-B: +1 cycle for the O-E
    conversion at the receiver)."""


class NocLinkModel:
    """Evaluate the DSENT-level figures of a NoC link direction."""

    def __init__(self, config: NocLinkConfig, tech: TechNode = TECH_11NM):
        self.config = config
        self.tech = tech

    def latency_cycles(self) -> int:
        """Paper Table II: 1 clk electronic, else 2 clks."""
        return 1 if self.config.technology is Technology.ELECTRONIC else 2

    def evaluate(self) -> LinkFigures:
        """Static power / per-flit energy / area / latency for the link."""
        c = self.config
        if c.technology is Technology.ELECTRONIC:
            comp = RepeatedWire(
                length_mm=c.length_m * 1e3,
                width_bits=c.flit_bits,
                express=c.express,
                tech=self.tech,
            ).evaluate()
        else:
            comp = NocOpticalLink(
                OpticalLinkConfig(
                    technology=c.technology,
                    length_m=c.length_m,
                    data_rate_gbps=c.data_rate_gbps,
                    flit_bits=c.flit_bits,
                )
            ).evaluate()
        return LinkFigures(
            static_w=comp.static_w,
            dynamic_j_per_flit=comp.dynamic_j_per_event,
            area_m2=comp.area_m2,
            latency_cycles=self.latency_cycles(),
        )
