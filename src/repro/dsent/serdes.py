"""Serializer/deserializer (SERDES) model.

Optical NoC links run at 50 Gb/s while the router core runs at 0.78125 GHz
with 64-bit flits, so every optical link endpoint needs a 64:1 SERDES pair.
The paper's Table I footnote † is explicit that "the SERDES circuitry poses
an upper limit on the data rate" of 50 Gb/s — the reason the system level
never sees the HyPPI modulator's 2.1 Tb/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsent.electrical import ComponentPower
from repro.dsent.tech_node import TECH_11NM, TechNode

__all__ = ["SerdesConfig", "Serdes", "MAX_SERDES_RATE_GBPS"]

#: Fastest rate the 11 nm driver + SERDES chain supports (paper, Table I †).
MAX_SERDES_RATE_GBPS = 50.0


@dataclass(frozen=True)
class SerdesConfig:
    """SERDES configuration for one link direction."""

    line_rate_gbps: float = 50.0
    parallel_bits: int = 64
    energy_fj_per_bit: float = 150.0
    """Serialize + deserialize energy per transported bit, fJ. Calibrated so
    a 64-bit flit costs ~10 pJ of SERDES energy (DESIGN.md section 5)."""
    static_fraction: float = 0.005
    """Fraction of full-rate SERDES power that is un-gateable (bias, PLL)."""
    area_um2: float = 400.0
    """Combined TX+RX SERDES macro area."""

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0:
            raise ValueError(f"line rate must be > 0, got {self.line_rate_gbps}")
        if self.line_rate_gbps > MAX_SERDES_RATE_GBPS:
            raise ValueError(
                f"line rate {self.line_rate_gbps} Gb/s exceeds the "
                f"{MAX_SERDES_RATE_GBPS} Gb/s driver/SERDES limit (Table I, †)"
            )
        if self.parallel_bits < 1:
            raise ValueError(f"parallel width must be >= 1, got {self.parallel_bits}")
        if not 0.0 <= self.static_fraction <= 1.0:
            raise ValueError(f"static fraction must be in [0,1], got {self.static_fraction}")


class Serdes:
    """Power/area model of one link direction's SERDES pair."""

    def __init__(self, config: SerdesConfig = SerdesConfig(), tech: TechNode = TECH_11NM):
        self.config = config
        self.tech = tech

    def evaluate(self) -> ComponentPower:
        """Static/dynamic/area; dynamic event = one flit (parallel word)."""
        c = self.config
        dynamic_j = c.parallel_bits * c.energy_fj_per_bit * 1e-15
        full_rate_w = c.energy_fj_per_bit * 1e-15 * c.line_rate_gbps * 1e9
        static_w = c.static_fraction * full_rate_w
        return ComponentPower(
            static_w=static_w,
            dynamic_j_per_event=dynamic_j,
            area_m2=c.area_um2 * 1e-12,
        )
