"""NoC-level optical link power models (the "modified DSENT" of the paper).

The bare link-level models in :mod:`repro.tech.optical` compare device
capabilities; at the NoC system level the paper instead runs a modified
DSENT, which accounts for the full link circuit: laser (sized by a
receiver-sensitivity budget), ring thermal tuning (photonics only), modulator
drivers, receiver analog front-end, and the SERDES pair.

Key modelling choices (documented deviations in EXPERIMENTS.md):

* **Laser sizing** follows DSENT's receiver-sensitivity style: the receiver
  needs a minimum photocurrent ``i_sensitivity_ua``; the required received
  power is ``I / responsivity``, the laser output multiplies in the path
  loss, and wall-plug power divides by the laser efficiency. Lasers are CW
  -> static power.
* **Thermal tuning**: every microring needs continuous thermal trimming
  power; HyPPI has no rings, which is why a HyPPI express link's static
  power is ~100x smaller than a photonic one (paper Table IV).
* **WDM**: a 50 Gb/s photonic link needs ``ceil(50/25) = 2`` wavelengths
  (paper Section III-B), i.e. 2 modulator rings + 2 drop-filter rings per
  direction; HyPPI "supports a single wavelength" at 50 Gb/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dsent.electrical import ComponentPower
from repro.dsent.serdes import Serdes, SerdesConfig
from repro.tech.parameters import (
    OpticalTechnologyParams,
    Technology,
    optical_params,
)
from repro.util.units import db_to_linear

__all__ = ["OpticalLinkConfig", "NocOpticalLink", "RING_THERMAL_TUNING_MW"]

#: Continuous thermal-trimming power per microring, mW. The paper singles
#: this out as a major photonic overhead ("higher power demands due to
#: thermal trimming required for the MRRs").
RING_THERMAL_TUNING_MW = 3.0


@dataclass(frozen=True)
class OpticalLinkConfig:
    """Configuration of one optical NoC link direction."""

    technology: Technology
    length_m: float
    data_rate_gbps: float = 50.0
    flit_bits: int = 64
    i_sensitivity_ua: float = 1.0
    """Minimum receiver photocurrent, µA (DSENT-style sensitivity)."""
    receiver_bias_mw: float = 0.02
    """Receiver analog front-end bias power, mW."""
    serdes: SerdesConfig = field(default_factory=SerdesConfig)

    def __post_init__(self) -> None:
        if not self.technology.is_optical:
            raise ValueError(f"{self.technology} is not an optical technology")
        if self.length_m <= 0:
            raise ValueError(f"length must be > 0, got {self.length_m}")
        if self.data_rate_gbps <= 0:
            raise ValueError(f"data rate must be > 0, got {self.data_rate_gbps}")
        if self.i_sensitivity_ua <= 0:
            raise ValueError(f"sensitivity must be > 0, got {self.i_sensitivity_ua}")


class NocOpticalLink:
    """Modified-DSENT power/area model for one optical link direction."""

    def __init__(self, config: OpticalLinkConfig):
        self.config = config
        self.params: OpticalTechnologyParams = optical_params(config.technology)

    @property
    def n_wavelengths(self) -> int:
        """Wavelengths needed to reach the configured data rate.

        Each wavelength carries up to the modulator's SERDES-limited rate
        (photonic: 25 Gb/s -> two λ for 50 Gb/s; HyPPI: one λ).
        """
        per_lambda = self.params.modulator.serdes_rate_gbps
        return math.ceil(self.config.data_rate_gbps / per_lambda)

    @property
    def n_rings(self) -> int:
        """Microrings per link direction: modulator + drop filter per λ for
        ring-based photonics, zero for plasmonic-device technologies."""
        if self.config.technology is Technology.PHOTONIC:
            return 2 * self.n_wavelengths
        return 0

    def path_loss_db(self) -> float:
        """Optical loss from laser to detector along this link."""
        return self.params.path_loss_db(self.config.length_m)

    def laser_wallplug_w(self) -> float:
        """CW laser wall-plug power for all wavelengths of this direction."""
        p = self.params
        received_w = (
            self.config.i_sensitivity_ua * 1e-6 / p.photodetector.responsivity_a_per_w
        )
        output_w = received_w * db_to_linear(self.path_loss_db())
        return self.n_wavelengths * output_w / p.laser.efficiency

    def thermal_tuning_w(self) -> float:
        """Continuous ring-trimming power for this direction."""
        return self.n_rings * RING_THERMAL_TUNING_MW * 1e-3

    def modulator_dynamic_j_per_flit(self) -> float:
        """Modulator drive energy for one flit (all bits, all λ)."""
        per_bit_j = self.params.modulator.energy_fj_per_bit * 1e-15
        return per_bit_j * self.config.flit_bits

    def receiver_dynamic_j_per_flit(self) -> float:
        """Receiver switching energy for one flit."""
        per_bit_j = self.params.photodetector.energy_fj_per_bit * 1e-15
        return per_bit_j * self.config.flit_bits

    def evaluate(self) -> ComponentPower:
        """Aggregate static/dynamic/area for this link direction.

        Dynamic event = one flit traversal (SERDES + modulator + receiver).
        Static = laser CW + thermal tuning + receiver bias + SERDES bias.
        """
        serdes = Serdes(self.config.serdes).evaluate()
        static_w = (
            self.laser_wallplug_w()
            + self.thermal_tuning_w()
            + self.config.receiver_bias_mw * 1e-3
            + serdes.static_w
        )
        dynamic_j = (
            self.modulator_dynamic_j_per_flit()
            + self.receiver_dynamic_j_per_flit()
            + serdes.dynamic_j_per_event
        )
        area_m2 = self._area_m2() + serdes.area_m2
        return ComponentPower(
            static_w=static_w, dynamic_j_per_event=dynamic_j, area_m2=area_m2
        )

    def _area_m2(self) -> float:
        p = self.params
        devices_um2 = self.n_wavelengths * (
            p.laser.area_um2 + p.modulator.area_um2 + p.photodetector.area_um2
        )
        waveguide_um2 = p.waveguide.pitch_um * self.config.length_m * 1e6
        return (devices_um2 + waveguide_um2) * 1e-12
