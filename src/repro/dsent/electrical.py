"""Electrical component models of the DSENT substrate.

Each component reports the same triple the original DSENT produces per
building block: leakage/static power, dynamic energy per operation, and
layout area. Components are pure functions of their configuration and the
:class:`~repro.dsent.tech_node.TechNode`.

Components modelled (the ingredients of a virtual-channel router and of
electronic links):

* :class:`FlitBuffer` — DFF-based input buffer bank (per port).
* :class:`Crossbar` — mux-tree switch fabric.
* :class:`Allocator` — combined VC/switch allocator (round-robin arbiters).
* :class:`ClockTree` — un-gateable clock distribution (folded into static).
* :class:`RepeatedWire` — repeated global wire, normal or delay-optimal
  ("express") flavour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsent.tech_node import TECH_11NM, TechNode

__all__ = [
    "ComponentPower",
    "FlitBuffer",
    "Crossbar",
    "Allocator",
    "ClockTree",
    "RepeatedWire",
]


@dataclass(frozen=True)
class ComponentPower:
    """Static power / per-event energy / area triple for one component."""

    static_w: float
    dynamic_j_per_event: float
    area_m2: float

    def __post_init__(self) -> None:
        if self.static_w < 0 or self.dynamic_j_per_event < 0 or self.area_m2 < 0:
            raise ValueError(f"component figures must be >= 0: {self}")

    def __add__(self, other: "ComponentPower") -> "ComponentPower":
        return ComponentPower(
            static_w=self.static_w + other.static_w,
            dynamic_j_per_event=self.dynamic_j_per_event + other.dynamic_j_per_event,
            area_m2=self.area_m2 + other.area_m2,
        )

    def scaled(self, factor: float) -> "ComponentPower":
        """Scale all three figures (e.g. replicate a component N times)."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return ComponentPower(
            static_w=self.static_w * factor,
            dynamic_j_per_event=self.dynamic_j_per_event * factor,
            area_m2=self.area_m2 * factor,
        )


class FlitBuffer:
    """DFF-based flit buffer bank: ``n_vcs`` queues of ``depth`` flits.

    The dynamic event is one flit *write plus read* (every buffered flit is
    written once and read once). Read energy is modelled as a mux traversal
    over the occupied depth, a fraction of the write cost.
    """

    READ_FRACTION = 0.5

    def __init__(
        self,
        flit_bits: int,
        n_vcs: int,
        depth_flits: int,
        tech: TechNode = TECH_11NM,
    ) -> None:
        if flit_bits < 1 or n_vcs < 1 or depth_flits < 1:
            raise ValueError(
                f"buffer config must be >= 1: bits={flit_bits}, "
                f"vcs={n_vcs}, depth={depth_flits}"
            )
        self.flit_bits = flit_bits
        self.n_vcs = n_vcs
        self.depth_flits = depth_flits
        self.tech = tech

    @property
    def total_bits(self) -> int:
        """Storage bits in the bank."""
        return self.flit_bits * self.n_vcs * self.depth_flits

    def evaluate(self) -> ComponentPower:
        """Leakage/energy/area of the full bank."""
        t = self.tech
        static_w = self.total_bits * t.dff_leakage_uw * 1e-6
        write_j = self.flit_bits * t.dff_energy_fj * 1e-15
        read_j = write_j * self.READ_FRACTION
        area_m2 = self.total_bits * t.dff_area_um2 * 1e-12
        return ComponentPower(
            static_w=static_w,
            dynamic_j_per_event=write_j + read_j,
            area_m2=area_m2,
        )


class Crossbar:
    """Mux-tree crossbar: ``n_inputs`` x ``n_outputs``, ``flit_bits`` wide.

    Dynamic event = one flit traversal (one output column switches). Energy
    and area scale with the mux tree depth (log2 of inputs) per output; the
    internal wiring load grows with the port count, captured by a linear
    port-loading term.
    """

    #: Extra switched capacitance per additional input port, as a fraction of
    #: one gate per bit — models the lengthening internal wires.
    PORT_LOAD_FACTOR = 0.5

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        flit_bits: int,
        tech: TechNode = TECH_11NM,
    ) -> None:
        if n_inputs < 2 or n_outputs < 1 or flit_bits < 1:
            raise ValueError(
                f"crossbar config invalid: {n_inputs}x{n_outputs}, {flit_bits} bits"
            )
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.flit_bits = flit_bits
        self.tech = tech

    def _mux_gates_per_output_bit(self) -> float:
        # A n:1 mux tree needs (n-1) 2:1 muxes per bit.
        return float(self.n_inputs - 1)

    def evaluate(self) -> ComponentPower:
        """Leakage/energy/area of the full crossbar."""
        t = self.tech
        gates_per_bit = self._mux_gates_per_output_bit()
        total_gates = gates_per_bit * self.flit_bits * self.n_outputs
        static_w = total_gates * t.gate_leakage_uw * 1e-6
        # One traversal switches one output column's mux tree plus the
        # port-loading wire capacitance.
        import math

        tree_depth = math.ceil(math.log2(self.n_inputs))
        switched_gates = (
            tree_depth + self.PORT_LOAD_FACTOR * self.n_inputs
        ) * self.flit_bits
        dynamic_j = switched_gates * t.gate_energy_fj * 1e-15
        area_m2 = total_gates * t.gate_area_um2 * 1e-12
        return ComponentPower(
            static_w=static_w, dynamic_j_per_event=dynamic_j, area_m2=area_m2
        )


class Allocator:
    """Separable VC + switch allocator built from round-robin arbiters.

    Stage 1: per output port, a ``n_inputs * n_vcs : 1`` arbiter (VC alloc);
    stage 2: per output port, a ``n_inputs : 1`` arbiter (switch alloc).
    An arbiter of R requesters costs ~``4R`` gate equivalents plus R state
    bits for the rotating priority.
    """

    GATES_PER_REQUESTER = 4.0

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        n_vcs: int,
        tech: TechNode = TECH_11NM,
    ) -> None:
        if n_inputs < 1 or n_outputs < 1 or n_vcs < 1:
            raise ValueError(
                f"allocator config invalid: {n_inputs}x{n_outputs}, {n_vcs} VCs"
            )
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.n_vcs = n_vcs
        self.tech = tech

    def evaluate(self) -> ComponentPower:
        """Leakage/energy/area; dynamic event = one grant cycle."""
        t = self.tech
        vc_requesters = self.n_inputs * self.n_vcs
        sw_requesters = self.n_inputs
        arbiters_gates = (
            self.n_outputs * self.GATES_PER_REQUESTER * (vc_requesters + sw_requesters)
        )
        state_bits = self.n_outputs * (vc_requesters + sw_requesters)
        static_w = (
            arbiters_gates * t.gate_leakage_uw + state_bits * t.dff_leakage_uw
        ) * 1e-6
        # One allocation switches roughly a quarter of the arbiter logic.
        dynamic_j = 0.25 * arbiters_gates * t.gate_energy_fj * 1e-15
        area_m2 = (
            arbiters_gates * t.gate_area_um2 + state_bits * t.dff_area_um2
        ) * 1e-12
        return ComponentPower(
            static_w=static_w, dynamic_j_per_event=dynamic_j, area_m2=area_m2
        )


class ClockTree:
    """Un-gateable clock distribution for ``clocked_bits`` state bits.

    DSENT reports clock power even at zero load; since it does not vary with
    traffic we account for it as *static* power
    (``clock_power_uw_per_ghz_per_bit * f * bits``). Area and per-event
    energy are zero (the flop clocking energy already lives in the DFF
    model).
    """

    def __init__(
        self, clocked_bits: int, frequency_ghz: float, tech: TechNode = TECH_11NM
    ) -> None:
        if clocked_bits < 0:
            raise ValueError(f"clocked_bits must be >= 0, got {clocked_bits}")
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be > 0, got {frequency_ghz}")
        self.clocked_bits = clocked_bits
        self.frequency_ghz = frequency_ghz
        self.tech = tech

    def evaluate(self) -> ComponentPower:
        """Always-on clock power as a static contribution."""
        t = self.tech
        static_w = (
            self.clocked_bits
            * t.clock_power_uw_per_ghz_per_bit
            * self.frequency_ghz
            * 1e-6
        )
        return ComponentPower(static_w=static_w, dynamic_j_per_event=0.0, area_m2=0.0)


class RepeatedWire:
    """Repeated global wire bundle: ``width_bits`` wires of ``length_mm``.

    ``express=True`` selects the delay-optimal repeater sizing required for
    multi-millimetre single-cycle express links, which raises the energy per
    bit by ``wire_energy_express_factor`` (see
    :class:`~repro.dsent.tech_node.TechNode`).
    """

    def __init__(
        self,
        length_mm: float,
        width_bits: int,
        *,
        express: bool = False,
        tech: TechNode = TECH_11NM,
    ) -> None:
        if length_mm <= 0:
            raise ValueError(f"length must be > 0 mm, got {length_mm}")
        if width_bits < 1:
            raise ValueError(f"width must be >= 1 bit, got {width_bits}")
        self.length_mm = length_mm
        self.width_bits = width_bits
        self.express = express
        self.tech = tech

    def delay_ps(self) -> float:
        """Wire flight time (repeated), ps."""
        return self.tech.wire_delay_ps_per_mm * self.length_mm

    def evaluate(self) -> ComponentPower:
        """Leakage/energy/area of the bundle; event = one flit traversal."""
        t = self.tech
        factor = t.wire_energy_express_factor if self.express else 1.0
        static_w = (
            self.width_bits * t.wire_leakage_uw_per_mm * self.length_mm * factor * 1e-6
        )
        dynamic_j = (
            self.width_bits
            * t.wire_energy_fj_per_bit_mm
            * self.length_mm
            * factor
            * 1e-15
        )
        area_m2 = (
            self.width_bits
            * (
                t.wire_pitch_um * self.length_mm * 1e3
                + t.wire_repeater_area_um2_per_mm * self.length_mm
            )
            * 1e-12
        )
        return ComponentPower(
            static_w=static_w, dynamic_j_per_event=dynamic_j, area_m2=area_m2
        )
