"""Cycle-accurate flit-level NoC simulator (trace mode, BookSim-class)."""

from repro.simulation.batch import BatchSimulator
from repro.simulation.energy import sim_dynamic_energy_j
from repro.simulation.flit import Flit, Packet
from repro.simulation.router import (
    LOCAL_PORT,
    InputPort,
    OutputPort,
    RouterState,
    VirtualChannel,
)
from repro.simulation.simulator import SimConfig, SimStats, Simulator
from repro.simulation.workload import (
    LoadPoint,
    latency_throughput_sweep,
    synthetic_trace,
)

__all__ = [
    "BatchSimulator",
    "sim_dynamic_energy_j",
    "Flit",
    "Packet",
    "LOCAL_PORT",
    "InputPort",
    "OutputPort",
    "RouterState",
    "VirtualChannel",
    "SimConfig",
    "SimStats",
    "Simulator",
    "LoadPoint",
    "latency_throughput_sweep",
    "synthetic_trace",
]
