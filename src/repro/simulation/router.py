"""Virtual-channel router state for the cycle-accurate simulator.

Models the paper's router (Table II / Fig. 4): per-input-port VC buffers
(4 VCs x 8 flits), a 3-stage pipeline (charged as a fixed delay between
flit arrival and switch-allocation eligibility), round-robin VC and switch
allocation, and credit-based backpressure toward upstream routers.

Port keying: each input/output port is keyed by the link id it attaches to;
the local injection/ejection port uses :data:`LOCAL_PORT`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.simulation.flit import Flit

__all__ = ["LOCAL_PORT", "VirtualChannel", "InputPort", "OutputPort", "RouterState"]

#: Port key for the node-local injection/ejection port.
LOCAL_PORT = -1


@dataclass
class VirtualChannel:
    """One VC FIFO at an input port."""

    capacity: int
    flits: deque[Flit] = field(default_factory=deque)
    # Allocated route for the packet currently owning this VC:
    out_port: int | None = None
    out_vc: int | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"VC capacity must be >= 1, got {self.capacity}")

    @property
    def occupancy(self) -> int:
        """Buffered flits."""
        return len(self.flits)

    @property
    def has_space(self) -> bool:
        """True if another flit fits."""
        return len(self.flits) < self.capacity

    @property
    def is_idle(self) -> bool:
        """True if empty and not mid-packet (available for a new packet)."""
        return not self.flits and self.out_port is None

    def head(self) -> Flit | None:
        """Front flit, if any."""
        return self.flits[0] if self.flits else None

    def push(self, flit: Flit) -> None:
        """Enqueue an arriving flit.

        Raises:
            OverflowError: on buffer overflow — indicates a credit
                accounting bug, so it is fatal rather than silently dropped.
        """
        if not self.has_space:
            raise OverflowError("VC buffer overflow: credit protocol violated")
        self.flits.append(flit)

    def pop(self) -> Flit:
        """Dequeue the front flit; tail flits release the VC allocation."""
        flit = self.flits.popleft()
        if flit.is_tail:
            self.out_port = None
            self.out_vc = None
        return flit


@dataclass
class InputPort:
    """All VCs of one input port."""

    n_vcs: int
    vc_depth: int
    vcs: list[VirtualChannel] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_vcs < 1:
            raise ValueError(f"need >= 1 VC, got {self.n_vcs}")
        if not self.vcs:
            self.vcs = [VirtualChannel(self.vc_depth) for _ in range(self.n_vcs)]

    def free_vc(self, start: int = 0, limit: int | None = None) -> int | None:
        """Index of an idle VC (round-robin from ``start``), or None.

        ``limit`` restricts the search to VCs ``0..limit-1`` — the
        injection-VC actuator of :class:`repro.control.VcBiasController`
        (safe at injection ports only: they are not part of any channel
        dependency cycle, so restricting them cannot deadlock).
        """
        n = self.n_vcs if limit is None else min(limit, self.n_vcs)
        for i in range(n):
            idx = (start + i) % n
            if self.vcs[idx].is_idle:
                return idx
        return None

    @property
    def total_occupancy(self) -> int:
        """Flits buffered across all VCs."""
        return sum(vc.occupancy for vc in self.vcs)


@dataclass
class OutputPort:
    """Credit/busy bookkeeping for one output port.

    ``credits[v]`` counts free slots in downstream VC ``v``;
    ``busy[v]`` marks VCs currently allocated to an in-flight packet.
    The ejection port is modelled as an infinite sink (``is_sink=True``).
    """

    n_vcs: int
    vc_depth: int
    is_sink: bool = False
    credits: list[int] = field(default_factory=list)
    busy: list[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.credits:
            self.credits = [self.vc_depth] * self.n_vcs
        if not self.busy:
            self.busy = [False] * self.n_vcs

    def allocate_vc(
        self, start: int = 0, vc_range: tuple[int, int] | None = None
    ) -> int | None:
        """Grab a free downstream VC (round-robin), or None.

        ``vc_range`` restricts allocation to ``[lo, hi)`` — used by the
        dateline scheme to partition VCs by class.
        """
        if self.is_sink:
            return 0
        lo, hi = (0, self.n_vcs) if vc_range is None else vc_range
        span = hi - lo
        if span <= 0:
            raise ValueError(f"empty VC range {vc_range}")
        for i in range(span):
            idx = lo + (start + i) % span
            if not self.busy[idx] and self.credits[idx] > 0:
                self.busy[idx] = True
                return idx
        return None

    def can_send(self, vc: int) -> bool:
        """True if downstream VC ``vc`` has buffer space."""
        return self.is_sink or self.credits[vc] > 0

    def consume_credit(self, vc: int) -> None:
        """Account one flit sent into downstream VC ``vc``."""
        if self.is_sink:
            return
        if self.credits[vc] <= 0:
            raise RuntimeError("sent without credit: flow-control bug")
        self.credits[vc] -= 1

    def return_credit(self, vc: int) -> None:
        """Downstream freed one slot of VC ``vc``."""
        if self.is_sink:
            return
        if self.credits[vc] >= self.vc_depth:
            raise RuntimeError("credit overflow: flow-control bug")
        self.credits[vc] += 1

    def release_vc(self, vc: int) -> None:
        """Tail flit passed: downstream VC is free for a new packet."""
        if not self.is_sink:
            self.busy[vc] = False


class RouterState:
    """Mutable state of one router during simulation."""

    def __init__(
        self,
        node: int,
        in_port_keys: list[int],
        out_port_keys: list[int],
        *,
        n_vcs: int,
        vc_depth: int,
    ) -> None:
        self.node = node
        self.in_ports: dict[int, InputPort] = {
            key: InputPort(n_vcs, vc_depth) for key in [LOCAL_PORT, *in_port_keys]
        }
        self.out_ports: dict[int, OutputPort] = {
            key: OutputPort(n_vcs, vc_depth) for key in out_port_keys
        }
        self.out_ports[LOCAL_PORT] = OutputPort(n_vcs, vc_depth, is_sink=True)
        self._vc_rr: dict[int, int] = {key: 0 for key in self.out_ports}
        self._sa_rr: dict[int, int] = {key: 0 for key in self.out_ports}

    def next_vc_rr(self, out_port: int) -> int:
        """Round-robin pointer for VC allocation on ``out_port``."""
        ptr = self._vc_rr[out_port]
        self._vc_rr[out_port] = (ptr + 1) % max(
            1, self.out_ports[out_port].n_vcs
        )
        return ptr

    def bump_sa_rr(self, out_port: int, granted: int, n_candidates: int) -> None:
        """Advance the switch-allocation round-robin pointer."""
        if n_candidates > 0:
            self._sa_rr[out_port] = (granted + 1) % n_candidates

    def sa_rr(self, out_port: int) -> int:
        """Current switch-allocation pointer for ``out_port``."""
        return self._sa_rr[out_port]

    @property
    def is_active(self) -> bool:
        """True if any input VC holds flits."""
        return any(p.total_occupancy > 0 for p in self.in_ports.values())
