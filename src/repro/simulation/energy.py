"""Energy accounting for simulation runs.

Combines the cycle simulator's per-component flit counts with the
modified-DSENT per-flit energies — the same models the analytical pipeline
uses, so simulated and analytical energies are directly comparable
(the paper does exactly this: BookSim supplies the paths, DSENT the
energy-per-flit numbers).

The accumulation itself lives in
:func:`repro.analysis.power.dynamic_energy_from_counts`, shared with the
telemetry power traces: summing a telemetry trace's window counts and
feeding them through the same path reproduces this module's figures
bit-for-bit (the conservation invariant of
:mod:`repro.telemetry.power_trace`).
"""

from __future__ import annotations

from repro.analysis.power import NetworkEnergy, dynamic_energy_from_counts
from repro.simulation.simulator import SimStats
from repro.topology.graph import Topology

__all__ = ["sim_dynamic_energy_j"]


def sim_dynamic_energy_j(topo: Topology, stats: SimStats) -> NetworkEnergy:
    """Dynamic energy of a simulated run, from measured flit counts.

    Args:
        topo: the simulated topology.
        stats: results of :meth:`repro.simulation.Simulator.run` on it.
    """
    if stats.link_flit_counts.shape != (topo.n_links,):
        raise ValueError(
            f"stats cover {stats.link_flit_counts.shape[0]} links, "
            f"topology has {topo.n_links}"
        )
    return dynamic_energy_from_counts(
        topo, stats.router_flit_counts, stats.link_flit_counts
    )
