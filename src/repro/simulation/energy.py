"""Energy accounting for simulation runs.

Combines the cycle simulator's per-component flit counts with the
modified-DSENT per-flit energies — the same models the analytical pipeline
uses, so simulated and analytical energies are directly comparable
(the paper does exactly this: BookSim supplies the paths, DSENT the
energy-per-flit numbers).
"""

from __future__ import annotations

from repro.analysis.power import (
    _link_config,
    _link_eval,
    _router_eval,
    router_config_for_node,
)
from repro.analysis.power import NetworkEnergy
from repro.simulation.simulator import SimStats
from repro.topology.graph import Topology

__all__ = ["sim_dynamic_energy_j"]


def sim_dynamic_energy_j(topo: Topology, stats: SimStats) -> NetworkEnergy:
    """Dynamic energy of a simulated run, from measured flit counts.

    Args:
        topo: the simulated topology.
        stats: results of :meth:`repro.simulation.Simulator.run` on it.
    """
    if stats.link_flit_counts.shape != (topo.n_links,):
        raise ValueError(
            f"stats cover {stats.link_flit_counts.shape[0]} links, "
            f"topology has {topo.n_links}"
        )
    router_j = 0.0
    for node in range(topo.n_nodes):
        _, dyn_j, _ = _router_eval(router_config_for_node(topo, node))
        router_j += float(stats.router_flit_counts[node]) * dyn_j
    link_j = 0.0
    for link_id in range(topo.n_links):
        fig = _link_eval(_link_config(topo, link_id))
        link_j += float(stats.link_flit_counts[link_id]) * fig.dynamic_j_per_flit
    return NetworkEnergy(router_dynamic_j=router_j, link_dynamic_j=link_j)
