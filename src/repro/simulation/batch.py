"""Batched, vectorized execution engine for the cycle simulator.

:class:`BatchSimulator` is the second execution engine next to the
reference interpreter (:class:`repro.simulation.simulator.Simulator`).
It evaluates a *batch* of independent runs — same topology and
:class:`~repro.simulation.simulator.SimConfig`, different traces — in
lockstep, holding all router state as flat numpy arrays and executing
the per-cycle hot loop as array operations instead of per-flit Python
dispatch.

Equivalence contract
--------------------

Both engines implement the same defined semantics: within one cycle,
routers perform allocation & traversal *sequentially in ascending node
order*, and a popped flit's credit returns to its upstream router
*instantly* (visible to routers not yet visited this cycle). The
interpreter realizes this literally (``for node in sorted(active)``);
this engine realizes it as a snapshot-credit vectorized pass plus an
exact fallback, and the two are **bit-identical** on every
:class:`~repro.simulation.simulator.SimStats` field — the golden
fixtures and the Hypothesis differential tests pin that.

How the vectorized pass stays exact:

* **Shared family state.** Topology link tables, the fully memoized
  routing LUT, dateline VC ranges and per-flit energy figures are
  computed once per (topology, config) *family* and shared by every run
  in every batch — not rebuilt per run as the interpreter does.
* **Batch lockstep.** Per-(run, router, port, VC) state lives in arrays
  of shape ``(B, slots)``; one pass over those arrays advances all runs
  by one cycle. Runs keep independent clocks (idle stretches are
  fast-forwarded per run) and retire independently.
* **Round-robin as rotated masks.** VC allocation rotates the free-VC
  mask of each output port by its round-robin pointer and takes the
  first set bit (argmax), reproducing the interpreter's scan order and
  tie-breaks exactly; same-cycle requesters of one output port are
  resolved in scan order by a short rank-loop. Switch allocation
  processes each router's output-port groups rank-by-rank in
  first-requester order with a segmented prefix-sum pick, so the
  interpreter's ``input_used`` filtering (a granted input port drops
  out of later candidate lists) is reproduced exactly in array ops.
* **Exactness guard.** One structure remains order-sensitive and rare:
  a cycle in which a credit return *enables* a later router (0 -> 1
  credits flowing to a higher-numbered node) falls back to a scalar
  replay of that run-cycle from pristine state. Drained
  (pre-saturation) sweep points measurably never hit this fallback,
  which is why the amortized sweep benchmark holds its speedup.

What stays interpreter-only: telemetry sampling, closed-loop sessions
and online controllers (their packet registration and window hooks are
inherently sequential); the experiment runner routes such scenarios to
the interpreter regardless of the requested engine.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.simulation.simulator import SimConfig, SimStats, Simulator
from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable
from repro.traffic.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from repro.obs.profile import PhaseProfile

__all__ = ["BatchSimulator"]

_INF = np.int64(2**62)


class _Family:
    """Immutable per-(topology, config) tables shared by all batches."""

    def __init__(self, topo: Topology, routing: RoutingTable, cfg: SimConfig):
        # Borrow the interpreter's precomputed link/dateline tables so
        # the two engines share one source of truth for the semantics.
        ref = Simulator(topo, routing, cfg)
        n, v = topo.n_nodes, cfg.n_vcs
        self.n_nodes = n
        self.n_vcs = v
        self.vc_depth = cfg.vc_depth
        self.pipeline = cfg.router_pipeline
        self.n_links = topo.n_links

        self.link_src = np.asarray(ref._link_src, dtype=np.int64)
        self.link_dst = np.asarray(ref._link_dst, dtype=np.int64)
        self.link_express = np.asarray(ref._link_is_express, dtype=bool)
        self.link_row = np.asarray(ref._is_row_link, dtype=bool)
        self.link_cyc = np.asarray(
            [cfg.link_cycles(l.technology) for l in topo.links], dtype=np.int64
        )
        self.max_link_cyc = int(self.link_cyc.max()) if topo.n_links else 1

        # Input-VC slot layout. Slot order within a router *is* the
        # interpreter's scan order: LOCAL port first, then in-links in
        # link-id order, times VC index.
        in_keys: list[list[int]] = [[] for _ in range(n)]
        out_keys: list[list[int]] = [[] for _ in range(n)]
        for link in topo.links:
            in_keys[link.dst].append(link.link_id)
            out_keys[link.src].append(link.link_id)
        slot_router: list[int] = []
        slot_link: list[int] = []
        slot_vc: list[int] = []
        slot_port: list[int] = []
        self.slot_lo = np.zeros(n + 1, dtype=np.int64)
        port_id = 0
        for node in range(n):
            self.slot_lo[node] = len(slot_router)
            for key in (-1, *in_keys[node]):
                for vc in range(v):
                    slot_router.append(node)
                    slot_link.append(key)
                    slot_vc.append(vc)
                    slot_port.append(port_id)
                port_id += 1
        self.slot_lo[n] = len(slot_router)
        self.n_slots = len(slot_router)
        self.n_ports = port_id
        self.slot_router = np.asarray(slot_router, dtype=np.int64)
        self.slot_link = np.asarray(slot_link, dtype=np.int64)
        self.slot_vc = np.asarray(slot_vc, dtype=np.int64)
        self.slot_port = np.asarray(slot_port, dtype=np.int64)

        # Output-port layout: per router, out-links then the LOCAL sink.
        op_router: list[int] = []
        op_link: list[int] = []
        op_sink: list[bool] = []
        self.op_of_link = np.full(max(topo.n_links, 1), -1, dtype=np.int64)
        self.op_local = np.zeros(n, dtype=np.int64)
        for node in range(n):
            for key in out_keys[node]:
                self.op_of_link[key] = len(op_router)
                op_router.append(node)
                op_link.append(key)
                op_sink.append(False)
            self.op_local[node] = len(op_router)
            op_router.append(node)
            op_link.append(-1)
            op_sink.append(True)
        self.n_ops = len(op_router)
        self.op_router = np.asarray(op_router, dtype=np.int64)
        self.op_link = np.asarray(op_link, dtype=np.int64)
        self.op_sink = np.asarray(op_sink, dtype=bool)

        # Dateline VC ranges per (class, output port), via the
        # interpreter's own _vc_range (None means the full range).
        self.vr_lo = np.zeros((2, self.n_ops), dtype=np.int64)
        self.vr_span = np.full((2, self.n_ops), v, dtype=np.int64)
        for op in range(self.n_ops):
            link = int(self.op_link[op])
            if link < 0:
                continue
            for cls in (0, 1):
                rng = ref._vc_range(cls, link)
                if rng is not None:
                    self.vr_lo[cls, op] = rng[0]
                    self.vr_span[cls, op] = rng[1] - rng[0]

        # Per-slot upstream credit target and per-link downstream slot.
        up = np.full(self.n_slots, -1, dtype=np.int64)
        up_router = np.full(self.n_slots, -1, dtype=np.int64)
        mask = self.slot_link >= 0
        up[mask] = (
            self.op_of_link[self.slot_link[mask]] * v + self.slot_vc[mask]
        )
        up_router[mask] = self.link_src[self.slot_link[mask]]
        self.up_oslot = up
        self.up_router = up_router
        # Slots whose instant credit return could *enable* a later router
        # (upstream node numbered higher than this one) — the exactness
        # guard only has to inspect these.
        self.up_enab = up_router > self.slot_router
        self.up_safe = np.where(up >= 0, up, 0)
        dest = np.zeros(max(topo.n_links, 1), dtype=np.int64)
        for link in topo.links:
            node = link.dst
            base = int(self.slot_lo[node]) + v  # LOCAL port occupies [0, v)
            dest[link.link_id] = base + in_keys[node].index(link.link_id) * v
        self.dest_slot = dest

        # Dense routing LUT: memoized RoutingTable.next_link for every
        # (node, destination) pair, shared by every run of the family.
        lut = np.full((n, n), -1, dtype=np.int64)
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    lut[src, dst] = routing.next_link(src, dst).link_id
        self.route_lut = lut

        self._energy_weights: tuple[list[float], list[float]] | None = None
        self.topology = topo

    def energy_weights(self) -> tuple[list[float], list[float]]:
        """Per-flit dynamic energy figures (router, link), cached once.

        The DSENT evaluations behind
        :func:`repro.analysis.power.dynamic_energy_from_counts` are
        re-run per call there; a family computes them exactly once.
        """
        if self._energy_weights is None:
            from repro.analysis import power as _power

            topo = self.topology
            router_jpf = [
                _power.evaluate_router(
                    _power.router_config_for_node(topo, node)
                ).dynamic_j_per_flit
                for node in range(topo.n_nodes)
            ]
            link_jpf = [
                _power.evaluate_link(
                    _power.link_config_for(topo, link_id)
                ).dynamic_j_per_flit
                for link_id in range(topo.n_links)
            ]
            self._energy_weights = (router_jpf, link_jpf)
        return self._energy_weights


class _BatchState:
    """Mutable per-batch state: (B, ...) arrays over the family layout."""

    def __init__(self, fam: _Family, traces: Sequence[Trace], caps: np.ndarray):
        b, s, d, n = len(traces), fam.n_slots, fam.vc_depth, fam.n_nodes
        v = fam.n_vcs
        self.caps = caps
        # Flat packet tables: run r owns global ids [pkt_lo[r], pkt_lo[r+1]).
        self.pkt_lo = np.zeros(b + 1, dtype=np.int64)
        src_l: list[np.ndarray] = []
        dst_l: list[np.ndarray] = []
        size_l: list[np.ndarray] = []
        time_l: list[np.ndarray] = []
        self.n_pkts = np.zeros(b, dtype=np.int64)
        self.n_flits = np.zeros(b, dtype=np.int64)
        for r, trace in enumerate(traces):
            cols = trace.columns()
            self.pkt_lo[r + 1] = self.pkt_lo[r] + cols["src"].size
            self.n_pkts[r] = cols["src"].size
            self.n_flits[r] = int(cols["size_flits"].sum())
            src_l.append(cols["src"])
            dst_l.append(cols["dst"])
            size_l.append(cols["size_flits"])
            time_l.append(cols["time"])
        self.p_src = _cat(src_l)
        self.p_dst = _cat(dst_l)
        self.p_size = _cat(size_l)
        self.p_time = _cat(time_l)
        total = int(self.pkt_lo[b])
        self.cls_x = np.zeros(total, dtype=np.int64)
        self.cls_y = np.zeros(total, dtype=np.int64)
        self.lat = np.full(total, -1, dtype=np.int64)

        # Per-(run, source) injection queues in trace order: a stable sort
        # by source groups each run's packet ids without reordering within
        # a source (the interpreter's per-source FIFO order).
        q_parts: list[np.ndarray] = []
        self.q_lo = np.zeros((b, n), dtype=np.int64)
        self.q_hi = np.zeros((b, n), dtype=np.int64)
        off = 0
        for r in range(b):
            lo, hi = int(self.pkt_lo[r]), int(self.pkt_lo[r + 1])
            src_r = self.p_src[lo:hi]
            q_parts.append(lo + np.argsort(src_r, kind="stable"))
            counts = np.bincount(src_r, minlength=n)
            ends = off + np.cumsum(counts)
            self.q_lo[r] = ends - counts
            self.q_hi[r] = ends
            off += hi - lo
        self.q_pkt = _cat(q_parts)
        self.src_pos = self.q_lo.copy()
        self.next_q_time = np.full((b, n), _INF, dtype=np.int64)
        has = self.q_lo < self.q_hi
        self.next_q_time[has] = self.p_time[self.q_pkt[self.q_lo[has]]]

        self.pend_pkt = np.full((b, n), -1, dtype=np.int64)
        self.pend_fidx = np.zeros((b, n), dtype=np.int64)
        self.pend_vc = np.zeros((b, n), dtype=np.int64)

        self.buf_pkt = np.zeros((b, s, d), dtype=np.int64)
        self.buf_fidx = np.zeros((b, s, d), dtype=np.int64)
        self.buf_ready = np.zeros((b, s, d), dtype=np.int64)
        self.buf_head = np.zeros((b, s), dtype=np.int64)
        self.buf_cnt = np.zeros((b, s), dtype=np.int64)
        self.vc_out_op = np.full((b, s), -1, dtype=np.int64)
        self.vc_out_vc = np.zeros((b, s), dtype=np.int64)

        self.credits = np.full((b, fam.n_ops * v), d, dtype=np.int64)
        self.busy = np.zeros((b, fam.n_ops * v), dtype=bool)
        self.vc_rr = np.zeros((b, fam.n_ops), dtype=np.int64)
        self.sa_rr = np.zeros((b, fam.n_ops), dtype=np.int64)

        self.link_counts = np.zeros((b, fam.n_links), dtype=np.int64)
        self.router_counts = np.zeros((b, n), dtype=np.int64)
        self.delivered = np.zeros(b, dtype=np.int64)
        self.t = np.zeros(b, dtype=np.int64)
        self.alive = np.ones(b, dtype=bool)
        self.cycles_out = np.zeros(b, dtype=np.int64)
        # Link pipeline: per run, arrival cycle -> list of (k, 4) row
        # chunks [dest slot, packet, flit index, ready time]; next_arr
        # caches each run's earliest key so the per-cycle check is one
        # array compare instead of a dict probe per run.
        self.arrivals: list[dict[int, list[np.ndarray]]] = [
            {} for _ in range(b)
        ]
        self.next_arr = np.full(b, _INF, dtype=np.int64)
        # Switch-allocation scratch: (run, input port) -> used this cycle.
        self.used_scratch = np.zeros(b * fam.n_ports, dtype=bool)
        # Opt-in phase profiler (set by run_batch; None = disabled).
        self.profile = None

    def push(self, b, s, pkt, fidx, ready) -> None:
        """Vectorized buffer push (targets are unique per cycle)."""
        if np.size(s) == 0:
            return
        d = self.buf_pkt.shape[2]
        pos = (self.buf_head[b, s] + self.buf_cnt[b, s]) % d
        self.buf_pkt[b, s, pos] = pkt
        self.buf_fidx[b, s, pos] = fidx
        self.buf_ready[b, s, pos] = ready
        self.buf_cnt[b, s] += 1
        if self.buf_cnt[b, s].max() > d:
            raise OverflowError("VC buffer overflow: credit protocol violated")


def _cat(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


class BatchSimulator:
    """Batched vectorized engine over one (topology, config) family.

    Construction precomputes the family tables (link maps, full routing
    LUT, dateline VC ranges); :meth:`run_batch` then evaluates many
    traces through the shared state, and :meth:`run` is the
    drop-in single-run equivalent of
    :meth:`repro.simulation.Simulator.run` (same ``SimStats``,
    bit-for-bit).
    """

    def __init__(
        self,
        topo: Topology,
        routing: RoutingTable | None = None,
        config: SimConfig = SimConfig(),
    ) -> None:
        self.topology = topo
        self.routing = routing if routing is not None else RoutingTable(topo)
        if self.routing.topology is not topo:
            raise ValueError("routing table belongs to a different topology")
        self.config = config
        self.family = _Family(topo, self.routing, config)

    # -- public API ----------------------------------------------------

    def run(
        self,
        trace: Trace,
        *,
        max_cycles: int = 2_000_000,
        profile: "PhaseProfile | None" = None,
    ) -> SimStats:
        """Simulate one trace (batch of one)."""
        return self.run_batch([trace], max_cycles=max_cycles, profile=profile)[0]

    def run_batch(
        self,
        traces: Sequence[Trace],
        *,
        max_cycles: int | Sequence[int] = 2_000_000,
        profile: "PhaseProfile | None" = None,
    ) -> list[SimStats]:
        """Simulate every trace; returns one ``SimStats`` per trace.

        ``max_cycles`` may be a single cap or one per trace. Runs are
        advanced in lockstep but terminate (and fast-forward idle
        stretches) independently, so mixing drained and capped runs in
        one batch is fine.

        ``profile`` attaches an opt-in per-phase timer
        (:class:`repro.obs.profile.PhaseProfile`); the lockstep phases
        are timed per iteration and the exactness-guard scalar replay
        is charged to its own ``scalar_replay`` phase, so the profile
        shows what fraction of the batched run fell back to sequential
        execution. Profiling never touches simulation state (outputs
        stay bit-identical); disabled it costs one ``is not None``
        check per phase boundary.
        """
        traces = list(traces)
        if not traces:
            return []
        for trace in traces:
            if trace.n_nodes != self.topology.n_nodes:
                raise ValueError(
                    f"trace has {trace.n_nodes} nodes, topology has "
                    f"{self.topology.n_nodes}"
                )
        if isinstance(max_cycles, int):
            caps = np.full(len(traces), max_cycles, dtype=np.int64)
        else:
            caps = np.asarray(list(max_cycles), dtype=np.int64)
            if caps.shape != (len(traces),):
                raise ValueError("need one max_cycles per trace")
        if (caps < 1).any():
            raise ValueError(f"max_cycles must be >= 1, got {caps.min()}")

        prof = profile
        if prof is not None:
            prof.engine = "batched"
            _pns = time.perf_counter_ns
            _run_start = _pns()
            _ph_arr = _ph_inj = _ph_alloc = _ph_clock = 0
            _iters = 0
            _run_cycles = 0

        fam = self.family
        st = _BatchState(fam, traces, caps)
        st.profile = prof
        if prof is not None:
            _setup_done = _pns()
        while st.alive.any():
            if prof is not None:
                _t = _pns()
                _iters += 1
                _run_cycles += int(st.alive.sum())
            self._phase_arrivals(st)
            if prof is not None:
                _t2 = _pns()
                _ph_arr += _t2 - _t
                _t = _t2
            self._phase_injection(st)
            if prof is not None:
                _t2 = _pns()
                _ph_inj += _t2 - _t
                _t = _t2
            self._phase_alloc_traversal(st)
            if prof is not None:
                _t2 = _pns()
                _ph_alloc += _t2 - _t
                _t = _t2
            self._advance_clock(st)
            if prof is not None:
                _ph_clock += _pns() - _t

        if prof is not None:
            _final_start = _pns()
        out: list[SimStats] = []
        for r, trace in enumerate(traces):
            lo, hi = int(st.pkt_lo[r]), int(st.pkt_lo[r + 1])
            lat = st.lat[lo:hi]
            out.append(
                SimStats(
                    n_packets=int(st.n_pkts[r]),
                    n_flits=int(st.n_flits[r]),
                    cycles=int(st.cycles_out[r]),
                    packet_latencies=lat[lat >= 0].copy(),
                    link_flit_counts=st.link_counts[r].copy(),
                    router_flit_counts=st.router_counts[r].copy(),
                    drained=bool(st.delivered[r] == st.n_pkts[r]),
                )
            )
        if prof is not None:
            _end = _pns()
            # The scalar-replay fallback timed itself inside the alloc
            # phase window; subtract so the two phases partition it.
            _scalar = prof.phases.get("scalar_replay", 0)
            prof.add("setup", _setup_done - _run_start)
            prof.add("arrivals", _ph_arr)
            prof.add("injection", _ph_inj)
            prof.add("alloc_traversal", _ph_alloc - _scalar)
            prof.add("scalar_replay", 0)  # ensure the phase always reports
            prof.add("clock", _ph_clock)
            prof.add("finalize", _end - _final_start)
            prof.total_ns += _end - _run_start
            prof.bump("lockstep_iterations", _iters)
            prof.bump("run_cycles", _run_cycles)
        return out

    def dynamic_energy_j(self, stats: SimStats):
        """Family-cached per-flit energy accumulation.

        Bit-identical to
        :func:`repro.simulation.energy.sim_dynamic_energy_j` (same
        component order and float operations), but the DSENT per-flit
        figures are evaluated once per family instead of once per call.
        """
        from repro.analysis.power import NetworkEnergy

        router_jpf, link_jpf = self.family.energy_weights()
        router_j = 0.0
        for node, jpf in enumerate(router_jpf):
            router_j += float(stats.router_flit_counts[node]) * jpf
        link_j = 0.0
        for link_id, jpf in enumerate(link_jpf):
            link_j += float(stats.link_flit_counts[link_id]) * jpf
        return NetworkEnergy(router_dynamic_j=router_j, link_dynamic_j=link_j)

    # -- phase 1: link arrivals ---------------------------------------

    def _phase_arrivals(self, st: _BatchState) -> None:
        hits = np.nonzero(st.alive & (st.next_arr <= st.t))[0]
        if hits.size == 0:
            return
        parts: list[np.ndarray] = []
        bparts: list[np.ndarray] = []
        for b in hits:
            bi = int(b)
            chunks = st.arrivals[bi].pop(int(st.t[bi]))
            st.next_arr[bi] = min(st.arrivals[bi], default=_INF)
            rows = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            parts.append(rows)
            bparts.append(np.full(rows.shape[0], b, dtype=np.int64))
        rows = parts[0] if len(parts) == 1 else np.concatenate(parts)
        bb = _cat(bparts)
        st.push(bb, rows[:, 0], rows[:, 1], rows[:, 2], rows[:, 3])

    # -- phase 2: injection -------------------------------------------

    def _phase_injection(self, st: _BatchState) -> None:
        fam = self.family
        v = fam.n_vcs
        t_col = st.t[:, None]
        live = st.alive[:, None]
        can_start = (
            live & (st.pend_pkt < 0) & (st.next_q_time <= t_col)
        )
        if can_start.any():
            bb, nn = np.nonzero(can_start)
            base = fam.slot_lo[nn]
            # Idle-VC scan (free_vc): rotate by the node's last-used VC
            # and take the first idle one.
            cols = (st.pend_vc[bb, nn][:, None] + np.arange(v)[None, :]) % v
            slots = base[:, None] + cols
            idle = (st.buf_cnt[bb[:, None], slots] == 0) & (
                st.vc_out_op[bb[:, None], slots] < 0
            )
            first = np.argmax(idle, axis=1)
            ok = idle[np.arange(bb.size), first]
            if ok.any():
                bb, nn, first = bb[ok], nn[ok], first[ok]
                vc = (st.pend_vc[bb, nn] + first) % v
                pos = st.src_pos[bb, nn]
                st.pend_pkt[bb, nn] = st.q_pkt[pos]
                st.pend_fidx[bb, nn] = 0
                st.pend_vc[bb, nn] = vc
                st.src_pos[bb, nn] = pos + 1
                nxt = pos + 1
                more = nxt < st.q_hi[bb, nn]
                tnew = np.full(bb.size, _INF, dtype=np.int64)
                tnew[more] = st.p_time[st.q_pkt[nxt[more]]]
                st.next_q_time[bb, nn] = tnew
        pend = live & (st.pend_pkt >= 0)
        if pend.any():
            pb, pn = np.nonzero(pend)
            tgt = fam.slot_lo[pn] + st.pend_vc[pb, pn]
            space = st.buf_cnt[pb, tgt] < fam.vc_depth
            pb, pn, tgt = pb[space], pn[space], tgt[space]
            pkt = st.pend_pkt[pb, pn]
            fidx = st.pend_fidx[pb, pn]
            st.push(pb, tgt, pkt, fidx, st.t[pb] + fam.pipeline)
            done = fidx == st.p_size[pkt] - 1
            st.pend_pkt[pb[done], pn[done]] = -1
            st.pend_fidx[pb[~done], pn[~done]] = fidx[~done] + 1

    # -- phase 3: allocation & traversal ------------------------------

    def _phase_alloc_traversal(self, st: _BatchState) -> None:
        fam = self.family
        v, n_ops = fam.n_vcs, fam.n_ops
        ob, os_ = np.nonzero((st.buf_cnt > 0) & st.alive[:, None])
        if ob.size == 0:
            return
        h = st.buf_head[ob, os_]
        ready = st.buf_ready[ob, os_, h] <= st.t[ob]
        rb, rs = ob[ready], os_[ready]
        if rb.size == 0:
            return
        h = h[ready]
        hp = st.buf_pkt[rb, rs, h]

        # Snapshot round-robin / busy state: the pass must be repeatable
        # from pristine state for runs that take the exact-replay path.
        tmp_vc_rr = st.vc_rr.reshape(-1).copy()
        tmp_sa = st.sa_rr.reshape(-1).copy()
        tmp_busy = st.busy.copy()

        req_op = st.vc_out_op[rb, rs].copy()
        req_vc = st.vc_out_vc[rb, rs].copy()
        need = req_op < 0
        alloc_rows = np.nonzero(need)[0]
        if alloc_rows.size:
            nb, ns, np_ = rb[alloc_rows], rs[alloc_rows], hp[alloc_rows]
            rtr = fam.slot_router[ns]
            dst = st.p_dst[np_]
            local = rtr == dst
            lnk = fam.route_lut[rtr, dst]
            safe = np.where(local, 0, lnk)
            opx = np.where(local, fam.op_local[rtr], fam.op_of_link[safe])
            cls = np.where(
                local,
                0,
                np.where(
                    fam.link_express[safe],
                    1,
                    np.where(
                        fam.link_row[safe], st.cls_x[np_], st.cls_y[np_]
                    ),
                ),
            )
            lo = fam.vr_lo[cls, opx]
            span = fam.vr_span[cls, opx]
            # Same-cycle requesters of one output port allocate in scan
            # order (slot order): resolve rank-by-rank, every group in
            # parallel.
            gkey = nb * n_ops + opx
            order = np.argsort(gkey * np.int64(fam.n_slots + 1) + ns)
            got_vc = np.full(alloc_rows.size, -1, dtype=np.int64)
            gk_s = gkey[order]
            idx = np.arange(order.size)
            newg = np.ones(order.size, dtype=bool)
            newg[1:] = gk_s[1:] != gk_s[:-1]
            rank_s = idx - np.maximum.accumulate(np.where(newg, idx, 0))
            # The round-robin pointer advances once per same-cycle
            # requester, win or lose, so row r's pointer is its group's
            # start pointer plus r's scan rank — no serialization needed.
            rank = np.empty(order.size, dtype=np.int64)
            rank[order] = rank_s
            rrnow = (tmp_vc_rr[gkey] + rank) % v
            starts = np.nonzero(newg)[0]
            sizes = np.diff(np.append(starts, order.size))
            gfirst = gk_s[starts]
            tmp_vc_rr[gfirst] = (tmp_vc_rr[gfirst] + sizes) % v
            sink = fam.op_sink[opx]
            got_vc[sink] = 0  # ejection ports never conflict
            ns_rows = np.nonzero(~sink)[0]
            if ns_rows.size:
                # Busy/credit scan windows for every non-sink row, built
                # once: column j of row r is VC index lo + (s0 + j) % span.
                # Only the busy mask couples requesters of one output
                # port, so the rank loop is a single masked argmax.
                b_k = nb[ns_rows]
                sp_k = span[ns_rows][:, None]
                s0 = (rrnow[ns_rows] % span[ns_rows])[:, None]
                i = np.arange(v)[None, :]
                vc_mat = lo[ns_rows][:, None] + (s0 + i) % sp_k
                op_base = opx[ns_rows] * v
                osl_mat = op_base[:, None] + vc_mat
                pre_ok = (i < sp_k) & (st.credits[b_k[:, None], osl_mat] > 0)
                rnk_ns = rank[ns_rows]
                rorder = np.argsort(rnk_ns, kind="stable")
                bounds = np.searchsorted(
                    rnk_ns[rorder], np.arange(int(rnk_ns.max()) + 2)
                )
                for k in range(bounds.size - 1):
                    sel = rorder[bounds[k] : bounds[k + 1]]
                    if sel.size == 0:
                        continue
                    osl_k = osl_mat[sel]
                    free = pre_ok[sel] & ~tmp_busy[b_k[sel][:, None], osl_k]
                    first = np.argmax(free, axis=1)
                    hit = free[np.arange(sel.size), first]
                    win = sel[hit]
                    vc_idx = vc_mat[win, first[hit]]
                    tmp_busy[b_k[win], op_base[win] + vc_idx] = True
                    got_vc[ns_rows[win]] = vc_idx
            okrows = got_vc >= 0
            req_op[alloc_rows[okrows]] = opx[okrows]
            req_vc[alloc_rows[okrows]] = got_vc[okrows]
            alloc_rows = alloc_rows[okrows]  # successful allocations

        # Request set: allocated + downstream space (can_send).
        have = req_op >= 0
        osl_all = req_op * v + req_vc
        can = have & (
            fam.op_sink[np.where(have, req_op, 0)]
            | (st.credits[rb, np.where(have, osl_all, 0)] > 0)
        )
        qrows = np.nonzero(can)[0]
        g = np.zeros(0, dtype=np.int64)
        if qrows.size:
            grants = self._switch_alloc(
                st, fam, rb[qrows], rs[qrows], req_op[qrows], tmp_sa
            )
            g = qrows[grants]

        # Exactness guard: a credit return that turns 0 credits into 1
        # at a *higher-numbered* router changes what that router would
        # have done — replay such runs scalar, in ascending node order,
        # from the untouched state.
        if g.size:
            gs_g = rs[g]
            en = fam.up_enab[gs_g] & (
                st.credits[rb[g], fam.up_safe[gs_g]] == 0
            )
        else:
            en = np.zeros(0, dtype=bool)
        if not en.any():
            # Common case: no run needs the sequential replay — adopt the
            # pass's round-robin state wholesale and commit.
            st.vc_rr = tmp_vc_rr.reshape(st.vc_rr.shape)
            st.sa_rr = tmp_sa.reshape(st.sa_rr.shape)
            st.busy = tmp_busy
            if alloc_rows.size:
                st.vc_out_op[rb[alloc_rows], rs[alloc_rows]] = req_op[
                    alloc_rows
                ]
                st.vc_out_vc[rb[alloc_rows], rs[alloc_rows]] = req_vc[
                    alloc_rows
                ]
            if g.size:
                self._commit_grants(
                    st, fam, rb[g], rs[g], req_op[g], req_vc[g], hp[g]
                )
            return

        flagged = np.zeros(st.alive.size, dtype=bool)
        flagged[np.unique(rb[g][en])] = True
        okrun = ~flagged
        st.vc_rr[okrun] = tmp_vc_rr.reshape(st.vc_rr.shape)[okrun]
        st.sa_rr[okrun] = tmp_sa.reshape(st.sa_rr.shape)[okrun]
        st.busy[okrun] = tmp_busy[okrun]
        if alloc_rows.size:
            ar = alloc_rows[okrun[rb[alloc_rows]]]
            st.vc_out_op[rb[ar], rs[ar]] = req_op[ar]
            st.vc_out_vc[rb[ar], rs[ar]] = req_vc[ar]
        gm = okrun[rb[g]]
        self._commit_grants(
            st, fam, rb[g][gm], rs[g][gm], req_op[g][gm], req_vc[g][gm],
            hp[g][gm],
        )
        replays = np.nonzero(flagged)[0]
        if st.profile is not None:
            _rt = time.perf_counter_ns()
        for b in replays:
            self._phase3_scalar(st, int(b))
        if st.profile is not None:
            st.profile.add("scalar_replay", time.perf_counter_ns() - _rt)
            st.profile.bump("scalar_replay_cycles", int(replays.size))

    def _switch_alloc(self, st, fam, qb, qs, qop, tmp_sa) -> np.ndarray:
        """Exact switch allocation over the request set.

        Groups requests by (run, output port); within a router, groups
        are processed in first-requester order (the interpreter's
        ``requests`` dict insertion order) rank by rank, so the
        ``input_used`` filtering — an input port granted by an earlier
        output port drops out of later candidate lists, changing both
        the pick index and the round-robin bump — is reproduced exactly.
        Rank 0 (each router's first output port) sees no filtering and
        takes a direct pick. Returns granted row indices into ``q*``.
        """
        n_ops, n_ports, stride = fam.n_ops, fam.n_ports, fam.n_slots + 1
        gkey = qb * n_ops + qop
        order2 = np.argsort(gkey * stride + qs)
        gk_s = gkey[order2]
        newg = np.ones(order2.size, dtype=bool)
        newg[1:] = gk_s[1:] != gk_s[:-1]
        starts = np.nonzero(newg)[0]
        sizes = np.diff(np.append(starts, order2.size))
        gkeys = gk_s[starts]
        first_slot = qs[order2[starts]]
        rkey = (gkeys // n_ops) * fam.n_nodes + fam.slot_router[first_slot]
        gorder = np.argsort(rkey * stride + first_slot)
        rk_s = rkey[gorder]
        gnew = np.ones(gorder.size, dtype=bool)
        gnew[1:] = rk_s[1:] != rk_s[:-1]
        gi = np.arange(gorder.size)
        grank = gi - np.maximum.accumulate(np.where(gnew, gi, 0))
        max_rank = int(grank.max())

        used = st.used_scratch
        pkey2 = qb[order2] * n_ports + fam.slot_port[qs[order2]]
        out: list[np.ndarray] = []
        for k in range(max_rank + 1):
            sel = gorder[grank == k]
            s_k, z_k = starts[sel], sizes[sel]
            if k == 0:
                pick = tmp_sa[gkeys[sel]] % z_k
                tmp_sa[gkeys[sel]] = (pick + 1) % z_k
                winpos = s_k + pick
            else:
                total = int(z_k.sum())
                offs = np.cumsum(z_k) - z_k
                rows = np.repeat(s_k - offs, z_k) + np.arange(total)
                avail = (~used[pkey2[rows]]).astype(np.int64)
                cnt = np.add.reduceat(avail, offs)
                pre = np.cumsum(avail) - avail
                seg_ex = pre - np.repeat(pre[offs], z_k)
                have = cnt > 0
                pick = tmp_sa[gkeys[sel]] % np.maximum(cnt, 1)
                hk = gkeys[sel][have]
                tmp_sa[hk] = (pick[have] + 1) % cnt[have]
                winpos = rows[
                    (avail > 0) & (seg_ex == np.repeat(pick, z_k))
                ]
            used[pkey2[winpos]] = True
            out.append(order2[winpos])
        grants = _cat(out)
        used[qb[grants] * n_ports + fam.slot_port[qs[grants]]] = False
        return grants

    def _commit_grants(self, st, fam, gb, gs, gop, gvc, gp) -> None:
        """Apply one cycle's granted flit movements (vectorized runs)."""
        if gb.size == 0:
            return
        v, d = fam.n_vcs, fam.vc_depth
        gf = st.buf_fidx[gb, gs, st.buf_head[gb, gs]]
        tail = gf == st.p_size[gp] - 1
        st.buf_head[gb, gs] = (st.buf_head[gb, gs] + 1) % d
        st.buf_cnt[gb, gs] -= 1
        st.vc_out_op[gb[tail], gs[tail]] = -1
        np.add.at(st.router_counts, (gb, fam.slot_router[gs]), 1)
        sink = fam.op_sink[gop]
        osl = gop * v + gvc
        ns = ~sink
        np.add.at(st.credits, (gb[ns], osl[ns]), -1)
        rel = ns & tail
        st.busy[gb[rel], osl[rel]] = False
        ret = fam.up_oslot[gs] >= 0
        np.add.at(st.credits, (gb[ret], fam.up_oslot[gs[ret]]), 1)
        ej = sink & tail
        if ej.any():
            pid = gp[ej]
            st.lat[pid] = st.t[gb[ej]] + 1 - st.p_time[pid]
            np.add.at(st.delivered, gb[ej], 1)
        if ns.any():
            sb, sp_, svc = gb[ns], gp[ns], gvc[ns]
            lnk = fam.op_link[gop[ns]]
            np.add.at(st.link_counts, (sb, lnk), 1)
            exp = fam.link_express[lnk]
            if exp.any():
                row = fam.link_row[lnk]
                st.cls_x[sp_[exp & row]] = 1
                st.cls_y[sp_[exp & ~row]] = 1
            arr = st.t[sb] + fam.link_cyc[lnk]
            rows = np.stack(
                [
                    fam.dest_slot[lnk] + svc,
                    sp_,
                    gf[ns],
                    arr + fam.pipeline,
                ],
                axis=1,
            )
            order = np.argsort(sb * np.int64(2**32) + arr)
            sb_s, arr_s = sb[order], arr[order]
            bnd = (
                np.nonzero(
                    (sb_s[1:] != sb_s[:-1]) | (arr_s[1:] != arr_s[:-1])
                )[0]
                + 1
            )
            starts = np.concatenate(([0], bnd, [order.size]))
            for i in range(starts.size - 1):
                s0, s1 = int(starts[i]), int(starts[i + 1])
                bi, at = int(sb_s[s0]), int(arr_s[s0])
                st.arrivals[bi].setdefault(at, []).append(
                    rows[order[s0:s1]]
                )
                if at < st.next_arr[bi]:
                    st.next_arr[bi] = at

    def _phase3_scalar(self, st: _BatchState, b: int) -> None:
        """Exact sequential replay of one run-cycle (ascending routers).

        The rare path: taken only when a same-cycle credit return
        enables a higher-numbered router. Mirrors the interpreter's
        phase-3 loop statement by statement over the flat arrays.
        """
        fam = self.family
        occ = np.nonzero(st.buf_cnt[b])[0]
        routers = fam.slot_router[occ]
        start = 0
        while start < occ.size:
            end = start
            r = routers[start]
            while end < occ.size and routers[end] == r:
                end += 1
            self._router_scalar(st, b, occ[start:end])
            start = end

    def _router_scalar(self, st: _BatchState, b: int, slots) -> None:
        fam = self.family
        v = fam.n_vcs
        tb = int(st.t[b])
        requests: dict[int, list[int]] = {}
        for s in map(int, slots):
            h = int(st.buf_head[b, s])
            if st.buf_ready[b, s, h] > tb:
                continue
            pkt = int(st.buf_pkt[b, s, h])
            op = int(st.vc_out_op[b, s])
            if op < 0:
                rtr = int(fam.slot_router[s])
                dst = int(st.p_dst[pkt])
                if rtr == dst:
                    op_t = int(fam.op_local[rtr])
                else:
                    op_t = int(fam.op_of_link[fam.route_lut[rtr, dst]])
                rr = int(st.vc_rr[b, op_t])
                st.vc_rr[b, op_t] = (rr + 1) % v
                if fam.op_sink[op_t]:
                    got = 0
                else:
                    lnk = int(fam.op_link[op_t])
                    if fam.link_express[lnk]:
                        cls = 1
                    elif fam.link_row[lnk]:
                        cls = int(st.cls_x[pkt])
                    else:
                        cls = int(st.cls_y[pkt])
                    lo = int(fam.vr_lo[cls, op_t])
                    span = int(fam.vr_span[cls, op_t])
                    got = -1
                    base = op_t * v
                    for i in range(span):
                        idx = lo + (rr + i) % span
                        if not st.busy[b, base + idx] and (
                            st.credits[b, base + idx] > 0
                        ):
                            st.busy[b, base + idx] = True
                            got = idx
                            break
                    if got < 0:
                        continue
                st.vc_out_op[b, s] = op_t
                st.vc_out_vc[b, s] = got
                op = op_t
            ovc = int(st.vc_out_vc[b, s])
            if fam.op_sink[op] or st.credits[b, op * v + ovc] > 0:
                requests.setdefault(op, []).append(s)

        input_used: set[int] = set()
        for op, cands in requests.items():
            cands = [
                s for s in cands if int(fam.slot_port[s]) not in input_used
            ]
            if not cands:
                continue
            pick = int(st.sa_rr[b, op]) % len(cands)
            s = cands[pick]
            st.sa_rr[b, op] = (pick + 1) % len(cands)
            input_used.add(int(fam.slot_port[s]))
            h = int(st.buf_head[b, s])
            pkt = int(st.buf_pkt[b, s, h])
            fidx = int(st.buf_fidx[b, s, h])
            st.buf_head[b, s] = (h + 1) % fam.vc_depth
            st.buf_cnt[b, s] -= 1
            tail = fidx == int(st.p_size[pkt]) - 1
            ovc = int(st.vc_out_vc[b, s])
            if tail:
                st.vc_out_op[b, s] = -1
            st.router_counts[b, fam.slot_router[s]] += 1
            osl = op * v + ovc
            if not fam.op_sink[op]:
                st.credits[b, osl] -= 1
                if tail:
                    st.busy[b, osl] = False
            up = int(fam.up_oslot[s])
            if up >= 0:
                st.credits[b, up] += 1
            if fam.op_sink[op]:
                if tail:
                    st.lat[pkt] = tb + 1 - int(st.p_time[pkt])
                    st.delivered[b] += 1
            else:
                lnk = int(fam.op_link[op])
                st.link_counts[b, lnk] += 1
                if fam.link_express[lnk]:
                    if fam.link_row[lnk]:
                        st.cls_x[pkt] = 1
                    else:
                        st.cls_y[pkt] = 1
                arr = tb + int(fam.link_cyc[lnk])
                row = np.asarray(
                    [[int(fam.dest_slot[lnk]) + ovc, pkt, fidx,
                      arr + fam.pipeline]],
                    dtype=np.int64,
                )
                st.arrivals[b].setdefault(arr, []).append(row)
                if arr < st.next_arr[b]:
                    st.next_arr[b] = arr

    # -- phase 4: clock, termination, fast-forward --------------------

    def _advance_clock(self, st: _BatchState) -> None:
        alive = st.alive
        st.t[alive] += 1
        no_pend = ~(st.pend_pkt >= 0).any(axis=1)
        exhausted = (st.src_pos >= st.q_hi).all(axis=1)
        done = (
            alive & (st.delivered == st.n_pkts) & no_pend & exhausted
        )
        if done.any():
            st.alive[done] = False
            st.cycles_out[done] = st.t[done]
        min_nq = st.next_q_time.min(axis=1)
        idle = (
            st.alive
            & no_pend
            & ~(st.buf_cnt > 0).any(axis=1)
            & (min_nq >= st.t)
        )
        for bi in map(int, np.nonzero(idle)[0]):
            # Idle run: every cycle until the next link arrival or
            # injection release is a no-op; jump the clock there.
            nxt = min(int(st.caps[bi]), int(st.next_arr[bi]), int(min_nq[bi]))
            if nxt > st.t[bi]:
                st.t[bi] = nxt
        capped = st.alive & (st.t >= st.caps)
        if capped.any():
            st.alive[capped] = False
            st.cycles_out[capped] = st.t[capped]
