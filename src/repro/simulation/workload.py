"""Open-loop synthetic workloads for the cycle simulator.

Besides trace mode (the paper's Section IV), NoC evaluations classically
sweep an *open-loop* injection process: every node injects packets as a
Bernoulli process at a target rate, destinations drawn from a traffic
matrix. This module synthesizes such workloads as finite traces (with a
measurement window long enough for steady state) and provides the
latency-vs-offered-load sweep used to locate network saturation — the
regime the paper argues optical links are built for ("Optical links ...
typically show good performance at high injection rates").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.simulator import SimConfig, Simulator
from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.trace import MAX_PACKET_FLITS, PacketRecord, Trace
from repro.util.rng import SeedLike, ensure_rng

__all__ = ["synthetic_trace", "LoadPoint", "latency_throughput_sweep"]


def synthetic_trace(
    traffic: TrafficMatrix,
    *,
    injection_rate: float,
    cycles: int,
    packet_flits: int = 1,
    seed: SeedLike = 0,
    name: str | None = None,
) -> Trace:
    """Bernoulli open-loop injection trace.

    Each cycle, node ``s`` starts a new packet with probability
    ``injection_rate * weight_s / packet_flits`` (so the *flit* injection
    rate matches ``injection_rate``), destination drawn from the node's row
    of ``traffic``.

    Args:
        traffic: destination distribution (per-row weights; absolute scale
            sets relative per-node injection shares).
        injection_rate: mean flits/node/cycle (the paper's r).
        cycles: injection window length.
        packet_flits: packet size (1 or up to 32 to match the paper).
        seed: RNG seed.
        name: optional trace name.
    """
    if not 0 < injection_rate <= 1:
        raise ValueError(f"injection rate must be in (0, 1], got {injection_rate}")
    if cycles < 1:
        raise ValueError(f"need >= 1 cycle, got {cycles}")
    if not 1 <= packet_flits <= MAX_PACKET_FLITS:
        raise ValueError(
            f"packet size must be 1..{MAX_PACKET_FLITS}, got {packet_flits}"
        )
    rng = ensure_rng(seed)
    n = traffic.n_nodes
    tm = traffic.scaled_to_injection_rate(injection_rate)
    rates = tm.injection_rates() / packet_flits  # packets/node/cycle
    if np.any(rates > 1.0):
        raise ValueError(
            "per-node packet rate exceeds 1/cycle; lower the injection rate"
        )
    dest_probs = np.divide(
        tm.matrix,
        tm.matrix.sum(axis=1, keepdims=True),
        out=np.zeros_like(tm.matrix),
        where=tm.matrix.sum(axis=1, keepdims=True) > 0,
    )

    records: list[PacketRecord] = []
    for s in range(n):
        if rates[s] <= 0:
            continue
        # Geometric inter-arrival sampling is O(packets), not O(cycles).
        t = int(rng.geometric(min(1.0, rates[s]))) - 1
        while t < cycles:
            # No self-draw filtering needed: TrafficMatrix enforces a zero
            # diagonal, so dest_probs[s][s] == 0 and every draw is a real
            # injection — the effective rate matches the requested one.
            d = int(rng.choice(n, p=dest_probs[s]))
            records.append(PacketRecord(t, s, d, packet_flits))
            t += int(rng.geometric(min(1.0, rates[s])))
    return Trace(
        n,
        records,
        name=name or f"synthetic-r{injection_rate:g}-p{packet_flits}",
    )


@dataclass(frozen=True)
class LoadPoint:
    """One point of a latency-throughput sweep."""

    injection_rate: float
    avg_latency: float
    p99_latency: float
    drained: bool
    """False once the cycle budget is exhausted — past saturation."""


def latency_throughput_sweep(
    topo: Topology,
    traffic: TrafficMatrix,
    injection_rates: np.ndarray,
    *,
    cycles: int = 2000,
    packet_flits: int = 1,
    config: SimConfig = SimConfig(),
    routing: RoutingTable | None = None,
    seed: SeedLike = 0,
    drain_budget: int = 200_000,
) -> list[LoadPoint]:
    """Average latency vs offered load (the classic NoC saturation curve).

    Each rate gets an independent Bernoulli workload over ``cycles``
    injection cycles; the network then drains within ``drain_budget``
    cycles or the point is marked saturated (``drained=False``).
    """
    rates = np.asarray(injection_rates, dtype=np.float64)
    if rates.ndim != 1 or rates.size == 0:
        raise ValueError("injection_rates must be a non-empty 1-D array")
    rt = routing if routing is not None else RoutingTable(topo)
    sim = Simulator(topo, rt, config)
    points: list[LoadPoint] = []
    rng = ensure_rng(seed)
    for rate in rates:
        trace = synthetic_trace(
            traffic,
            injection_rate=float(rate),
            cycles=cycles,
            packet_flits=packet_flits,
            seed=rng,
        )
        stats = sim.run(trace, max_cycles=cycles + drain_budget)
        points.append(
            LoadPoint(
                injection_rate=float(rate),
                avg_latency=stats.avg_latency,
                p99_latency=stats.p99_latency,
                drained=stats.drained,
            )
        )
    return points
