"""Cycle-accurate trace-driven NoC simulator (BookSim-2.0-class substrate).

Implements the microarchitecture of the paper's Table II on any
:class:`~repro.topology.graph.Topology`:

* wormhole switching with 4 virtual channels x 8-flit buffers per input
  port and credit-based backpressure;
* a 3-stage router pipeline, charged as a fixed delay between a flit's
  arrival and its eligibility for switch allocation;
* per-cycle round-robin VC allocation (head flits) and switch allocation
  (one flit per output port and per input port per cycle);
* link latencies of 1 cycle (electronic) / 2 cycles (optical, the extra
  cycle being the receiver's O-E conversion) — exactly the paper's values;
* deterministic oblivious X-Y + express routing shared with the analytical
  pipeline via :class:`~repro.topology.routing.RoutingTable`;
* trace mode: packets injected at their recorded cycles from unbounded
  source queues, as BookSim's trace mode does.

Simplifications relative to BookSim (documented, load-insensitive at the
paper's operating points): credits return instantly rather than after a
1-cycle credit delay, and the 3 pipeline stages are not individually
stallable — contention is resolved at the switch-allocation point.

Performance notes (per the HPC guides: measure, then optimize the loop that
matters — ``repro bench run --name simulator_run`` is the measurement): per
cycle the simulator touches only *occupied* VCs of *active* routers and only
sources with injection work, so cost scales with in-flight flits rather than
network size. The hot loop additionally works off precomputed per-link
tables (destination, express flag, dateline VC ranges), a memoized route
cache shared across runs, flattened per-router VC scan lists, plain-int
statistics counters (converted to numpy once at the end) and a preallocated
latency buffer, and fast-forwards over event-free stretches of the clock.
All of this is observably identical to the straightforward loop — scan
order, round-robin state and heap tie-breaks are preserved bit-for-bit
(``tests/unit/test_simulator_golden.py`` pins that).
"""

from __future__ import annotations

import heapq
import math
import time
from bisect import insort
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.simulation.flit import Flit, Packet
from repro.simulation.router import LOCAL_PORT, RouterState
from repro.tech.parameters import Technology
from repro.topology.graph import LinkKind, Topology
from repro.topology.routing import RoutingTable
from repro.traffic.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (telemetry -> sim)
    from repro.control.controllers import ControlSession, ControlTrace
    from repro.control.sources import ClosedLoopSession, ClosedLoopStats
    from repro.obs.profile import PhaseProfile
    from repro.telemetry.sampler import TelemetryConfig, TelemetryTrace

__all__ = ["SimConfig", "SimStats", "Simulator"]


@dataclass(frozen=True)
class SimConfig:
    """Simulator microarchitecture parameters (defaults: paper Table II)."""

    n_vcs: int = 4
    vc_depth: int = 8
    router_pipeline: int = 3
    electronic_link_cycles: int = 1
    optical_link_cycles: int = 2

    def __post_init__(self) -> None:
        if self.n_vcs < 1 or self.vc_depth < 1:
            raise ValueError(f"VC config must be >= 1: {self}")
        if self.router_pipeline < 1:
            raise ValueError(f"pipeline must be >= 1, got {self.router_pipeline}")
        if self.electronic_link_cycles < 1 or self.optical_link_cycles < 1:
            raise ValueError(f"link latencies must be >= 1: {self}")

    def link_cycles(self, technology: Technology) -> int:
        """Traversal cycles for a link of ``technology``."""
        if technology is Technology.ELECTRONIC:
            return self.electronic_link_cycles
        return self.optical_link_cycles


@dataclass
class SimStats:
    """Results of one simulation run."""

    n_packets: int
    n_flits: int
    cycles: int
    packet_latencies: np.ndarray
    """Per-packet injection-to-tail-ejection latency, cycles."""
    link_flit_counts: np.ndarray
    """Flit traversals per link (for energy accounting)."""
    router_flit_counts: np.ndarray
    """Flit traversals per router."""
    drained: bool
    """True if every injected packet was delivered before the cycle limit."""
    telemetry: "TelemetryTrace | None" = None
    """Windowed activity samples (only when the run requested telemetry)."""
    closed_loop: "ClosedLoopStats | None" = None
    """Request/reply accounting (only for closed-loop runs)."""
    control: "ControlTrace | None" = None
    """Recorded controller actions (only when a control session ran)."""

    @property
    def avg_latency(self) -> float:
        """Mean packet latency, cycles (the paper's Fig. 6 metric).

        ``nan`` when no packet was delivered (a fully saturated or empty
        run) so sweeps past saturation report rather than crash; check
        :attr:`drained` to distinguish saturation from success.
        """
        if self.packet_latencies.size == 0:
            return math.nan
        return float(self.packet_latencies.mean())

    @property
    def p99_latency(self) -> float:
        """99th-percentile packet latency, cycles (``nan`` if none
        delivered, as for :attr:`avg_latency`)."""
        if self.packet_latencies.size == 0:
            return math.nan
        return float(np.percentile(self.packet_latencies, 99))

    @property
    def avg_hops(self) -> float:
        """Mean link traversals per flit."""
        if self.n_flits == 0:
            return 0.0
        return float(self.link_flit_counts.sum() / self.n_flits)


class Simulator:
    """Trace-driven cycle simulator over one topology."""

    def __init__(
        self,
        topo: Topology,
        routing: RoutingTable | None = None,
        config: SimConfig = SimConfig(),
    ) -> None:
        self.topology = topo
        self.routing = routing if routing is not None else RoutingTable(topo)
        if self.routing.topology is not topo:
            raise ValueError("routing table belongs to a different topology")
        self.config = config
        self._in_keys: dict[int, list[int]] = {n: [] for n in range(topo.n_nodes)}
        self._out_keys: dict[int, list[int]] = {n: [] for n in range(topo.n_nodes)}
        for link in topo.links:
            self._in_keys[link.dst].append(link.link_id)
            self._out_keys[link.src].append(link.link_id)
        # Row (X-phase) vs column (Y-phase) links: torus-like dependency
        # cycles live within one dimension's line graphs, so the dateline
        # scheme partitions each dimension independently and only when that
        # dimension actually has express links.
        self._is_row_link = [
            topo.coords(l.src)[1] == topo.coords(l.dst)[1] for l in topo.links
        ]
        self._row_has_express = any(
            l.kind is LinkKind.EXPRESS and self._is_row_link[l.link_id]
            for l in topo.links
        )
        self._col_has_express = any(
            l.kind is LinkKind.EXPRESS and not self._is_row_link[l.link_id]
            for l in topo.links
        )
        self._routers: list[RouterState] = []
        # Hot-loop tables (immutable per simulator): per-link destination /
        # source nodes, express flags, per-class dateline VC ranges, and a
        # (node, dst) -> out-port cache memoizing RoutingTable.next_link.
        self._link_dst = [l.dst for l in topo.links]
        self._link_src = [l.src for l in topo.links]
        self._link_is_express = [l.kind is LinkKind.EXPRESS for l in topo.links]
        self._vc_range_tab = (
            [self._vc_range(0, l.link_id) for l in topo.links],
            [self._vc_range(1, l.link_id) for l in topo.links],
        )
        self._route_cache: dict[tuple[int, int], int] = {}

    def _fresh_routers(self) -> list[RouterState]:
        """Build pristine router state (run() starts from a cold network)."""
        return [
            RouterState(
                node,
                self._in_keys[node],
                self._out_keys[node],
                n_vcs=self.config.n_vcs,
                vc_depth=self.config.vc_depth,
            )
            for node in range(self.topology.n_nodes)
        ]

    def _route_out_port(self, node: int, packet: Packet) -> int:
        """Output port key (link id or LOCAL_PORT) for ``packet`` at ``node``."""
        if node == packet.dst:
            return LOCAL_PORT
        key = (node, packet.dst)
        out = self._route_cache.get(key)
        if out is None:
            out = self.routing.next_link(node, packet.dst).link_id
            self._route_cache[key] = out
        return out

    def _vc_range(self, vc_class: int, out_key: int) -> tuple[int, int] | None:
        """Dateline VC partition for a packet class (None = all VCs).

        Express shortest-path detours create torus-like cyclic channel
        dependencies, but each cycle lives entirely within one dimension's
        line graph (X-Y routing has no Y->X turns, so a row cycle cannot
        thread through column links and vice versa). Hence: links of a
        dimension that has express links are partitioned half/half by that
        dimension's dateline class; everything else (ejection, the other
        dimension) keeps all VCs. Plain meshes route monotonically and are
        never partitioned. With fewer than 2 VCs there is nothing to
        partition (accepted theoretical risk, as in BookSim's own torus
        configurations).
        """
        n = self.config.n_vcs
        if n < 2 or out_key == LOCAL_PORT:
            return None
        if self._is_row_link[out_key]:
            if not self._row_has_express:
                return None
        elif not self._col_has_express:
            return None
        half = n // 2
        return (0, half) if vc_class == 0 else (half, n)

    def run(
        self,
        trace: Trace,
        *,
        max_cycles: int = 2_000_000,
        telemetry: "TelemetryConfig | None" = None,
        closed_loop: "ClosedLoopSession | None" = None,
        control: "ControlSession | None" = None,
        profile: "PhaseProfile | None" = None,
    ) -> SimStats:
        """Simulate a trace until drained or ``max_cycles`` is reached.

        With ``telemetry`` set, windowed activity samples are collected
        (see :mod:`repro.telemetry.sampler`) and attached to the returned
        :attr:`SimStats.telemetry`. Sampling never changes simulation
        behaviour — all counters, schedules and round-robin state are
        identical with or without it — and costs O(network size) per
        *window*, not per cycle; disabled, it reduces to one integer
        comparison per cycle against an unreachable sentinel.

        ``closed_loop`` attaches a request/reply session
        (:class:`repro.control.ClosedLoopSession`): its demand packets are
        released subject to the per-source outstanding-request window, a
        delivered request generates a reply at the destination, and a
        delivered reply returns the source's credit. ``trace`` packets
        still inject open-loop alongside (pass an empty trace for a pure
        closed-loop run).

        ``control`` attaches an online controller session
        (:class:`repro.control.ControlSession`) observing the telemetry
        windows as they close and actuating the injection throttle gate
        and per-node injection-VC limits at window boundaries. Telemetry
        is implied (a session with the controller's window is created
        when ``telemetry`` is None; an explicit window must match).

        ``profile`` attaches an opt-in per-phase timer
        (:class:`repro.obs.profile.PhaseProfile`): chained
        ``perf_counter_ns`` timestamps charge each stretch of the cycle
        loop to its phase (arrivals / injection / vc_alloc /
        switch_alloc / drain), so the phase sum tracks the run's wall
        time. Profiling never touches simulation state — outputs stay
        bit-identical — and disabled it costs one ``is not None`` check
        per phase boundary.

        With everything disabled (the default), outputs are bit-identical
        to a plain run — the golden tests pin that.
        """
        if trace.n_nodes != self.topology.n_nodes:
            raise ValueError(
                f"trace has {trace.n_nodes} nodes, topology has "
                f"{self.topology.n_nodes}"
            )
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        prof = profile
        if prof is not None:
            prof.engine = "interpreter"
            _pns = time.perf_counter_ns
            _run_start = _pns()
            _ph_arr = _ph_inj = _ph_vc = _ph_sw = _ph_drain = 0
            _iters = 0
        if control is not None and telemetry is None:
            from repro.telemetry.sampler import TelemetryConfig

            telemetry = TelemetryConfig(window=control.window)
        if telemetry is not None:
            from repro.telemetry.sampler import TelemetrySession

            if control is not None and control.window != telemetry.window:
                raise ValueError(
                    f"control window {control.window} != telemetry window "
                    f"{telemetry.window}; controllers act on the sampled grid"
                )
            session = TelemetrySession(
                telemetry,
                self.topology.n_nodes,
                self.topology.n_links,
                observer=None if control is None else control.observe,
            )
            telem_next = session.next_boundary
        else:
            session = None
            telem_next = max_cycles + 1  # unreachable sentinel: never flushes

        cfg = self.config
        topo = self.topology
        pipeline = cfg.router_pipeline
        links = topo.links
        n_nodes = topo.n_nodes
        link_tech_cycles = [cfg.link_cycles(l.technology) for l in links]
        # Statistics as plain ints in the loop; one numpy conversion at the
        # end (per-element ndarray increments cost ~10x a list index).
        link_counts = [0] * topo.n_links
        router_counts = [0] * n_nodes
        self._routers = self._fresh_routers()
        routers = self._routers

        # Hot-loop locals: every name below is looked up once, not per cycle.
        link_dst = self._link_dst
        link_src = self._link_src
        link_is_express = self._link_is_express
        is_row_link = self._is_row_link
        vc_range_cls0, vc_range_cls1 = self._vc_range_tab
        route_cache = self._route_cache
        route_out_port = self._route_out_port
        heappush = heapq.heappush
        heappop = heapq.heappop

        # Static per-router scan lists in exactly the order the original
        # nested loop visited VCs (in_ports insertion order x VC index).
        # Occupancy is tracked as one bitmask per router (bit i == scan
        # slot i holds flits), maintained at the three push/pop sites, so
        # the per-cycle scan walks only *occupied* VCs — and ascending bit
        # order reproduces the original scan order exactly.
        vc_scan = [
            [
                (in_key, vc_idx, vc, vc.flits)
                for in_key, in_port in r.in_ports.items()
                for vc_idx, vc in enumerate(in_port.vcs)
            ]
            for r in routers
        ]
        n_vcs = cfg.n_vcs
        port_base: list[dict[int, int]] = [
            {in_key: i * n_vcs for i, in_key in enumerate(r.in_ports)}
            for r in routers
        ]
        occ_mask = [0] * n_nodes
        in_vcs = [{k: p.vcs for k, p in r.in_ports.items()} for r in routers]

        packets = [
            Packet(
                packet_id=i,
                src=rec.src,
                dst=rec.dst,
                size_flits=rec.size_flits,
                inject_time=rec.time,
            )
            for i, rec in enumerate(trace.packets)
        ]
        n_flits = trace.total_flits
        if closed_loop is not None:
            # The session releases each source's first window of requests
            # up front; later releases arrive from the delivery hook.
            initial = closed_loop.begin(len(packets), self.topology.n_nodes)
            packets.extend(initial)
            n_flits += sum(p.size_flits for p in initial)
        n_packets = len(packets)
        # Preallocated latency buffer, filled at ejection; -1 = in flight.
        lat_buf = np.full(max(n_packets, 1), -1, dtype=np.int64)
        source_queues: list[list[Packet]] = [[] for _ in range(n_nodes)]
        for pkt in packets:
            source_queues[pkt.src].append(pkt)
        if closed_loop is not None:
            # Closed-loop releases interleave with any open-loop packets;
            # per-source queues must stay time-sorted (stable, so the
            # open-loop-only order is untouched).
            for q in source_queues:
                q.sort(key=lambda p: p.inject_time)
        src_pos = [0] * n_nodes
        pending_flit: list[Flit | None] = [None] * n_nodes
        pending_vc = [0] * n_nodes

        # Injection wake-ups: (time, node) events to (re)activate sources.
        wakeups: list[tuple[int, int]] = sorted(
            {(q[0].inject_time, n) for n, q in enumerate(source_queues) if q}
        )
        heapq.heapify(wakeups)
        inj_active: set[int] = set()

        def register_packet(pkt: Packet) -> None:
            """Admit a session-released packet (request or reply) mid-run."""
            nonlocal n_packets, n_flits, lat_buf
            if pkt.packet_id != n_packets:  # pragma: no cover - invariant
                raise RuntimeError("closed-loop packet ids must be sequential")
            n_packets += 1
            n_flits += pkt.size_flits
            packets.append(pkt)
            if pkt.packet_id >= lat_buf.shape[0]:
                lat_buf = np.concatenate(
                    [lat_buf, np.full(lat_buf.shape[0], -1, dtype=np.int64)]
                )
            node = pkt.src
            # Keep the unconsumed queue suffix time-sorted: a release at
            # cycle t may precede an already-queued future injection.
            insort(
                source_queues[node],
                pkt,
                lo=src_pos[node],
                key=lambda p: p.inject_time,
            )
            if node not in inj_active:
                heappush(wakeups, (pkt.inject_time, node))

        # Control actuator state (constants when no control session runs):
        # throttle_period gates *new-packet* starts to every Nth cycle,
        # vc_limits restricts the injection VCs usable per node.
        throttle_period = 1
        vc_limits: list[int] | None = None
        if control is not None:
            throttle_period = control.throttle_period
            vc_limits = control.vc_limits

        # Link pipeline: min-heap of (arrival, seq, flit, link_id, vc).
        flight: list[tuple[int, int, Flit, int, int]] = []
        seq = 0
        delivered = 0
        lat_sum = 0
        active: set[int] = set()
        t = 0

        if prof is not None:
            _setup_done = _pns()

        while t < max_cycles:
            if prof is not None:
                _t = _pns()
                _iters += 1
            # ---- 1. link arrivals -------------------------------------------
            while flight and flight[0][0] <= t:
                _, _, flit, link_id, vc_idx = heappop(flight)
                dst_node = link_dst[link_id]
                flit.ready_time = t + pipeline
                in_vcs[dst_node][link_id][vc_idx].push(flit)
                occ_mask[dst_node] |= 1 << (port_base[dst_node][link_id] + vc_idx)
                active.add(dst_node)
            if prof is not None:
                _t2 = _pns()
                _ph_arr += _t2 - _t
                _t = _t2

            # ---- 2. injection -------------------------------------------------
            while wakeups and wakeups[0][0] <= t:
                inj_active.add(heappop(wakeups)[1])
            done_nodes: list[int] = []
            # Throttle gate: new packets may only *start* on admitted
            # cycles (period 1 == always, the untouched default); flits of
            # packets already mid-injection always continue.
            admit = throttle_period == 1 or t % throttle_period == 0
            for node in inj_active:
                router = routers[node]
                inj = router.in_ports[LOCAL_PORT]
                flit = pending_flit[node]
                queue = source_queues[node]
                pos = src_pos[node]
                if (
                    admit
                    and flit is None
                    and pos < len(queue)
                    and queue[pos].inject_time <= t
                ):
                    if vc_limits is None:
                        vc_idx = inj.free_vc(pending_vc[node])
                    else:
                        vc_idx = inj.free_vc(pending_vc[node], vc_limits[node])
                    if vc_idx is not None:
                        pending_vc[node] = vc_idx
                        flit = Flit(queue[pos], 0)
                        src_pos[node] = pos + 1
                        pos += 1
                if flit is not None:
                    vc = inj.vcs[pending_vc[node]]
                    if vc.has_space:
                        flit.ready_time = t + pipeline
                        vc.push(flit)
                        # LOCAL_PORT is the first in_ports entry: base 0.
                        occ_mask[node] |= 1 << pending_vc[node]
                        active.add(node)
                        pending_flit[node] = (
                            None if flit.is_tail else Flit(flit.packet, flit.index + 1)
                        )
                    else:
                        pending_flit[node] = flit  # stalled; retry next cycle
                if pending_flit[node] is None:
                    if pos >= len(queue):
                        done_nodes.append(node)
                    elif queue[pos].inject_time > t:
                        heappush(wakeups, (queue[pos].inject_time, node))
                        done_nodes.append(node)
            for node in done_nodes:
                inj_active.discard(node)
            if prof is not None:
                _t2 = _pns()
                _ph_inj += _t2 - _t
                _t = _t2

            # ---- 3. allocation & traversal ----------------------------------
            # Routers are visited in ascending node order. This is the
            # *defined* scan semantics shared with the batched engine
            # (repro.simulation.batch): the only cross-router interaction
            # inside one cycle is the instant credit return below, so the
            # visit order is observable and must be pinned for the two
            # engines to agree bit-for-bit.
            idle_routers: list[int] = []
            for node in sorted(active):
                # Occupied VCs this cycle (the only ones that can do work):
                # walk the occupancy bits in ascending slot order, which is
                # exactly the order the full scan used to visit VCs.
                m = occ_mask[node]
                if not m:
                    idle_routers.append(node)
                    continue
                scan = vc_scan[node]
                router = routers[node]
                out_ports = router.out_ports

                # VC allocation for ready head flits without a route.
                requests: dict[int, list[tuple]] = {}
                while m:
                    low = m & -m
                    m ^= low
                    entry = scan[low.bit_length() - 1]
                    in_key, vc_idx, vc, flits = entry
                    head = flits[0]
                    if head.ready_time > t:
                        continue
                    out_key = vc.out_port
                    if out_key is None:
                        if head.index != 0:  # pragma: no cover - invariant
                            raise RuntimeError("body flit without VC allocation")
                        pkt = head.packet
                        dst = pkt.dst
                        if node == dst:
                            out_key = LOCAL_PORT
                        else:
                            # Fast path inline; _route_out_port fills the
                            # cache on miss (single owner of that logic).
                            out_key = route_cache.get((node, dst))
                            if out_key is None:
                                out_key = route_out_port(node, pkt)
                        out_port = out_ports[out_key]
                        # Dateline promotion happens when *requesting* the
                        # VC behind an express link, so the express input
                        # buffer itself is already a class-1 resource.
                        # Row and column datelines are independent.
                        if out_key == LOCAL_PORT:
                            vc_range = None
                        else:
                            if link_is_express[out_key]:
                                cls = 1
                            elif is_row_link[out_key]:
                                cls = pkt.vc_class
                            else:
                                cls = pkt.vc_class_y
                            vc_range = (
                                vc_range_cls1[out_key]
                                if cls
                                else vc_range_cls0[out_key]
                            )
                        got = out_port.allocate_vc(
                            router.next_vc_rr(out_key), vc_range
                        )
                        if got is None:
                            continue
                        vc.out_port = out_key
                        vc.out_vc = got
                    else:
                        out_port = out_ports[out_key]
                    if out_port.can_send(vc.out_vc):
                        cands = requests.get(out_key)
                        if cands is None:
                            requests[out_key] = [entry]
                        else:
                            cands.append(entry)
                if prof is not None:
                    _t2 = _pns()
                    _ph_vc += _t2 - _t
                    _t = _t2

                # Switch allocation: one flit per output, one per input.
                input_used: set[int] = set()
                for out_key, cands in requests.items():
                    cands = [c for c in cands if c[0] not in input_used]
                    if not cands:
                        continue
                    pick = router.sa_rr(out_key) % len(cands)
                    in_key, vc_idx, vc, vc_flits = cands[pick]
                    router.bump_sa_rr(out_key, pick, len(cands))
                    input_used.add(in_key)
                    out_port = out_ports[out_key]
                    out_vc = vc.out_vc
                    flit = vc.pop()
                    if not vc_flits:
                        occ_mask[node] &= ~(
                            1 << (port_base[node][in_key] + vc_idx)
                        )
                    is_tail = flit.is_tail
                    router_counts[node] += 1
                    out_port.consume_credit(out_vc)
                    if is_tail:
                        out_port.release_vc(out_vc)
                    if in_key != LOCAL_PORT:
                        # Instant credit return to the upstream router.
                        upstream = routers[link_src[in_key]]
                        upstream.out_ports[in_key].return_credit(vc_idx)
                    if out_key == LOCAL_PORT:
                        if is_tail:
                            pkt = flit.packet
                            pkt.eject_time = t + 1
                            lat = t + 1 - pkt.inject_time
                            lat_buf[pkt.packet_id] = lat
                            lat_sum += lat
                            delivered += 1
                            if closed_loop is not None:
                                # A delivered request spawns its reply; a
                                # delivered reply returns the source's
                                # credit, releasing stalled demand.
                                for new_pkt in closed_loop.on_delivered(
                                    pkt, t + 1
                                ):
                                    register_packet(new_pkt)
                    else:
                        link_counts[out_key] += 1
                        if link_is_express[out_key]:
                            # Dateline: express crossings promote the packet
                            # to VC class 1 within the crossed dimension.
                            if is_row_link[out_key]:
                                flit.packet.vc_class = 1
                            else:
                                flit.packet.vc_class_y = 1
                        seq += 1
                        heappush(
                            flight,
                            (t + link_tech_cycles[out_key], seq, flit, out_key, out_vc),
                        )
                if prof is not None:
                    _t2 = _pns()
                    _ph_sw += _t2 - _t
                    _t = _t2
            for node in idle_routers:
                active.discard(node)

            # ---- 4. termination ------------------------------------------------
            t += 1
            if delivered == n_packets and not inj_active and not wakeups:
                if prof is not None:
                    _ph_drain += _pns() - _t
                break
            if not active and not inj_active:
                # Nothing buffered and no source mid-packet: every cycle
                # until the next link arrival or injection wake-up is a
                # no-op, so fast-forward the clock to it (clamped to the
                # budget). Cycle accounting is unchanged — the skipped
                # cycles would have done exactly nothing.
                nxt = max_cycles
                if flight and flight[0][0] < nxt:
                    nxt = flight[0][0]
                if wakeups and wakeups[0][0] < nxt:
                    nxt = wakeups[0][0]
                if nxt > t:
                    t = nxt
            # ---- 5. telemetry flush (no-op sentinel when disabled) -----------
            if t >= telem_next:
                telem_next = session.flush_to(
                    t, router_counts, link_counts, occ_mask, len(flight),
                    delivered, lat_sum,
                )
                if control is not None:
                    # Controllers acted inside the flush (via the window
                    # observer); refresh the actuator locals they own.
                    throttle_period = control.throttle_period
                    vc_limits = control.vc_limits
            if prof is not None:
                _ph_drain += _pns() - _t

        if prof is not None:
            _final_start = _pns()
        latencies = lat_buf[:n_packets][lat_buf[:n_packets] >= 0]
        telemetry_trace = None
        if session is not None:
            telemetry_trace = session.finalize(
                t, router_counts, link_counts, occ_mask, len(flight),
                delivered, lat_sum,
            )
        stats = SimStats(
            n_packets=n_packets,
            n_flits=n_flits,
            cycles=t,
            packet_latencies=latencies,
            link_flit_counts=np.asarray(link_counts, dtype=np.int64),
            router_flit_counts=np.asarray(router_counts, dtype=np.int64),
            drained=delivered == n_packets,
            telemetry=telemetry_trace,
            closed_loop=None if closed_loop is None else closed_loop.finalize(t),
            control=None if control is None else control.finalize(t),
        )
        if prof is not None:
            _end = _pns()
            prof.add("setup", _setup_done - _run_start)
            prof.add("arrivals", _ph_arr)
            prof.add("injection", _ph_inj)
            prof.add("vc_alloc", _ph_vc)
            prof.add("switch_alloc", _ph_sw)
            prof.add("drain", _ph_drain)
            prof.add("finalize", _end - _final_start)
            prof.total_ns += _end - _run_start
            prof.bump("loop_iterations", _iters)
            prof.bump("sim_cycles", t)
        return stats
