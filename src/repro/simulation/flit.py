"""Packet and flit primitives for the cycle-accurate simulator.

The simulator is flit-granular: a :class:`Packet` of ``size_flits`` flits
travels as a wormhole — head flit (index 0) allocates VCs, body flits
follow, the tail flit (index ``size_flits - 1``) releases them. Flits are
represented as light-weight :class:`Flit` records referencing their packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Packet", "Flit"]


@dataclass
class Packet:
    """One in-flight packet."""

    packet_id: int
    src: int
    dst: int
    size_flits: int
    inject_time: int
    """Cycle the packet entered its source queue."""
    eject_time: int = -1
    """Cycle the tail flit left the network (-1 while in flight)."""
    vc_class: int = 0
    """Dateline VC class for *row* (X-phase) links: 0 until the packet
    crosses a row express link, 1 afterwards. Express detour routes
    (Hops=15 behaves like a torus) create cyclic channel dependencies;
    partitioning VCs by dateline class breaks the cycle, the standard torus
    deadlock-avoidance scheme."""
    vc_class_y: int = 0
    """Dateline VC class for *column* (Y-phase) links; only full tori have
    column express (wrap) links. Tracked separately from the row class so a
    row-dateline crossing cannot leak restrictions into the column rings."""

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError(f"packet needs >= 1 flit, got {self.size_flits}")
        if self.src == self.dst:
            raise ValueError(f"packet to self at node {self.src}")
        if self.inject_time < 0:
            raise ValueError(f"inject time must be >= 0, got {self.inject_time}")

    @property
    def latency(self) -> int:
        """Injection-to-tail-ejection latency, cycles.

        Raises:
            ValueError: if the packet has not been ejected yet.
        """
        if self.eject_time < 0:
            raise ValueError(f"packet {self.packet_id} still in flight")
        return self.eject_time - self.inject_time


@dataclass
class Flit:
    """One flit of a packet, as stored in VC buffers."""

    packet: Packet
    index: int
    ready_time: int = 0
    """Earliest cycle this flit may compete for switch allocation at its
    current router (arrival time + router pipeline)."""

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.packet.size_flits:
            raise ValueError(
                f"flit index {self.index} outside packet of "
                f"{self.packet.size_flits} flits"
            )

    @property
    def is_head(self) -> bool:
        """True for the packet's first flit (does VC allocation)."""
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        """True for the packet's last flit (releases VCs)."""
        return self.index == self.packet.size_flits - 1
