"""Trace file I/O.

Serializes :class:`~repro.traffic.trace.Trace` objects in the line-oriented
text format BookSim-style trace tools use::

    # comment / header lines
    <cycle> <src> <dst> <size_flits>

one packet per line, whitespace-separated, sorted by injection cycle. The
header records the node count so round-trips are self-contained.

:func:`load_external_trace` additionally imports *foreign* dumps —
BookSim/Netrace-style text files without our header — tolerating 3-field
``<cycle> <src> <dst>`` lines (single-flit packets) and inferring the
node count, with per-line diagnostics for everything malformed. The
``repro workload import`` CLI routes such dumps into the binary npz
store.
"""

from __future__ import annotations

import pathlib

from repro.traffic.trace import MAX_PACKET_FLITS, PacketRecord, Trace

__all__ = ["save_trace", "load_trace", "load_external_trace"]

_HEADER_PREFIX = "# repro-trace"


def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to ``path`` in the text trace format."""
    p = pathlib.Path(path)
    lines = [
        f"{_HEADER_PREFIX} nodes={trace.n_nodes} name={trace.name} "
        f"packets={trace.n_packets}"
    ]
    lines.extend(
        f"{pkt.time} {pkt.src} {pkt.dst} {pkt.size_flits}"
        for pkt in trace.packets
    )
    p.write_text("\n".join(lines) + "\n")


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        ValueError: on malformed lines or a missing/invalid header.
    """
    p = pathlib.Path(path)
    lines = p.read_text().splitlines()
    if not lines or not lines[0].startswith(_HEADER_PREFIX):
        raise ValueError(f"{p} is not a repro trace file (missing header)")
    header = dict(
        field.split("=", 1)
        for field in lines[0][len(_HEADER_PREFIX) :].split()
        if "=" in field
    )
    try:
        n_nodes = int(header["nodes"])
    except (KeyError, ValueError) as exc:
        raise ValueError(f"{p}: bad header {lines[0]!r}") from exc
    name = header.get("name", p.stem)

    packets: list[PacketRecord] = []
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"{p}:{lineno}: expected 4 fields, got {line!r}")
        try:
            time, src, dst, size = (int(x) for x in parts)
        except ValueError as exc:
            raise ValueError(f"{p}:{lineno}: non-integer field in {line!r}") from exc
        packets.append(PacketRecord(time=time, src=src, dst=dst, size_flits=size))
    return Trace(n_nodes, packets, name=name)


def load_external_trace(
    path: str | pathlib.Path,
    *,
    n_nodes: int | None = None,
    name: str | None = None,
    max_errors: int = 10,
) -> Trace:
    """Import a BookSim/Netrace-style text dump into a :class:`Trace`.

    Accepted per-packet lines (whitespace-separated integers)::

        <cycle> <src> <dst> <size_flits>
        <cycle> <src> <dst>              # size defaults to 1 flit

    Blank lines and ``#``/``%``/``//`` comments are skipped. ``n_nodes``
    defaults to ``max(src, dst) + 1`` over the file (pass it explicitly
    to pin the grid — endpoints beyond it are then errors). Self-loops,
    negative fields and oversized packets are malformed too.

    Raises:
        ValueError: listing up to ``max_errors`` offending lines with
            their line numbers, so a broken dump is diagnosable in one
            pass instead of one crash per line.
    """
    p = pathlib.Path(path)
    rows: list[tuple[int, int, int, int]] = []
    errors: list[str] = []
    n_bad = 0

    def bad(lineno: int, line: str, why: str) -> None:
        nonlocal n_bad
        n_bad += 1
        if n_bad <= max_errors:
            errors.append(f"{p.name}:{lineno}: {why}: {line!r}")
        elif n_bad == max_errors + 1:
            errors.append("... (further malformed lines suppressed)")

    for lineno, raw in enumerate(p.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%", "//")):
            continue
        parts = line.split()
        if len(parts) not in (3, 4):
            bad(lineno, line, f"expected 3 or 4 fields, got {len(parts)}")
            continue
        try:
            fields = [int(x) for x in parts]
        except ValueError:
            bad(lineno, line, "non-integer field")
            continue
        time, src, dst = fields[:3]
        size = fields[3] if len(fields) == 4 else 1
        if time < 0 or src < 0 or dst < 0:
            bad(lineno, line, "negative field")
            continue
        if src == dst:
            bad(lineno, line, f"self-loop at node {src}")
            continue
        if not 1 <= size <= MAX_PACKET_FLITS:
            bad(lineno, line, f"packet size outside 1..{MAX_PACKET_FLITS}")
            continue
        if n_nodes is not None and (src >= n_nodes or dst >= n_nodes):
            bad(lineno, line, f"endpoint outside 0..{n_nodes - 1}")
            continue
        rows.append((time, src, dst, size))

    if errors:
        raise ValueError(
            f"{p}: {n_bad} malformed line(s):\n  " + "\n  ".join(errors)
        )
    if not rows:
        raise ValueError(f"{p}: no packet lines found")
    nodes = (
        n_nodes
        if n_nodes is not None
        else max(max(r[1], r[2]) for r in rows) + 1
    )
    packets = [
        PacketRecord(time=t, src=s, dst=d, size_flits=f) for t, s, d, f in rows
    ]
    return Trace(max(nodes, 2), packets, name=name or p.stem)
