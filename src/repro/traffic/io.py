"""Trace file I/O.

Serializes :class:`~repro.traffic.trace.Trace` objects in the line-oriented
text format BookSim-style trace tools use::

    # comment / header lines
    <cycle> <src> <dst> <size_flits>

one packet per line, whitespace-separated, sorted by injection cycle. The
header records the node count so round-trips are self-contained.
"""

from __future__ import annotations

import pathlib

from repro.traffic.trace import PacketRecord, Trace

__all__ = ["save_trace", "load_trace"]

_HEADER_PREFIX = "# repro-trace"


def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to ``path`` in the text trace format."""
    p = pathlib.Path(path)
    lines = [
        f"{_HEADER_PREFIX} nodes={trace.n_nodes} name={trace.name} "
        f"packets={trace.n_packets}"
    ]
    lines.extend(
        f"{pkt.time} {pkt.src} {pkt.dst} {pkt.size_flits}"
        for pkt in trace.packets
    )
    p.write_text("\n".join(lines) + "\n")


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        ValueError: on malformed lines or a missing/invalid header.
    """
    p = pathlib.Path(path)
    lines = p.read_text().splitlines()
    if not lines or not lines[0].startswith(_HEADER_PREFIX):
        raise ValueError(f"{p} is not a repro trace file (missing header)")
    header = dict(
        field.split("=", 1)
        for field in lines[0][len(_HEADER_PREFIX) :].split()
        if "=" in field
    )
    try:
        n_nodes = int(header["nodes"])
    except (KeyError, ValueError) as exc:
        raise ValueError(f"{p}: bad header {lines[0]!r}") from exc
    name = header.get("name", p.stem)

    packets: list[PacketRecord] = []
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"{p}:{lineno}: expected 4 fields, got {line!r}")
        try:
            time, src, dst, size = (int(x) for x in parts)
        except ValueError as exc:
            raise ValueError(f"{p}:{lineno}: non-integer field in {line!r}") from exc
        packets.append(PacketRecord(time=time, src=src, dst=dst, size_flits=size))
    return Trace(n_nodes, packets, name=name)
