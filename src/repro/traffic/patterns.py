"""Additional classic NoC traffic patterns.

Complements :mod:`repro.traffic.synthetic` with the remaining standard
permutation/stress patterns of the NoC literature (Dally & Towles ch. 3):
shuffle, bit-reverse, tornado and hotspot. All return rate matrices scaled
to a mean injection rate, like the Soteriou model.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "shuffle_traffic",
    "bit_reverse_traffic",
    "tornado_traffic",
    "hotspot_traffic",
]


def _node_bits(n_nodes: int) -> int:
    bits = n_nodes.bit_length() - 1
    if 1 << bits != n_nodes:
        raise ValueError(f"pattern needs a power-of-two node count, got {n_nodes}")
    return bits


def _permutation_matrix(topo: Topology, dest_of: list[int], name: str) -> TrafficMatrix:
    n = topo.n_nodes
    m = np.zeros((n, n))
    for s, d in enumerate(dest_of):
        if d != s:
            m[s, d] = 1.0
    return TrafficMatrix(m, name=name).scaled_to_injection_rate(0.1)


def shuffle_traffic(topo: Topology, *, injection_rate: float = 0.1) -> TrafficMatrix:
    """Perfect-shuffle permutation: rotate the node address left by 1 bit."""
    n = topo.n_nodes
    bits = _node_bits(n)
    dest = [((s << 1) | (s >> (bits - 1))) & (n - 1) for s in range(n)]
    return _permutation_matrix(topo, dest, "shuffle").scaled_to_injection_rate(
        injection_rate
    )


def bit_reverse_traffic(
    topo: Topology, *, injection_rate: float = 0.1
) -> TrafficMatrix:
    """Bit-reverse permutation: node b_{k-1}..b_0 sends to b_0..b_{k-1}."""
    n = topo.n_nodes
    bits = _node_bits(n)
    dest = [int(format(s, f"0{bits}b")[::-1], 2) for s in range(n)]
    return _permutation_matrix(topo, dest, "bit-reverse").scaled_to_injection_rate(
        injection_rate
    )


def tornado_traffic(topo: Topology, *, injection_rate: float = 0.1) -> TrafficMatrix:
    """Tornado: (x, y) sends half-way around its row, the torus worst case.

    On a mesh this is simply the longest same-row unicast; on the paper's
    Hops=15 network it maximally stresses the wrap express links.
    """
    n = topo.n_nodes
    dest = []
    half = topo.width // 2
    for s in range(n):
        x, y = topo.coords(s)
        dest.append(topo.node_id((x + half) % topo.width, y))
    return _permutation_matrix(topo, dest, "tornado").scaled_to_injection_rate(
        injection_rate
    )


def hotspot_traffic(
    topo: Topology,
    hotspots: list[int] | None = None,
    *,
    hotspot_fraction: float = 0.3,
    injection_rate: float = 0.1,
) -> TrafficMatrix:
    """Uniform traffic with a fraction redirected to hotspot nodes.

    Args:
        topo: target topology.
        hotspots: hotspot node ids (default: the four centre nodes).
        hotspot_fraction: fraction of each source's traffic aimed at the
            hotspots (split evenly among them).
        injection_rate: mean flits/node/cycle.
    """
    if not 0 <= hotspot_fraction <= 1:
        raise ValueError(
            f"hotspot fraction must be in [0, 1], got {hotspot_fraction}"
        )
    n = topo.n_nodes
    if hotspots is None:
        cx, cy = topo.width // 2, topo.height // 2
        hotspots = [
            topo.node_id(cx - 1, cy - 1),
            topo.node_id(cx, cy - 1),
            topo.node_id(cx - 1, cy),
            topo.node_id(cx, cy),
        ]
    if not hotspots:
        raise ValueError("need at least one hotspot node")
    for h in hotspots:
        if not 0 <= h < n:
            raise ValueError(f"hotspot {h} outside 0..{n - 1}")
    m = np.full((n, n), (1.0 - hotspot_fraction) / (n - 1))
    for h in hotspots:
        m[:, h] += hotspot_fraction / len(hotspots)
    np.fill_diagonal(m, 0.0)
    return TrafficMatrix(m, name="hotspot").scaled_to_injection_rate(injection_rate)
