"""Traffic matrices: per-pair flit rates or flit counts.

Two views of traffic exist in the paper:

* **rate matrices** (flits/cycle/node) drive the analytical design-space
  exploration (Fig. 5, Tables III/IV);
* **volume matrices** (total flit counts between pairs) summarize the NPB
  traces for energy accounting (Table V) — "we used only flit counts
  between source-destination pairs, and temporal information is ignored".

Both are wrapped by :class:`TrafficMatrix`, an N x N non-negative float
array with a zero diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TrafficMatrix"]


@dataclass
class TrafficMatrix:
    """N x N non-negative traffic matrix with a zero diagonal.

    ``matrix[s, d]`` is either a flit rate (flits/cycle) or a flit count,
    depending on context; the class is agnostic and purely structural.
    """

    matrix: np.ndarray
    name: str = "traffic"

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"traffic matrix must be square, got {m.shape}")
        if np.any(m < 0):
            raise ValueError("traffic matrix entries must be >= 0")
        if np.any(np.diag(m) != 0):
            raise ValueError("traffic matrix diagonal must be zero (no self-traffic)")
        self.matrix = m

    @property
    def n_nodes(self) -> int:
        """Number of nodes N."""
        return self.matrix.shape[0]

    @property
    def total(self) -> float:
        """Sum over all pairs (total rate or total flits)."""
        return float(self.matrix.sum())

    def injection_rates(self) -> np.ndarray:
        """Per-source totals (row sums)."""
        return self.matrix.sum(axis=1)

    def mean_injection_rate(self) -> float:
        """Average per-node injection (total / N)."""
        return self.total / self.n_nodes

    def scaled_to_injection_rate(self, rate: float) -> "TrafficMatrix":
        """Rescale so the *average* per-node injection equals ``rate``.

        The paper's sweeps fix the mean injection rate (max 0.1
        flits/node/cycle) while the Gaussian model varies per-node shares.
        """
        if rate < 0:
            raise ValueError(f"injection rate must be >= 0, got {rate}")
        current = self.mean_injection_rate()
        if current == 0:
            raise ValueError("cannot rescale an all-zero traffic matrix")
        return TrafficMatrix(self.matrix * (rate / current), name=self.name)

    def normalized(self) -> "TrafficMatrix":
        """Probability view: entries sum to 1."""
        if self.total == 0:
            raise ValueError("cannot normalize an all-zero traffic matrix")
        return TrafficMatrix(self.matrix / self.total, name=self.name)

    def mean_distance(self, distance: np.ndarray) -> float:
        """Traffic-weighted mean of a pairwise distance matrix."""
        d = np.asarray(distance, dtype=np.float64)
        if d.shape != self.matrix.shape:
            raise ValueError(
                f"distance shape {d.shape} != traffic shape {self.matrix.shape}"
            )
        if self.total == 0:
            raise ValueError("mean distance undefined for zero traffic")
        return float((self.matrix * d).sum() / self.total)
