"""Synthetic NAS Parallel Benchmark communication traces (256 ranks).

The paper obtained MPICL traces of NPB Class A kernels (FT, CG, MG, LU) on a
Cray XE6m and converted them to BookSim traces. The raw traces are not
public; we synthesize traces from each kernel's *documented, deterministic*
communication pattern (see DESIGN.md "Substitutions"). The spatial pattern
is what the paper's results depend on — its energy accounting explicitly
discards temporal information — and each kernel's pattern is fixed by its
rank layout:

* **FT** — 1-D-decomposed 3-D FFT: each iteration performs an MPI_Alltoall
  transpose; every rank sends an equal slice to every other rank.
  All-to-all => benefits from every express flavour (paper: 1.3x @ Hops=15).
* **CG** — ranks form a 16x16 processor grid; each conjugate-gradient
  iteration does log2(16) = 4 partner exchanges within the row (partners at
  column distance 1, 2, 4, 8) plus a transpose exchange. Mostly short-range
  => benefits most from Hops=3 (paper: 1.25x).
* **MG** — multigrid V-cycle on a 16x4x4 processor grid with *periodic*
  boundaries: face exchanges at distance 2^level per dimension; the
  periodic wraps reach across whole rows. Long-range component => benefits
  from Hops=15 (paper: 1.64x).
* **LU** — SSOR wavefront on a 16x16 grid: only nearest-neighbour pipeline
  exchanges. 1-hop traffic => express links hardly help (paper: ~1x).

Rank *r* maps to node *r* of the 16x16 mesh (row-major), matching the
paper's "256-node benchmarks as the network has a 16x16 configuration".

Volumes are Class-A-scaled via ``volume_scale``: 1.0 approximates the real
Class A byte volumes (hundreds of MB for FT); cycle simulations use a much
smaller scale, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.traffic.trace import Message, Trace, schedule_phases

__all__ = [
    "NPB_KERNELS",
    "ft_trace",
    "cg_trace",
    "mg_trace",
    "lu_trace",
    "npb_trace",
]

N_RANKS = 256
GRID = 16  # 16x16 processor grid for CG / LU and the node mesh

#: Class A per-exchange byte volumes (order-of-magnitude of the real
#: kernels; see module docstring).
FT_ALLTOALL_BYTES = 128 * 1024 * 1024  # full 3-D grid, complex doubles
FT_ITERATIONS = 6
CG_ROWEXCH_BYTES = 75_000 * 8  # na/npcols doubles per row partner
CG_ITERATIONS = 15
MG_BASE_FACE_BYTES = 64 * 64 * 8  # finest-level face, doubles
MG_LEVELS = 6
MG_ITERATIONS = 4
LU_PENCIL_BYTES = 4 * 1024  # one wavefront pencil per neighbour
LU_ITERATIONS = 50


def _xy(rank: int) -> tuple[int, int]:
    return rank % GRID, rank // GRID


def _rank(x: int, y: int) -> int:
    return y * GRID + x


def ft_trace(
    *, volume_scale: float = 1.0, iterations: int = FT_ITERATIONS,
    flit_interval: int = 8, inter_phase_gap: int = 2048,
) -> Trace:
    """FT: one all-to-all transpose per iteration.

    The default pacing (one flit per 8 cycles per source) keeps the
    all-to-all below NoC saturation, matching the paper's observation that
    its Cray traces "will not saturate the NoC simulator".
    """
    _check_scale(volume_scale)
    per_pair = max(1, int(FT_ALLTOALL_BYTES * volume_scale) // (N_RANKS * N_RANKS))

    def phase() -> Iterator[Message]:
        # Rank-staggered destination order, as MPI_Alltoall implementations
        # schedule it (rank r starts with partner r+1): every step of the
        # exchange pairs distinct (src, dst) sets instead of converging all
        # sources on one destination at once.
        for k in range(1, N_RANKS):
            for s in range(N_RANKS):
                yield Message(s, (s + k) % N_RANKS, per_pair)

    return schedule_phases(
        N_RANKS,
        [phase() for _ in range(iterations)],
        flit_interval=flit_interval,
        inter_phase_gap=inter_phase_gap,
        name="npb-ft",
    )


def cg_trace(
    *, volume_scale: float = 1.0, iterations: int = CG_ITERATIONS,
    flit_interval: int = 2, inter_phase_gap: int = 512,
) -> Trace:
    """CG: row-wise power-of-two partner exchanges + transpose exchange."""
    _check_scale(volume_scale)
    bytes_row = max(1, int(CG_ROWEXCH_BYTES * volume_scale))

    def iteration_phases() -> list[list[Message]]:
        phases: list[list[Message]] = []
        # Reduce within processor rows: partners at column distance 2^i.
        for i in range(int(math.log2(GRID))):
            phase = []
            for r in range(N_RANKS):
                x, y = _xy(r)
                partner = _rank(x ^ (1 << i), y)
                phase.append(Message(r, partner, bytes_row))
            phases.append(phase)
        # Transpose exchange (x, y) <-> (y, x) for the matvec.
        phase = []
        for r in range(N_RANKS):
            x, y = _xy(r)
            partner = _rank(y, x)
            if partner != r:
                phase.append(Message(r, partner, bytes_row))
        phases.append(phase)
        return phases

    all_phases: list[list[Message]] = []
    for _ in range(iterations):
        all_phases.extend(iteration_phases())
    return schedule_phases(
        N_RANKS,
        all_phases,
        flit_interval=flit_interval,
        inter_phase_gap=inter_phase_gap,
        name="npb-cg",
    )


def mg_trace(
    *, volume_scale: float = 1.0, iterations: int = MG_ITERATIONS,
    flit_interval: int = 4, inter_phase_gap: int = 256,
) -> Trace:
    """MG: V-cycle face exchanges at processor distance 2^level, with
    *periodic* boundaries (MG's Class A problem is periodic).

    Ranks form a 16x4x4 grid (x fastest, matching the row-major node
    layout). At coarser levels the exchange stride doubles and the periodic
    wrap pairs columns 15<->0, 14<->0, 12<->0 — full-row-distance traffic.
    That wrap traffic is exactly why the paper's MG gains the most (1.64x)
    from Hops=15, the configuration it calls "effectively a 2D torus".
    """
    _check_scale(volume_scale)
    px, py, pz = 16, 4, 4

    def rank3(x: int, y: int, z: int) -> int:
        return (z * py + y) * px + x

    def level_phase(level: int) -> list[Message]:
        # Every rank keeps exchanging at every level (NPB MG leaves all
        # processors in the communicator); partner distance doubles per
        # level. Face bytes decay 2x per level rather than the geometric 4x
        # of the surface area: real MPICL traces floor at per-message
        # protocol overheads, which keeps coarse (long-range) levels visible
        # in the packet mix.
        stride = 1 << level
        face_bytes = max(1, int(MG_BASE_FACE_BYTES * volume_scale) >> level)
        phase: list[Message] = []
        steps = (
            (stride % px, 0, 0),
            (0, stride % py, 0),
            (0, 0, stride % pz),
        )
        for z in range(pz):
            for y in range(py):
                for x in range(px):
                    r = rank3(x, y, z)
                    for dx, dy, dz in steps:
                        if dx == dy == dz == 0:
                            continue
                        partner = rank3(
                            (x + dx) % px, (y + dy) % py, (z + dz) % pz
                        )
                        if partner == r:
                            continue
                        phase.append(Message(r, partner, face_bytes))
                        phase.append(Message(partner, r, face_bytes))
        return phase

    phases: list[list[Message]] = []
    for _ in range(iterations):
        # Down the V-cycle (fine -> coarse) and back up.
        down = [ph for ph in (level_phase(l) for l in range(MG_LEVELS)) if ph]
        phases.extend(down)
        phases.extend(reversed(down))
    return schedule_phases(
        N_RANKS,
        phases,
        flit_interval=flit_interval,
        inter_phase_gap=inter_phase_gap,
        name="npb-mg",
    )


def lu_trace(
    *, volume_scale: float = 1.0, iterations: int = LU_ITERATIONS,
    flit_interval: int = 1,
) -> Trace:
    """LU: nearest-neighbour wavefront sweeps (pure 1-hop traffic)."""
    _check_scale(volume_scale)
    pencil = max(1, int(LU_PENCIL_BYTES * volume_scale))

    def sweep(forward: bool) -> list[Message]:
        phase: list[Message] = []
        for r in range(N_RANKS):
            x, y = _xy(r)
            step = 1 if forward else -1
            nx, ny = x + step, y + step
            if 0 <= nx < GRID:
                phase.append(Message(r, _rank(nx, y), pencil))
            if 0 <= ny < GRID:
                phase.append(Message(r, _rank(x, ny), pencil))
        return phase

    phases: list[list[Message]] = []
    for _ in range(iterations):
        phases.append(sweep(forward=True))
        phases.append(sweep(forward=False))
    return schedule_phases(
        N_RANKS, phases, flit_interval=flit_interval, name="npb-lu"
    )


NPB_KERNELS = {
    "FT": ft_trace,
    "CG": cg_trace,
    "MG": mg_trace,
    "LU": lu_trace,
}


def npb_trace(kernel: str, *, volume_scale: float = 1.0) -> Trace:
    """Build the synthetic trace for an NPB kernel by name (FT/CG/MG/LU)."""
    try:
        builder = NPB_KERNELS[kernel.upper()]
    except KeyError:
        raise ValueError(
            f"unknown NPB kernel {kernel!r}; expected one of {sorted(NPB_KERNELS)}"
        ) from None
    return builder(volume_scale=volume_scale)


def _check_scale(volume_scale: float) -> None:
    if volume_scale <= 0:
        raise ValueError(f"volume scale must be > 0, got {volume_scale}")
