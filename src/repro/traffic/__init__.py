"""Traffic models: statistical (Soteriou), classic patterns, NPB traces."""

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.io import load_external_trace, load_trace, save_trace
from repro.traffic.npb import (
    NPB_KERNELS,
    cg_trace,
    ft_trace,
    lu_trace,
    mg_trace,
    npb_trace,
)
from repro.traffic.patterns import (
    bit_reverse_traffic,
    hotspot_traffic,
    shuffle_traffic,
    tornado_traffic,
)
from repro.traffic.synthetic import (
    bit_complement_traffic,
    distance_matrix,
    neighbor_traffic,
    soteriou_traffic,
    transpose_traffic,
    uniform_traffic,
)
from repro.traffic.trace import (
    FLIT_BYTES,
    MAX_PACKET_FLITS,
    Message,
    PacketRecord,
    Trace,
    packetize_flits,
    schedule_phases,
)

__all__ = [
    "TrafficMatrix",
    "load_external_trace",
    "load_trace",
    "save_trace",
    "bit_reverse_traffic",
    "hotspot_traffic",
    "shuffle_traffic",
    "tornado_traffic",
    "NPB_KERNELS",
    "cg_trace",
    "ft_trace",
    "lu_trace",
    "mg_trace",
    "npb_trace",
    "bit_complement_traffic",
    "distance_matrix",
    "neighbor_traffic",
    "soteriou_traffic",
    "transpose_traffic",
    "uniform_traffic",
    "FLIT_BYTES",
    "MAX_PACKET_FLITS",
    "Message",
    "PacketRecord",
    "Trace",
    "packetize_flits",
    "schedule_phases",
]
