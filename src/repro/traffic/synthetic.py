"""Synthetic statistical traffic (Soteriou et al.) and classic patterns.

The paper's design-space exploration drives every network with the
statistical traffic model of Soteriou, Wang and Peh (MASCOTS 2006),
parameterized by:

* ``p`` — per-hop flit acceptance probability, "captures the spatial hop
  distribution. Low p implies longer hops": the probability a flit's
  journey ends at each successive candidate node, i.e. hop distance is
  geometric with success probability ``p``, truncated to the mesh diameter
  and spread uniformly over the nodes at each distance;
* ``sigma`` — relative standard deviation of the per-node injection rates,
  which "follow a gaussian distribution; a larger value implies more nodes
  are injecting traffic".

The paper uses ``p = 0.02, sigma = 0.4`` with a maximum mean injection rate
of 0.1 flits/node/cycle.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, ensure_rng

__all__ = [
    "soteriou_traffic",
    "uniform_traffic",
    "transpose_traffic",
    "bit_complement_traffic",
    "neighbor_traffic",
    "distance_matrix",
]


def distance_matrix(topo: Topology) -> np.ndarray:
    """Pairwise base-mesh Manhattan distances, shape (N, N)."""
    n = topo.n_nodes
    xs = np.arange(n) % topo.width
    ys = np.arange(n) // topo.width
    return np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])


def _geometric_destination_weights(topo: Topology, p: float) -> np.ndarray:
    """P(dest | src) under the geometric hop-distance model, shape (N, N)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"acceptance probability p must be in (0, 1), got {p}")
    dist = distance_matrix(topo)
    weights = np.where(dist > 0, p * (1.0 - p) ** (dist - 1.0), 0.0)
    # At each distance d there are several candidate nodes; the geometric
    # "journey" terminates at ONE node of that ring, so the per-node weight
    # divides by the ring population.
    n = topo.n_nodes
    ring_sizes = np.zeros_like(weights)
    for s in range(n):
        counts = np.bincount(dist[s], minlength=int(dist.max()) + 1)
        ring_sizes[s] = counts[dist[s]]
    weights = np.divide(weights, ring_sizes, out=np.zeros_like(weights), where=ring_sizes > 0)
    row_sums = weights.sum(axis=1, keepdims=True)
    return weights / row_sums


def soteriou_traffic(
    topo: Topology,
    *,
    p: float = 0.02,
    sigma: float = 0.4,
    injection_rate: float = 0.1,
    seed: SeedLike = 0,
) -> TrafficMatrix:
    """Statistical traffic matrix in flits/cycle (Soteriou et al. model).

    Args:
        topo: target topology (for node geometry).
        p: flit acceptance probability; hop distance ~ Geometric(p),
            truncated at the mesh diameter.
        sigma: relative std-dev of per-node injection weights
            (Gaussian, clipped at zero).
        injection_rate: mean flits/node/cycle after scaling (paper max: 0.1).
        seed: RNG seed for the Gaussian injection weights.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    rng = ensure_rng(seed)
    n = topo.n_nodes
    dest_probs = _geometric_destination_weights(topo, p)
    weights = np.clip(rng.normal(1.0, sigma, size=n), 0.0, None)
    if weights.sum() == 0:  # pathological draw; retry deterministically
        weights = np.ones(n)
    matrix = weights[:, None] * dest_probs
    tm = TrafficMatrix(matrix, name=f"soteriou-p{p}-s{sigma}")
    return tm.scaled_to_injection_rate(injection_rate)


def uniform_traffic(topo: Topology, *, injection_rate: float = 0.1) -> TrafficMatrix:
    """Uniform-random traffic: every other node equally likely."""
    n = topo.n_nodes
    matrix = np.full((n, n), 1.0 / (n - 1))
    np.fill_diagonal(matrix, 0.0)
    tm = TrafficMatrix(matrix, name="uniform")
    return tm.scaled_to_injection_rate(injection_rate)


def transpose_traffic(topo: Topology, *, injection_rate: float = 0.1) -> TrafficMatrix:
    """Matrix-transpose traffic: (x, y) -> (y, x). Grid must be square."""
    if topo.width != topo.height:
        raise ValueError("transpose traffic needs a square grid")
    n = topo.n_nodes
    matrix = np.zeros((n, n))
    for s in range(n):
        x, y = topo.coords(s)
        d = topo.node_id(y, x)
        if d != s:
            matrix[s, d] = 1.0
    tm = TrafficMatrix(matrix, name="transpose")
    return tm.scaled_to_injection_rate(injection_rate)


def bit_complement_traffic(
    topo: Topology, *, injection_rate: float = 0.1
) -> TrafficMatrix:
    """Bit-complement traffic: node i -> node (N-1-i)."""
    n = topo.n_nodes
    matrix = np.zeros((n, n))
    for s in range(n):
        d = n - 1 - s
        if d != s:
            matrix[s, d] = 1.0
    tm = TrafficMatrix(matrix, name="bit-complement")
    return tm.scaled_to_injection_rate(injection_rate)


def neighbor_traffic(topo: Topology, *, injection_rate: float = 0.1) -> TrafficMatrix:
    """Nearest-neighbour traffic: uniform over the 2-4 mesh neighbours."""
    n = topo.n_nodes
    matrix = np.zeros((n, n))
    for s in range(n):
        x, y = topo.coords(s)
        neighbors = []
        if x > 0:
            neighbors.append(topo.node_id(x - 1, y))
        if x + 1 < topo.width:
            neighbors.append(topo.node_id(x + 1, y))
        if y > 0:
            neighbors.append(topo.node_id(x, y - 1))
        if y + 1 < topo.height:
            neighbors.append(topo.node_id(x, y + 1))
        for d in neighbors:
            matrix[s, d] = 1.0 / len(neighbors)
    tm = TrafficMatrix(matrix, name="neighbor")
    return tm.scaled_to_injection_rate(injection_rate)
