"""Trace containers and packetization (BookSim-style trace mode).

The paper converts MPICL traces of the NAS Parallel Benchmarks into
BookSim-compatible traces, with two packet sizes: "1 flit per packet and 32
flits per packet. All large packets from the original network trace were
split up into smaller packets".

A :class:`Trace` is an ordered list of :class:`PacketRecord` injections.
Traces are built from *messages* (src, dst, bytes) grouped into *phases*
(e.g. one all-to-all exchange); the scheduler serializes each source's
packets at the injection bandwidth (1 flit/cycle) and separates phases by a
configurable compute gap, mimicking the bulk-synchronous structure of the
NPB kernels while keeping the paper's "temporal information is ignored"
simplification for energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "FLIT_BYTES",
    "MAX_PACKET_FLITS",
    "PacketRecord",
    "Message",
    "Trace",
    "packetize_flits",
    "schedule_phases",
]

#: Flit payload: 64-bit flits (paper Table II).
FLIT_BYTES = 8

#: The larger of the paper's two packet sizes.
MAX_PACKET_FLITS = 32


@dataclass(frozen=True)
class PacketRecord:
    """One packet injection: time (cycle), source, destination, size."""

    time: int
    src: int
    dst: int
    size_flits: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"injection time must be >= 0, got {self.time}")
        if self.src == self.dst:
            raise ValueError(f"packet to self at node {self.src}")
        if not 1 <= self.size_flits <= MAX_PACKET_FLITS:
            raise ValueError(
                f"packet size must be 1..{MAX_PACKET_FLITS} flits, got {self.size_flits}"
            )


@dataclass(frozen=True)
class Message:
    """One application-level message before packetization."""

    src: int
    dst: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message to self at node {self.src}")
        if self.size_bytes < 1:
            raise ValueError(f"message must be >= 1 byte, got {self.size_bytes}")

    @property
    def size_flits(self) -> int:
        """Flits needed for the payload (64-bit flits)."""
        return -(-self.size_bytes // FLIT_BYTES)


def packetize_flits(n_flits: int) -> list[int]:
    """Split a flit count into the paper's two packet sizes.

    Full 32-flit packets first, remainder as 1-flit packets.

    >>> packetize_flits(70)
    [32, 32, 1, 1, 1, 1, 1, 1]
    """
    if n_flits < 1:
        raise ValueError(f"flit count must be >= 1, got {n_flits}")
    full, rest = divmod(n_flits, MAX_PACKET_FLITS)
    return [MAX_PACKET_FLITS] * full + [1] * rest


@dataclass
class Trace:
    """An injection-ordered packet trace for ``n_nodes`` endpoints."""

    n_nodes: int
    packets: list[PacketRecord] = field(default_factory=list)
    name: str = "trace"

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"trace needs >= 2 nodes, got {self.n_nodes}")
        for pkt in self.packets:
            self._check(pkt)
        self.packets.sort(key=lambda p: (p.time, p.src, p.dst))

    def _check(self, pkt: PacketRecord) -> None:
        if not (0 <= pkt.src < self.n_nodes and 0 <= pkt.dst < self.n_nodes):
            raise ValueError(f"packet endpoints outside 0..{self.n_nodes - 1}: {pkt}")

    @property
    def n_packets(self) -> int:
        """Total packets in the trace."""
        return len(self.packets)

    @property
    def total_flits(self) -> int:
        """Total flits across all packets."""
        return sum(p.size_flits for p in self.packets)

    @property
    def duration_cycles(self) -> int:
        """Last injection time + 1 (0 for an empty trace)."""
        if not self.packets:
            return 0
        return self.packets[-1].time + 1

    def columns(self) -> dict[str, np.ndarray]:
        """Vectorized column view: ``time``/``src``/``dst``/``size_flits``
        int64 arrays in packet order (the trace store, the statistics and
        the batched engine all consume this). Built once and memoized —
        traces are treated as immutable after construction, so callers
        must not write to the returned arrays."""
        cached = getattr(self, "_columns_cache", None)
        if cached is None:
            n = len(self.packets)
            cached = {
                "time": np.fromiter((p.time for p in self.packets), np.int64, n),
                "src": np.fromiter((p.src for p in self.packets), np.int64, n),
                "dst": np.fromiter((p.dst for p in self.packets), np.int64, n),
                "size_flits": np.fromiter(
                    (p.size_flits for p in self.packets), np.int64, n
                ),
            }
            self._columns_cache = cached
        return cached

    def flit_count_matrix(self) -> TrafficMatrix:
        """Per-pair flit counts (the paper's Table V input view)."""
        m = np.zeros((self.n_nodes, self.n_nodes))
        for p in self.packets:
            m[p.src, p.dst] += p.size_flits
        return TrafficMatrix(m, name=f"{self.name}-flits")

    def scaled(self, factor: float, *, name: str | None = None) -> "Trace":
        """Subsample packets to ~``factor`` of the trace, keeping order.

        Used to shrink full-fidelity traces to cycle-simulation size; the
        (src, dst) mix is preserved by deterministic stride sampling.
        """
        if not 0 < factor <= 1:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        if factor == 1.0:
            return Trace(self.n_nodes, list(self.packets), name=name or self.name)
        stride = 1.0 / factor
        picked = [
            self.packets[int(i * stride)]
            for i in range(int(len(self.packets) * factor))
        ]
        return Trace(self.n_nodes, picked, name=name or f"{self.name}-x{factor:g}")


def schedule_phases(
    n_nodes: int,
    phases: Sequence[Iterable[Message]],
    *,
    inter_phase_gap: int = 64,
    flit_interval: int = 1,
    name: str = "trace",
) -> Trace:
    """Build a :class:`Trace` from per-phase message lists.

    Within a phase every source injects its packets serially; the next
    phase starts after every source has finished injecting plus
    ``inter_phase_gap`` compute cycles.

    ``flit_interval`` paces each source at one flit every ``flit_interval``
    cycles. The paper's MPICL traces came from a machine whose network
    interleaves computation with communication, and it notes the traces
    "will not saturate the NoC simulator"; pacing reproduces that operating
    point (a bulk-synchronous burst at full rate would drive an all-to-all
    far past saturation — see EXPERIMENTS.md).
    """
    if inter_phase_gap < 0:
        raise ValueError(f"inter-phase gap must be >= 0, got {inter_phase_gap}")
    if flit_interval < 1:
        raise ValueError(f"flit interval must be >= 1, got {flit_interval}")
    packets: list[PacketRecord] = []
    phase_start = 0
    for phase in phases:
        next_free = np.full(n_nodes, phase_start, dtype=np.int64)
        for msg in phase:
            for size in packetize_flits(msg.size_flits):
                t = int(next_free[msg.src])
                packets.append(
                    PacketRecord(time=t, src=msg.src, dst=msg.dst, size_flits=size)
                )
                next_free[msg.src] = t + size * flit_interval
        phase_start = int(next_free.max()) + inter_phase_gap
    return Trace(n_nodes, packets, name=name)
