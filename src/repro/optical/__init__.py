"""All-optical NoC substrate: switches, routers, losses, projections."""

from repro.optical.circuit import (
    PAPER_LATENCY_REDUCTION,
    paper_latency_approximation,
    setup_transfer_latency,
)
from repro.optical.laser import path_laser_energy_fj_per_bit, path_laser_power_w
from repro.optical.loss import PathLossModel
from repro.optical.projection import (
    AllOpticalComparison,
    NocProjection,
    project_all_optical,
)
from repro.optical.router import (
    CROSS_COUNT,
    DOR_TURN_WEIGHTS,
    HYPPI_ROUTER,
    N_PORTS,
    PHOTONIC_ROUTER,
    OpticalRouterModel,
    optical_router_for,
    optimal_port_assignment,
)
from repro.optical.switch import (
    MRR_SWITCH,
    PLASMONIC_SWITCH,
    SwitchElementParams,
    SwitchState,
)

__all__ = [
    "PAPER_LATENCY_REDUCTION",
    "paper_latency_approximation",
    "setup_transfer_latency",
    "path_laser_energy_fj_per_bit",
    "path_laser_power_w",
    "PathLossModel",
    "AllOpticalComparison",
    "NocProjection",
    "project_all_optical",
    "CROSS_COUNT",
    "DOR_TURN_WEIGHTS",
    "HYPPI_ROUTER",
    "N_PORTS",
    "PHOTONIC_ROUTER",
    "OpticalRouterModel",
    "optical_router_for",
    "optimal_port_assignment",
    "MRR_SWITCH",
    "PLASMONIC_SWITCH",
    "SwitchElementParams",
    "SwitchState",
]
