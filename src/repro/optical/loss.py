"""End-to-end optical path loss through an all-optical NoC.

"the losses incurred along the entire path from source to destination for
each flit was computed, and the laser power was estimated accordingly"
(paper, Section V). A path's loss is:

* modulator insertion loss + coupler losses at the source (Table I);
* per traversed router, the (in-port, out-port) fabric loss under the
  optimal port assignment;
* waveguide propagation loss over the physical route length.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.optical.router import (
    OpticalRouterModel,
    optical_router_for,
    optimal_port_assignment,
)
from repro.tech.parameters import OpticalTechnologyParams, Technology, optical_params
from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable

__all__ = ["PathLossModel", "Direction"]

#: Direction encoding shared with the router model: 0=N, 1=E, 2=S, 3=W, 4=Local.
Direction = int
_LOCAL: Direction = 4


@lru_cache(maxsize=4)
def _assignment_for(technology: Technology) -> tuple[tuple[int, ...], float]:
    return optimal_port_assignment(optical_router_for(technology))


@dataclass
class PathLossModel:
    """Loss calculator for one all-optical network technology."""

    topology: Topology
    technology: Technology
    routing: RoutingTable

    def __post_init__(self) -> None:
        if not self.technology.is_optical:
            raise ValueError(f"{self.technology} is not optical")
        self.router: OpticalRouterModel = optical_router_for(self.technology)
        self.params: OpticalTechnologyParams = optical_params(self.technology)
        self.assignment, self.expected_router_loss_db = _assignment_for(
            self.technology
        )

    def _direction(self, from_node: int, to_node: int) -> Direction:
        fx, fy = self.topology.coords(from_node)
        tx, ty = self.topology.coords(to_node)
        if ty < fy:
            return 0  # N
        if tx > fx:
            return 1  # E
        if ty > fy:
            return 2  # S
        if tx < fx:
            return 3  # W
        raise ValueError(f"nodes {from_node} and {to_node} are co-located")

    def path_loss_db(self, src: int, dst: int) -> float:
        """Total source-to-destination optical loss, dB."""
        if src == dst:
            raise ValueError("no optical path to self")
        path = self.routing.path(src, dst)
        p = self.params
        loss = p.total_fixed_loss_db()
        # Propagation over the physical route.
        total_length_m = sum(link.length_m for link in path)
        loss += p.propagation_loss_db(total_length_m)
        # Router fabric losses. The source router is traversed from the
        # Local port; the destination router exits to the Local port.
        assign = self.assignment
        current = src
        in_dir: Direction = _LOCAL
        for link in path:
            out_dir = self._direction(current, link.dst)
            loss += self.router.loss_db(assign[in_dir], assign[out_dir])
            # Entering the next router from the opposite direction.
            in_dir = {0: 2, 1: 3, 2: 0, 3: 1}[out_dir]
            current = link.dst
        loss += self.router.loss_db(assign[in_dir], assign[_LOCAL])
        return loss

    def average_loss_db(self, traffic_matrix) -> float:
        """Traffic-weighted mean path loss, dB."""
        m = traffic_matrix.matrix
        total = m.sum()
        if total == 0:
            raise ValueError("zero traffic")
        weighted = 0.0
        n = self.topology.n_nodes
        for s in range(n):
            for d in range(n):
                if m[s, d] > 0:
                    weighted += m[s, d] * self.path_loss_db(s, d)
        return float(weighted / total)

    def worst_case_loss_db(self) -> float:
        """Maximum loss over all pairs (sets the laser power budget)."""
        n = self.topology.n_nodes
        # Corner-to-corner routes dominate; checking the four corners
        # against all nodes covers the maximum for X-Y routing.
        corners = [
            self.topology.node_id(0, 0),
            self.topology.node_id(self.topology.width - 1, 0),
            self.topology.node_id(0, self.topology.height - 1),
            self.topology.node_id(self.topology.width - 1, self.topology.height - 1),
        ]
        worst = 0.0
        for c in corners:
            for d in range(n):
                if d != c:
                    worst = max(
                        worst, self.path_loss_db(c, d), self.path_loss_db(d, c)
                    )
        return worst
