"""2x2 electro-optical switch elements (paper Section V, refs [19-21]).

Two flavours build the paper's all-optical routers:

* :data:`PLASMONIC_SWITCH` — the authors' ultra-compact plasmonic MOS 2x2
  switch (ref [20]): "Due to the compact size (< 5 µm) this switch has
  fJ/bit power consumption and ps switching delay times". Operates by
  tuning the coupling length between two SOI waveguide busses.
* :data:`MRR_SWITCH` — a microring-resonator 2x2 switch as used by the
  five-port photonic router of ref [21] (8 rings per router).

A 2x2 switch has two states: BAR (in0->out0, in1->out1) and CROSS
(in0->out1, in1->out0); each state shows a different insertion loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["SwitchState", "SwitchElementParams", "PLASMONIC_SWITCH", "MRR_SWITCH"]


class SwitchState(enum.Enum):
    """2x2 switch configuration."""

    BAR = "bar"
    CROSS = "cross"


@dataclass(frozen=True)
class SwitchElementParams:
    """Physical parameters of one 2x2 electro-optical switch element."""

    name: str
    loss_bar_db: float
    """Insertion loss in the BAR state."""
    loss_cross_db: float
    """Insertion loss in the CROSS state."""
    control_energy_fj_per_bit: float
    """Electrical control energy while routing data, fJ/bit."""
    switching_time_ps: float
    """Reconfiguration time between states."""
    area_um2: float
    """Layout footprint of the element."""
    static_power_uw: float
    """Always-on control/bias power (thermal trim for MRR switches)."""

    def __post_init__(self) -> None:
        if self.loss_bar_db < 0 or self.loss_cross_db < 0:
            raise ValueError(f"losses must be >= 0 dB: {self}")
        if self.control_energy_fj_per_bit < 0:
            raise ValueError(f"control energy must be >= 0: {self}")
        if self.switching_time_ps <= 0 or self.area_um2 <= 0:
            raise ValueError(f"switching time and area must be > 0: {self}")
        if self.static_power_uw < 0:
            raise ValueError(f"static power must be >= 0: {self}")

    def loss_db(self, state: SwitchState) -> float:
        """Insertion loss in the given state."""
        return self.loss_bar_db if state is SwitchState.BAR else self.loss_cross_db


PLASMONIC_SWITCH = SwitchElementParams(
    name="plasmonic-mos-2x2",
    loss_bar_db=0.08,
    loss_cross_db=2.2,
    control_energy_fj_per_bit=0.9,
    switching_time_ps=5.0,
    area_um2=25.0,
    static_power_uw=1.0,
)
"""The compact plasmonic MOS 2x2 switch (ref [20]); the strongly asymmetric
bar/cross loss is what produces the HyPPI router's wide 0.32-9.1 dB loss
range in Table VI and motivates its optimal port assignment."""

MRR_SWITCH = SwitchElementParams(
    name="mrr-2x2",
    loss_bar_db=0.05,
    loss_cross_db=0.35,
    control_energy_fj_per_bit=16.0,
    switching_time_ps=60.0,
    area_um2=60_000.0,
    static_power_uw=3000.0,
)
"""Microring 2x2 switch (ref [21] style): small, symmetric-ish losses but a
huge footprint once the 15 µm thermal-isolation spacing is counted, plus
continuous thermal-trimming power."""
