"""Circuit-switched latency model for all-optical NoCs.

"All-optical NoCs are fundamentally circuit-switched ... Once the path is
set up, the latency is one clock cycle or few clock cycles" (paper,
Section V). For the headline projection the paper adopts the published
approximation of ref [22]: "around 50% reduction in latency over an
electronic mesh, with an all-optical NoC using an electronic control
network for path setup".

We expose both that approximation (:func:`paper_latency_approximation`)
and a first-principles estimate (:func:`setup_transfer_latency`) that
charges an electronic path-setup round plus time-of-flight transfer, so the
approximation can be sanity-checked (the ablation bench compares the two).
"""

from __future__ import annotations

from repro.util.units import SPEED_OF_LIGHT_M_S

__all__ = [
    "PAPER_LATENCY_REDUCTION",
    "paper_latency_approximation",
    "setup_transfer_latency",
]

#: Ref [22]'s reported latency reduction for an all-optical NoC with an
#: electronic setup network.
PAPER_LATENCY_REDUCTION = 0.5


def paper_latency_approximation(electronic_mesh_latency_clks: float) -> float:
    """The paper's adopted estimate: half the electronic-mesh latency."""
    if electronic_mesh_latency_clks <= 0:
        raise ValueError(
            f"latency must be > 0, got {electronic_mesh_latency_clks}"
        )
    return PAPER_LATENCY_REDUCTION * electronic_mesh_latency_clks


def setup_transfer_latency(
    hops: float,
    packet_flits: int,
    *,
    setup_cycles_per_hop: float = 1.0,
    path_length_m: float = 0.0,
    clock_ghz: float = 0.78125,
    group_index: float = 4.2,
) -> float:
    """First-principles circuit-switched latency, cycles.

    An electronic control packet traverses ``hops`` routers to configure
    the switches (``setup_cycles_per_hop`` each, plus the same to ack),
    then the payload streams at one flit per cycle with photonic
    time-of-flight added.

    Args:
        hops: routers traversed between source and destination.
        packet_flits: payload length.
        setup_cycles_per_hop: control-network cycles per hop (one way).
        path_length_m: physical route length for time-of-flight.
        clock_ghz: core clock (converts time-of-flight to cycles).
        group_index: waveguide group index.
    """
    if hops < 1:
        raise ValueError(f"need >= 1 hop, got {hops}")
    if packet_flits < 1:
        raise ValueError(f"packet needs >= 1 flit, got {packet_flits}")
    if path_length_m < 0:
        raise ValueError(f"path length must be >= 0, got {path_length_m}")
    setup = 2.0 * setup_cycles_per_hop * hops  # request + acknowledge
    tof_s = group_index * path_length_m / SPEED_OF_LIGHT_M_S
    tof_cycles = tof_s * clock_ghz * 1e9
    transfer = packet_flits + tof_cycles
    return setup + transfer
