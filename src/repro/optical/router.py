"""Five-port all-optical routers built from 2x2 switch elements (Table VI).

The paper designs a HyPPI router from its plasmonic 2x2 switch (refs
[19, 20]) and compares it against a photonic router realized with 8
microring switches (ref [21]). We model both with the same fabric:

* 8 switch elements per router;
* every input->output path traverses exactly 4 elements (a two-column
  Benes-style arrangement of 2x2s for 5 ports);
* the number of elements that must sit in the lossier CROSS state depends
  on the (input, output) pair — :data:`CROSS_COUNT` — which is what gives
  the HyPPI router its wide 0.32-9.1 dB loss range (plasmonic switches have
  very asymmetric bar/cross losses) while the photonic router stays within
  0.39-1.5 dB;
* U-turns (input == output) are not implemented (paper footnote).

Because the loss range is wide, the paper applies an *optimal port
assignment*: the mapping from NoC directions (E, W, N, S, Local) onto the
router's physical ports is chosen to put the frequent X-Y-routing turns on
the low-loss paths. :func:`optimal_port_assignment` reproduces that search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.optical.switch import (
    MRR_SWITCH,
    PLASMONIC_SWITCH,
    SwitchElementParams,
)
from repro.tech.parameters import Technology

__all__ = [
    "N_PORTS",
    "CROSS_COUNT",
    "OpticalRouterModel",
    "HYPPI_ROUTER",
    "PHOTONIC_ROUTER",
    "optical_router_for",
    "optimal_port_assignment",
    "DOR_TURN_WEIGHTS",
]

#: Router radix (N, E, S, W, Local).
N_PORTS = 5

#: Elements every path traverses.
_PATH_ELEMENTS = 4

#: CROSS-state element count per (input, output) port pair; -1 marks the
#: forbidden u-turns. The matrix is *asymmetric* — a fixed directional-
#: coupler layout serves some transitions with all-BAR paths and forces
#: others through many CROSS stages. The expensive (3- and 4-cross) paths
#: sit on the port pairs that X-Y dimension-ordered routing never exercises
#: (Y -> X turns), which is precisely why the paper's "optimal port
#: assignment ... incur[s] minimal losses" despite the router's wide
#: 0.32-9.1 dB capability range (Table VI).
#:
#: With the natural assignment (ports 0..4 = N, E, S, W, Local):
#: straight-through paths are all-BAR (0 crosses); X->Y turns, injection
#: and ejection use 1-2 crosses; the unused N/S -> E/W transitions absorb
#: the 3-4 cross paths.
CROSS_COUNT = np.array(
    [
        # out: N   E   S   W   L        in:
        [-1, 4, 0, 3, 0],  # N
        [1, -1, 1, 0, 0],  # E
        [0, 3, -1, 4, 0],  # S
        [1, 0, 1, -1, 0],  # W
        [2, 1, 2, 1, -1],  # Local
    ],
    dtype=np.int64,
)


@dataclass(frozen=True)
class OpticalRouterModel:
    """Power/loss/area model of one 5-port all-optical router."""

    technology: Technology
    element: SwitchElementParams
    n_elements: int = 8
    crossing_loss_db: float = 0.0
    """Flat passive waveguide-crossing loss added to every path."""
    layout_overhead_um2: float = 0.0
    """Waveguide routing / pad area beyond the switch elements."""

    def __post_init__(self) -> None:
        if self.n_elements < _PATH_ELEMENTS:
            raise ValueError(
                f"router needs >= {_PATH_ELEMENTS} elements, got {self.n_elements}"
            )
        if self.crossing_loss_db < 0 or self.layout_overhead_um2 < 0:
            raise ValueError(f"negative crossing loss or overhead: {self}")

    def loss_db(self, in_port: int, out_port: int) -> float:
        """Insertion loss of the (in, out) path through the fabric.

        Raises:
            ValueError: for u-turns or out-of-range ports.
        """
        if not (0 <= in_port < N_PORTS and 0 <= out_port < N_PORTS):
            raise ValueError(f"ports must be 0..{N_PORTS - 1}: ({in_port}, {out_port})")
        if in_port == out_port:
            raise ValueError("u-turns are not implemented (paper, Section V)")
        crosses = int(CROSS_COUNT[in_port, out_port])
        bars = _PATH_ELEMENTS - crosses
        return (
            crosses * self.element.loss_cross_db
            + bars * self.element.loss_bar_db
            + self.crossing_loss_db
        )

    def loss_range_db(self) -> tuple[float, float]:
        """(min, max) path loss over all legal port pairs (Table VI)."""
        losses = [
            self.loss_db(i, o)
            for i in range(N_PORTS)
            for o in range(N_PORTS)
            if i != o
        ]
        return min(losses), max(losses)

    def control_energy_fj_per_bit(self) -> float:
        """Electrical control energy to route one bit (Table VI)."""
        return _PATH_ELEMENTS * self.element.control_energy_fj_per_bit

    def area_um2(self) -> float:
        """Router footprint (Table VI)."""
        return self.n_elements * self.element.area_um2 + self.layout_overhead_um2

    def static_power_w(self) -> float:
        """Always-on element bias/trim power."""
        return self.n_elements * self.element.static_power_uw * 1e-6

    def switching_time_ps(self) -> float:
        """Path reconfiguration time (sets the circuit-switch setup cost)."""
        return self.element.switching_time_ps


HYPPI_ROUTER = OpticalRouterModel(
    technology=Technology.HYPPI,
    element=PLASMONIC_SWITCH,
    crossing_loss_db=0.0,
    layout_overhead_um2=300.0,
)
"""All-HyPPI router: 8 plasmonic 2x2 switches, ~500 µm² (paper Table VI)."""

PHOTONIC_ROUTER = OpticalRouterModel(
    technology=Technology.PHOTONIC,
    element=MRR_SWITCH,
    crossing_loss_db=0.19,
    layout_overhead_um2=0.0,
)
"""All-photonic router: 8 MRR 2x2 switches, ~0.48 mm² (paper Table VI)."""


def optical_router_for(technology: Technology) -> OpticalRouterModel:
    """The Table VI router model for a technology (photonic or HyPPI)."""
    if technology is Technology.HYPPI:
        return HYPPI_ROUTER
    if technology is Technology.PHOTONIC:
        return PHOTONIC_ROUTER
    raise ValueError(f"no all-optical router model for {technology}")


#: Relative frequency of (entry_port_side, exit_port_side) transitions under
#: X-Y dimension-ordered routing with uniform-ish traffic on a mesh. Sides:
#: 0=N, 1=E, 2=S, 3=W, 4=Local. A flit travelling *east* enters on the
#: router's *west* side, so straight eastbound traffic is (3, 1).
#: Straight-through X traffic dominates, then X->Y turns, then
#: injection/ejection.
DOR_TURN_WEIGHTS: dict[tuple[int, int], float] = {
    (3, 1): 0.18, (1, 3): 0.18,          # straight eastbound / westbound
    (0, 2): 0.10, (2, 0): 0.10,          # straight southbound / northbound
    (3, 0): 0.045, (3, 2): 0.045,        # X -> Y turns (arriving eastbound)
    (1, 0): 0.045, (1, 2): 0.045,        # X -> Y turns (arriving westbound)
    (4, 1): 0.04, (4, 3): 0.04,          # injection into X
    (4, 0): 0.02, (4, 2): 0.02,          # injection straight into Y
    (3, 4): 0.03, (1, 4): 0.03,          # ejection off X
    (0, 4): 0.04, (2, 4): 0.04,          # ejection off Y
}


def optimal_port_assignment(
    router: OpticalRouterModel,
    turn_weights: dict[tuple[int, int], float] | None = None,
) -> tuple[tuple[int, ...], float]:
    """Direction->port mapping minimizing expected loss under X-Y routing.

    Brute-forces all 5! assignments of NoC directions (N, E, S, W, Local)
    onto router ports. Returns ``(assignment, expected_loss_db)`` where
    ``assignment[direction] == port``.
    """
    weights = DOR_TURN_WEIGHTS if turn_weights is None else turn_weights
    if not weights:
        raise ValueError("turn weights must not be empty")
    total = sum(weights.values())
    best_assignment: tuple[int, ...] | None = None
    best_loss = float("inf")
    for perm in itertools.permutations(range(N_PORTS)):
        loss = 0.0
        for (din, dout), w in weights.items():
            if din == dout:
                raise ValueError(f"u-turn in turn weights: {(din, dout)}")
            loss += w * router.loss_db(perm[din], perm[dout])
        loss /= total
        if loss < best_loss:
            best_loss = loss
            best_assignment = perm
    assert best_assignment is not None
    return best_assignment, best_loss
