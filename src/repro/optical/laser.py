"""Laser power / energy-per-bit estimation for all-optical NoCs.

Uses the HyPPI paper's energy formulation (paper ref [9]): the receiver
must integrate a fixed charge per bit, so the laser energy per bit is

    E = Q_rx / (responsivity * efficiency) * 10^(loss_db / 10)

independent of data rate (see :mod:`repro.tech.optical`). In the paper's
all-optical projection the laser is provisioned per flit path — circuit
switching lets the source laser drive exactly the configured path — so
laser energy is accounted per transported bit rather than as CW static
power.
"""

from __future__ import annotations

from repro.tech.optical import laser_energy_fj_per_bit
from repro.tech.parameters import Technology, optical_params

__all__ = ["path_laser_energy_fj_per_bit", "path_laser_power_w"]


def path_laser_energy_fj_per_bit(technology: Technology, loss_db: float) -> float:
    """Laser wall-plug energy per bit over a path with ``loss_db`` loss."""
    if loss_db < 0:
        raise ValueError(f"loss must be >= 0 dB, got {loss_db}")
    return laser_energy_fj_per_bit(optical_params(technology), loss_db)


def path_laser_power_w(
    technology: Technology, loss_db: float, data_rate_gbps: float
) -> float:
    """Laser wall-plug power while streaming at ``data_rate_gbps``."""
    if data_rate_gbps <= 0:
        raise ValueError(f"data rate must be > 0, got {data_rate_gbps}")
    energy_fj = path_laser_energy_fj_per_bit(technology, loss_db)
    return energy_fj * 1e-15 * data_rate_gbps * 1e9
