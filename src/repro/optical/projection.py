"""All-optical NoC projections (paper Section V, Fig. 8).

Compares three 16x16 networks on the radar-plot axes Latency / Energy-per-
bit / Area:

* **electronic mesh** — the analytical baseline (DSENT models);
* **all-photonic NoC** — MRR-switch routers (Table VI) + photonic links;
* **all-HyPPI NoC** — plasmonic-switch routers (Table VI) + HyPPI links.

Accounting choices, mirroring the paper's:

* All-optical energy/bit = per-router control energy along the average
  path + laser energy sized by the average path loss ("the losses incurred
  along the entire path ... for each flit was computed, and the laser
  power was estimated accordingly").
* Electronic energy/bit amortizes the mesh's (static + dynamic) power over
  the delivered bit rate at an application-level utilization
  (``amortization_injection_rate``). Real applications keep NoCs at ~0.1%
  utilization, which is how the paper's electronic figure lands orders of
  magnitude above the optical ones. EXPERIMENTS.md discusses sensitivity.
* All-optical latency uses the paper's adopted approximation: 50% of the
  electronic mesh latency (ref [22]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.latency import average_latency_cycles
from repro.analysis.power import network_area_m2, network_power
from repro.optical.circuit import paper_latency_approximation
from repro.optical.laser import path_laser_energy_fj_per_bit
from repro.optical.loss import PathLossModel
from repro.optical.router import optical_router_for
from repro.tech.parameters import Technology
from repro.topology.mesh import build_mesh
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import soteriou_traffic

__all__ = ["NocProjection", "AllOpticalComparison", "project_all_optical"]


@dataclass(frozen=True)
class NocProjection:
    """One network's radar-plot coordinates (Fig. 8)."""

    name: str
    latency_clks: float
    energy_per_bit_fj: float
    area_mm2: float

    def __post_init__(self) -> None:
        if min(self.latency_clks, self.energy_per_bit_fj, self.area_mm2) <= 0:
            raise ValueError(f"all projection figures must be > 0: {self}")

    def radar_row(self) -> list[object]:
        """Row for the Fig. 8 comparison table."""
        return [self.name, self.latency_clks, self.energy_per_bit_fj, self.area_mm2]


@dataclass(frozen=True)
class AllOpticalComparison:
    """The three-way Fig. 8 comparison."""

    electronic: NocProjection
    photonic: NocProjection
    hyppi: NocProjection

    def all(self) -> list[NocProjection]:
        """All three projections in the paper's order."""
        return [self.electronic, self.photonic, self.hyppi]

    @property
    def energy_ratio_electronic_over_hyppi(self) -> float:
        """The paper's headline "255x" energy ratio."""
        return self.electronic.energy_per_bit_fj / self.hyppi.energy_per_bit_fj

    @property
    def area_ratio_photonic_over_hyppi(self) -> float:
        """The "two orders of magnitude smaller than all-photonic" claim."""
        return self.photonic.area_mm2 / self.hyppi.area_mm2


def _all_optical_projection(
    technology: Technology,
    traffic: TrafficMatrix,
    electronic_latency_clks: float,
    *,
    width: int,
    height: int,
    core_spacing_m: float,
    flit_bits: int,
) -> NocProjection:
    topo = build_mesh(
        width, height, link_technology=technology, core_spacing_m=core_spacing_m
    )
    routing = RoutingTable(topo)
    loss_model = PathLossModel(topology=topo, technology=technology, routing=routing)
    router = optical_router_for(technology)

    avg_loss_db = loss_model.average_loss_db(traffic)
    laser_fj = path_laser_energy_fj_per_bit(technology, avg_loss_db)

    # Average routers traversed = mean hops + 1.
    dist = traffic.mean_distance(_hop_matrix(topo, routing))
    routers_on_path = dist + 1.0
    control_fj = router.control_energy_fj_per_bit() * routers_on_path
    energy_fj = laser_fj + control_fj

    # Area: optical routers + waveguides (+ per-node E-O/O-E interfaces).
    from repro.tech.parameters import optical_params

    p = optical_params(technology)
    router_area_um2 = router.area_um2() * topo.n_nodes
    waveguide_area_um2 = sum(
        p.waveguide.pitch_um * l.length_m * 1e6 for l in topo.links
    )
    endpoint_area_um2 = topo.n_nodes * (
        p.laser.area_um2 + p.modulator.area_um2 + p.photodetector.area_um2
    )
    area_mm2 = (router_area_um2 + waveguide_area_um2 + endpoint_area_um2) * 1e-6

    return NocProjection(
        name=f"all-{technology.value}",
        latency_clks=paper_latency_approximation(electronic_latency_clks),
        energy_per_bit_fj=energy_fj,
        area_mm2=area_mm2,
    )


def _hop_matrix(topo, routing):
    import numpy as np

    n = topo.n_nodes
    m = np.zeros((n, n))
    for s in range(n):
        for d in range(n):
            if s != d:
                m[s, d] = routing.hop_count(s, d)
    return m


def project_all_optical(
    *,
    width: int = 16,
    height: int = 16,
    core_spacing_m: float = 1e-3,
    flit_bits: int = 64,
    injection_rate: float = 0.1,
    amortization_injection_rate: float = 0.001,
    clock_hz: float = 0.78125e9,
    seed: int = 0,
) -> AllOpticalComparison:
    """Compute the Fig. 8 three-way comparison.

    Args:
        width, height: mesh dimensions (paper: 16x16).
        core_spacing_m: physical link length (paper: 1 mm).
        flit_bits: flit width for bit-rate conversion.
        injection_rate: synthetic traffic rate for the *pattern* (Sec. III-B).
        amortization_injection_rate: utilization at which the electronic
            mesh's power is amortized into energy/bit (application-level).
        clock_hz: core clock.
        seed: traffic seed.
    """
    if amortization_injection_rate <= 0:
        raise ValueError(
            f"amortization rate must be > 0, got {amortization_injection_rate}"
        )
    e_mesh = build_mesh(
        width, height, link_technology=Technology.ELECTRONIC,
        core_spacing_m=core_spacing_m,
    )
    routing = RoutingTable(e_mesh)
    traffic = soteriou_traffic(e_mesh, injection_rate=injection_rate, seed=seed)

    e_latency = average_latency_cycles(e_mesh, traffic, routing)
    amortized = traffic.scaled_to_injection_rate(amortization_injection_rate)
    e_power = network_power(e_mesh, amortized, routing, clock_hz=clock_hz)
    delivered_bps = (
        e_mesh.n_nodes * amortization_injection_rate * flit_bits * clock_hz
    )
    e_energy_fj = e_power.total_w / delivered_bps * 1e15
    electronic = NocProjection(
        name="electronic-mesh",
        latency_clks=e_latency,
        energy_per_bit_fj=e_energy_fj,
        area_mm2=network_area_m2(e_mesh) * 1e6,
    )

    photonic = _all_optical_projection(
        Technology.PHOTONIC, traffic, e_latency,
        width=width, height=height, core_spacing_m=core_spacing_m,
        flit_bits=flit_bits,
    )
    hyppi = _all_optical_projection(
        Technology.HYPPI, traffic, e_latency,
        width=width, height=height, core_spacing_m=core_spacing_m,
        flit_bits=flit_bits,
    )
    return AllOpticalComparison(
        electronic=electronic, photonic=photonic, hyppi=hyppi
    )
