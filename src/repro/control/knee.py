"""One-run saturation-knee location by detector-driven bisection.

Open-loop saturation studies sweep a whole grid of injection rates and
flag each point SATURATED after it burns its drain budget. The knee —
the offered rate at which the network leaves the stable regime — is a
*monotone boundary* in that grid, so bisection over the rate axis finds
it to a tolerance ``tol`` in ``O(log((hi - lo) / tol))`` simulations
instead of ``O((hi - lo) / tol)``, and the per-probe verdict comes from
the streaming :class:`~repro.telemetry.detectors.SaturationDetector`
(onset observed, or the run failed to drain) rather than from exhausting
the budget.

Probes are ordinary ``"knee-search"`` scenarios
(:mod:`repro.experiments.registry`), evaluated through a shared
:class:`~repro.experiments.runner.Runner` — every probe at a given rate
is the *same* scenario whether it came from this bisection, a brute
force sweep, or an earlier search, so the evaluation cache deduplicates
across all three (the family seeds every rate identically for exactly
this reason).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["KneeProbe", "KneeResult", "locate_knee", "probe_is_saturated", "sweep_knee"]


@dataclass(frozen=True)
class KneeProbe:
    """One evaluated rate: its verdict and where it came from."""

    rate: float
    saturated: bool
    onset_cycle: int | None
    drained: bool
    cached: bool
    """True when the evaluation cache served this probe (not re-simulated)."""


@dataclass(frozen=True)
class KneeResult:
    """Outcome of one bisection search.

    The final bracket ``[lo, hi]`` has ``lo`` stable and ``hi``
    saturated with ``hi - lo <= tolerance``; :attr:`knee_rate` is the
    bracket midpoint. ``n_simulations`` counts probes actually simulated
    (cache hits excluded), the figure to compare against a sweep's point
    count.
    """

    lo: float
    hi: float
    tolerance: float
    probes: tuple[KneeProbe, ...]

    @property
    def knee_rate(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def n_probes(self) -> int:
        return len(self.probes)

    @property
    def n_simulations(self) -> int:
        return sum(1 for p in self.probes if not p.cached)

    def to_json(self) -> dict[str, Any]:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "knee_rate": self.knee_rate,
            "tolerance": self.tolerance,
            "n_simulations": self.n_simulations,
            "probes": [
                {
                    "rate": p.rate,
                    "saturated": p.saturated,
                    "onset_cycle": p.onset_cycle,
                    "drained": p.drained,
                    "cached": p.cached,
                }
                for p in self.probes
            ],
        }


def probe_is_saturated(metrics: dict[str, Any]) -> bool:
    """The shared probe verdict: onset detected, or failed to drain.

    The detector usually fires well before the drain budget burns, which
    is what makes a probe cheap; the drain flag backstops pathological
    runs where latency blows up without a detectable onset.
    """
    return metrics.get("saturation_onset_cycle") is not None or not metrics["drained"]


def _evaluate(rate: float, runner, family_knobs: dict[str, Any]) -> KneeProbe:
    from repro.experiments import scenario_family

    scenario = scenario_family("knee-search", rates=[rate], **family_knobs)[0]
    result = runner.run([scenario])[0]
    return KneeProbe(
        rate=rate,
        saturated=probe_is_saturated(result.metrics),
        onset_cycle=result.metrics.get("saturation_onset_cycle"),
        drained=result.metrics["drained"],
        cached=result.cached,
    )


def locate_knee(
    *,
    lo: float,
    hi: float,
    tolerance: float = 0.02,
    runner=None,
    **family_knobs: Any,
) -> KneeResult:
    """Bisect the saturation knee of a ``"knee-search"`` configuration.

    ``lo`` must evaluate stable and ``hi`` saturated (the bracket is
    probed first and a :class:`ValueError` names the offending end
    otherwise); remaining knobs (``model``, ``traffic``, ``width``,
    ``cycles``, ``window``, ``seed``, model params, ...) forward to the
    scenario family. Pass a shared :class:`~repro.experiments.Runner` to
    reuse its evaluation cache across searches and sweeps.
    """
    from repro.experiments import Runner

    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    if runner is None:
        runner = Runner()
    probes: list[KneeProbe] = []
    lo_probe = _evaluate(lo, runner, family_knobs)
    probes.append(lo_probe)
    if lo_probe.saturated:
        raise ValueError(
            f"bracket low end r={lo:g} is already saturated; lower it"
        )
    hi_probe = _evaluate(hi, runner, family_knobs)
    probes.append(hi_probe)
    if not hi_probe.saturated:
        raise ValueError(
            f"bracket high end r={hi:g} did not saturate; raise it"
        )
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        probe = _evaluate(mid, runner, family_knobs)
        probes.append(probe)
        if probe.saturated:
            hi = mid
        else:
            lo = mid
    return KneeResult(lo=lo, hi=hi, tolerance=tolerance, probes=tuple(probes))


def sweep_knee(
    rates,
    *,
    runner=None,
    **family_knobs: Any,
) -> tuple[float | None, list[KneeProbe]]:
    """Brute-force comparator: probe every rate, return the first
    saturated one (``None`` if the whole grid stays stable).

    Uses the same scenarios and verdict as :func:`locate_knee`, so the
    two agree up to grid resolution / bisection tolerance — the
    integration test pins that, along with the simulation-count savings.
    """
    from repro.experiments import Runner

    if runner is None:
        runner = Runner()
    probes = [_evaluate(float(r), runner, family_knobs) for r in rates]
    knee = next((p.rate for p in probes if p.saturated), None)
    return knee, probes
