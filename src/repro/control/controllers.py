"""Online adaptive controllers acting at telemetry window boundaries.

PR 4's streaming detectors answer *when* a run degrades; this module
closes the loop: a :class:`ControlSession` registers as the telemetry
sampler's window observer (:class:`repro.telemetry.sampler
.TelemetrySession`), feeds each closing window to its controllers, and
translates their directives into the two actuators the simulator
exposes:

* the **injection throttle gate** — at throttle level ``L`` new packets
  may only start on every ``2^L``-th cycle, a deterministic duty-cycle
  realization of "halve the offered rate" (level 0 = open);
* **per-node injection-VC limits** — hot routers admit new local packets
  into fewer VCs, freeing input buffers for through-traffic (safe:
  injection ports sit outside every channel dependency cycle).

Controllers are *streaming and pure*: each decision is a function of the
window history observed so far, never of hidden simulator state. That is
what makes the recorded :class:`ControlTrace` replayable — running
:func:`replay_control` over the stored telemetry of a controlled run
with fresh controller instances reproduces the action sequence exactly
(a property test pins this).

Built-ins:

* :class:`ThrottleController` — halves the offered rate on each
  :class:`~repro.telemetry.detectors.SaturationDetector` onset (re-armed
  via its :meth:`~repro.telemetry.detectors.SaturationDetector.reset`),
  and releases one level after a sustained healthy streak;
* :class:`VcBiasController` — tracks a
  :class:`~repro.telemetry.detectors.HotspotDetector` and restricts the
  injection VCs of sustained-hotspot routers, restoring them when the
  hotspot dissolves.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.telemetry.detectors import HotspotDetector, SaturationDetector
from repro.telemetry.sampler import TelemetryTrace, WindowRow

__all__ = [
    "ControlAction",
    "ControlSession",
    "ControlTrace",
    "Controller",
    "Directive",
    "ThrottleController",
    "VcBiasController",
    "WindowSnapshot",
    "controller_entry",
    "controller_names",
    "make_controllers",
    "register_controller",
    "replay_control",
]


@dataclass(frozen=True)
class WindowSnapshot:
    """One closed telemetry window, as controllers see it."""

    index: int
    """Global window index (ring eviction never renumbers)."""
    start: int
    end: int
    router_flits: np.ndarray
    """Per-router traversal counts within the window."""
    delivered: int
    latency_sum: int
    occupied_vcs: int
    """Network-wide occupied input VCs at the window's closing edge."""
    in_flight: int

    @property
    def mean_latency(self) -> float:
        """Mean ejection latency of the window (nan if none delivered)."""
        if self.delivered == 0:
            return math.nan
        return self.latency_sum / self.delivered


@dataclass(frozen=True)
class Directive:
    """One actuator change requested by a controller.

    ``kind`` is ``"throttle"`` (``value`` = new level, gate period
    ``2**value``) or ``"vc_limit"`` (``value`` = injection-VC cap for
    ``nodes``).
    """

    kind: str
    value: int
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("throttle", "vc_limit"):
            raise ValueError(f"unknown directive kind {self.kind!r}")
        if self.value < 0:
            raise ValueError(f"directive value must be >= 0, got {self.value}")
        if self.kind == "vc_limit" and self.value < 1:
            # Limit 0 would block the targeted nodes' injection forever.
            raise ValueError("vc_limit directives need >= 1 usable VC")


@dataclass(frozen=True)
class ControlAction:
    """One applied directive, stamped with when it took effect."""

    window: int
    """Global index of the window whose close triggered the action."""
    cycle: int
    """Boundary cycle at which the actuator changed."""
    controller: str
    kind: str
    value: int
    nodes: tuple[int, ...] = ()

    def to_json(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "cycle": self.cycle,
            "controller": self.controller,
            "kind": self.kind,
            "value": self.value,
            "nodes": list(self.nodes),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ControlAction":
        return cls(
            window=data["window"],
            cycle=data["cycle"],
            controller=data["controller"],
            kind=data["kind"],
            value=data["value"],
            nodes=tuple(data["nodes"]),
        )


@dataclass(frozen=True)
class ControlTrace:
    """Complete record of one control session: every action, per window.

    Frozen and tuple-valued so traces compare by value — the determinism
    contract is ``online trace == replay_control(saved telemetry)``.
    """

    window: int
    n_windows: int
    cycles: int
    actions: tuple[ControlAction, ...]
    final_throttle_period: int
    restricted_nodes: tuple[int, ...]
    """Nodes whose injection-VC limit was still below n_vcs at the end."""

    @property
    def n_actions(self) -> int:
        return len(self.actions)

    def actions_in_window(self, index: int) -> list[ControlAction]:
        """Actions triggered by the close of global window ``index``."""
        return [a for a in self.actions if a.window == index]

    def throttle_level_series(self) -> list[tuple[int, int]]:
        """(window, level) steps of the throttle actuator, in order."""
        return [
            (a.window, a.value) for a in self.actions if a.kind == "throttle"
        ]

    def to_json(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "n_windows": self.n_windows,
            "cycles": self.cycles,
            "actions": [a.to_json() for a in self.actions],
            "final_throttle_period": self.final_throttle_period,
            "restricted_nodes": list(self.restricted_nodes),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ControlTrace":
        return cls(
            window=data["window"],
            n_windows=data["n_windows"],
            cycles=data["cycles"],
            actions=tuple(ControlAction.from_json(a) for a in data["actions"]),
            final_throttle_period=data["final_throttle_period"],
            restricted_nodes=tuple(data["restricted_nodes"]),
        )


class Controller:
    """Base class: consume one window snapshot, emit directives."""

    name = "controller"

    def observe(self, snap: WindowSnapshot) -> tuple[Directive, ...]:
        """Return the actuator changes this window's close calls for."""
        raise NotImplementedError


class ThrottleController(Controller):
    """Halve offered rate on saturation onset, release on recovery.

    Wraps a streaming :class:`SaturationDetector`: when it fires, the
    throttle level rises by one (gate period doubles) and the detector is
    re-armed against its learned baseline. While at a raised level, a
    streak of ``release_patience`` healthy windows (deliveries present
    and windowed latency within ``release_factor`` of the baseline)
    lowers the level by one.
    """

    name = "throttle"

    def __init__(
        self,
        *,
        latency_factor: float = 2.0,
        patience: int = 2,
        baseline_windows: int = 4,
        release_factor: float = 1.25,
        release_patience: int = 3,
        max_level: int = 4,
    ) -> None:
        if release_factor < 1.0:
            raise ValueError(
                f"release factor must be >= 1, got {release_factor}"
            )
        if release_patience < 1:
            raise ValueError(
                f"release patience must be >= 1, got {release_patience}"
            )
        if max_level < 1:
            raise ValueError(f"max level must be >= 1, got {max_level}")
        self._detector = SaturationDetector(
            latency_factor=latency_factor,
            patience=patience,
            baseline_windows=baseline_windows,
        )
        self.release_factor = release_factor
        self.release_patience = release_patience
        self.max_level = max_level
        self.level = 0
        self._healthy_streak = 0

    def observe(self, snap: WindowSnapshot) -> tuple[Directive, ...]:
        det = self._detector
        det.update(snap.start, snap.delivered, snap.latency_sum, snap.occupied_vcs)
        if det.onset_cycle is not None:
            det.reset()
            self._healthy_streak = 0
            if self.level < self.max_level:
                self.level += 1
                return (Directive("throttle", self.level),)
            return ()
        baseline = det.baseline_latency
        healthy = (
            snap.delivered > 0
            and not math.isnan(baseline)
            and snap.mean_latency <= self.release_factor * baseline
        )
        self._healthy_streak = self._healthy_streak + 1 if healthy else 0
        if self.level > 0 and self._healthy_streak >= self.release_patience:
            self.level -= 1
            self._healthy_streak = 0
            return (Directive("throttle", self.level),)
        return ()


class VcBiasController(Controller):
    """Restrict injection VCs at sustained-hotspot routers.

    Tracks a streaming :class:`HotspotDetector`; whenever the sustained
    set changes, newly hot routers get their local injection limited to
    ``max(1, n_vcs // 2)`` VCs (new local packets compete for fewer
    buffers, biasing capacity toward through-traffic) and routers that
    cooled down are restored to the full ``n_vcs``.
    """

    name = "vc-bias"

    def __init__(
        self,
        *,
        n_vcs: int,
        factor: float = 3.0,
        min_fraction: float = 0.5,
        limit: int | None = None,
    ) -> None:
        if n_vcs < 1:
            raise ValueError(f"n_vcs must be >= 1, got {n_vcs}")
        self.n_vcs = n_vcs
        self.limit = max(1, n_vcs // 2) if limit is None else limit
        if not 1 <= self.limit <= n_vcs:
            raise ValueError(
                f"vc limit must be 1..{n_vcs}, got {self.limit}"
            )
        self._detector = HotspotDetector(factor=factor, min_fraction=min_fraction)
        self._restricted: set[int] = set()

    def observe(self, snap: WindowSnapshot) -> tuple[Directive, ...]:
        self._detector.update(snap.router_flits)
        sustained = set(self._detector.sustained_hotspots())
        directives: list[Directive] = []
        newly_hot = tuple(sorted(sustained - self._restricted))
        cooled = tuple(sorted(self._restricted - sustained))
        if newly_hot:
            directives.append(Directive("vc_limit", self.limit, newly_hot))
        if cooled:
            directives.append(Directive("vc_limit", self.n_vcs, cooled))
        self._restricted = sustained
        return tuple(directives)


#: Registered controller factories: name -> factory(n_vcs=...) -> Controller.
_CONTROLLERS: dict[str, Any] = {}


def register_controller(name: str):
    """Decorator: make a controller factory addressable by ``name``.

    The factory signature is ``factory(*, n_vcs: int) -> Controller``.
    """

    def wrap(factory):
        if name in _CONTROLLERS:
            raise ValueError(f"controller {name!r} already registered")
        _CONTROLLERS[name] = factory
        return factory

    return wrap


def controller_names() -> list[str]:
    """All registered controller names, sorted."""
    return sorted(_CONTROLLERS)


def controller_entry(entry: Any) -> tuple[str, dict[str, Any]]:
    """Normalize a controller spec entry to ``(name, params)``.

    Accepts a bare name, a ``(name, ((key, value), ...))`` pair (the
    hashable form :class:`repro.experiments.spec.SimSpec` stores), or a
    ``{"name": ..., "params": {...}}`` mapping.
    """
    if isinstance(entry, str):
        return entry, {}
    if isinstance(entry, dict):
        name = entry.get("name")
        if not isinstance(name, str):
            raise ValueError(f"controller entry needs a 'name': {entry!r}")
        params = dict(entry.get("params") or {})
        return name, params
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        name, params = entry
        if isinstance(name, str):
            return name, dict(params)
    raise ValueError(
        f"bad controller entry {entry!r}; expected a name, a (name, "
        "params) pair or a {'name': ..., 'params': {...}} mapping"
    )


def make_controllers(entries: Iterable[Any], *, n_vcs: int) -> list[Controller]:
    """Instantiate registered controllers by name.

    Each entry may carry factory keywords (see
    :func:`controller_entry`); bare names get the default knobs.
    """
    controllers = []
    for entry in entries:
        name, params = controller_entry(entry)
        try:
            factory = _CONTROLLERS[name]
        except KeyError:
            raise ValueError(
                f"unknown controller {name!r}; one of {controller_names()}"
            ) from None
        controllers.append(factory(n_vcs=n_vcs, **params))
    return controllers


@register_controller("throttle")
def _make_throttle(*, n_vcs: int, **params: Any) -> ThrottleController:
    del n_vcs
    return ThrottleController(**params)


@register_controller("vc-bias")
def _make_vc_bias(*, n_vcs: int, **params: Any) -> VcBiasController:
    return VcBiasController(n_vcs=n_vcs, **params)


class ControlSession:
    """Actuator state + action log the simulator reads at window closes.

    Mirrors :class:`~repro.telemetry.sampler.TelemetrySession`: one per
    run, hooked in as the telemetry sampler's window observer. After each
    boundary flush the simulator re-reads :attr:`throttle_period` and
    :attr:`vc_limits` — the only two channels through which controllers
    influence the run.
    """

    def __init__(
        self,
        controllers: Sequence[Controller],
        *,
        window: int,
        n_nodes: int,
        n_vcs: int,
    ) -> None:
        if window < 1:
            raise ValueError(f"control window must be >= 1 cycle, got {window}")
        if not controllers:
            raise ValueError("control session needs at least one controller")
        self.controllers = list(controllers)
        self.window = window
        self.n_nodes = n_nodes
        self.n_vcs = n_vcs
        self.throttle_period = 1
        self.vc_limits: list[int] | None = None
        self._actions: list[ControlAction] = []
        self._windows = 0

    def observe(self, index: int, row: WindowRow) -> None:
        """Window-observer hook (one closed telemetry window)."""
        start, end, router_flits, _, occupied, in_flight, delivered, lat_sum = row
        self._windows = index + 1
        snap = WindowSnapshot(
            index=index,
            start=start,
            end=end,
            router_flits=router_flits,
            delivered=delivered,
            latency_sum=lat_sum,
            occupied_vcs=int(occupied.sum()),
            in_flight=in_flight,
        )
        for controller in self.controllers:
            for directive in controller.observe(snap):
                self._apply(directive, controller.name, index, end)

    def _apply(
        self, directive: Directive, controller: str, window: int, cycle: int
    ) -> None:
        if directive.kind == "throttle":
            self.throttle_period = 1 << directive.value
        else:  # vc_limit
            if self.vc_limits is None:
                self.vc_limits = [self.n_vcs] * self.n_nodes
            for node in directive.nodes:
                self.vc_limits[node] = directive.value
        self._actions.append(
            ControlAction(
                window=window,
                cycle=cycle,
                controller=controller,
                kind=directive.kind,
                value=directive.value,
                nodes=directive.nodes,
            )
        )

    def finalize(self, cycles: int) -> ControlTrace:
        """Assemble the immutable action record after the run loop."""
        restricted = ()
        if self.vc_limits is not None:
            restricted = tuple(
                node
                for node, limit in enumerate(self.vc_limits)
                if limit < self.n_vcs
            )
        return ControlTrace(
            window=self.window,
            n_windows=self._windows,
            cycles=cycles,
            actions=tuple(self._actions),
            final_throttle_period=self.throttle_period,
            restricted_nodes=restricted,
        )


def replay_control(
    telemetry: TelemetryTrace,
    controllers: Sequence[Controller],
    *,
    n_vcs: int | None = None,
) -> ControlTrace:
    """Re-derive the control actions from a stored telemetry trace.

    Feeds the retained windows, oldest first, through *fresh* controller
    instances exactly as the online session did. Because controller
    decisions are pure functions of the observed window history, the
    result is identical to the live run's :class:`ControlTrace` whenever
    the trace retains every window (``max_windows=None``); ring-evicted
    prefixes are not replayable.

    ``n_vcs`` must match the online session's when a *custom* controller
    emits ``vc_limit`` directives (it seeds the lazily-created limit rows
    and the ``restricted_nodes`` cutoff); when omitted, it is recovered
    from a :class:`VcBiasController` in ``controllers`` — sufficient for
    the built-ins.
    """
    if n_vcs is None:
        n_vcs = next(
            (c.n_vcs for c in controllers if isinstance(c, VcBiasController)), 1
        )
    session = ControlSession(
        controllers,
        window=telemetry.window,
        n_nodes=telemetry.n_nodes,
        n_vcs=n_vcs,
    )
    for i in range(telemetry.n_windows):
        row: WindowRow = (
            int(telemetry.starts[i]),
            int(telemetry.ends[i]),
            telemetry.router_flits[i],
            telemetry.link_flits[i],
            telemetry.occupied_vcs[i],
            int(telemetry.in_flight[i]),
            int(telemetry.delivered[i]),
            int(telemetry.latency_sum[i]),
        )
        session.observe(telemetry.dropped_windows + i, row)
    return session.finalize(telemetry.cycles)
