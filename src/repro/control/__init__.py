"""Control subsystem: closed-loop workloads and online adaptive control.

Closes the loop the paper's open-loop sweeps leave open, in three
pillars:

* :mod:`repro.control.sources` — request/reply traffic throttled by a
  per-source outstanding-request window (credit semantics): any
  registered workload model becomes *demand*, released only while fewer
  than ``W`` requests are in flight, with replies generated at the
  destination. Windowed sources plateau at network capacity instead of
  jamming past it;
* :mod:`repro.control.controllers` — a :class:`ControlSession` cycle
  hook mirroring :class:`~repro.telemetry.sampler.TelemetrySession`:
  controllers consume the telemetry windows as they close and actuate
  the injection throttle gate and per-node injection-VC limits, with
  every action recorded in a replayable :class:`ControlTrace`;
* :mod:`repro.control.knee` — detector-driven bisection that locates the
  saturation knee to a tolerance in O(log) simulations instead of a full
  rate sweep.

The experiment engine exposes all of it through
``SimSpec.closed_loop_window`` / ``SimSpec.controllers`` and the
``"closed-loop-saturation"`` / ``"knee-search"`` scenario families; the
CLI through ``repro control run/stats/knee``.
"""

from repro.control.controllers import (
    ControlAction,
    Controller,
    ControlSession,
    ControlTrace,
    Directive,
    ThrottleController,
    VcBiasController,
    WindowSnapshot,
    controller_entry,
    controller_names,
    make_controllers,
    register_controller,
    replay_control,
)
from repro.control.knee import (
    KneeProbe,
    KneeResult,
    locate_knee,
    probe_is_saturated,
    sweep_knee,
)
from repro.control.sources import (
    ClosedLoopConfig,
    ClosedLoopSession,
    ClosedLoopStats,
)

__all__ = [
    "ClosedLoopConfig",
    "ClosedLoopSession",
    "ClosedLoopStats",
    "ControlAction",
    "ControlSession",
    "ControlTrace",
    "Controller",
    "Directive",
    "KneeProbe",
    "KneeResult",
    "ThrottleController",
    "VcBiasController",
    "WindowSnapshot",
    "controller_entry",
    "controller_names",
    "locate_knee",
    "make_controllers",
    "probe_is_saturated",
    "register_controller",
    "replay_control",
    "sweep_knee",
]
