"""Closed-loop request/reply sources with outstanding-request windows.

The paper's sweeps are *open-loop*: every source injects a fixed offered
schedule no matter what the network does, so past saturation the source
queues grow without bound and every saturation result needs a full rate
sweep. Real endpoints are closed-loop — a client with ``W`` requests in
flight stalls until a reply comes back — which bounds the in-network
population at ``W x n_sources`` packets and makes the network *plateau*
at its capacity instead of jamming.

This module reinterprets any open-loop :class:`~repro.traffic.trace.Trace`
as **demand**: each record is a request the source *wants* to issue at its
recorded cycle. A :class:`ClosedLoopSession` releases demand subject to a
per-source credit window (at most :attr:`ClosedLoopConfig.window`
outstanding requests), generates a reply at the destination when a
request ejects (after :attr:`ClosedLoopConfig.think_cycles` of service
time), and returns the source's credit when the reply ejects — releasing
the next stalled request at ``max(demand_time, now)``. Because demand is
an ordinary trace, every registered workload model (Bernoulli, ON/OFF,
Pareto, mixes, ...) works closed-loop unchanged, and a session with
``window = infinity`` would reproduce the open-loop schedule exactly.

The session is driven by :meth:`repro.simulation.Simulator.run` through
two hooks (``begin`` once, ``on_delivered`` per ejected packet) and keeps
exact accounting: ``requests_issued == replies_delivered + outstanding``
holds at every instant, and per-source outstanding never exceeds the
window — the closed-loop conservation laws the property tests pin.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.simulation.flit import Packet
from repro.traffic.trace import MAX_PACKET_FLITS, Trace

__all__ = ["ClosedLoopConfig", "ClosedLoopSession", "ClosedLoopStats"]

_REQUEST = 0
_REPLY = 1


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Credit semantics of one closed-loop run.

    ``window`` is the per-source outstanding-request cap (requests issued
    and not yet acknowledged by a delivered reply); ``think_cycles`` is
    the destination's service time before its reply is offered;
    ``reply_flits`` sizes the reply packets.
    """

    window: int = 4
    think_cycles: int = 0
    reply_flits: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"outstanding window must be >= 1, got {self.window}")
        if self.think_cycles < 0:
            raise ValueError(
                f"think time must be >= 0 cycles, got {self.think_cycles}"
            )
        if not 1 <= self.reply_flits <= MAX_PACKET_FLITS:
            raise ValueError(
                f"reply size must be 1..{MAX_PACKET_FLITS} flits, "
                f"got {self.reply_flits}"
            )

    def to_json(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "think_cycles": self.think_cycles,
            "reply_flits": self.reply_flits,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ClosedLoopConfig":
        return cls(**data)


@dataclass(frozen=True)
class ClosedLoopStats:
    """Final request/reply accounting of one closed-loop run.

    The conservation law ``requests_issued == replies_delivered +
    outstanding_at_end`` holds by construction; ``peak_outstanding``
    never exceeds the configured window. ``stalled_demand`` counts
    requests the sources still *wanted* to issue when the run ended
    (nonzero only for cycle-capped runs — a drained run has consumed all
    demand and retired every reply).
    """

    window: int
    think_cycles: int
    reply_flits: int
    demand_total: int
    requests_issued: int
    requests_delivered: int
    replies_issued: int
    replies_delivered: int
    outstanding_at_end: int
    peak_outstanding: int
    stalled_demand: int
    round_trip_sum: int
    """Sum over completed request/reply pairs of (reply ejection cycle -
    request release cycle)."""
    request_latencies: tuple[int, ...] = ()
    """Per-delivered-request network latency (ejection - injection
    cycle), in delivery order. Empty on records predating this field."""
    reply_latencies: tuple[int, ...] = ()
    """Per-delivered-reply network latency, in delivery order."""

    @property
    def completed(self) -> int:
        """Request/reply round trips fully retired."""
        return self.replies_delivered

    @property
    def mean_round_trip(self) -> float:
        """Mean request-release-to-reply-ejection latency, cycles."""
        if self.replies_delivered == 0:
            return float("nan")
        return self.round_trip_sum / self.replies_delivered

    def request_latency_percentile(self, q: float) -> float:
        """``q``-th percentile request network latency (nan if none)."""
        return _latency_percentile(self.request_latencies, q)

    def reply_latency_percentile(self, q: float) -> float:
        """``q``-th percentile reply network latency (nan if none)."""
        return _latency_percentile(self.reply_latencies, q)

    def to_json(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "think_cycles": self.think_cycles,
            "reply_flits": self.reply_flits,
            "demand_total": self.demand_total,
            "requests_issued": self.requests_issued,
            "requests_delivered": self.requests_delivered,
            "replies_issued": self.replies_issued,
            "replies_delivered": self.replies_delivered,
            "outstanding_at_end": self.outstanding_at_end,
            "peak_outstanding": self.peak_outstanding,
            "stalled_demand": self.stalled_demand,
            "round_trip_sum": self.round_trip_sum,
            "request_latencies": list(self.request_latencies),
            "reply_latencies": list(self.reply_latencies),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ClosedLoopStats":
        data = dict(data)
        data["request_latencies"] = tuple(data.get("request_latencies", ()))
        data["reply_latencies"] = tuple(data.get("reply_latencies", ()))
        return cls(**data)


def _latency_percentile(values: tuple[int, ...], q: float) -> float:
    """Linear-interpolation percentile matching ``np.percentile``."""
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=np.int64), q))


class ClosedLoopSession:
    """Windowed request/reply state machine the simulator drives.

    One session covers one run. The simulator calls :meth:`begin` once
    (releasing each source's first credit window of requests) and
    :meth:`on_delivered` for every ejected tail packet; both return new
    :class:`~repro.simulation.flit.Packet` records the simulator admits
    into its source queues. Packets the session did not create (open-loop
    background traffic sharing the run) are ignored.
    """

    def __init__(self, config: ClosedLoopConfig, demand: Trace) -> None:
        self.config = config
        self.n_nodes = demand.n_nodes
        self.demand_total = demand.n_packets
        # Per-source demand queues; Trace packets are (time, src, dst)
        # sorted, so each queue is in demand-time order.
        self._pending: list[deque] = [deque() for _ in range(demand.n_nodes)]
        for rec in demand.packets:
            self._pending[rec.src].append(rec)
        self._outstanding = [0] * demand.n_nodes
        self._peak = 0
        # packet_id -> (role, source, request release cycle).
        self._roles: dict[int, tuple[int, int, int]] = {}
        self._next_id: int | None = None
        self.requests_issued = 0
        self.requests_delivered = 0
        self.replies_issued = 0
        self.replies_delivered = 0
        self.round_trip_sum = 0
        self._request_latencies: list[int] = []
        self._reply_latencies: list[int] = []

    @property
    def outstanding(self) -> list[int]:
        """Per-source in-flight request counts (issued, reply not seen)."""
        return list(self._outstanding)

    @property
    def peak_outstanding(self) -> int:
        """Largest per-source outstanding count observed so far."""
        return self._peak

    @property
    def idle(self) -> bool:
        """True when all demand is consumed and every reply retired."""
        return self.replies_delivered == self.requests_issued and not any(
            self._pending
        )

    def _issue_request(self, rec, release_cycle: int) -> Packet:
        pid = self._next_id
        self._next_id = pid + 1
        inject = max(rec.time, release_cycle)
        self._roles[pid] = (_REQUEST, rec.src, inject)
        self._outstanding[rec.src] += 1
        if self._outstanding[rec.src] > self._peak:
            self._peak = self._outstanding[rec.src]
        self.requests_issued += 1
        return Packet(
            packet_id=pid,
            src=rec.src,
            dst=rec.dst,
            size_flits=rec.size_flits,
            inject_time=inject,
        )

    def begin(self, first_id: int, n_nodes: int) -> list[Packet]:
        """Release each source's first ``window`` requests; ids start at
        ``first_id`` (the simulator's count of open-loop trace packets)."""
        if n_nodes != self.n_nodes:
            raise ValueError(
                f"demand trace has {self.n_nodes} nodes, "
                f"simulation has {n_nodes}"
            )
        if self._next_id is not None:
            raise RuntimeError("closed-loop session already started")
        self._next_id = first_id
        window = self.config.window
        released: list[Packet] = []
        for src in range(self.n_nodes):
            queue = self._pending[src]
            while queue and self._outstanding[src] < window:
                released.append(self._issue_request(queue.popleft(), 0))
        return released

    def on_delivered(self, packet: Packet, eject_cycle: int) -> list[Packet]:
        """React to one ejected packet; returns newly released packets.

        A delivered *request* spawns its reply at the destination after
        ``think_cycles``; a delivered *reply* retires the round trip and
        releases the source's next stalled request, if any.
        """
        role = self._roles.pop(packet.packet_id, None)
        if role is None:
            return []  # open-loop background packet: not ours
        kind, source, released_at = role
        if kind == _REQUEST:
            self.requests_delivered += 1
            self._request_latencies.append(eject_cycle - packet.inject_time)
            pid = self._next_id
            self._next_id = pid + 1
            self._roles[pid] = (_REPLY, source, released_at)
            self.replies_issued += 1
            return [
                Packet(
                    packet_id=pid,
                    src=packet.dst,
                    dst=source,
                    size_flits=self.config.reply_flits,
                    inject_time=eject_cycle + self.config.think_cycles,
                )
            ]
        self.replies_delivered += 1
        self._reply_latencies.append(eject_cycle - packet.inject_time)
        self.round_trip_sum += eject_cycle - released_at
        self._outstanding[source] -= 1
        queue = self._pending[source]
        if queue:
            return [self._issue_request(queue.popleft(), eject_cycle)]
        return []

    def finalize(self, cycles: int) -> ClosedLoopStats:
        """Assemble the final accounting after the run loop."""
        del cycles  # symmetry with the other session finalizers
        return ClosedLoopStats(
            window=self.config.window,
            think_cycles=self.config.think_cycles,
            reply_flits=self.config.reply_flits,
            demand_total=self.demand_total,
            requests_issued=self.requests_issued,
            requests_delivered=self.requests_delivered,
            replies_issued=self.replies_issued,
            replies_delivered=self.replies_delivered,
            outstanding_at_end=self.requests_issued - self.replies_delivered,
            peak_outstanding=self._peak,
            stalled_demand=sum(len(q) for q in self._pending),
            round_trip_sum=self.round_trip_sum,
            request_latencies=tuple(self._request_latencies),
            reply_latencies=tuple(self._reply_latencies),
        )
