"""Topology graph primitives for NoC construction.

A :class:`Topology` is a set of nodes on a 2-D grid plus a list of
*unidirectional* :class:`Link` objects. The paper's links are all
bidirectional; we represent each as two unidirectional links so per-direction
flows, power and utilization fall out naturally (the paper counts waveguides
per direction the same way: "We need waveguides for each direction to ensure
that the links are bidirectional").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.tech.parameters import Technology

__all__ = ["LinkKind", "Link", "Topology"]


class LinkKind(enum.Enum):
    """Regular (neighbour) vs express (multi-hop) links (paper Fig. 2)."""

    REGULAR = "regular"
    EXPRESS = "express"


@dataclass(frozen=True)
class Link:
    """One unidirectional NoC link."""

    link_id: int
    src: int
    dst: int
    kind: LinkKind
    length_m: float
    technology: Technology

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop link at node {self.src}")
        if self.length_m <= 0:
            raise ValueError(f"link length must be > 0, got {self.length_m}")


@dataclass
class Topology:
    """A NoC topology: grid of nodes plus directed links.

    Attributes:
        name: human-readable identifier (e.g. ``"mesh16"``,
            ``"express-mesh16-h3"``).
        width: nodes per row (the paper's 16).
        height: nodes per column.
        links: all unidirectional links; ``links[i].link_id == i``.
        express_hops: the express-link hop count (0 for a plain mesh).
    """

    name: str
    width: int
    height: int
    links: list[Link] = field(default_factory=list)
    express_hops: int = 0

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError(
                f"grid must be at least 2x2, got {self.width}x{self.height}"
            )
        for i, link in enumerate(self.links):
            if link.link_id != i:
                raise ValueError(
                    f"link_id mismatch at index {i}: {link.link_id}"
                )
        self._out_links: dict[int, list[Link]] | None = None

    # -- node geometry ------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total node count (the paper's N = 256)."""
        return self.width * self.height

    def node_id(self, x: int, y: int) -> int:
        """Node id of grid coordinate (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} grid")
        return y * self.width + x

    def coords(self, node: int) -> tuple[int, int]:
        """Grid coordinate (x, y) of a node id."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside 0..{self.n_nodes - 1}")
        return node % self.width, node // self.width

    def manhattan_distance(self, a: int, b: int) -> int:
        """Base-mesh hop distance between two nodes."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    # -- link accessors -----------------------------------------------------

    @property
    def n_links(self) -> int:
        """Number of unidirectional links."""
        return len(self.links)

    def out_links(self, node: int) -> list[Link]:
        """Links departing ``node`` (cached adjacency)."""
        if self._out_links is None:
            adj: dict[int, list[Link]] = {n: [] for n in range(self.n_nodes)}
            for link in self.links:
                adj[link.src].append(link)
            self._out_links = adj
        return self._out_links[node]

    def find_link(self, src: int, dst: int) -> Link | None:
        """The link src->dst if it exists, else None."""
        for link in self.out_links(src):
            if link.dst == dst:
                return link
        return None

    def express_links(self) -> list[Link]:
        """All unidirectional express links."""
        return [l for l in self.links if l.kind is LinkKind.EXPRESS]

    def regular_links(self) -> list[Link]:
        """All unidirectional regular (neighbour) links."""
        return [l for l in self.links if l.kind is LinkKind.REGULAR]

    def router_ports(self, node: int) -> int:
        """Router radix at ``node``: local port + one port per departing
        link direction (the paper's 5 base / 7 hybrid ports)."""
        return 1 + len(self.out_links(node))

    def validate_bidirectional(self) -> None:
        """Check every link has a reverse twin (the paper's links all do).

        Raises:
            ValueError: if some link lacks its reverse direction.
        """
        pairs = {(l.src, l.dst) for l in self.links}
        missing = [(s, d) for (s, d) in pairs if (d, s) not in pairs]
        if missing:
            raise ValueError(f"links missing reverse direction: {missing[:5]}")
