"""Mesh and express-mesh topology builders (paper Fig. 2a / 2b).

The paper's networks:

* **Base mesh** (Fig. 2a): 16x16 2-D mesh, 1 mm core spacing, all links
  bidirectional. Any technology can supply the links.
* **Hybrid mesh with express links** (Fig. 2b): the base mesh plus
  horizontal express links every ``hops`` columns ("we consider express
  links only in the horizontal direction" to cap router radix at 7).
  ``hops = 15`` spans a full row, "effectively a 2D torus".

Express link placement follows the paper's count: with Hops=3 on a 16-wide
row there are 5 waveguides per direction per row (columns 0-3, 3-6, 6-9,
9-12, 12-15); with Hops=5 there are 3; with Hops=15 there is 1.
"""

from __future__ import annotations

from repro.tech.parameters import Technology
from repro.topology.graph import Link, LinkKind, Topology

__all__ = ["build_mesh", "build_express_mesh", "express_link_count_per_row"]

#: The paper's inter-core spacing (Table II).
DEFAULT_CORE_SPACING_M = 1e-3


def express_link_count_per_row(width: int, hops: int) -> int:
    """Bidirectional express links per row for a given hop length.

    E.g. ``width=16, hops=3 -> 5`` (the paper's "5 waveguides per direction
    in each row").
    """
    if hops < 2:
        raise ValueError(f"express hops must be >= 2, got {hops}")
    if hops > width - 1:
        raise ValueError(
            f"express hops {hops} cannot exceed row span {width - 1}"
        )
    return (width - 1) // hops


def build_mesh(
    width: int = 16,
    height: int = 16,
    *,
    link_technology: Technology = Technology.ELECTRONIC,
    core_spacing_m: float = DEFAULT_CORE_SPACING_M,
) -> Topology:
    """Construct the paper's base 2-D mesh (Fig. 2a).

    Every neighbour pair gets two unidirectional links of
    ``core_spacing_m`` length, all of ``link_technology``.
    """
    if core_spacing_m <= 0:
        raise ValueError(f"core spacing must be > 0, got {core_spacing_m}")
    links: list[Link] = []

    def add_bidi(a: int, b: int, length_m: float, kind: LinkKind) -> None:
        for src, dst in ((a, b), (b, a)):
            links.append(
                Link(
                    link_id=len(links),
                    src=src,
                    dst=dst,
                    kind=kind,
                    length_m=length_m,
                    technology=link_technology,
                )
            )

    topo = Topology(
        name=f"mesh{width}x{height}-{link_technology.value}",
        width=width,
        height=height,
    )
    for y in range(height):
        for x in range(width):
            node = topo.node_id(x, y)
            if x + 1 < width:
                add_bidi(node, topo.node_id(x + 1, y), core_spacing_m, LinkKind.REGULAR)
            if y + 1 < height:
                add_bidi(node, topo.node_id(x, y + 1), core_spacing_m, LinkKind.REGULAR)
    topo.links = links
    topo.__post_init__()
    return topo


def build_express_mesh(
    width: int = 16,
    height: int = 16,
    *,
    hops: int,
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
    core_spacing_m: float = DEFAULT_CORE_SPACING_M,
) -> Topology:
    """Construct a hybrid mesh with horizontal express links (Fig. 2b).

    Express links connect columns ``0, hops, 2*hops, ...`` within each row,
    are bidirectional, span ``hops * core_spacing_m`` and use
    ``express_technology`` (the base mesh keeps ``base_technology``).
    """
    per_row = express_link_count_per_row(width, hops)  # validates hops
    topo = build_mesh(
        width,
        height,
        link_technology=base_technology,
        core_spacing_m=core_spacing_m,
    )
    links = topo.links
    for y in range(height):
        for i in range(per_row):
            x = i * hops
            a = topo.node_id(x, y)
            b = topo.node_id(x + hops, y)
            for src, dst in ((a, b), (b, a)):
                links.append(
                    Link(
                        link_id=len(links),
                        src=src,
                        dst=dst,
                        kind=LinkKind.EXPRESS,
                        length_m=hops * core_spacing_m,
                        technology=express_technology,
                    )
                )
    topo.name = (
        f"express-mesh{width}x{height}-h{hops}"
        f"-{base_technology.value}+{express_technology.value}"
    )
    topo.express_hops = hops
    topo.links = links
    topo.__post_init__()
    return topo
