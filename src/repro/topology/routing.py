"""Oblivious shortest-path routing (X-Y dimension order + express links).

The paper routes with "an oblivious shortest-path routing method ... to
match the routing technique used in the BookSim 2.0 simulator for custom
networks". For meshes with *horizontal* express links this means:

* the X dimension is traversed first, the Y dimension second (dimension
  order), and
* the X traversal takes the true hop-count-shortest route through the row's
  link graph — including *detours*: with Hops=15 a packet from column 2 to
  column 14 walks west to column 0, rides the full-row express, and steps
  back west from column 15 (4 hops instead of 12). This is exactly why the
  paper calls the Hops=15 network "effectively a 2D torus".

Row routing is computed by BFS over the 1-D row graph (identical for every
row) with deterministic tie-breaking that prefers monotone progress toward
the destination, so ties resolve to plain X-Y behaviour. The next-hop
function depends only on (current column, destination column), making
routing memoryless — the cycle simulator's per-hop lookups and the
analytical path enumeration provably agree.

Deadlock note: detour routes create torus-like cyclic channel dependencies
in a wormhole network; the simulator breaks them with dateline VC classes
(see :mod:`repro.simulation.simulator`).
"""

from __future__ import annotations

from collections import deque

from repro.topology.graph import Link, LinkKind, Topology

__all__ = ["route_path", "RoutingTable"]


def _build_line_graph(
    topo: Topology, dimension: int, index: int
) -> dict[int, list[tuple[int, bool]]]:
    """Adjacency of one grid line: position -> [(next_pos, is_express)].

    ``dimension`` 0 = row ``index`` (column positions); ``dimension`` 1 =
    column ``index`` (row positions). Lines are handled individually so
    heterogeneous express placements (different rows owning different
    express links) route correctly.
    """
    size = topo.width if dimension == 0 else topo.height
    neighbors: dict[int, list[tuple[int, bool]]] = {c: [] for c in range(size)}
    for link in topo.links:
        sx, sy = topo.coords(link.src)
        dx, dy = topo.coords(link.dst)
        if dimension == 0:
            if sy != index or dy != index:
                continue
            neighbors[sx].append((dx, link.kind is LinkKind.EXPRESS))
        else:
            if sx != index or dx != index:
                continue
            neighbors[sy].append((dy, link.kind is LinkKind.EXPRESS))
    return neighbors


def _line_next_hop_table(
    topo: Topology, dimension: int, index: int
) -> list[list[int]]:
    """``next_pos[cur][dst]`` for one grid line (-1 when cur == dst).

    BFS distances from every destination; among shortest-path neighbours
    the tie-break prefers (1) a regular step toward the destination,
    (2) an express toward the destination, (3) any other shortest option in
    ascending position order — so plain-mesh behaviour falls out wherever a
    detour does not strictly win.
    """
    width = topo.width if dimension == 0 else topo.height
    adj = _build_line_graph(topo, dimension, index)
    # dist[d][c]: hops from column c to destination column d.
    table = [[-1] * width for _ in range(width)]
    for dst in range(width):
        dist = [-1] * width
        dist[dst] = 0
        queue = deque([dst])
        while queue:
            cur = queue.popleft()
            for nxt, _ in adj[cur]:
                # Row links are bidirectional, so reverse BFS can reuse adj.
                if dist[nxt] < 0:
                    dist[nxt] = dist[cur] + 1
                    queue.append(nxt)
        for cur in range(width):
            if cur == dst:
                continue
            candidates = [
                (nxt, express)
                for nxt, express in adj[cur]
                if dist[nxt] == dist[cur] - 1
            ]
            if not candidates:  # pragma: no cover - lines are connected
                raise RuntimeError(f"line graph disconnected at position {cur}")

            def rank(cand: tuple[int, bool]) -> tuple[int, int]:
                nxt, express = cand
                toward = (dst - cur) * (nxt - cur) > 0
                if toward and not express:
                    order = 0
                elif toward:
                    order = 1
                else:
                    order = 2
                return (order, nxt)

            table[cur][dst] = min(candidates, key=rank)[0]
    return table


def route_path(topo: Topology, src: int, dst: int) -> list[Link]:
    """The deterministic X-then-Y shortest path from ``src`` to ``dst``.

    Convenience wrapper building a throwaway table; use
    :class:`RoutingTable` for repeated queries.
    """
    return RoutingTable(topo).path_list(src, dst)


class RoutingTable:
    """All-pairs deterministic router for one topology.

    Paths are derived from a per-row next-hop table (X phase) plus monotone
    Y steps, memoized per (src, dst).
    """

    def __init__(self, topo: Topology):
        self.topology = topo
        self._row_next = [
            _line_next_hop_table(topo, 0, y) for y in range(topo.height)
        ]
        self._col_next = [
            _line_next_hop_table(topo, 1, x) for x in range(topo.width)
        ]
        self._paths: dict[tuple[int, int], tuple[Link, ...]] = {}

    def _next_node(self, current: int, dst: int) -> int:
        """Next node on the route (X phase via the row's table, then Y via
        the column's table — both support express/wrap detours, and every
        line has its own table so heterogeneous placements route right)."""
        topo = self.topology
        cx, cy = topo.coords(current)
        dx, dy = topo.coords(dst)
        if cx != dx:
            return topo.node_id(self._row_next[cy][cx][dx], cy)
        return topo.node_id(cx, self._col_next[cx][cy][dy])

    def path(self, src: int, dst: int) -> tuple[Link, ...]:
        """Ordered links from ``src`` to ``dst`` (cached)."""
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is None:
            topo = self.topology
            links: list[Link] = []
            node = src
            guard = 0
            while node != dst:
                nxt = self._next_node(node, dst)
                link = topo.find_link(node, nxt)
                if link is None:  # pragma: no cover - adjacency invariant
                    raise RuntimeError(f"no link {node} -> {nxt}")
                links.append(link)
                node = nxt
                guard += 1
                if guard > 4 * (topo.width + topo.height):  # pragma: no cover
                    raise RuntimeError(f"routing loop from {src} to {dst}")
            cached = tuple(links)
            self._paths[key] = cached
        return cached

    def path_list(self, src: int, dst: int) -> list[Link]:
        """``path`` as a fresh list (the legacy ``route_path`` contract)."""
        return list(self.path(src, dst))

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links traversed from ``src`` to ``dst``."""
        return len(self.path(src, dst))

    def next_link(self, current: int, dst: int) -> Link:
        """The link a router at ``current`` forwards toward ``dst``.

        Memoryless: equals the first link of :meth:`path` from ``current``.
        """
        if current == dst:
            raise ValueError("already at destination")
        topo = self.topology
        nxt = self._next_node(current, dst)
        link = topo.find_link(current, nxt)
        if link is None:  # pragma: no cover - adjacency invariant
            raise RuntimeError(f"no link {current} -> {nxt}")
        return link

    def build_all(self) -> None:
        """Force-populate the full all-pairs table."""
        n = self.topology.n_nodes
        for s in range(n):
            for d in range(n):
                if s != d:
                    self.path(s, d)
