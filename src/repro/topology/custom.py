"""Heterogeneous express-link placement.

The paper evaluates *uniform* express grids (every row, fixed hop count)
and notes "The final choice of hybridization depends on the specific
requirements"; its companion work (MorphoNoC, paper ref [18]) explores
configurable placements. This module supports that direction: arbitrary
per-row horizontal express links, so a placement can spend a limited link
budget only where the traffic needs it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.parameters import Technology
from repro.topology.graph import Link, LinkKind, Topology
from repro.topology.mesh import DEFAULT_CORE_SPACING_M, build_mesh

__all__ = ["ExpressSpec", "build_custom_express_mesh"]


@dataclass(frozen=True, order=True)
class ExpressSpec:
    """One bidirectional horizontal express link: row, endpoint columns."""

    row: int
    col_a: int
    col_b: int

    def __post_init__(self) -> None:
        if self.row < 0 or self.col_a < 0 or self.col_b < 0:
            raise ValueError(f"negative coordinate in {self}")
        if abs(self.col_b - self.col_a) < 2:
            raise ValueError(
                f"express must span >= 2 columns, got {self} "
                "(adjacent nodes already have a regular link)"
            )

    @property
    def span(self) -> int:
        """Columns crossed."""
        return abs(self.col_b - self.col_a)


def build_custom_express_mesh(
    width: int = 16,
    height: int = 16,
    *,
    express: list[ExpressSpec],
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
    core_spacing_m: float = DEFAULT_CORE_SPACING_M,
) -> Topology:
    """Mesh plus an arbitrary set of horizontal express links.

    Args:
        express: bidirectional express links to add; duplicates rejected.

    Raises:
        ValueError: for out-of-grid or duplicate specifications.
    """
    topo = build_mesh(
        width,
        height,
        link_technology=base_technology,
        core_spacing_m=core_spacing_m,
    )
    seen: set[tuple[int, int, int]] = set()
    links = topo.links
    max_span = 0
    for spec in express:
        if spec.row >= height or max(spec.col_a, spec.col_b) >= width:
            raise ValueError(f"{spec} outside the {width}x{height} grid")
        key = (spec.row, min(spec.col_a, spec.col_b), max(spec.col_a, spec.col_b))
        if key in seen:
            raise ValueError(f"duplicate express link {spec}")
        seen.add(key)
        a = topo.node_id(spec.col_a, spec.row)
        b = topo.node_id(spec.col_b, spec.row)
        for src, dst in ((a, b), (b, a)):
            links.append(
                Link(
                    link_id=len(links),
                    src=src,
                    dst=dst,
                    kind=LinkKind.EXPRESS,
                    length_m=spec.span * core_spacing_m,
                    technology=express_technology,
                )
            )
        max_span = max(max_span, spec.span)
    topo.name = (
        f"custom-express{width}x{height}-{len(express)}links"
        f"-{base_technology.value}+{express_technology.value}"
    )
    topo.express_hops = max_span
    topo.links = links
    topo.__post_init__()
    return topo
