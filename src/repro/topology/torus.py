"""2-D torus topology.

The paper observes that Hops=15 express links make the mesh "effectively a
2D torus" in the horizontal dimension. This module builds genuine tori so
that equivalence can be tested and the express approximation compared
against the real thing (row-torus: wrap links in X only, matching the
paper's horizontal-express constraint; full torus wraps both dimensions).

Wrap links are physically long (they span the row/column, ``(k-1) *
spacing`` when laid out naively), so the technology choice matters exactly
as it does for express links.
"""

from __future__ import annotations

from repro.tech.parameters import Technology
from repro.topology.graph import Link, LinkKind, Topology
from repro.topology.mesh import DEFAULT_CORE_SPACING_M, build_mesh

__all__ = ["build_row_torus", "build_torus"]


def _add_bidi(
    topo: Topology,
    a: int,
    b: int,
    length_m: float,
    kind: LinkKind,
    technology: Technology,
) -> None:
    links = topo.links
    for src, dst in ((a, b), (b, a)):
        links.append(
            Link(
                link_id=len(links),
                src=src,
                dst=dst,
                kind=kind,
                length_m=length_m,
                technology=technology,
            )
        )


def build_row_torus(
    width: int = 16,
    height: int = 16,
    *,
    base_technology: Technology = Technology.ELECTRONIC,
    wrap_technology: Technology = Technology.HYPPI,
    core_spacing_m: float = DEFAULT_CORE_SPACING_M,
) -> Topology:
    """Mesh plus one X-dimension wrap link per row (the Hops=15 limit).

    The wrap link is classified as :data:`LinkKind.EXPRESS` — it is exactly
    the Hops = width-1 express link, so routing and the simulator treat it
    identically to the paper's configuration.
    """
    topo = build_mesh(
        width,
        height,
        link_technology=base_technology,
        core_spacing_m=core_spacing_m,
    )
    wrap_length = (width - 1) * core_spacing_m
    for y in range(height):
        _add_bidi(
            topo,
            topo.node_id(0, y),
            topo.node_id(width - 1, y),
            wrap_length,
            LinkKind.EXPRESS,
            wrap_technology,
        )
    topo.name = f"row-torus{width}x{height}-{base_technology.value}+{wrap_technology.value}"
    topo.express_hops = width - 1
    topo.__post_init__()
    return topo


def build_torus(
    width: int = 16,
    height: int = 16,
    *,
    base_technology: Technology = Technology.ELECTRONIC,
    wrap_technology: Technology = Technology.HYPPI,
    core_spacing_m: float = DEFAULT_CORE_SPACING_M,
) -> Topology:
    """Full 2-D torus: wrap links in both dimensions.

    Note: the Y-dimension wrap links violate the paper's horizontal-only
    express constraint (router radix grows past 7), so this topology exists
    for the "future work" comparison, not as one of the paper's evaluated
    networks. Routing handles it fully: both the X and Y phases use
    per-line BFS tables, so wrap detours are taken in either dimension, and
    the simulator partitions dateline VC classes per dimension.
    """
    topo = build_row_torus(
        width,
        height,
        base_technology=base_technology,
        wrap_technology=wrap_technology,
        core_spacing_m=core_spacing_m,
    )
    wrap_length = (height - 1) * core_spacing_m
    for x in range(width):
        _add_bidi(
            topo,
            topo.node_id(x, 0),
            topo.node_id(x, height - 1),
            wrap_length,
            LinkKind.EXPRESS,
            wrap_technology,
        )
    topo.name = f"torus{width}x{height}-{base_technology.value}+{wrap_technology.value}"
    topo.__post_init__()
    return topo
