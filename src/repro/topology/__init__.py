"""NoC topologies (mesh, express mesh) and oblivious routing."""

from repro.topology.custom import ExpressSpec, build_custom_express_mesh
from repro.topology.graph import Link, LinkKind, Topology
from repro.topology.mesh import (
    DEFAULT_CORE_SPACING_M,
    build_express_mesh,
    build_mesh,
    express_link_count_per_row,
)
from repro.topology.routing import RoutingTable, route_path
from repro.topology.torus import build_row_torus, build_torus

__all__ = [
    "ExpressSpec",
    "build_custom_express_mesh",
    "Link",
    "LinkKind",
    "Topology",
    "DEFAULT_CORE_SPACING_M",
    "build_express_mesh",
    "build_mesh",
    "express_link_count_per_row",
    "RoutingTable",
    "route_path",
    "build_row_torus",
    "build_torus",
]
