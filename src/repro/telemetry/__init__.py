"""Telemetry subsystem: time-resolved observability for simulation runs.

Turns the cycle simulator from a single-number oracle into an observable
system. Four pillars:

* :mod:`repro.telemetry.sampler` — a windowed activity sampler hooked
  into :meth:`repro.simulation.Simulator.run` (``telemetry=`` keyword):
  per-router and per-link flit counts, VC occupancy, deliveries and
  latency sums per window, snapshot-diffed off the existing cumulative
  counters so the per-event hot path is untouched and disabled runs stay
  bit-identical;
* :mod:`repro.telemetry.power_trace` — windowed dynamic power/energy
  series through the same cached DSENT figures as the whole-run
  accounting, with an exact conservation invariant;
* :mod:`repro.telemetry.detectors` — streaming detectors answering
  *when* a run saturates (onset cycle), *where* it is hot (sustained
  hotspot routers) and whether throughput collapsed;
* :mod:`repro.telemetry.report` — byte-deterministic npz persistence
  (sharing the workload store's archive primitives) and ASCII reports.

The experiment engine exposes all of it through the
``SimSpec.telemetry_window`` knob and the ``"telemetry-profile"``
scenario family; the CLI through ``repro telemetry run/stats/export``.
"""

from repro.telemetry.detectors import (
    CollapseDetector,
    HotspotDetector,
    SaturationDetector,
    TelemetryFindings,
    analyze,
)
from repro.telemetry.power_trace import PowerTrace, power_trace
from repro.telemetry.report import (
    TELEMETRY_FORMAT,
    TELEMETRY_VERSION,
    load_telemetry_npz,
    profile_scenario,
    read_telemetry_header,
    render_link_heatmap,
    render_report,
    save_telemetry_npz,
)
from repro.telemetry.sampler import TelemetryConfig, TelemetryTrace

__all__ = [
    "CollapseDetector",
    "HotspotDetector",
    "PowerTrace",
    "SaturationDetector",
    "TELEMETRY_FORMAT",
    "TELEMETRY_VERSION",
    "TelemetryConfig",
    "TelemetryFindings",
    "TelemetryTrace",
    "analyze",
    "load_telemetry_npz",
    "power_trace",
    "profile_scenario",
    "read_telemetry_header",
    "render_link_heatmap",
    "render_report",
    "save_telemetry_npz",
]
