"""Online detectors over windowed telemetry series.

Sweeps today flag a point as SATURATED only after the whole run has burnt
its drain budget; these detectors watch the *windowed* series instead and
answer **when** and **where** behaviour degrades:

* :class:`SaturationDetector` — the cycle at which the network leaves the
  stable regime: windowed ejection latency exceeds a multiple of the
  early-run baseline (or deliveries stop entirely while buffers stay
  occupied) for ``patience`` consecutive windows;
* :class:`HotspotDetector` — routers whose windowed traversal counts stay
  above a multiple of the network mean in many windows (sustained
  hotspots, not single-window blips);
* :class:`CollapseDetector` — throughput collapse: windowed deliveries
  falling below a fraction of the peak sustained rate while flits remain
  buffered (distinguishing collapse from a drained, finished run).

Every detector is *streaming*: it consumes one window at a time through
``update(...)`` and keeps O(1)/O(n_routers) state, so it can run online
against a live simulation as easily as over a stored
:class:`~repro.telemetry.sampler.TelemetryTrace` (:func:`analyze` does
the latter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.sampler import TelemetryTrace

__all__ = [
    "CollapseDetector",
    "HotspotDetector",
    "SaturationDetector",
    "TelemetryFindings",
    "analyze",
]


class SaturationDetector:
    """Streaming saturation-onset detection from windowed latencies.

    The first ``baseline_windows`` windows with deliveries establish the
    stable-regime latency; saturation onset is the start cycle of the
    first window of a ``patience``-long streak in which either the
    windowed mean latency exceeds ``latency_factor`` times that baseline,
    or nothing is delivered at all while input VCs remain occupied (the
    hard-jam signature). ``None`` until/unless that happens.
    """

    def __init__(
        self,
        *,
        latency_factor: float = 2.0,
        patience: int = 3,
        baseline_windows: int = 4,
    ) -> None:
        if latency_factor <= 1.0:
            raise ValueError(f"latency factor must be > 1, got {latency_factor}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if baseline_windows < 1:
            raise ValueError(
                f"baseline_windows must be >= 1, got {baseline_windows}"
            )
        self.latency_factor = latency_factor
        self.patience = patience
        self.baseline_windows = baseline_windows
        self._baseline_sum = 0.0
        self._baseline_n = 0
        self._streak = 0
        self._streak_start: int | None = None
        self._streak_window: int | None = None
        self.onset_cycle: int | None = None
        self.onset_window: int | None = None
        self._window_index = -1

    @property
    def baseline_latency(self) -> float:
        """Mean windowed latency over the baseline windows (nan if none)."""
        if self._baseline_n == 0:
            return math.nan
        return self._baseline_sum / self._baseline_n

    def reset(self) -> None:
        """Re-arm onset detection, keeping the learned baseline.

        Offline analysis wants the *first* onset and never resets; an
        adaptive controller (:mod:`repro.control.controllers`) acts on
        each onset and re-arms the detector to watch for the next one
        against the same stable-regime baseline.
        """
        self._streak = 0
        self._streak_start = None
        self._streak_window = None
        self.onset_cycle = None
        self.onset_window = None

    def update(
        self, start: int, delivered: int, latency_sum: int, occupied_vcs: int
    ) -> None:
        """Feed one window (its start cycle and sampled aggregates)."""
        self._window_index += 1
        if self.onset_cycle is not None:
            return
        mean_lat = latency_sum / delivered if delivered > 0 else math.nan
        if self._baseline_n < self.baseline_windows:
            if delivered > 0:
                self._baseline_sum += mean_lat
                self._baseline_n += 1
            return
        jammed = delivered == 0 and occupied_vcs > 0
        blown = (
            delivered > 0
            and mean_lat > self.latency_factor * self.baseline_latency
        )
        if jammed or blown:
            if self._streak == 0:
                self._streak_start = start
                self._streak_window = self._window_index
            self._streak += 1
            if self._streak >= self.patience:
                self.onset_cycle = self._streak_start
                self.onset_window = self._streak_window
        else:
            self._streak = 0
            self._streak_start = None


class HotspotDetector:
    """Streaming sustained-hotspot detection from per-router activity.

    A router is *hot* in a window when its traversal count exceeds
    ``factor`` times the network-mean count of that window (quiet windows
    with no traffic never mark anyone hot). Routers hot in at least
    ``min_fraction`` of the active windows are *sustained* hotspots.
    """

    def __init__(self, *, factor: float = 3.0, min_fraction: float = 0.5) -> None:
        if factor <= 1.0:
            raise ValueError(f"hotspot factor must be > 1, got {factor}")
        if not 0 < min_fraction <= 1:
            raise ValueError(
                f"min_fraction must be in (0, 1], got {min_fraction}"
            )
        self.factor = factor
        self.min_fraction = min_fraction
        self._hot_windows: np.ndarray | None = None
        self.active_windows = 0

    def update(self, router_flits: np.ndarray) -> None:
        """Feed one window's per-router traversal counts."""
        if self._hot_windows is None:
            self._hot_windows = np.zeros(router_flits.shape[0], dtype=np.int64)
        total = int(router_flits.sum())
        if total == 0:
            return
        self.active_windows += 1
        mean = total / router_flits.shape[0]
        self._hot_windows += router_flits > self.factor * mean

    def sustained_hotspots(self) -> list[int]:
        """Router ids hot in >= ``min_fraction`` of active windows, sorted."""
        if self._hot_windows is None or self.active_windows == 0:
            return []
        need = self.min_fraction * self.active_windows
        return [int(n) for n in np.nonzero(self._hot_windows >= need)[0]]

    def hot_window_counts(self) -> np.ndarray:
        """Per-router count of windows in which the router was hot."""
        if self._hot_windows is None:
            return np.zeros(0, dtype=np.int64)
        return self._hot_windows.copy()


class CollapseDetector:
    """Streaming throughput-collapse detection from windowed deliveries.

    Tracks the peak windowed delivery rate; a window *collapses* when its
    delivery rate falls below ``fraction`` of that peak while input VCs
    remain occupied (pending work exists, so this is congestion, not the
    natural end-of-run drain). Records the first collapse cycle and every
    collapsed window index.
    """

    def __init__(self, *, fraction: float = 0.5, warmup_windows: int = 2) -> None:
        if not 0 < fraction < 1:
            raise ValueError(f"collapse fraction must be in (0, 1), got {fraction}")
        if warmup_windows < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup_windows}")
        self.fraction = fraction
        self.warmup_windows = warmup_windows
        self._peak_rate = 0.0
        self._window_index = -1
        self.first_collapse_cycle: int | None = None
        self.collapsed_windows: list[int] = []

    def update(
        self, start: int, end: int, delivered: int, occupied_vcs: int
    ) -> None:
        """Feed one window (bounds, deliveries, closing occupancy)."""
        self._window_index += 1
        length = max(end - start, 1)
        rate = delivered / length
        if self._window_index < self.warmup_windows:
            self._peak_rate = max(self._peak_rate, rate)
            return
        if (
            self._peak_rate > 0
            and occupied_vcs > 0
            and rate < self.fraction * self._peak_rate
        ):
            self.collapsed_windows.append(self._window_index)
            if self.first_collapse_cycle is None:
                self.first_collapse_cycle = start
        self._peak_rate = max(self._peak_rate, rate)


@dataclass(frozen=True)
class TelemetryFindings:
    """What the detectors concluded about one sampled run.

    Window indices (``saturation_onset_window``, ``collapsed_windows``)
    are *global* grid indices — the numbering the rendered report and
    the stored npz use — so they stay meaningful when a ring buffer has
    evicted early windows (retained window 0 is global window
    ``dropped_windows``).
    """

    saturation_onset_cycle: int | None
    saturation_onset_window: int | None
    baseline_latency: float
    hotspot_nodes: list[int] = field(default_factory=list)
    first_collapse_cycle: int | None = None
    collapsed_windows: list[int] = field(default_factory=list)

    @property
    def saturated(self) -> bool:
        """True when a saturation onset was detected."""
        return self.saturation_onset_cycle is not None

    def to_json(self) -> dict[str, object]:
        return {
            "saturation_onset_cycle": self.saturation_onset_cycle,
            "saturation_onset_window": self.saturation_onset_window,
            "baseline_latency": (
                None
                if math.isnan(self.baseline_latency)
                else self.baseline_latency
            ),
            "hotspot_nodes": list(self.hotspot_nodes),
            "first_collapse_cycle": self.first_collapse_cycle,
            "collapsed_windows": list(self.collapsed_windows),
        }


def analyze(
    telemetry: TelemetryTrace,
    *,
    latency_factor: float = 2.0,
    patience: int = 3,
    baseline_windows: int = 4,
    hotspot_factor: float = 3.0,
    hotspot_min_fraction: float = 0.5,
    collapse_fraction: float = 0.5,
) -> TelemetryFindings:
    """Run all detectors over a stored telemetry trace.

    Replays the retained windows, oldest first, through the streaming
    detectors exactly as an online consumer would. Ring-evicted windows
    are not replayable (only carry totals survive), so findings cover the
    retained span; reported window indices are offset to the global grid
    numbering (see :class:`TelemetryFindings`).
    """
    sat = SaturationDetector(
        latency_factor=latency_factor,
        patience=patience,
        baseline_windows=baseline_windows,
    )
    hot = HotspotDetector(factor=hotspot_factor, min_fraction=hotspot_min_fraction)
    col = CollapseDetector(fraction=collapse_fraction)
    occupancy = telemetry.occupancy_totals()
    for i in range(telemetry.n_windows):
        start = int(telemetry.starts[i])
        end = int(telemetry.ends[i])
        delivered = int(telemetry.delivered[i])
        occ = int(occupancy[i])
        sat.update(start, delivered, int(telemetry.latency_sum[i]), occ)
        hot.update(telemetry.router_flits[i])
        col.update(start, end, delivered, occ)
    offset = telemetry.dropped_windows
    return TelemetryFindings(
        saturation_onset_cycle=sat.onset_cycle,
        saturation_onset_window=(
            None if sat.onset_window is None else sat.onset_window + offset
        ),
        baseline_latency=sat.baseline_latency,
        hotspot_nodes=hot.sustained_hotspots(),
        first_collapse_cycle=col.first_collapse_cycle,
        collapsed_windows=[w + offset for w in col.collapsed_windows],
    )
