"""Time-resolved power and energy from windowed activity samples.

Converts a :class:`~repro.telemetry.sampler.TelemetryTrace` into dynamic
energy / power series using the *same* cached DSENT per-flit figures the
whole-run accounting uses (:func:`repro.analysis.power.per_flit_energies`
and :func:`~repro.analysis.power.dynamic_energy_from_counts`).

Conservation invariant (pinned by unit + Hypothesis property tests):

* window flit counts telescope to the run totals **exactly** (integer
  arithmetic — see the sampler's snapshot-diff design), and
* :attr:`PowerTrace.total` is evaluated on those summed counts through
  the same accumulation path as
  :func:`repro.simulation.energy.sim_dynamic_energy_j`, so the two are
  **bit-identical floats**, not merely close.

The per-window energy *series* additionally sums to the total up to
float-addition reassociation (each window is an independent dot product);
:meth:`PowerTrace.series_conservation_error` exposes that residual, which
is zero to ~1e-15 relative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.power import (
    CORE_CLOCK_HZ,
    NetworkEnergy,
    dynamic_energy_from_counts,
    network_static_power_w,
    per_flit_energies,
)
from repro.telemetry.sampler import TelemetryTrace
from repro.topology.graph import Topology

__all__ = ["PowerTrace", "power_trace"]


@dataclass(frozen=True)
class PowerTrace:
    """Windowed power/energy series of one telemetry-sampled run."""

    clock_hz: float
    window: int
    starts: np.ndarray
    """Window start cycles (shared axis with the telemetry trace)."""
    ends: np.ndarray
    router_dynamic_j: np.ndarray
    """Dynamic router energy per window, joules."""
    link_dynamic_j: np.ndarray
    """Dynamic link energy per window, joules."""
    carry_router_dynamic_j: float
    """Energy of ring-evicted windows (router part)."""
    carry_link_dynamic_j: float
    static_w: float
    """Whole-network static power (constant across windows)."""
    total: NetworkEnergy
    """Whole-run dynamic energy from the summed window counts — evaluated
    through the same path as ``sim_dynamic_energy_j``, hence bit-equal."""

    @property
    def n_windows(self) -> int:
        """Retained window count."""
        return int(self.starts.shape[0])

    @property
    def dynamic_j(self) -> np.ndarray:
        """Per-window total dynamic energy (router + link), joules."""
        return self.router_dynamic_j + self.link_dynamic_j

    def window_seconds(self) -> np.ndarray:
        """Wall-clock duration of each window at the core clock."""
        return (self.ends - self.starts) / self.clock_hz

    def dynamic_w(self) -> np.ndarray:
        """Per-window dynamic power, watts (nan for zero-length windows)."""
        secs = self.window_seconds()
        out = np.full(self.n_windows, math.nan)
        mask = secs > 0
        out[mask] = self.dynamic_j[mask] / secs[mask]
        return out

    def total_w(self) -> np.ndarray:
        """Per-window total (static + dynamic) power, watts."""
        return self.dynamic_w() + self.static_w

    @property
    def peak_dynamic_w(self) -> float:
        """Highest windowed dynamic power (nan with no windows)."""
        w = self.dynamic_w()
        return float(np.nanmax(w)) if w.size else math.nan

    @property
    def mean_dynamic_w(self) -> float:
        """Run-average dynamic power: total energy over total covered time."""
        if self.n_windows == 0:
            return math.nan
        cycles = int(self.ends[-1])
        if cycles <= 0:
            return math.nan
        return self.total.dynamic_j / (cycles / self.clock_hz)

    def series_conservation_error(self) -> float:
        """Relative residual between the window series sum and the total.

        The series sums window dot products; the total sums per-component
        products — identical real sums that differ only by float
        reassociation. Anything above ~1e-12 indicates a real bug.
        """
        series = (
            float(self.router_dynamic_j.sum())
            + float(self.link_dynamic_j.sum())
            + self.carry_router_dynamic_j
            + self.carry_link_dynamic_j
        )
        total = self.total.dynamic_j
        if total == 0.0:
            return abs(series)
        return abs(series - total) / abs(total)


def power_trace(
    topo: Topology,
    telemetry: TelemetryTrace,
    *,
    clock_hz: float = CORE_CLOCK_HZ,
) -> PowerTrace:
    """Convert windowed activity into time-resolved power/energy series."""
    if clock_hz <= 0:
        raise ValueError(f"clock must be > 0, got {clock_hz}")
    if telemetry.n_nodes != topo.n_nodes or telemetry.n_links != topo.n_links:
        raise ValueError(
            f"telemetry covers {telemetry.n_nodes} nodes / "
            f"{telemetry.n_links} links, topology has {topo.n_nodes} / "
            f"{topo.n_links}"
        )
    router_e, link_e = per_flit_energies(topo)
    return PowerTrace(
        clock_hz=clock_hz,
        window=telemetry.window,
        starts=telemetry.starts,
        ends=telemetry.ends,
        router_dynamic_j=telemetry.router_flits @ router_e,
        link_dynamic_j=telemetry.link_flits @ link_e,
        carry_router_dynamic_j=float(telemetry.carry_router_flits @ router_e),
        carry_link_dynamic_j=float(telemetry.carry_link_flits @ link_e),
        static_w=network_static_power_w(topo),
        total=dynamic_energy_from_counts(
            topo, telemetry.total_router_flits(), telemetry.total_link_flits()
        ),
    )
