"""Telemetry persistence and rendered reports.

Storage reuses the versioned, byte-deterministic npz column-archive
primitives of the workload trace store
(:func:`repro.workloads.store.write_npz_archive` /
:func:`~repro.workloads.store.open_npz_archive`): ``header.json`` with a
telemetry-specific format id, one NPY entry per sampled column (2-D for
the per-component series), pinned ZIP metadata. The same run always
serializes to the identical file, so telemetry dumps are
content-addressable and CI-diffable exactly like workload traces.

:func:`render_report` turns a (telemetry, power, findings) triple into
the ASCII report the ``repro telemetry`` CLI prints.
"""

from __future__ import annotations

import io
import math
import pathlib
from typing import Any

import numpy as np

from repro.analysis.power import NetworkEnergy
from repro.telemetry.detectors import TelemetryFindings, analyze
from repro.telemetry.power_trace import PowerTrace
from repro.telemetry.sampler import TelemetryTrace
from repro.workloads.store import open_npz_archive, write_npz_archive

__all__ = [
    "TELEMETRY_FORMAT",
    "TELEMETRY_VERSION",
    "load_telemetry_npz",
    "profile_scenario",
    "read_telemetry_header",
    "render_link_heatmap",
    "render_report",
    "save_telemetry_npz",
]

TELEMETRY_FORMAT = "repro-telemetry-npz"
TELEMETRY_VERSION = 1

#: (zip entry, TelemetryTrace attribute) for each sampled column.
_COLUMNS = (
    ("starts.npy", "starts"),
    ("ends.npy", "ends"),
    ("router_flits.npy", "router_flits"),
    ("link_flits.npy", "link_flits"),
    ("occupied_vcs.npy", "occupied_vcs"),
    ("in_flight.npy", "in_flight"),
    ("delivered.npy", "delivered"),
    ("latency_sum.npy", "latency_sum"),
    ("carry_router_flits.npy", "carry_router_flits"),
    ("carry_link_flits.npy", "carry_link_flits"),
)
#: Power-series entries, present when a PowerTrace is saved alongside.
_POWER_COLUMNS = (
    ("router_dynamic_j.npy", "router_dynamic_j"),
    ("link_dynamic_j.npy", "link_dynamic_j"),
)


def save_telemetry_npz(
    path: str | pathlib.Path,
    telemetry: TelemetryTrace,
    power: PowerTrace | None = None,
    *,
    extra: dict[str, Any] | None = None,
) -> None:
    """Write a telemetry trace (and optional power series) to ``path``.

    ``extra`` is JSON-safe provenance persisted in the header (e.g. the
    generating scenario spec). Byte-deterministic: identical inputs
    always produce the identical file.
    """
    header: dict[str, Any] = {
        "format": TELEMETRY_FORMAT,
        "version": TELEMETRY_VERSION,
        "window": telemetry.window,
        "n_nodes": telemetry.n_nodes,
        "n_links": telemetry.n_links,
        "n_windows": telemetry.n_windows,
        "cycles": telemetry.cycles,
        "dropped_windows": telemetry.dropped_windows,
        "carry_delivered": telemetry.carry_delivered,
        "carry_latency_sum": telemetry.carry_latency_sum,
        "columns": [entry for entry, _ in _COLUMNS],
        "extra": extra or {},
    }
    arrays = [
        (entry, np.ascontiguousarray(getattr(telemetry, attr)))
        for entry, attr in _COLUMNS
    ]
    if power is not None:
        header["power"] = {
            "clock_hz": power.clock_hz,
            "static_w": power.static_w,
            "carry_router_dynamic_j": power.carry_router_dynamic_j,
            "carry_link_dynamic_j": power.carry_link_dynamic_j,
            "total_router_dynamic_j": power.total.router_dynamic_j,
            "total_link_dynamic_j": power.total.link_dynamic_j,
        }
        header["columns"] += [entry for entry, _ in _POWER_COLUMNS]
        arrays += [
            (entry, np.ascontiguousarray(getattr(power, attr)))
            for entry, attr in _POWER_COLUMNS
        ]
    write_npz_archive(path, header, arrays)


def read_telemetry_header(path: str | pathlib.Path) -> dict[str, Any]:
    """Read and validate only the JSON header of a telemetry file."""
    zf, header = _open(path)
    zf.close()
    return header


def _open(path: str | pathlib.Path):
    return open_npz_archive(
        path,
        expected_format=TELEMETRY_FORMAT,
        max_version=TELEMETRY_VERSION,
        required_entries=tuple(entry for entry, _ in _COLUMNS),
        kind="telemetry",
    )


def load_telemetry_npz(
    path: str | pathlib.Path,
) -> tuple[TelemetryTrace, PowerTrace | None, dict[str, Any]]:
    """Load ``(telemetry, power, header)`` from a telemetry file.

    ``power`` is ``None`` when the file was saved without a power series.
    The round-trip is exact: every column array and carry aggregate is
    restored bit-for-bit.
    """
    zf, header = _open(path)
    with zf:
        cols = {
            entry: np.load(io.BytesIO(zf.read(entry)), allow_pickle=False)
            for entry in header["columns"]
        }
    telemetry = TelemetryTrace(
        window=int(header["window"]),
        n_nodes=int(header["n_nodes"]),
        n_links=int(header["n_links"]),
        cycles=int(header["cycles"]),
        starts=cols["starts.npy"],
        ends=cols["ends.npy"],
        link_flits=cols["link_flits.npy"],
        router_flits=cols["router_flits.npy"],
        occupied_vcs=cols["occupied_vcs.npy"],
        in_flight=cols["in_flight.npy"],
        delivered=cols["delivered.npy"],
        latency_sum=cols["latency_sum.npy"],
        dropped_windows=int(header["dropped_windows"]),
        carry_router_flits=cols["carry_router_flits.npy"],
        carry_link_flits=cols["carry_link_flits.npy"],
        carry_delivered=int(header["carry_delivered"]),
        carry_latency_sum=int(header["carry_latency_sum"]),
    )
    power = None
    meta = header.get("power")
    if meta is not None:
        power = PowerTrace(
            clock_hz=float(meta["clock_hz"]),
            window=telemetry.window,
            starts=telemetry.starts,
            ends=telemetry.ends,
            router_dynamic_j=cols["router_dynamic_j.npy"],
            link_dynamic_j=cols["link_dynamic_j.npy"],
            carry_router_dynamic_j=float(meta["carry_router_dynamic_j"]),
            carry_link_dynamic_j=float(meta["carry_link_dynamic_j"]),
            static_w=float(meta["static_w"]),
            total=NetworkEnergy(
                router_dynamic_j=float(meta["total_router_dynamic_j"]),
                link_dynamic_j=float(meta["total_link_dynamic_j"]),
            ),
        )
    return telemetry, power, header


def profile_scenario(scenario) -> tuple[Any, TelemetryTrace, PowerTrace, TelemetryFindings]:
    """Evaluate one telemetry-enabled simulation scenario, rich results.

    The experiment engine's :func:`~repro.experiments.runner
    .evaluate_scenario` flattens telemetry into JSON-safe scalar metrics
    (cacheable, poolable); the CLI's ``telemetry run``/``export`` need
    the full window series instead. Both views run through the engine's
    public :func:`~repro.experiments.runner.simulate_scenario` — the
    same topology cache, trace generation and cycle budget — so they
    describe the identical run; this helper returns
    ``(stats, telemetry, power, findings)``.
    """
    from repro.experiments.runner import simulate_scenario
    from repro.telemetry.power_trace import power_trace

    if scenario.kind != "simulation" or scenario.sim is None:
        raise ValueError(f"not a simulation scenario: {scenario.label}")
    if scenario.sim.telemetry_window < 1:
        raise ValueError(
            f"scenario {scenario.label} has telemetry disabled "
            "(sim.telemetry_window == 0)"
        )
    topo, stats = simulate_scenario(scenario)
    power = power_trace(topo, stats.telemetry)
    return stats, stats.telemetry, power, analyze(stats.telemetry)


#: Heatmap shading ramp, lowest to highest utilization.
_HEAT_CHARS = " .:-=+*#%@"


def render_link_heatmap(
    telemetry: TelemetryTrace,
    *,
    csv: bool = False,
    top: int | None = None,
) -> str:
    """Render per-link windowed utilization as deterministic text or CSV.

    Utilization is flit traversals per cycle (all links carry 1
    flit/cycle at capacity, so 1.0 == 100 %). Text mode draws one row
    per link and one character per retained window on a 10-step shading
    ramp; CSV mode emits exact values (``link`` id column, one column
    per window keyed by its start cycle). ``top`` keeps only the N
    busiest links by whole-trace traffic (ties broken toward lower link
    ids; row order stays id-ascending), which is usually what a
    congestion hunt wants.

    Output is a pure function of the telemetry trace — same npz, same
    bytes — so heatmaps are CI-diffable like every other artefact.
    """
    if top is not None and top < 1:
        raise ValueError(f"top must be >= 1 link, got {top}")
    lengths = np.maximum(telemetry.window_lengths(), 1)
    util = telemetry.link_flits / lengths[:, None]  # (n_windows, n_links)
    totals = telemetry.link_flits.sum(axis=0)
    links = np.arange(telemetry.n_links)
    if top is not None and top < telemetry.n_links:
        # Busiest N by total traffic; lexsort's last key dominates, and
        # negating totals keeps ties at lower ids. Rows render id-sorted.
        order = np.lexsort((links, -totals))[:top]
        links = np.sort(order)
    n_windows = telemetry.n_windows
    if csv:
        lines = [
            "link," + ",".join(f"w{int(s)}" for s in telemetry.starts)
        ]
        for link in links:
            lines.append(
                f"{int(link)},"
                + ",".join(f"{u:.6g}" for u in util[:, link])
            )
        return "\n".join(lines)
    width = len(str(max(int(links[-1]), 0))) if links.size else 1
    scale = len(_HEAT_CHARS) - 1
    lines = [
        f"link utilization heatmap — {links.size}/{telemetry.n_links} links x "
        f"{n_windows} windows of {telemetry.window} cycles "
        f"(global windows {telemetry.dropped_windows}.."
        f"{telemetry.dropped_windows + n_windows - 1})",
        "scale: " + " ".join(
            f"{c!r}<={(i + 1) / len(_HEAT_CHARS):.1f}"
            for i, c in enumerate(_HEAT_CHARS)
        ),
    ]
    for link in links:
        cells = np.clip(util[:, link], 0.0, 1.0)
        row = "".join(
            _HEAT_CHARS[min(int(np.ceil(c * len(_HEAT_CHARS))) - 1, scale)]
            if c > 0
            else _HEAT_CHARS[0]
            for c in cells
        )
        lines.append(f"link {int(link):>{width}} |{row}| {int(totals[link])} flits")
    return "\n".join(lines)


def _fmt(value: float, digits: int = 2) -> object:
    """Format a possibly-nan float for table rendering."""
    return "n/a" if isinstance(value, float) and math.isnan(value) else round(value, digits)


def render_report(
    telemetry: TelemetryTrace,
    power: PowerTrace | None = None,
    findings: TelemetryFindings | None = None,
    *,
    title: str = "telemetry",
    max_rows: int = 24,
) -> str:
    """Render the windowed series plus findings as an ASCII report.

    Long runs elide interior windows (keeping the head and tail) so the
    report stays terminal-sized; the npz dump always holds every window.
    """
    from repro.util import format_table

    if findings is None:
        findings = analyze(telemetry)
    latencies = telemetry.window_latencies()
    occupancy = telemetry.occupancy_totals()
    dyn_w = power.dynamic_w() if power is not None else None

    n = telemetry.n_windows
    if n > max_rows:
        head = max_rows // 2
        shown: list[int | None] = list(range(head))
        shown.append(None)  # elision marker
        shown += list(range(n - (max_rows - head), n))
    else:
        shown = list(range(n))

    headers = ["window", "cycles", "flits", "delivered", "avg lat", "occ VCs"]
    if dyn_w is not None:
        headers.append("dyn power (W)")
    rows: list[list[object]] = []
    for i in shown:
        if i is None:
            rows.append(["..."] + [""] * (len(headers) - 1))
            continue
        row: list[object] = [
            telemetry.dropped_windows + i,
            f"{int(telemetry.starts[i])}-{int(telemetry.ends[i])}",
            int(telemetry.router_flits[i].sum()),
            int(telemetry.delivered[i]),
            _fmt(float(latencies[i])),
            int(occupancy[i]),
        ]
        if dyn_w is not None:
            row.append(_fmt(float(dyn_w[i]), 4))
        rows.append(row)
    out = [format_table(headers, rows, title=title)]

    summary: list[list[object]] = [
        ["windows (retained/dropped)", f"{n}/{telemetry.dropped_windows}"],
        ["window length (cycles)", telemetry.window],
        ["cycles covered", telemetry.cycles],
        ["flits (router traversals)", int(telemetry.total_router_flits().sum())],
        ["packets delivered", telemetry.total_delivered()],
    ]
    if power is not None:
        summary += [
            ["static power (W)", _fmt(power.static_w, 4)],
            ["mean dynamic power (W)", _fmt(power.mean_dynamic_w, 4)],
            ["peak dynamic power (W)", _fmt(power.peak_dynamic_w, 4)],
            ["total dynamic energy (J)", f"{power.total.dynamic_j:.6e}"],
        ]
    if findings.saturation_onset_cycle is None:
        summary.append(["saturation onset", "none detected"])
    else:
        summary.append(
            [
                "saturation onset",
                f"cycle {findings.saturation_onset_cycle} "
                f"(window {findings.saturation_onset_window})",
            ]
        )
    summary.append(
        [
            "sustained hotspots",
            ", ".join(map(str, findings.hotspot_nodes)) or "none",
        ]
    )
    if findings.first_collapse_cycle is not None:
        summary.append(
            [
                "throughput collapse",
                f"cycle {findings.first_collapse_cycle} "
                f"({len(findings.collapsed_windows)} window(s))",
            ]
        )
    out.append(format_table(["metric", "value"], summary, title=f"{title} — summary"))
    return "\n".join(out)
