"""Low-overhead windowed activity sampling for the cycle simulator.

The simulator already keeps cumulative per-router and per-link flit
counters for whole-run energy accounting. The sampler turns those into a
*time-resolved* view without touching the per-event hot path: every ``W``
cycles it snapshots the cumulative counters and stores the **difference**
against the previous snapshot as one window row. Window counts therefore
telescope — their sum is *exactly* the whole-run total, which is the
conservation invariant the telemetry power traces build on
(:mod:`repro.telemetry.power_trace`).

Cost model:

* **disabled** (``telemetry=None``, the default) — the run loop performs
  one integer comparison per cycle against a sentinel; no allocation, no
  attribute access, no behavioural change. Golden simulator outputs stay
  bit-identical (``tests/unit/test_simulator_golden.py``).
* **enabled** — O(n_routers + n_links) work per *window* (snapshot diff
  plus an occupancy point sample), amortized to nothing per cycle for
  realistic windows; the per-event hot path is untouched either way.

Window rows live in a ring buffer (:class:`TelemetryConfig.max_windows`);
evicted rows fold their totals into carry aggregates so conservation
holds even when only the most recent windows are retained.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TelemetryConfig", "TelemetryTrace", "WindowRow", "WindowObserver"]

#: One emitted window, as handed to a session observer: ``(start, end,
#: router_flit_deltas, link_flit_deltas, occupied_vcs, n_in_flight,
#: delivered, latency_sum)``.
WindowRow = tuple[int, int, "np.ndarray", "np.ndarray", "np.ndarray", int, int, int]

#: Callback receiving ``(global_window_index, row)`` as each window closes.
WindowObserver = Callable[[int, WindowRow], None]


@dataclass(frozen=True)
class TelemetryConfig:
    """How to sample a simulation run.

    ``window`` is the sampling period in cycles; ``max_windows`` bounds
    the ring buffer (None keeps every window — the default, so the
    conservation invariant is checkable against the full series).
    """

    window: int = 256
    max_windows: int | None = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"telemetry window must be >= 1 cycle, got {self.window}")
        if self.max_windows is not None and self.max_windows < 1:
            raise ValueError(
                f"max_windows must be >= 1 (or None), got {self.max_windows}"
            )

    def to_json(self) -> dict[str, object]:
        return {"window": self.window, "max_windows": self.max_windows}

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "TelemetryConfig":
        return cls(**data)


@dataclass
class TelemetryTrace:
    """Time-resolved activity of one simulation run.

    All per-window arrays share the same first axis (window index, oldest
    retained window first). ``link_flits`` / ``router_flits`` count flit
    traversals *attributed to the cycle the flit left the component's
    upstream switch*; ``occupied_vcs`` and ``in_flight`` are point samples
    taken at each window's closing edge. ``delivered`` / ``latency_sum``
    bin packets by ejection cycle.

    Windows evicted from the ring buffer are folded into the ``carry_*``
    aggregates, so ``carry + retained windows == whole run`` always holds
    (:meth:`total_router_flits`, :meth:`total_link_flits`, ...).
    """

    window: int
    n_nodes: int
    n_links: int
    cycles: int
    """Total simulated cycles covered (== SimStats.cycles)."""
    starts: np.ndarray
    """Window start cycle (inclusive), int64 (n_windows,)."""
    ends: np.ndarray
    """Window end cycle (exclusive); the last window may be partial."""
    link_flits: np.ndarray
    """Flit traversals per link per window, int64 (n_windows, n_links)."""
    router_flits: np.ndarray
    """Flit traversals per router per window, int64 (n_windows, n_nodes)."""
    occupied_vcs: np.ndarray
    """Occupied input VCs per router, sampled at window close (n_windows, n_nodes)."""
    in_flight: np.ndarray
    """Flits in link pipelines at window close, int64 (n_windows,)."""
    delivered: np.ndarray
    """Packets ejected within each window, int64 (n_windows,)."""
    latency_sum: np.ndarray
    """Sum of packet latencies ejected within each window, int64."""
    dropped_windows: int = 0
    """Windows evicted from the ring buffer (oldest first)."""
    carry_router_flits: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    carry_link_flits: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    carry_delivered: int = 0
    carry_latency_sum: int = 0

    @property
    def n_windows(self) -> int:
        """Retained window count."""
        return int(self.starts.shape[0])

    def total_router_flits(self) -> np.ndarray:
        """Carry + window sums per router — equals SimStats.router_flit_counts."""
        return self.carry_router_flits + self.router_flits.sum(axis=0)

    def total_link_flits(self) -> np.ndarray:
        """Carry + window sums per link — equals SimStats.link_flit_counts."""
        return self.carry_link_flits + self.link_flits.sum(axis=0)

    def total_delivered(self) -> int:
        """Carry + window sums of ejected packets."""
        return self.carry_delivered + int(self.delivered.sum())

    def total_latency_sum(self) -> int:
        """Carry + window sums of ejected-packet latencies."""
        return self.carry_latency_sum + int(self.latency_sum.sum())

    def window_lengths(self) -> np.ndarray:
        """Cycles per retained window (the tail window may be shorter)."""
        return self.ends - self.starts

    def router_rates(self) -> np.ndarray:
        """Per-window router traversal rate, flits/router/cycle."""
        lengths = np.maximum(self.window_lengths(), 1)
        return self.router_flits.sum(axis=1) / (lengths * self.n_nodes)

    def link_rates(self) -> np.ndarray:
        """Per-window mean link utilization, flit traversals/link/cycle."""
        lengths = np.maximum(self.window_lengths(), 1)
        return self.link_flits.sum(axis=1) / (lengths * max(self.n_links, 1))

    def window_latencies(self) -> np.ndarray:
        """Per-window mean ejection latency (nan for windows with none)."""
        out = np.full(self.n_windows, math.nan)
        mask = self.delivered > 0
        out[mask] = self.latency_sum[mask] / self.delivered[mask]
        return out

    def occupancy_totals(self) -> np.ndarray:
        """Network-wide occupied VCs at each window close."""
        return self.occupied_vcs.sum(axis=1)


class TelemetrySession:
    """Internal flush machinery the simulator drives (one per run).

    The simulator calls :meth:`flush_to` whenever the clock crosses the
    next window boundary (including multi-window jumps from the idle
    fast-forward — intermediate windows are genuinely empty and record
    zero deltas) and :meth:`finalize` once after the run loop.

    Deliveries and latency sums are windowed the same way as the flit
    counters: the simulator maintains *running* totals (a packet ejected
    during cycle ``c`` is counted before the boundary flush at ``c + 1``)
    and each window stores the difference against the previous snapshot.
    That makes the per-window series available **online** — the optional
    ``observer`` callback receives every emitted window as it closes,
    which is how :class:`repro.control.ControlSession` drives adaptive
    controllers against a live run.
    """

    def __init__(
        self,
        config: TelemetryConfig,
        n_nodes: int,
        n_links: int,
        observer: "WindowObserver | None" = None,
    ) -> None:
        self.config = config
        self.n_nodes = n_nodes
        self.n_links = n_links
        self.window = config.window
        self.next_boundary = config.window
        self.observer = observer
        self._prev_router = np.zeros(n_nodes, dtype=np.int64)
        self._prev_link = np.zeros(n_links, dtype=np.int64)
        self._prev_delivered = 0
        self._prev_latency = 0
        self._rows: deque[
            tuple[int, int, np.ndarray, np.ndarray, np.ndarray, int, int, int]
        ]
        self._rows = deque()
        self._window_start = 0
        self._emitted = 0
        self.dropped_windows = 0
        self._carry_router = np.zeros(n_nodes, dtype=np.int64)
        self._carry_link = np.zeros(n_links, dtype=np.int64)
        self._carry_delivered = 0
        self._carry_latency = 0

    def _emit(
        self,
        end: int,
        router_counts: list[int],
        link_counts: list[int],
        occ_mask: list[int],
        n_in_flight: int,
        delivered: int,
        latency_sum: int,
    ) -> None:
        cur_router = np.asarray(router_counts, dtype=np.int64)
        cur_link = np.asarray(link_counts, dtype=np.int64)
        occupied = np.fromiter(
            (m.bit_count() for m in occ_mask), dtype=np.int64, count=self.n_nodes
        )
        row = (
            self._window_start,
            end,
            cur_router - self._prev_router,
            cur_link - self._prev_link,
            occupied,
            n_in_flight,
            delivered - self._prev_delivered,
            latency_sum - self._prev_latency,
        )
        self._prev_router = cur_router
        self._prev_link = cur_link
        self._prev_delivered = delivered
        self._prev_latency = latency_sum
        self._window_start = end
        cap = self.config.max_windows
        if cap is not None and len(self._rows) == cap:
            old = self._rows.popleft()
            self._carry_router += old[2]
            self._carry_link += old[3]
            self._carry_delivered += old[6]
            self._carry_latency += old[7]
            self.dropped_windows += 1
        self._rows.append(row)
        index = self._emitted
        self._emitted += 1
        if self.observer is not None:
            self.observer(index, row)

    def flush_to(
        self,
        t: int,
        router_counts: list[int],
        link_counts: list[int],
        occ_mask: list[int],
        n_in_flight: int,
        delivered: int,
        latency_sum: int,
    ) -> int:
        """Emit every full window up to cycle ``t``; returns the next boundary."""
        while self.next_boundary <= t:
            self._emit(
                self.next_boundary,
                router_counts,
                link_counts,
                occ_mask,
                n_in_flight,
                delivered,
                latency_sum,
            )
            self.next_boundary += self.window
        return self.next_boundary

    def finalize(
        self,
        t: int,
        router_counts: list[int],
        link_counts: list[int],
        occ_mask: list[int],
        n_in_flight: int,
        delivered_total: int,
        latency_sum_total: int,
    ) -> TelemetryTrace:
        """Flush the trailing (possibly partial) window and assemble the trace.

        ``delivered_total`` / ``latency_sum_total`` are the simulator's
        whole-run counters; a packet switched out of the network during
        cycle ``c`` was counted before the boundary flush at ``c + 1``,
        so window diffs attribute it to the window containing ``c``.
        """
        self.flush_to(
            t,
            router_counts,
            link_counts,
            occ_mask,
            n_in_flight,
            delivered_total,
            latency_sum_total,
        )
        if t > self._window_start:
            self._emit(
                t,
                router_counts,
                link_counts,
                occ_mask,
                n_in_flight,
                delivered_total,
                latency_sum_total,
            )

        n = len(self._rows)
        starts = np.fromiter((r[0] for r in self._rows), np.int64, n)
        ends = np.fromiter((r[1] for r in self._rows), np.int64, n)
        router_flits = (
            np.stack([r[2] for r in self._rows])
            if n
            else np.zeros((0, self.n_nodes), np.int64)
        )
        link_flits = (
            np.stack([r[3] for r in self._rows])
            if n
            else np.zeros((0, self.n_links), np.int64)
        )
        occupied = (
            np.stack([r[4] for r in self._rows])
            if n
            else np.zeros((0, self.n_nodes), np.int64)
        )
        in_flight = np.fromiter((r[5] for r in self._rows), np.int64, n)
        delivered = np.fromiter((r[6] for r in self._rows), np.int64, n)
        latency_sum = np.fromiter((r[7] for r in self._rows), np.int64, n)

        return TelemetryTrace(
            window=self.window,
            n_nodes=self.n_nodes,
            n_links=self.n_links,
            cycles=t,
            starts=starts,
            ends=ends,
            link_flits=link_flits,
            router_flits=router_flits,
            occupied_vcs=occupied,
            in_flight=in_flight,
            delivered=delivered,
            latency_sum=latency_sum,
            dropped_windows=self.dropped_windows,
            carry_router_flits=self._carry_router,
            carry_link_flits=self._carry_link,
            carry_delivered=self._carry_delivered,
            carry_latency_sum=self._carry_latency,
        )
