"""Opt-in per-phase profiling for both simulation engines.

The engines' cycle loops decompose into named phases (flit arrivals,
injection, VC allocation, switch allocation, drain/fast-forward for the
interpreter; vectorized arrivals/injection/alloc-traversal plus the
scalar-replay fallback for the batched engine). A :class:`PhaseProfile`
handed to ``Simulator.run(profile=...)`` or
``BatchSimulator.run_batch(profile=...)`` accumulates ``perf_counter_ns``
deltas per phase via chained timestamps, so the phase sum tracks the
loop's wall time closely (pinned within 10% by integration test).

Cost model matches the telemetry sampler and :mod:`repro.obs.trace`:
disabled (``profile=None``, the default) the loop pays one ``if prof:``
falsy check per phase boundary — no clock reads, no allocation — and the
golden-SimStats tests stay bit-identical. The CI bench gate pins the
disabled path's median within 5% of ``simulator_run``.

:func:`profile_simulation` is the one-call helper behind
``repro obs profile``: evaluate one scenario under each engine and
return the populated profiles; :func:`render_profiles` renders them as
an aligned per-phase table with percent-of-total columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "PhaseProfile",
    "profile_simulation",
    "render_profiles",
    "INTERPRETER_PHASES",
    "BATCH_PHASES",
]

#: Phase display order for the interpreter engine.
INTERPRETER_PHASES = (
    "setup",
    "arrivals",
    "injection",
    "vc_alloc",
    "switch_alloc",
    "drain",
    "finalize",
)

#: Phase display order for the batched engine.
BATCH_PHASES = (
    "setup",
    "arrivals",
    "injection",
    "alloc_traversal",
    "scalar_replay",
    "clock",
    "finalize",
)

_PHASE_ORDER = {
    "interpreter": INTERPRETER_PHASES,
    "batched": BATCH_PHASES,
}


@dataclass
class PhaseProfile:
    """Accumulated per-phase nanoseconds plus event counts for one run.

    Mutable accumulator: the engine calls :meth:`add` at phase
    boundaries and :meth:`bump` for occurrence counts (cycles executed,
    scalar-replay cycles). ``total_ns`` is the engine's own
    entry-to-exit wall time; ``sum(phases.values())`` should land within
    a few percent of it because the timestamps chain (each phase's end
    is the next phase's start).
    """

    engine: str = "interpreter"
    phases: dict[str, int] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    total_ns: int = 0

    def add(self, phase: str, ns: int) -> None:
        self.phases[phase] = self.phases.get(phase, 0) + ns

    def bump(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n

    @property
    def phase_sum_ns(self) -> int:
        return sum(self.phases.values())

    def to_json(self) -> dict[str, Any]:
        order = _PHASE_ORDER.get(self.engine, ())
        ordered = [p for p in order if p in self.phases]
        ordered += sorted(p for p in self.phases if p not in order)
        return {
            "engine": self.engine,
            "total_ns": self.total_ns,
            "phase_sum_ns": self.phase_sum_ns,
            "phases": {p: self.phases[p] for p in ordered},
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "PhaseProfile":
        """Rebuild a profile shipped across the process-pool seam."""
        return cls(
            engine=data["engine"],
            phases={p: int(ns) for p, ns in data.get("phases", {}).items()},
            counts={k: int(n) for k, n in data.get("counts", {}).items()},
            total_ns=int(data.get("total_ns", 0)),
        )


def profile_simulation(scenario: Any) -> dict[str, PhaseProfile]:
    """Run ``scenario`` under both engines with profiling enabled.

    Returns ``{"interpreter": PhaseProfile, "batched": PhaseProfile}``
    (the batched entry is omitted for scenarios the batched engine cannot
    run — telemetry/closed-loop/controller specs are interpreter-only).
    Imports lazily so :mod:`repro.obs` never drags the simulation stack
    in at import time (and stays cycle-free).
    """
    from repro.experiments.runner import _materialize
    from repro.simulation.batch import BatchSimulator
    from repro.simulation.simulator import Simulator

    if scenario.kind != "simulation" or scenario.sim is None:
        raise ValueError(f"not a simulation scenario: {scenario.label}")
    sim_spec = scenario.sim
    topo, routing = _materialize(scenario.topology)
    trace = scenario.traffic.trace(topo, sim=sim_spec)
    max_cycles = sim_spec.cycle_budget(scenario.traffic.trace_based)
    cfg = sim_spec.sim_config()

    out: dict[str, PhaseProfile] = {}
    prof_i = PhaseProfile(engine="interpreter")
    Simulator(topo, routing, cfg).run(trace, max_cycles=max_cycles, profile=prof_i)
    out["interpreter"] = prof_i

    if (
        sim_spec.telemetry_window == 0
        and sim_spec.closed_loop_window == 0
        and not sim_spec.controllers
    ):
        prof_b = PhaseProfile(engine="batched")
        BatchSimulator(topo, routing, cfg).run_batch(
            [trace], max_cycles=max_cycles, profile=prof_b
        )
        out["batched"] = prof_b
    return out


def render_profiles(profiles: dict[str, PhaseProfile]) -> str:
    """Aligned per-phase table for one or more engine profiles."""
    from repro.util import format_table

    rows = []
    for engine in sorted(profiles):
        prof = profiles[engine]
        total = prof.total_ns or 1
        order = _PHASE_ORDER.get(prof.engine, ())
        ordered = [p for p in order if p in prof.phases]
        ordered += sorted(p for p in prof.phases if p not in order)
        for phase in ordered:
            ns = prof.phases[phase]
            rows.append(
                [
                    engine,
                    phase,
                    f"{ns / 1e6:.3f}",
                    f"{100.0 * ns / total:.1f}%",
                ]
            )
        rows.append(
            [
                engine,
                "(total)",
                f"{prof.total_ns / 1e6:.3f}",
                f"{100.0 * prof.phase_sum_ns / total:.1f}% covered",
            ]
        )
    return format_table(["engine", "phase", "ms", "of total"], rows)
