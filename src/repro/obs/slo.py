"""Declarative SLO rules evaluated against the metrics time-series.

Turns the sampled history (:mod:`repro.obs.pipeline`) into automated
health judgments: each :class:`SloRule` names a metric, a *signal* to
derive from its series, a comparison and a threshold; the
:class:`SloEngine` evaluates every rule once per sampling tick and
drives a firing/resolved state machine per rule. Transitions emit
structured :class:`AlertEvent` records into a bounded history *and* into
the log stream (``repro.obs.slo``), and the whole state renders as the
service's ``/api/v1/alerts`` document.

Signals:

=========  ==================================================================
``value``  latest sampled value of a counter or gauge
``rate``   per-second counter increase over ``window_s``
``delta``  counter increase over ``window_s``
``pNN``    histogram percentile at the latest frame (``p50``, ``p99``,
           ``p99.9`` ... — the number is the percentile, 0-100)
``ratio``  windowed counter-increase ratio ``delta(metric) /
           delta(denominator)``; the denominator may sum counters with
           ``+`` (``"cache.hits+cache.misses"`` for a hit *ratio*)
=========  ==================================================================

A rule *breaches* when its signal compares true against the threshold;
after ``for_ticks`` consecutive breaching ticks it transitions to
``firing``, and the first non-breaching tick resolves it. NaN signals
(metric absent, window under-sampled, zero denominator) never breach —
an SLO over data that does not exist yet stays ``ok`` rather than
flapping.

Rules are plain JSON documents (:func:`load_slo_rules` reads the file
``repro serve --slo-rules`` points at); every violation is rejected
loudly with the offending rule named.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.obs.logs import fields, get_logger
from repro.obs.metrics import counter
from repro.obs.pipeline import SeriesStore

__all__ = [
    "AlertEvent",
    "SloEngine",
    "SloRule",
    "load_slo_rules",
]

_log = get_logger("obs.slo")
_TRANSITIONS = counter("slo.transitions")

_OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}
_PERCENTILE = re.compile(r"p(\d{1,2}(?:\.\d+)?|100)$")
_SCALAR_SIGNALS = ("value", "rate", "delta", "ratio")

#: Events kept in the engine's bounded history.
EVENT_CAPACITY = 256


@dataclass(frozen=True)
class SloRule:
    """One declarative threshold rule (JSON-round-trippable)."""

    name: str
    metric: str
    threshold: float
    signal: str = "value"
    op: str = ">"
    window_s: float = 60.0
    for_ticks: int = 1
    denominator: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO rule needs a non-empty name")
        if not self.metric:
            raise ValueError(f"rule {self.name!r}: metric must be non-empty")
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: op must be one of {sorted(_OPS)}, "
                f"got {self.op!r}"
            )
        if self.signal not in _SCALAR_SIGNALS and not _PERCENTILE.match(
            self.signal
        ):
            raise ValueError(
                f"rule {self.name!r}: signal must be one of "
                f"{_SCALAR_SIGNALS} or pNN, got {self.signal!r}"
            )
        if self.signal == "ratio" and not self.denominator:
            raise ValueError(
                f"rule {self.name!r}: ratio signals need a denominator"
            )
        if self.signal != "ratio" and self.denominator:
            raise ValueError(
                f"rule {self.name!r}: denominator only applies to ratio "
                f"signals"
            )
        if self.window_s <= 0:
            raise ValueError(
                f"rule {self.name!r}: window_s must be > 0, got {self.window_s}"
            )
        if self.for_ticks < 1:
            raise ValueError(
                f"rule {self.name!r}: for_ticks must be >= 1, got "
                f"{self.for_ticks}"
            )

    def to_json(self) -> dict[str, Any]:
        doc = {
            "name": self.name,
            "metric": self.metric,
            "signal": self.signal,
            "op": self.op,
            "threshold": self.threshold,
            "window_s": self.window_s,
            "for_ticks": self.for_ticks,
        }
        if self.denominator:
            doc["denominator"] = self.denominator
        return doc

    def evaluate(self, store: SeriesStore) -> float:
        """Derive this rule's signal from the series store (NaN if absent)."""
        m = _PERCENTILE.match(self.signal)
        if m:
            return store.percentile(self.metric, float(m.group(1)) / 100.0)
        if self.signal == "rate":
            return store.rate(self.metric, self.window_s)
        if self.signal == "delta":
            return store.delta(self.metric, self.window_s)
        if self.signal == "ratio":
            num = store.delta(self.metric, self.window_s)
            den = sum(
                store.delta(part.strip(), self.window_s)
                for part in self.denominator.split("+")  # type: ignore[union-attr]
            )
            if math.isnan(num) or math.isnan(den) or den == 0:
                return math.nan
            return num / den
        pts = store.series(self.metric)
        return pts[-1][1] if pts else math.nan


@dataclass(frozen=True)
class AlertEvent:
    """One firing/resolved transition (what the log line also carries)."""

    t: float
    rule: str
    state: str  # "firing" | "resolved"
    value: float
    threshold: float

    def to_json(self) -> dict[str, Any]:
        return {
            "t": round(self.t, 6),
            "rule": self.rule,
            "state": self.state,
            "value": None if math.isnan(self.value) else round(self.value, 6),
            "threshold": self.threshold,
        }


@dataclass
class _RuleState:
    state: str = "ok"
    breach_streak: int = 0
    since: float | None = None
    last_value: float = math.nan


class SloEngine:
    """Evaluates rules each tick; owns alert state and event history."""

    def __init__(self, rules: list[SloRule] | tuple[SloRule, ...] = ()) -> None:
        names = [r.name for r in rules]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate SLO rule names: {sorted(dupes)}")
        self.rules = tuple(rules)
        self._states = {r.name: _RuleState() for r in self.rules}
        self._events: deque[AlertEvent] = deque(maxlen=EVENT_CAPACITY)

    def evaluate(
        self, store: SeriesStore, now: float | None = None
    ) -> list[AlertEvent]:
        """Run every rule against the store; returns new transitions."""
        t = time.time() if now is None else now
        transitions: list[AlertEvent] = []
        for rule in self.rules:
            state = self._states[rule.name]
            value = rule.evaluate(store)
            state.last_value = value
            breach = not math.isnan(value) and _OPS[rule.op](
                value, rule.threshold
            )
            if breach:
                state.breach_streak += 1
                if (
                    state.state == "ok"
                    and state.breach_streak >= rule.for_ticks
                ):
                    state.state = "firing"
                    state.since = t
                    transitions.append(
                        AlertEvent(t, rule.name, "firing", value, rule.threshold)
                    )
            else:
                state.breach_streak = 0
                if state.state == "firing":
                    state.state = "ok"
                    state.since = t
                    transitions.append(
                        AlertEvent(
                            t, rule.name, "resolved", value, rule.threshold
                        )
                    )
        for event in transitions:
            self._events.append(event)
            _TRANSITIONS.inc()
            log = _log.warning if event.state == "firing" else _log.info
            log(
                "slo transition",
                extra=fields(
                    rule=event.rule,
                    state=event.state,
                    value=event.to_json()["value"],
                    threshold=event.threshold,
                ),
            )
        return transitions

    def firing(self) -> list[str]:
        """Names of currently-firing rules (sorted)."""
        return sorted(
            name for name, s in self._states.items() if s.state == "firing"
        )

    def events(self) -> list[AlertEvent]:
        """Transition history, oldest first (bounded)."""
        return list(self._events)

    def to_json(self) -> dict[str, Any]:
        """The ``/api/v1/alerts`` document: rule states + transitions."""
        rules = []
        for rule in sorted(self.rules, key=lambda r: r.name):
            state = self._states[rule.name]
            doc = rule.to_json()
            doc.update(
                state=state.state,
                value=(
                    None
                    if math.isnan(state.last_value)
                    else round(state.last_value, 6)
                ),
                since=(
                    None if state.since is None else round(state.since, 6)
                ),
            )
            rules.append(doc)
        return {
            "rules": rules,
            "firing": self.firing(),
            "events": [e.to_json() for e in self._events],
        }


def load_slo_rules(path: str | pathlib.Path) -> list[SloRule]:
    """Read SLO rules from a JSON file (a list, or ``{"rules": [...]}``).

    Unknown keys, bad types and invalid rule fields all fail loudly with
    the offending rule named — a service must not boot with a silently
    half-parsed alert config.
    """
    p = pathlib.Path(path)
    try:
        doc = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read SLO rules from {p}: {exc}") from exc
    items = doc.get("rules") if isinstance(doc, dict) else doc
    if not isinstance(items, list):
        raise ValueError(
            f"{p}: expected a JSON list of rules or {{'rules': [...]}}"
        )
    allowed = {
        "name",
        "metric",
        "threshold",
        "signal",
        "op",
        "window_s",
        "for_ticks",
        "denominator",
    }
    rules: list[SloRule] = []
    for i, item in enumerate(items):
        if not isinstance(item, dict):
            raise ValueError(f"{p}: rule [{i}] is not an object")
        unknown = set(item) - allowed
        if unknown:
            raise ValueError(
                f"{p}: rule [{i}] has unknown keys {sorted(unknown)}"
            )
        missing = {"name", "metric", "threshold"} - set(item)
        if missing:
            raise ValueError(
                f"{p}: rule [{i}] is missing keys {sorted(missing)}"
            )
        try:
            rules.append(
                SloRule(
                    name=str(item["name"]),
                    metric=str(item["metric"]),
                    threshold=float(item["threshold"]),
                    signal=str(item.get("signal", "value")),
                    op=str(item.get("op", ">")),
                    window_s=float(item.get("window_s", 60.0)),
                    for_ticks=int(item.get("for_ticks", 1)),
                    denominator=item.get("denominator"),
                )
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{p}: rule [{i}]: {exc}") from exc
    if len({r.name for r in rules}) != len(rules):
        raise ValueError(f"{p}: rule names must be unique")
    return rules
