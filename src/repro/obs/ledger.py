"""Durable append-only NDJSON run ledger for sweep lifecycle events.

Every per-point lifecycle transition of a job (``queued -> dispatched ->
simulating -> completed | cached | failed``, with worker pid, engine and
cache disposition) plus the job-level transitions framing them
(``submitted``, ``running``, ``requeued``, ``interrupted``, ``done``,
``failed``) is appended as one JSON line to
``STATE_DIR/ledger/<job_id>.ndjson``.

Crash-safety contract:

* **line-atomic appends** — each event serializes to one line written by
  a single ``write()`` call followed by a flush, so a crash leaves at
  most one torn line, and only at the end of the file;
* **tolerant tail truncation** — :func:`load_ledger` drops an
  unterminated or unparseable *final* line (a torn write) while any
  malformed line *before* the tail still raises (real corruption must
  not be silently skipped); reopening a ledger through
  :class:`RunLedger` physically truncates the torn tail so the next
  append starts on a clean line boundary;
* **replayable** — :func:`replay_ledger` folds the event stream back
  into job/point state; for any job the replay matches the
  :class:`~repro.service.jobs.JobRecord` the scheduler persisted
  (pinned by an end-to-end kill+resume test).

:func:`export_ledger` mirrors :func:`repro.obs.trace.export_trace`'s
deterministic-export conventions: ``deterministic=True`` strips wall
timestamps and worker pids, renumbers ``seq`` densely, and orders events
canonically (job-event barriers partition the stream into segments;
within a segment, point events sort by point index then lifecycle
stage), so identical sweeps export byte-identical documents regardless
of ``--jobs`` interleaving.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "LEDGER_FORMAT",
    "JOB_EVENTS",
    "POINT_EVENTS",
    "RunLedger",
    "LedgerReplay",
    "load_ledger",
    "replay_ledger",
    "export_ledger",
]

LEDGER_FORMAT = "repro.obs.ledger/1"

#: Job-level transitions, in lifecycle order. Each acts as a barrier in
#: the deterministic export's canonical ordering.
JOB_EVENTS = (
    "job.submitted",
    "job.running",
    "job.requeued",
    "job.interrupted",
    "job.done",
    "job.failed",
)

#: Per-point transitions; the tuple order is the lifecycle order used to
#: sort events within one export segment.
POINT_EVENTS = (
    "point.queued",
    "point.dispatched",
    "point.simulating",
    "point.completed",
    "point.cached",
    "point.failed",
)

# completed/cached/failed are alternative terminals at the same depth;
# a point emits exactly one of them per segment, so sharing a rank is
# unambiguous.
_LIFECYCLE_RANK = {
    "point.queued": 0,
    "point.dispatched": 1,
    "point.simulating": 2,
    "point.completed": 3,
    "point.cached": 3,
    "point.failed": 3,
}

#: Fields stripped by the deterministic export (wall-clock and
#: process-identity data that varies run to run).
_VOLATILE_FIELDS = ("t", "worker", "worker_t", "duration_s")


def _scan(raw: bytes, path: pathlib.Path) -> tuple[list[dict[str, Any]], int]:
    """Parse ledger bytes into events plus the valid-prefix byte length.

    The final line is dropped when unterminated (no trailing newline):
    our writer emits ``line + "\\n"`` in one write, so an unterminated
    line is always a torn append — even if its prefix happens to parse.
    A malformed line anywhere *else* raises ``ValueError``.
    """
    events: list[dict[str, Any]] = []
    offset = 0
    lines = raw.split(b"\n")
    for i, line in enumerate(lines):
        terminated = i < len(lines) - 1
        if not line:
            if not terminated:
                break  # clean EOF (file ends with newline)
            raise ValueError(f"{path}: blank line {i + 1} inside ledger")
        if not terminated:
            break  # torn tail: unterminated final line, drop it
        try:
            doc = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"{path}: corrupt ledger line {i + 1}: {exc}"
            ) from exc
        if not isinstance(doc, dict) or "event" not in doc:
            raise ValueError(
                f"{path}: ledger line {i + 1} is not an event object"
            )
        events.append(doc)
        offset += len(line) + 1
    return events, offset


def load_ledger(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Read a ledger file, dropping a torn final line if present."""
    path = pathlib.Path(path)
    events, _ = _scan(path.read_bytes(), path)
    return events


class RunLedger:
    """Append-only writer for one job's ledger file.

    Opening an existing file repairs a torn tail in place (truncating to
    the last complete line) and continues the ``seq`` numbering from the
    surviving events, so resumed jobs keep one monotone sequence across
    restarts. ``append`` is thread-safe: the sweep drive thread, the
    dispatcher and HTTP submit threads may interleave events.
    """

    def __init__(
        self, path: str | pathlib.Path, *, job_id: str | None = None
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.job_id = job_id if job_id is not None else self.path.stem
        self._lock = threading.Lock()
        self._seq = 0
        if self.path.exists():
            raw = self.path.read_bytes()
            events, valid = _scan(raw, self.path)
            if events:
                self._seq = int(events[-1].get("seq", len(events) - 1)) + 1
            if valid < len(raw):
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, event: str, **fields: Any) -> dict[str, Any]:
        """Write one event line atomically; returns the record written."""
        with self._lock:
            rec: dict[str, Any] = {
                "seq": self._seq,
                "t": round(time.time(), 6),
                "job": self.job_id,
                "event": event,
                **fields,
            }
            self._seq += 1
            line = json.dumps(rec, sort_keys=True, separators=(",", ":"))
            self._fh.write(line + "\n")
            self._fh.flush()
        return rec

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass
class LedgerReplay:
    """Job/point state reconstructed from a ledger event stream.

    The counter fields mirror :class:`~repro.service.jobs.JobRecord`:
    ``points_done`` counts completed + cached points *since the last
    requeue* (a boot-requeue resets the scheduler's counters, and the
    replay folds ``job.requeued`` the same way), ``cache_hits`` the
    cached subset. ``point_states`` maps point index to its latest
    lifecycle stage.
    """

    job_id: str | None = None
    state: str = "queued"
    n_points: int = 0
    points_done: int = 0
    cache_hits: int = 0
    failed_points: int = 0
    resumed: int = 0
    error: str | None = None
    point_states: dict[int, str] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "n_points": self.n_points,
            "points_done": self.points_done,
            "cache_hits": self.cache_hits,
            "failed_points": self.failed_points,
            "resumed": self.resumed,
            "error": self.error,
            "point_states": {
                str(i): s for i, s in sorted(self.point_states.items())
            },
        }


def replay_ledger(events: list[dict[str, Any]]) -> LedgerReplay:
    """Fold an event stream into the job state it describes."""
    rep = LedgerReplay()
    for ev in events:
        name = ev.get("event")
        if "job" in ev:
            rep.job_id = ev["job"]
        if name == "job.submitted":
            rep.n_points = int(ev.get("n_points", 0))
            rep.state = "queued"
        elif name == "job.running":
            rep.state = "running"
        elif name == "job.requeued":
            # Mirrors the scheduler's boot-requeue: counters reset, the
            # checkpointed points return as cache hits on the re-run.
            rep.resumed += 1
            rep.state = "queued"
            rep.points_done = 0
            rep.cache_hits = 0
            rep.failed_points = 0
            rep.point_states = {i: "queued" for i in range(rep.n_points)}
        elif name == "job.interrupted":
            rep.state = "running"  # parked on disk as resumable
        elif name == "job.done":
            rep.state = "done"
        elif name == "job.failed":
            rep.state = "failed"
            rep.error = ev.get("error")
        elif isinstance(name, str) and name.startswith("point."):
            stage = name.split(".", 1)[1]
            point = int(ev.get("point", -1))
            rep.point_states[point] = stage
            if stage in ("completed", "cached"):
                rep.points_done += 1
                if stage == "cached":
                    rep.cache_hits += 1
            elif stage == "failed":
                rep.failed_points += 1
    return rep


def export_ledger(
    events: list[dict[str, Any]], *, deterministic: bool = False
) -> dict[str, Any]:
    """Exportable ledger document, optionally canonicalized.

    ``deterministic=True`` strips wall timestamps / worker pids /
    durations, renumbers ``seq`` densely and orders events canonically
    (see the module docstring) — byte-stable across runs and ``--jobs``
    values for identical sweeps, following the
    :func:`repro.obs.trace.export_trace` conventions.
    """
    if not deterministic:
        out = [dict(ev) for ev in events]
    else:
        keyed: list[tuple[tuple[int, int, int, int], dict[str, Any]]] = []
        segment = 0
        for ev in events:
            name = ev.get("event", "")
            if name.startswith("job."):
                # A job event closes its segment: it sorts after every
                # point event emitted since the previous job event.
                keyed.append(((segment, 1, 0, 0), ev))
                segment += 1
            else:
                keyed.append(
                    (
                        (
                            segment,
                            0,
                            int(ev.get("point", -1)),
                            _LIFECYCLE_RANK.get(name, 9),
                        ),
                        ev,
                    )
                )
        keyed.sort(key=lambda kv: kv[0])  # stable: ties keep seq order
        out = []
        for seq, (_, ev) in enumerate(keyed):
            clean = {
                k: v for k, v in ev.items() if k not in _VOLATILE_FIELDS
            }
            clean["seq"] = seq
            out.append(clean)
    return {
        "format": LEDGER_FORMAT,
        "deterministic": deterministic,
        "n_events": len(out),
        "events": out,
    }
