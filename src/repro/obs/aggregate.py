"""Sweep-level aggregation of per-point :class:`PhaseProfile` captures.

PR 8's profiler times one run; a sweep produces one profile *per point*,
captured in-process or shipped back through the runner's process-pool
seam. :func:`merge_profiles` folds any number of them — in any order —
into per-engine, per-phase distributions: totals plus p50/p99/min/max
over the per-point phase times. The merge is order-independent (values
are sorted before percentiles are taken) so ``--jobs 1`` and
``--jobs N`` sweeps aggregate identically.

``SweepProfile.to_json(deterministic=True)`` keeps only the structural
skeleton (engines, phase names, summed event counts, point counts) and
drops every nanosecond field — the byte-stable form the
``/api/v1/jobs/<id>/profile?deterministic=1`` endpoint serves.

:func:`render_sweep_profile` is the text flame-style breakdown behind
``repro obs profile --job ID``: one bar per phase, width proportional
to its share of the engine's total time, with p50/p99 columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.profile import _PHASE_ORDER, PhaseProfile

__all__ = ["PhaseStats", "SweepProfile", "merge_profiles", "render_sweep_profile"]


def _percentile(sorted_vals: list[int], q: float) -> float:
    """Linear-interpolated percentile over pre-sorted values."""
    if not sorted_vals:
        return 0.0
    if len(sorted_vals) == 1:
        return float(sorted_vals[0])
    pos = (len(sorted_vals) - 1) * q
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(sorted_vals):
        return float(sorted_vals[-1])
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[lo + 1] * frac


@dataclass(frozen=True)
class PhaseStats:
    """One phase's distribution across a sweep's points."""

    total_ns: int
    n: int
    p50_ns: float
    p99_ns: float
    min_ns: int
    max_ns: int

    def to_json(self) -> dict[str, Any]:
        return {
            "total_ns": self.total_ns,
            "n": self.n,
            "p50_ns": round(self.p50_ns, 3),
            "p99_ns": round(self.p99_ns, 3),
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }


@dataclass(frozen=True)
class EngineAggregate:
    """All profiled points of one engine, merged."""

    engine: str
    n_points: int
    total_ns: int
    phases: dict[str, PhaseStats]
    counts: dict[str, int]


@dataclass(frozen=True)
class SweepProfile:
    """Per-engine phase distributions across one sweep."""

    n_profiles: int
    engines: dict[str, EngineAggregate]

    def to_json(self, *, deterministic: bool = False) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "format": "repro.obs.profile/1",
            "deterministic": deterministic,
            "n_profiles": self.n_profiles,
            "engines": {},
        }
        for name in sorted(self.engines):
            agg = self.engines[name]
            if deterministic:
                # Structure + deterministic event counts only: phase
                # names in display order, no timing fields.
                doc["engines"][name] = {
                    "n_points": agg.n_points,
                    "phases": list(agg.phases),
                    "counts": dict(sorted(agg.counts.items())),
                }
            else:
                doc["engines"][name] = {
                    "n_points": agg.n_points,
                    "total_ns": agg.total_ns,
                    "phases": {
                        p: st.to_json() for p, st in agg.phases.items()
                    },
                    "counts": dict(sorted(agg.counts.items())),
                }
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> SweepProfile:
        """Rebuild from (non-deterministic) :meth:`to_json` output.

        The CLI uses this to render a profile document fetched over
        HTTP. Deterministic documents drop every timing field, so they
        cannot be rebuilt — that shape is for byte-equality checks only.
        """
        if doc.get("deterministic"):
            raise ValueError(
                "deterministic profile documents drop timing fields "
                "and cannot be rebuilt into a SweepProfile"
            )
        engines: dict[str, EngineAggregate] = {}
        for name, e in doc.get("engines", {}).items():
            phases = {
                p: PhaseStats(
                    total_ns=st["total_ns"],
                    n=st["n"],
                    p50_ns=st["p50_ns"],
                    p99_ns=st["p99_ns"],
                    min_ns=st["min_ns"],
                    max_ns=st["max_ns"],
                )
                for p, st in e["phases"].items()
            }
            engines[name] = EngineAggregate(
                engine=name,
                n_points=e["n_points"],
                total_ns=e["total_ns"],
                phases=phases,
                counts=dict(e["counts"]),
            )
        return cls(n_profiles=doc.get("n_profiles", 0), engines=engines)


def merge_profiles(profiles: Any) -> SweepProfile:
    """Merge per-point profiles into one :class:`SweepProfile`.

    ``None`` entries (points that ran without capture, e.g. cache hits)
    are skipped. Order-independent: shuffling the input yields an
    identical aggregate.
    """
    by_engine: dict[str, list[PhaseProfile]] = {}
    n_profiles = 0
    for prof in profiles:
        if prof is None:
            continue
        n_profiles += 1
        by_engine.setdefault(prof.engine, []).append(prof)
    engines: dict[str, EngineAggregate] = {}
    for engine, profs in by_engine.items():
        values: dict[str, list[int]] = {}
        counts: dict[str, int] = {}
        total_ns = 0
        for prof in profs:
            total_ns += prof.total_ns
            for phase, ns in prof.phases.items():
                values.setdefault(phase, []).append(ns)
            for key, n in prof.counts.items():
                counts[key] = counts.get(key, 0) + n
        order = _PHASE_ORDER.get(engine, ())
        ordered = [p for p in order if p in values]
        ordered += sorted(p for p in values if p not in order)
        phases: dict[str, PhaseStats] = {}
        for phase in ordered:
            vals = sorted(values[phase])
            phases[phase] = PhaseStats(
                total_ns=sum(vals),
                n=len(vals),
                p50_ns=_percentile(vals, 0.50),
                p99_ns=_percentile(vals, 0.99),
                min_ns=vals[0],
                max_ns=vals[-1],
            )
        engines[engine] = EngineAggregate(
            engine=engine,
            n_points=len(profs),
            total_ns=total_ns,
            phases=phases,
            counts=counts,
        )
    return SweepProfile(n_profiles=n_profiles, engines=engines)


def render_sweep_profile(sweep: SweepProfile, *, width: int = 28) -> str:
    """Text flame-style breakdown: one proportional bar per phase."""
    if not sweep.n_profiles:
        return "no profiles captured (submit with profiling enabled)"
    lines: list[str] = []
    for name in sorted(sweep.engines):
        agg = sweep.engines[name]
        phase_total = sum(st.total_ns for st in agg.phases.values()) or 1
        lines.append(
            f"engine {name} — {agg.n_points} point(s), "
            f"{agg.total_ns / 1e6:.3f} ms total"
        )
        pad = max((len(p) for p in agg.phases), default=0)
        for phase, st in agg.phases.items():
            share = st.total_ns / phase_total
            bar = "█" * max(1, int(round(share * width)))
            lines.append(
                f"  {phase:<{pad}} {bar:<{width}} {100 * share:5.1f}%  "
                f"total {st.total_ns / 1e6:9.3f}ms  "
                f"p50 {st.p50_ns / 1e6:8.3f}ms  "
                f"p99 {st.p99_ns / 1e6:8.3f}ms"
            )
        if agg.counts:
            rendered = " ".join(
                f"{k}={v}" for k, v in sorted(agg.counts.items())
            )
            lines.append(f"  counts: {rendered}")
    return "\n".join(lines)
