"""Stack observability: tracing, metrics, logging, and engine profiling.

Where :mod:`repro.telemetry` observes the *simulated network* (per-window
latency, occupancy, power inside a run), :mod:`repro.obs` observes the
*stack that runs the simulations*: spans around runner points and service
jobs (:mod:`~repro.obs.trace`), process-wide operational counters behind
``/api/v1/metrics`` (:mod:`~repro.obs.metrics`), structured logging for
the service (:mod:`~repro.obs.logs`), and opt-in per-phase cycle-loop
profiling of both engines (:mod:`~repro.obs.profile`).

On top of the point-in-time instruments sits the telemetry *pipeline*
(:mod:`~repro.obs.pipeline`): a background sampler snapshots the
registry into a bounded time-series ring with windowed rate/percentile
derivation and byte-deterministic npz persistence, rendered for
standard scrapers in Prometheus text format (:mod:`~repro.obs.promexp`)
and judged by declarative SLO rules with firing/resolved alert
transitions (:mod:`~repro.obs.slo`).

Sweep introspection adds three sub-layers on the same foundations: a
durable append-only NDJSON run ledger of per-point lifecycle
transitions (:mod:`~repro.obs.ledger`) that replays back into job
state and exports deterministically; live progress/ETA tracking with
terminal rendering helpers (:mod:`~repro.obs.progress`); and
sweep-level aggregation of per-point :class:`PhaseProfile` captures
into per-phase p50/p99 breakdowns (:mod:`~repro.obs.aggregate`).

Everything is off by default and designed so the disabled path costs a
single sentinel check — golden SimStats remain bit-identical and the
engines stay inside the CI overhead gate with observability compiled in
but switched off.
"""

from repro.obs.aggregate import (
    EngineAggregate,
    PhaseStats,
    SweepProfile,
    merge_profiles,
    render_sweep_profile,
)
from repro.obs.ledger import (
    LEDGER_FORMAT,
    LedgerReplay,
    RunLedger,
    export_ledger,
    load_ledger,
    replay_ledger,
)
from repro.obs.logs import fields, get_logger, setup_logging
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    percentile_from_snapshot,
)
from repro.obs.metrics import (
    reset as reset_metrics,
)
from repro.obs.metrics import (
    snapshot as metrics_snapshot,
)
from repro.obs.pipeline import (
    MetricsFrame,
    MetricsSampler,
    SeriesStore,
    load_history_npz,
    save_history_npz,
)
from repro.obs.profile import PhaseProfile, profile_simulation, render_profiles
from repro.obs.progress import (
    ProgressTracker,
    format_eta,
    render_bar,
    render_progress_line,
    render_sparkline,
    render_top,
)
from repro.obs.promexp import render_prometheus, sanitize_metric_name
from repro.obs.slo import AlertEvent, SloEngine, SloRule, load_slo_rules
from repro.obs.trace import (
    SpanRecord,
    adopt_parent,
    clear_spans,
    current_span_id,
    enable_tracing,
    export_trace,
    format_traceparent,
    get_spans,
    merge_exported,
    parse_traceparent,
    record_spans,
    span,
    take_spans,
    tracing_enabled,
)

__all__ = [
    # trace
    "span",
    "SpanRecord",
    "enable_tracing",
    "tracing_enabled",
    "current_span_id",
    "adopt_parent",
    "get_spans",
    "take_spans",
    "clear_spans",
    "record_spans",
    "merge_exported",
    "export_trace",
    "format_traceparent",
    "parse_traceparent",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "reset_metrics",
    "percentile_from_snapshot",
    # pipeline
    "MetricsFrame",
    "MetricsSampler",
    "SeriesStore",
    "save_history_npz",
    "load_history_npz",
    # promexp
    "render_prometheus",
    "sanitize_metric_name",
    # slo
    "AlertEvent",
    "SloEngine",
    "SloRule",
    "load_slo_rules",
    # logs
    "setup_logging",
    "get_logger",
    "fields",
    # profile
    "PhaseProfile",
    "profile_simulation",
    "render_profiles",
    # ledger
    "LEDGER_FORMAT",
    "LedgerReplay",
    "RunLedger",
    "export_ledger",
    "load_ledger",
    "replay_ledger",
    # progress
    "ProgressTracker",
    "format_eta",
    "render_bar",
    "render_progress_line",
    "render_sparkline",
    "render_top",
    # aggregate
    "EngineAggregate",
    "PhaseStats",
    "SweepProfile",
    "merge_profiles",
    "render_sweep_profile",
]
