"""Structured logging setup for the repro stack.

One configuration point (:func:`setup_logging`) owns the ``"repro"``
logger subtree; every module logs through ``logging.getLogger("repro.
<layer>")`` and attaches machine-readable fields via the ``extra``
convention::

    log.info("job state change", extra=fields(job="job-000001", state="done"))

Two render modes, selected by ``repro serve --log-json``:

* **key=value** (default) — ``2026-08-08T12:00:00.123Z INFO
  repro.service.scheduler job state change job=job-000001 state=done``,
  grep-friendly for humans;
* **JSON lines** — one object per line (``ts``, ``level``, ``logger``,
  ``msg`` plus the fields), for log shippers.

Nothing configures logging at import time: a library must stay silent
until an application (``repro serve``, a test) opts in. Unconfigured,
records propagate to the root logger and vanish under the stdlib's
default ``WARNING`` threshold, so instrumented hot paths cost one
disabled-logger check.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

__all__ = ["setup_logging", "get_logger", "fields", "LOG_LEVELS"]

LOG_LEVELS = ("debug", "info", "warning", "error")

_FIELDS_ATTR = "repro_fields"


def fields(**kv: Any) -> dict[str, dict[str, Any]]:
    """Build the ``extra`` mapping carrying structured fields."""
    return {_FIELDS_ATTR: kv}


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` subtree (``get_logger("service.http")``)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def _record_fields(record: logging.LogRecord) -> dict[str, Any]:
    return getattr(record, _FIELDS_ATTR, None) or {}


def _iso_utc(created: float) -> str:
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(created))
    return f"{base}.{int(created * 1000) % 1000:03d}Z"


class KeyValueFormatter(logging.Formatter):
    """``<ts> <LEVEL> <logger> <message> k=v ...`` single-line records."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            _iso_utc(record.created),
            record.levelname,
            record.name,
            record.getMessage(),
        ]
        for key, value in _record_fields(record).items():
            parts.append(f"{key}={value}")
        line = " ".join(str(p) for p in parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class JsonFormatter(logging.Formatter):
    """One JSON object per line; structured fields merge into the object."""

    def format(self, record: logging.LogRecord) -> str:
        doc: dict[str, Any] = {
            "ts": _iso_utc(record.created),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        doc.update(_record_fields(record))
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=str)


def setup_logging(
    level: str = "info",
    *,
    json_mode: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger subtree (idempotent).

    Replaces any handler a previous call installed, so tests and
    re-invocations reconfigure instead of stacking duplicate handlers.
    Returns the subtree root logger.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"log level must be one of {LOG_LEVELS}, got {level!r}")
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else KeyValueFormatter())
    root.addHandler(handler)
    return root
