"""Live sweep progress: counters, sliding-window throughput, ETA.

A :class:`ProgressTracker` consumes the same runner lifecycle events the
run ledger records (see :mod:`repro.obs.ledger`) and keeps, per job,
the completed/cached/failed/in-flight counts, a sliding window of
completion timestamps for point throughput, and worker-utilization
gauges — everything ``GET /api/v1/jobs/<id>/progress``, ``repro status
--watch`` and ``repro obs top`` render. The ETA is rate-based:
``remaining / throughput`` over the window, ``None`` until at least one
point has landed.

The rendering helpers are plain string formatters (no terminal state):
:func:`render_bar` for progress bars, :func:`render_sparkline` for
block-character series, :func:`render_top` for the full ``repro obs
top`` screen and :func:`render_progress_line` for the one-line
``status --watch`` ticker.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import gauge

__all__ = [
    "ProgressTracker",
    "render_bar",
    "render_sparkline",
    "render_progress_line",
    "render_top",
    "format_eta",
]

_IN_FLIGHT = gauge("progress.points_in_flight")
_ACTIVE_JOBS = gauge("progress.active_jobs")
_UTILIZATION = gauge("progress.worker_utilization")


@dataclass
class _JobProgress:
    n_points: int
    workers: int
    started_at: float
    completed: int = 0
    cached: int = 0
    failed: int = 0
    in_flight: set[int] = field(default_factory=set)
    #: Completion timestamps inside the sliding throughput window.
    stamps: deque[float] = field(default_factory=lambda: deque(maxlen=4096))


class ProgressTracker:
    """Per-job progress state fed by runner lifecycle events.

    ``clock`` is injectable for deterministic tests; the default is
    :func:`time.monotonic`. All methods are thread-safe — events arrive
    from the sweep drive thread while HTTP threads snapshot.
    """

    def __init__(
        self,
        *,
        window_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.window_s = window_s
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, _JobProgress] = {}

    # -- event intake --------------------------------------------------------

    def job_started(self, job_id: str, *, n_points: int, workers: int = 1) -> None:
        with self._lock:
            self._jobs[job_id] = _JobProgress(
                n_points=n_points,
                workers=max(1, workers),
                started_at=self._clock(),
            )
            self._set_gauges()

    def observe(self, job_id: str, event: str, fields: dict[str, Any]) -> None:
        """Fold one runner lifecycle event (``point.*``) into the state."""
        point = int(fields.get("point", -1))
        if event == "point.dispatched":
            self.note_dispatched(job_id, point)
        elif event == "point.completed":
            self.note_done(job_id, point, cached=False)
        elif event == "point.cached":
            self.note_done(job_id, point, cached=True)
        elif event == "point.failed":
            self.note_failed(job_id, point)

    def note_dispatched(self, job_id: str, point: int) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.in_flight.add(point)
                self._set_gauges()

    def note_done(self, job_id: str, point: int, *, cached: bool) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            job.in_flight.discard(point)
            if cached:
                job.cached += 1
            else:
                job.completed += 1
            job.stamps.append(self._clock())
            self._set_gauges()

    def note_failed(self, job_id: str, point: int) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.in_flight.discard(point)
                job.failed += 1
                self._set_gauges()

    def job_finished(self, job_id: str) -> None:
        with self._lock:
            self._jobs.pop(job_id, None)
            self._set_gauges()

    def _set_gauges(self) -> None:
        # Caller holds the lock.
        _ACTIVE_JOBS.set(len(self._jobs))
        _IN_FLIGHT.set(sum(len(j.in_flight) for j in self._jobs.values()))
        workers = sum(j.workers for j in self._jobs.values())
        busy = sum(
            min(len(j.in_flight), j.workers) for j in self._jobs.values()
        )
        _UTILIZATION.set(busy / workers if workers else 0.0)

    # -- queries -------------------------------------------------------------

    def active_jobs(self) -> list[str]:
        with self._lock:
            return sorted(self._jobs)

    def snapshot(self, job_id: str) -> dict[str, Any] | None:
        """Live progress document for one active job (None if inactive)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            now = self._clock()
            cutoff = now - self.window_s
            recent = sum(1 for t in job.stamps if t >= cutoff)
            elapsed = max(now - job.started_at, 1e-9)
            span = min(self.window_s, elapsed)
            throughput = recent / span if recent else 0.0
            done = job.completed + job.cached
            remaining = max(job.n_points - done - job.failed, 0)
            eta = remaining / throughput if throughput > 0 else None
            return {
                "completed": job.completed,
                "cached": job.cached,
                "failed": job.failed,
                "in_flight": len(job.in_flight),
                "throughput_pps": round(throughput, 6),
                "eta_s": None if eta is None else round(eta, 3),
                "elapsed_s": round(elapsed, 3),
                "workers": job.workers,
                "utilization": round(
                    min(len(job.in_flight), job.workers) / job.workers, 6
                ),
            }


# -- rendering ---------------------------------------------------------------

_SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def render_bar(done: int, total: int, *, width: int = 24) -> str:
    """A ``[#####.....]`` progress bar; full width when ``total`` is 0."""
    if total <= 0:
        return "[" + "#" * width + "]"
    filled = min(width, int(width * done / total))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def format_eta(seconds: float | None) -> str:
    """Compact human ETA: ``-`` (unknown), ``42s``, ``3m05s``, ``1h12m``."""
    if seconds is None:
        return "-"
    s = max(0, int(round(seconds)))
    if s < 60:
        return f"{s}s"
    if s < 3600:
        return f"{s // 60}m{s % 60:02d}s"
    return f"{s // 3600}h{(s % 3600) // 60:02d}m"


def render_sparkline(values: Sequence[float], *, width: int = 32) -> str:
    """Block-character sparkline of the last ``width`` values."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK_BLOCKS[1] * len(vals)
    scale = (len(_SPARK_BLOCKS) - 2) / (hi - lo)
    return "".join(
        _SPARK_BLOCKS[1 + int((v - lo) * scale)] for v in vals
    )


def render_progress_line(doc: dict[str, Any], *, width: int = 24) -> str:
    """One-line ticker for ``repro status --watch``."""
    n = doc.get("n_points", 0)
    done = doc.get("points_done", 0)
    pct = 100.0 * done / n if n else 0.0
    thr = doc.get("throughput_pps")
    thr_txt = f" {thr:.2f} pt/s" if thr else ""
    eta = format_eta(doc.get("eta_s"))
    return (
        f"{doc.get('job_id', '?')} {doc.get('state', '?'):<8} "
        f"{render_bar(done, n, width=width)} {done}/{n} {pct:5.1f}%"
        f"{thr_txt}  eta {eta}"
    )


def render_top(
    jobs: Sequence[dict[str, Any]],
    *,
    sparkline: Sequence[float] = (),
    width: int = 20,
) -> str:
    """The ``repro obs top`` screen: one row per job, active first.

    ``jobs`` is a sequence of progress documents (the shape
    ``/api/v1/jobs/<id>/progress`` serves). ``sparkline`` is an optional
    recent series (e.g. ``scheduler.points_completed`` deltas) rendered
    in the footer.
    """
    from repro.util import format_table

    order = {"running": 0, "queued": 1, "done": 2, "failed": 3}
    ranked = sorted(
        jobs,
        key=lambda d: (
            order.get(d.get("state", ""), 9),
            d.get("job_id", ""),
        ),
    )
    rows = []
    for doc in ranked:
        n = doc.get("n_points", 0)
        done = doc.get("points_done", 0)
        pct = 100.0 * done / n if n else 0.0
        thr = doc.get("throughput_pps")
        rows.append(
            [
                doc.get("job_id", "?"),
                doc.get("state", "?"),
                render_bar(done, n, width=width),
                f"{done}/{n}",
                f"{pct:5.1f}%",
                doc.get("in_flight", 0) or "-",
                "-" if not thr else f"{thr:.2f}",
                format_eta(doc.get("eta_s")),
            ]
        )
    out = format_table(
        ["job", "state", "progress", "points", "%", "in-flight", "pt/s", "eta"],
        rows,
        title="active jobs" if rows else "no jobs",
    )
    if len(sparkline) >= 2:
        out += f"\npoints/s {render_sparkline(sparkline)}"
    return out
