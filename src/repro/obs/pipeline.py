"""Metrics time-series pipeline: sampled frames, windowed derivation, npz.

:mod:`repro.obs.metrics` answers "what are the counters *now*"; this
module gives those readings a time axis. A :class:`MetricsSampler`
(a background thread, or explicit :meth:`~MetricsSampler.tick` calls in
tests) snapshots the registry every N seconds into a bounded ring of
timestamped :class:`MetricsFrame` objects held by a :class:`SeriesStore`,
which is then queryable as per-metric series:

* :meth:`SeriesStore.series` — ``(t, value)`` pairs for a counter/gauge;
* :meth:`SeriesStore.delta` / :meth:`SeriesStore.rate` — windowed
  increase and per-second rate for counters, summing *positive*
  increments so a registry reset mid-window reads as a restart rather
  than a negative rate (the Prometheus ``increase()`` convention);
* :meth:`SeriesStore.percentile` — a histogram quantile at the latest
  frame, via the shared bucket-interpolation core.

The store round-trips through the byte-deterministic npz archive
primitives shared with the trace/telemetry/result stores
(:func:`save_history_npz` / :func:`load_history_npz`), which is how a
restarted service keeps its ``/api/v1/metrics/history`` continuous, and
it feeds the SLO engine (:mod:`repro.obs.slo`) one evaluation per
sampling tick.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.obs.logs import fields, get_logger
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    percentile_from_snapshot,
)

__all__ = [
    "HISTORY_FORMAT",
    "HISTORY_VERSION",
    "MetricsFrame",
    "MetricsSampler",
    "SeriesStore",
    "load_history_npz",
    "save_history_npz",
]

HISTORY_FORMAT = "repro-metrics-history"
HISTORY_VERSION = 1

#: Default ring capacity: at the service's 1 s tick this is ~17 minutes
#: of history, bounded regardless of process lifetime.
DEFAULT_CAPACITY = 1024

_log = get_logger("obs.pipeline")
_TICKS = counter("obs.sampler.ticks")


@dataclass(frozen=True)
class MetricsFrame:
    """One timestamped registry snapshot (JSON-safe, immutable)."""

    t: float
    """Wall-clock epoch seconds at sampling time (wall, not monotonic,
    so frames loaded from a previous process still order correctly)."""
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "t": self.t,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


class SeriesStore:
    """Bounded ring of :class:`MetricsFrame` with per-metric queries.

    Thread-safe: the sampler thread appends while HTTP handler threads
    read. Eviction is silent — the ring keeps the most recent
    ``capacity`` frames and windowed queries only ever look backwards
    from the latest frame.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._frames: deque[MetricsFrame] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    def append(self, frame: MetricsFrame) -> None:
        with self._lock:
            if self._frames and frame.t < self._frames[-1].t:
                raise ValueError(
                    f"frame timestamps must be non-decreasing: "
                    f"{frame.t} < {self._frames[-1].t}"
                )
            self._frames.append(frame)

    def frames(self) -> list[MetricsFrame]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._frames)

    def latest(self) -> MetricsFrame | None:
        with self._lock:
            return self._frames[-1] if self._frames else None

    def metric_names(self) -> dict[str, list[str]]:
        """Union of metric names seen across the ring (sorted)."""
        counters: set[str] = set()
        gauges: set[str] = set()
        histograms: set[str] = set()
        for f in self.frames():
            counters.update(f.counters)
            gauges.update(f.gauges)
            histograms.update(f.histograms)
        return {
            "counters": sorted(counters),
            "gauges": sorted(gauges),
            "histograms": sorted(histograms),
        }

    def kind(self, metric: str) -> str | None:
        """``"counter"`` / ``"gauge"`` / ``"histogram"`` or None."""
        for f in reversed(self.frames()):
            if metric in f.counters:
                return "counter"
            if metric in f.gauges:
                return "gauge"
            if metric in f.histograms:
                return "histogram"
        return None

    # -- scalar series -------------------------------------------------------

    def series(self, metric: str) -> list[tuple[float, float]]:
        """``(t, value)`` pairs for a counter or gauge, oldest first.

        Frames recorded before the metric existed are skipped (the
        registry creates metrics lazily), so the series starts at the
        metric's first appearance.
        """
        out: list[tuple[float, float]] = []
        for f in self.frames():
            if metric in f.counters:
                out.append((f.t, float(f.counters[metric])))
            elif metric in f.gauges:
                out.append((f.t, float(f.gauges[metric])))
        return out

    def _window(
        self, metric: str, window_s: float | None
    ) -> list[tuple[float, float]]:
        pts = self.series(metric)
        if not pts or window_s is None:
            return pts
        cutoff = pts[-1][0] - window_s
        return [p for p in pts if p[0] >= cutoff]

    def delta(self, metric: str, window_s: float | None = None) -> float:
        """Increase of a counter over the trailing window.

        Sums positive increments only, so a counter reset inside the
        window contributes the post-reset growth instead of a negative
        jump. NaN with fewer than two in-window samples.
        """
        pts = self._window(metric, window_s)
        if len(pts) < 2:
            return math.nan
        return float(
            sum(
                max(0.0, b - a)
                for (_, a), (_, b) in zip(pts, pts[1:])
            )
        )

    def rate(self, metric: str, window_s: float | None = None) -> float:
        """Per-second rate of increase over the trailing window (NaN if
        under-sampled or the window spans zero time)."""
        pts = self._window(metric, window_s)
        if len(pts) < 2:
            return math.nan
        span = pts[-1][0] - pts[0][0]
        if span <= 0:
            return math.nan
        return self.delta(metric, window_s) / span

    # -- histogram series ----------------------------------------------------

    def hist_series(self, metric: str) -> list[tuple[float, dict[str, Any]]]:
        """``(t, histogram-json)`` pairs, oldest first."""
        return [
            (f.t, f.histograms[metric])
            for f in self.frames()
            if metric in f.histograms
        ]

    def percentile(self, metric: str, q: float) -> float:
        """Histogram quantile at the latest frame (NaN if absent/empty)."""
        series = self.hist_series(metric)
        if not series:
            return math.nan
        return percentile_from_snapshot(series[-1][1], q)


class MetricsSampler:
    """Background sampler feeding a :class:`SeriesStore` (plus SLO rules).

    One :meth:`tick` snapshots the registry into a frame, appends it to
    the store and — when an SLO engine is attached — evaluates every
    rule against the updated series. :meth:`start` runs ticks on a
    daemon thread every ``interval_s``; tests call :meth:`tick` directly
    for deterministic staging.
    """

    def __init__(
        self,
        store: SeriesStore,
        *,
        registry: MetricsRegistry = REGISTRY,
        interval_s: float = 1.0,
        slo: Any | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.store = store
        self.registry = registry
        self.interval_s = interval_s
        self.slo = slo
        self.clock = clock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def tick(self, now: float | None = None) -> MetricsFrame:
        """Sample one frame (and evaluate SLO rules) at ``now``."""
        t = self.clock() if now is None else now
        snap = self.registry.snapshot()
        frame = MetricsFrame(
            t=t,
            counters=snap["counters"],
            gauges=snap["gauges"],
            histograms=snap["histograms"],
        )
        self.store.append(frame)
        _TICKS.inc()
        if self.slo is not None:
            self.slo.evaluate(self.store, now=t)
        return frame

    def start(self) -> None:
        """Start the sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # sampling must never kill the service
                _log.exception("metrics sampling tick failed")


# -- persistence ---------------------------------------------------------------


def _hist_bounds(doc: dict[str, Any]) -> list[float]:
    return sorted(float(k) for k in doc["buckets"] if k != "+inf")


def save_history_npz(store: SeriesStore, path: Any) -> None:
    """Write the store's frames as a byte-deterministic npz archive.

    Shares :func:`repro.workloads.store.write_npz_archive`, so identical
    store contents always produce identical bytes. Per-metric columns
    span every frame; frames recorded before a metric existed hold its
    natural zero (counters/histograms) or NaN (gauges) — exactly how the
    registry itself would have read at that time.
    """
    from repro.workloads.store import write_npz_archive

    frames = store.frames()
    names = store.metric_names()
    hist_bounds: dict[str, list[float]] = {}
    for name in names["histograms"]:
        for _, doc in ((f.t, f.histograms[name]) for f in frames if name in f.histograms):
            bounds = _hist_bounds(doc)
            if name in hist_bounds and hist_bounds[name] != bounds:
                raise ValueError(
                    f"histogram {name!r} changed bucket bounds mid-history"
                )
            hist_bounds[name] = bounds
    header = {
        "format": HISTORY_FORMAT,
        "version": HISTORY_VERSION,
        "n_frames": len(frames),
        "capacity": store.capacity,
        "counters": names["counters"],
        "gauges": names["gauges"],
        "histograms": {k: {"bounds": v} for k, v in hist_bounds.items()},
    }
    arrays: list[tuple[str, np.ndarray]] = [
        ("time.npy", np.array([f.t for f in frames], dtype=np.float64))
    ]
    for name in names["counters"]:
        arrays.append(
            (
                f"counter/{name}.npy",
                np.array(
                    [f.counters.get(name, 0) for f in frames], dtype=np.int64
                ),
            )
        )
    for name in names["gauges"]:
        arrays.append(
            (
                f"gauge/{name}.npy",
                np.array(
                    [f.gauges.get(name, math.nan) for f in frames],
                    dtype=np.float64,
                ),
            )
        )
    empty = {"count": 0, "sum": 0.0, "min": None, "max": None}
    for name in names["histograms"]:
        docs = [f.histograms.get(name, empty) for f in frames]
        n_bins = len(hist_bounds[name]) + 1
        buckets = np.zeros((len(frames), n_bins), dtype=np.int64)
        for i, doc in enumerate(docs):
            if doc.get("buckets"):
                ordered = [
                    doc["buckets"][f"{b:g}"] for b in hist_bounds[name]
                ] + [doc["buckets"].get("+inf", 0)]
                buckets[i] = ordered
        arrays.append((f"hist/{name}/buckets.npy", buckets))
        arrays.append(
            (
                f"hist/{name}/count.npy",
                np.array([d["count"] for d in docs], dtype=np.int64),
            )
        )
        arrays.append(
            (
                f"hist/{name}/sum.npy",
                np.array([d["sum"] for d in docs], dtype=np.float64),
            )
        )
        arrays.append(
            (
                f"hist/{name}/min.npy",
                np.array(
                    [math.nan if d["min"] is None else d["min"] for d in docs],
                    dtype=np.float64,
                ),
            )
        )
        arrays.append(
            (
                f"hist/{name}/max.npy",
                np.array(
                    [math.nan if d["max"] is None else d["max"] for d in docs],
                    dtype=np.float64,
                ),
            )
        )
    write_npz_archive(path, header, arrays)


def load_history_npz(path: Any, *, capacity: int | None = None) -> SeriesStore:
    """Load a history archive back into a :class:`SeriesStore`.

    ``capacity`` defaults to the archive's recorded capacity (never
    smaller than the frame count, so nothing loaded is evicted on the
    way in). Unknown formats and newer versions fail loudly via the
    shared archive validator.
    """
    from repro.workloads.store import open_npz_archive

    zf, header = open_npz_archive(
        path,
        expected_format=HISTORY_FORMAT,
        max_version=HISTORY_VERSION,
        required_entries=("time.npy",),
        kind="metrics-history",
    )
    with zf:
        def col(entry: str) -> np.ndarray:
            import io

            return np.load(io.BytesIO(zf.read(entry)))

        times = col("time.npy")
        n = len(times)
        counters = {
            name: col(f"counter/{name}.npy") for name in header["counters"]
        }
        gauges = {name: col(f"gauge/{name}.npy") for name in header["gauges"]}
        hists = {}
        for name, meta in header["histograms"].items():
            hists[name] = {
                "bounds": [float(b) for b in meta["bounds"]],
                "buckets": col(f"hist/{name}/buckets.npy"),
                "count": col(f"hist/{name}/count.npy"),
                "sum": col(f"hist/{name}/sum.npy"),
                "min": col(f"hist/{name}/min.npy"),
                "max": col(f"hist/{name}/max.npy"),
            }
        cap = capacity
        if cap is None:
            cap = max(int(header.get("capacity", DEFAULT_CAPACITY)), n, 1)
        store = SeriesStore(capacity=cap)
        for i in range(n):
            frame_hists: dict[str, dict[str, Any]] = {}
            for name, h in hists.items():
                count = int(h["count"][i])
                bounds = h["bounds"]
                buckets = {
                    f"{b:g}": int(h["buckets"][i][j])
                    for j, b in enumerate(bounds)
                }
                buckets["+inf"] = int(h["buckets"][i][len(bounds)])
                frame_hists[name] = {
                    "count": count,
                    "sum": float(h["sum"][i]),
                    "min": None if count == 0 else float(h["min"][i]),
                    "max": None if count == 0 else float(h["max"][i]),
                    "buckets": buckets,
                }
            store.append(
                MetricsFrame(
                    t=float(times[i]),
                    counters={
                        k: int(v[i]) for k, v in counters.items()
                    },
                    gauges={k: float(v[i]) for k, v in gauges.items()},
                    histograms=frame_hists,
                )
            )
        return store
