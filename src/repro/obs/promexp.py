"""Prometheus text exposition for the process metrics registry.

Renders a :func:`repro.obs.metrics.snapshot` document in the Prometheus
text format (version 0.0.4) so the service's ``/metrics`` endpoint is
scrapeable by standard tooling, and ``repro obs metrics --prom`` can
print the same families to stdout — one formatter, two consumers.

Mapping rules:

* **names sanitize** to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar — every
  other character becomes ``_`` and a leading digit gains a ``_``
  prefix. Raw names that collide after sanitization stay distinct via a
  ``raw="<original>"`` label instead of silently merging;
* **counters** gain the conventional ``_total`` suffix;
* **histograms** expand into cumulative ``_bucket{le="..."}`` lines
  (including the ``+Inf`` bucket) plus ``_sum`` and ``_count``, exactly
  the shape ``histogram_quantile()`` expects;
* **ordering is deterministic** — families sort by sanitized name
  (counters, then gauges, then histograms), so two renders of identical
  state are byte-identical.

The renderer works from the JSON snapshot form rather than live metric
objects, so it can run server-side (over ``metrics_snapshot()``) or
client-side (over a fetched ``/api/v1/metrics`` body) unchanged.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["CONTENT_TYPE", "render_prometheus", "sanitize_metric_name"]

#: The content type Prometheus scrapers negotiate for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_VALID_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, *, prefix: str = "repro") -> str:
    """Map a dotted registry name onto the Prometheus name grammar.

    ``scheduler.queue_depth`` becomes ``repro_scheduler_queue_depth``;
    characters outside ``[a-zA-Z0-9_:]`` collapse to ``_`` and a leading
    digit gains a ``_`` prefix so the result always matches
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
    """
    out = _INVALID_CHARS.sub("_", f"{prefix}_{name}" if prefix else name)
    if not out or not _VALID_NAME.match(out):
        out = f"_{out}"
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _families(
    raw: dict[str, Any], *, prefix: str, suffix: str = ""
) -> list[tuple[str, list[tuple[str, Any]]]]:
    """Group raw metric names by sanitized family name (sorted).

    Returns ``[(family, [(raw_name, value), ...]), ...]``; a family with
    more than one raw member renders each sample with a ``raw`` label.
    """
    grouped: dict[str, list[tuple[str, Any]]] = {}
    for name in sorted(raw):
        family = sanitize_metric_name(name) + suffix
        grouped.setdefault(family, []).append((name, raw[name]))
    return sorted(grouped.items())


def _sample(family: str, labels: str, value: str) -> str:
    return f"{family}{labels} {value}"


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    ``snapshot`` is the JSON document :func:`repro.obs.metrics.snapshot`
    produces (``{"counters": ..., "gauges": ..., "histograms": ...}``).
    Deterministic: identical snapshots render to identical bytes.
    """
    lines: list[str] = []

    for family, members in _families(snapshot.get("counters", {}), prefix="repro", suffix="_total"):
        lines.append(f"# TYPE {family} counter")
        for raw_name, value in members:
            labels = (
                "" if len(members) == 1 else f'{{raw="{_escape_label(raw_name)}"}}'
            )
            lines.append(_sample(family, labels, _format_value(value)))

    for family, members in _families(snapshot.get("gauges", {}), prefix="repro"):
        lines.append(f"# TYPE {family} gauge")
        for raw_name, value in members:
            labels = (
                "" if len(members) == 1 else f'{{raw="{_escape_label(raw_name)}"}}'
            )
            lines.append(_sample(family, labels, _format_value(value)))

    for family, members in _families(snapshot.get("histograms", {}), prefix="repro"):
        lines.append(f"# TYPE {family} histogram")
        for raw_name, doc in members:
            raw_label = (
                "" if len(members) == 1 else f',raw="{_escape_label(raw_name)}"'
            )
            buckets: dict[str, int] = doc["buckets"]
            finite = sorted(float(k) for k in buckets if k != "+inf")
            cum = 0
            for bound in finite:
                cum += buckets[f"{bound:g}"]
                le = _format_value(bound)
                lines.append(
                    _sample(
                        f"{family}_bucket",
                        f'{{le="{le}"{raw_label}}}',
                        str(cum),
                    )
                )
            cum += buckets.get("+inf", 0)
            lines.append(
                _sample(f"{family}_bucket", f'{{le="+Inf"{raw_label}}}', str(cum))
            )
            tail = f'{{raw="{_escape_label(raw_name)}"}}' if raw_label else ""
            lines.append(_sample(f"{family}_sum", tail, _format_value(doc["sum"])))
            lines.append(_sample(f"{family}_count", tail, str(doc["count"])))

    return "\n".join(lines) + "\n" if lines else ""
