"""Process-wide metrics registry: counters, gauges, histograms.

The *stack* observability counterpart to :mod:`repro.telemetry` (which
observes the simulated network): every layer of the serving stack — the
evaluation cache, the experiment runner, the service scheduler, the HTTP
front end — reports operational counts here, and one
:meth:`MetricsRegistry.snapshot` call renders them as a flat, JSON-safe
document (the body of the service's ``/api/v1/metrics`` endpoint and of
``repro obs metrics``).

Design constraints:

* **process-wide, import-order free** — instruments hold references to
  their metric objects; :func:`reset` zeroes values in place rather than
  dropping objects, so a held :class:`Counter` never detaches from the
  registry (tests reset freely without re-wiring instrumentation);
* **thread-safe** — increments take a per-metric lock (these sit on
  request/job paths, never inside the simulator's cycle loop);
* **deterministic snapshots** — keys sort, values are plain ints/floats,
  so two snapshots of identical state serialize to identical bytes.

Worker processes get their own registry (a fork inherits a copy); only
the owning process's counters appear in its snapshot, which is the
behaviour a per-process ``/metrics`` endpoint wants.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "percentile_from_snapshot",
    "snapshot",
    "reset",
]

#: Default histogram bucket upper bounds (milliseconds-flavoured, but the
#: histogram is unit-agnostic — callers pick what they observe).
DEFAULT_BUCKETS = (0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000)


class Counter:
    """Monotonic integer count (resets only via :func:`reset`)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Last-written float value (queue depths, sizes, temperatures)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


def _bucket_percentile(
    bounds: tuple[float, ...],
    counts: list[int],
    count: int,
    mn: float,
    mx: float,
    q: float,
) -> float:
    """Monotone linear interpolation over cumulative bucket counts.

    The shared core behind :meth:`Histogram.percentile` and
    :func:`percentile_from_snapshot`. ``q`` is a quantile in ``[0, 1]``;
    the estimate interpolates within the bucket the target rank lands in
    (the first bucket's lower edge is the observed minimum, which the
    histogram tracks exactly). The ``+inf`` tail bucket cannot be
    interpolated, so ranks landing there return the observed maximum.
    Results are clamped into ``[min, max]`` and are monotone in ``q``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count == 0:
        return math.nan
    target = q * count
    cum = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        prev = cum
        cum += c
        if cum >= target:
            if i == len(bounds):
                return mx  # +inf tail: max is the best upper estimate
            hi = bounds[i]
            lo = mn if i == 0 else bounds[i - 1]
            lo = min(lo, hi)
            frac = max(0.0, min(1.0, (target - prev) / c))
            return max(mn, min(mx, lo + (hi - lo) * frac))
    return mx


def percentile_from_snapshot(doc: dict[str, Any], q: float) -> float:
    """:meth:`Histogram.percentile` over a histogram's ``to_json`` form.

    Lets consumers of a metrics snapshot (the CLI rendering a service's
    ``/api/v1/metrics`` document, the SLO engine reading a sampled
    frame) derive percentiles without holding the live object. NaN for
    empty histograms, exactly like the live method.
    """
    buckets: dict[str, int] = doc["buckets"]
    finite = sorted(
        (float(k) for k in buckets if k != "+inf"),
    )
    counts = [buckets[f"{b:g}"] for b in finite] + [buckets.get("+inf", 0)]
    count = doc["count"]
    mn = doc["min"] if doc["min"] is not None else math.inf
    mx = doc["max"] if doc["max"] is not None else -math.inf
    return _bucket_percentile(tuple(finite), counts, count, mn, mx, q)


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max.

    Buckets are cumulative-style upper bounds (``value <= bound``); one
    implicit ``+inf`` bucket catches the tail, so ``sum(buckets)`` always
    equals ``count``.
    """

    __slots__ = ("bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted and non-empty: {bounds}")
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in ``[0, 1]``) of observations.

        Monotone linear interpolation over the cumulative bucket counts;
        ranks landing in the implicit ``+inf`` tail return the observed
        maximum (the only honest answer an unbounded bucket has). NaN
        when nothing has been observed.
        """
        with self._lock:
            counts = list(self._counts)
            count = self._count
            mn, mx = self._min, self._max
        return _bucket_percentile(self.bounds, counts, count, mn, mx, q)

    def to_json(self) -> dict[str, Any]:
        with self._lock:
            buckets = {
                ("+inf" if i == len(self.bounds) else f"{self.bounds[i]:g}"): n
                for i, n in enumerate(self._counts)
            }
            return {
                "count": self._count,
                "sum": round(self._sum, 6),
                "min": None if self._count == 0 else round(self._min, 6),
                "max": None if self._count == 0 else round(self._max, 6),
                "buckets": buckets,
            }

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


class MetricsRegistry:
    """Named get-or-create store for the three metric kinds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, store: dict, name: str, factory) -> Any:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            metric = store.get(name)
            if metric is None:
                metric = store[name] = factory()
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(self._histograms, name, lambda: Histogram(bounds))

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view of every registered metric (keys sorted).

        Deterministic for identical state: two snapshots of the same
        values serialize to identical bytes under ``sort_keys=True``.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: counters[k].value for k in sorted(counters)},
            "gauges": {k: round(gauges[k].value, 6) for k in sorted(gauges)},
            "histograms": {k: histograms[k].to_json() for k in sorted(histograms)},
        }

    def reset(self) -> None:
        """Zero every metric *in place* (held references stay live)."""
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for metric in metrics:
            metric._reset()


#: The process-wide registry every instrument in the stack reports to.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Process-wide counter ``name`` (get-or-create)."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Process-wide gauge ``name`` (get-or-create)."""
    return REGISTRY.gauge(name)


def histogram(name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    """Process-wide histogram ``name`` (get-or-create)."""
    return REGISTRY.histogram(name, bounds)


def snapshot() -> dict[str, Any]:
    """Snapshot of the process-wide registry."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Zero the process-wide registry (instrument references stay valid)."""
    REGISTRY.reset()
