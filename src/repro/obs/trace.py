"""Lightweight span tracing for the serving stack.

A *span* is one named, timed region of stack execution — ``evaluating a
design point``, ``flushing the cache checkpoint``, ``executing a service
job`` — with nesting tracked through :mod:`contextvars` so spans opened
inside a span become its children, including across ``async``-shaped
seams on the same thread. Timing uses ``perf_counter_ns`` (monotonic);
wall-clock is recorded separately and only for display, so exports can
strip it for byte-determinism.

Identity is **process- and thread-safe by construction**: a span id is
``"<pid:x>-<seq:x>"`` with ``seq`` from a per-process atomic counter, so
spans recorded in :class:`~concurrent.futures.ProcessPoolExecutor`
workers can be shipped back (as :meth:`SpanRecord.to_json` payloads) and
merged into the parent's trace with :func:`merge_exported` — ids never
collide and parent links survive verbatim. That is how ``Runner(jobs=N)``
worker spans end up under the one ``runner.sweep`` span.

Cost model mirrors the telemetry sampler's: **disabled** (the default),
:func:`span` checks one module-level boolean and yields — no allocation,
no clock read, no record; the golden-SimStats tests stay bit-identical.
**Enabled**, each span costs two clock reads and one appended record;
tracing sits on job/point granularity, never inside the simulator's
cycle loop (that is :mod:`repro.obs.profile`'s job).

Exports (:func:`export_trace`) renumber span ids to dense ordinals in
``(pid, seq)`` order. With ``deterministic=True`` every wall-clock,
duration, pid and thread field is stripped, leaving only names, nesting
and attributes — two runs of the same code path export byte-identical
JSON (pinned by test).
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "TRACE_FORMAT",
    "TRACEPARENT_HEADER",
    "SpanRecord",
    "span",
    "enable_tracing",
    "tracing_enabled",
    "current_span_id",
    "adopt_parent",
    "format_traceparent",
    "parse_traceparent",
    "get_spans",
    "take_spans",
    "clear_spans",
    "record_spans",
    "merge_exported",
    "export_trace",
]

TRACE_FORMAT = "repro.obs.trace/1"

#: HTTP header carrying the caller's span id across process boundaries
#: (W3C ``traceparent``-style: ``00-<span id>-01``).
TRACEPARENT_HEADER = "traceparent"

#: Innermost open span id in the current context (None at top level).
_current: ContextVar[str | None] = ContextVar("repro_obs_current_span", default=None)


@dataclass
class SpanRecord:
    """One completed span (full-fidelity; see :func:`export_trace`)."""

    name: str
    span_id: str
    parent_id: str | None
    seq: int
    """Start order within the recording process (sort key for exports)."""
    start_ns: int
    """``perf_counter_ns`` at entry — monotonic, process-local."""
    duration_ns: int
    wall_ns: int
    """Wall-clock epoch ns at entry (display only; stripped when
    exporting deterministically)."""
    pid: int
    thread_id: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "seq": self.seq,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "wall_ns": self.wall_ns,
            "pid": self.pid,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SpanRecord":
        return cls(**data)


class _Tracer:
    """Process-global span buffer + enable flag."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._seq = itertools.count()

    def next_id(self) -> tuple[int, str]:
        seq = next(self._seq)
        return seq, f"{os.getpid():x}-{seq:x}"

    def record(self, rec: SpanRecord) -> None:
        with self._lock:
            self._spans.append(rec)

    def record_many(self, recs: list[SpanRecord]) -> None:
        with self._lock:
            self._spans.extend(recs)

    def snapshot(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[SpanRecord]:
        with self._lock:
            out = self._spans
            self._spans = []
            return out


_TRACER = _Tracer()


def enable_tracing(on: bool = True) -> None:
    """Turn span recording on/off for this process."""
    _TRACER.enabled = bool(on)


def tracing_enabled() -> bool:
    return _TRACER.enabled


def current_span_id() -> str | None:
    """Id of the innermost open span in this context (None at top level)."""
    return _current.get()


def adopt_parent(parent_id: str | None) -> None:
    """Make ``parent_id`` the ambient parent for spans in this context.

    Threads start with a fresh context (``threading.Thread`` does not
    inherit contextvars), so a worker thread that should nest its spans
    under the spawner's span calls this first with the id the spawner
    captured via :func:`current_span_id`. The same seam joins trees
    *across processes*: a server adopting the span id a client shipped
    in a :data:`TRACEPARENT_HEADER` makes its spans children of the
    client's — the ids are pid-prefixed, so they never collide when the
    two buffers later merge.
    """
    _current.set(parent_id)


def format_traceparent(span_id: str) -> str:
    """Encode a span id as a ``traceparent``-style header value."""
    return f"00-{span_id}-01"


def parse_traceparent(value: str | None) -> str | None:
    """Extract the span id from a :func:`format_traceparent` value.

    Returns None for missing or malformed values — propagation is a
    best-effort enrichment, never a request error.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) < 3 or parts[0] != "00" or parts[-1] != "01":
        return None
    span_id = "-".join(parts[1:-1])
    return span_id or None


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[SpanRecord | None]:
    """Record a named, timed span around the ``with`` body.

    Disabled tracing reduces to one boolean check (yields ``None``).
    Attributes must be JSON-safe scalars (str/int/float/bool/None) —
    they travel through worker pickles and HTTP exports verbatim.
    """
    tracer = _TRACER
    if not tracer.enabled:
        yield None
        return
    seq, span_id = tracer.next_id()
    parent = _current.get()
    token = _current.set(span_id)
    rec = SpanRecord(
        name=name,
        span_id=span_id,
        parent_id=parent,
        seq=seq,
        start_ns=time.perf_counter_ns(),
        duration_ns=0,
        wall_ns=time.time_ns(),
        pid=os.getpid(),
        thread_id=threading.get_ident(),
        attrs=attrs,
    )
    try:
        yield rec
    finally:
        rec.duration_ns = time.perf_counter_ns() - rec.start_ns
        _current.reset(token)
        tracer.record(rec)


def get_spans() -> list[SpanRecord]:
    """Snapshot of every span recorded in this process (completion order)."""
    return _TRACER.snapshot()


def take_spans() -> list[SpanRecord]:
    """Drain and return the recorded spans (bounds tracer memory)."""
    return _TRACER.drain()


def clear_spans() -> None:
    """Drop all recorded spans."""
    _TRACER.drain()


def record_spans(spans: list[SpanRecord]) -> None:
    """Append already-built records (merge seam for shipped worker spans)."""
    _TRACER.record_many(spans)


def merge_exported(
    payload: list[dict[str, Any]],
    *,
    parent_id: str | None = None,
) -> list[SpanRecord]:
    """Merge worker-shipped span payloads into this process's trace.

    ``payload`` is a list of :meth:`SpanRecord.to_json` dicts (what a
    pool worker returns). Root spans (``parent_id is None``) are
    re-parented under ``parent_id`` so the merged trace nests the
    worker's work where it logically happened; ids are pid-scoped and
    therefore already collision-free. Returns the merged records.
    """
    recs = [SpanRecord.from_json(d) for d in payload]
    if parent_id is not None:
        for rec in recs:
            if rec.parent_id is None:
                rec.parent_id = parent_id
    _TRACER.record_many(recs)
    return recs


def export_trace(
    spans: list[SpanRecord] | None = None,
    *,
    deterministic: bool = False,
) -> dict[str, Any]:
    """Export spans as a JSON-safe trace document.

    Spans order by a depth-first walk of the parent/child tree (spans
    whose parent is outside the set — including spans adopted from a
    remote caller's ``traceparent`` — count as roots) with siblings
    sorted by ``(name, attrs)``, and ids renumber to dense ordinals in
    that order, so the document never leaks process ids through
    identifiers. Because the walk is *structural*, it does not depend on
    which pid the OS handed each process: a joined client+server tree
    exports identically run after run. Siblings sharing a name and
    attributes fall back to ``(pid, seq)`` — deterministic within one
    process, and across processes up to how work was assigned.

    With ``deterministic=True`` all timing, pid and thread fields are
    stripped — only names, nesting, ordinals and attributes remain, and
    two runs of the same code path export byte-identical documents
    (``json.dumps(..., sort_keys=True)``).
    """
    if spans is None:
        spans = get_spans()
    known = {s.span_id for s in spans}
    children: dict[str | None, list[SpanRecord]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in known else None
        children.setdefault(parent, []).append(s)

    def sibling_key(s: SpanRecord) -> tuple:
        return (
            s.name,
            json.dumps(s.attrs, sort_keys=True, default=str),
            s.pid,
            s.seq,
        )

    ordered: list[SpanRecord] = []

    def walk(parent: str | None) -> None:
        for s in sorted(children.get(parent, []), key=sibling_key):
            ordered.append(s)
            walk(s.span_id)

    walk(None)
    id_map = {s.span_id: str(i) for i, s in enumerate(ordered)}
    out = []
    for i, s in enumerate(ordered):
        doc: dict[str, Any] = {
            "name": s.name,
            "span_id": id_map[s.span_id],
            "parent_id": id_map.get(s.parent_id) if s.parent_id else None,
            "attrs": dict(s.attrs),
        }
        if not deterministic:
            doc.update(
                start_ns=s.start_ns,
                duration_ns=s.duration_ns,
                wall_ns=s.wall_ns,
                pid=s.pid,
                thread_id=s.thread_id,
            )
        out.append(doc)
    return {
        "format": TRACE_FORMAT,
        "deterministic": deterministic,
        "n_spans": len(out),
        "spans": out,
    }
