"""Experiment configuration (paper Table II) as one frozen object.

Collects the network parameters every NoC-level experiment shares, so
benchmarks and examples reference a single authoritative configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NocExperimentConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class NocExperimentConfig:
    """Paper Table II: network parameters used for all NoCs in this work."""

    width: int = 16
    height: int = 16
    core_spacing_m: float = 1e-3
    core_clock_ghz: float = 0.78125
    flit_bits: int = 64
    n_vcs: int = 4
    buffers_per_vc: int = 8
    pipeline_stages: int = 3
    link_capacity_gbps: float = 50.0
    max_injection_rate: float = 0.1
    soteriou_p: float = 0.02
    soteriou_sigma: float = 0.4
    express_hops_options: tuple[int, ...] = (3, 5, 15)

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError(f"grid too small: {self.width}x{self.height}")
        if self.core_clock_ghz <= 0:
            raise ValueError(f"clock must be > 0, got {self.core_clock_ghz}")
        if not 0 < self.max_injection_rate <= 1:
            raise ValueError(
                f"max injection rate must be in (0, 1], got {self.max_injection_rate}"
            )
        # The clock must serialize one flit per cycle onto a 50 Gb/s link:
        # flit_bits * f_clk == link capacity (paper: 64 b x 0.78125 GHz = 50 Gb/s).
        produced = self.flit_bits * self.core_clock_ghz
        if abs(produced - self.link_capacity_gbps) > 1e-9:
            raise ValueError(
                f"flit rate {produced} Gb/s != link capacity "
                f"{self.link_capacity_gbps} Gb/s"
            )

    @property
    def n_nodes(self) -> int:
        """Total node count N."""
        return self.width * self.height


PAPER_CONFIG = NocExperimentConfig()
"""The exact Table II configuration (16x16, 64-bit flits, 50 Gb/s links)."""
