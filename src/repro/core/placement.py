"""Greedy express-link placement optimization.

Answers the question the paper leaves open ("The final choice of
hybridization depends on the specific requirements"): given a traffic
matrix and a budget of bidirectional express links, where should they go?

The optimizer is greedy: at each step it evaluates every candidate
horizontal express link (all (row, col_a, col_b) spans within a hop-length
window) by the traffic-weighted latency of the resulting network and keeps
the best, until the budget is exhausted or no candidate improves latency.
Greedy placement is the standard baseline for incremental link-addition
problems; the uniform grids of the paper are recovered when traffic is
uniform enough.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.latency import average_latency_cycles
from repro.tech.parameters import Technology
from repro.topology.custom import ExpressSpec, build_custom_express_mesh
from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix

__all__ = ["PlacementResult", "optimize_express_placement"]


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a greedy placement run."""

    placement: tuple[ExpressSpec, ...]
    topology: Topology
    base_latency_clks: float
    final_latency_clks: float

    @property
    def improvement(self) -> float:
        """Latency speedup over the plain mesh."""
        return self.base_latency_clks / self.final_latency_clks


def _candidates(
    width: int, height: int, min_span: int, max_span: int
) -> list[ExpressSpec]:
    specs = []
    for row in range(height):
        for span in range(min_span, max_span + 1):
            for col in range(0, width - span):
                specs.append(ExpressSpec(row, col, col + span))
    return specs


def optimize_express_placement(
    traffic: TrafficMatrix,
    *,
    budget: int,
    width: int = 16,
    height: int = 16,
    min_span: int = 3,
    max_span: int = 15,
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
) -> PlacementResult:
    """Greedily place up to ``budget`` express links to minimize latency.

    Args:
        traffic: the workload to optimize for (weights only).
        budget: bidirectional express links available.
        min_span, max_span: allowed hop lengths for candidates.

    The search stops early when no candidate strictly improves the
    traffic-weighted average latency.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if not 2 <= min_span <= max_span <= width - 1:
        raise ValueError(
            f"need 2 <= min_span <= max_span <= {width - 1}, "
            f"got ({min_span}, {max_span})"
        )
    if traffic.n_nodes != width * height:
        raise ValueError(
            f"traffic has {traffic.n_nodes} nodes, grid has {width * height}"
        )

    def evaluate(placement: list[ExpressSpec]) -> tuple[float, Topology]:
        topo = build_custom_express_mesh(
            width,
            height,
            express=placement,
            base_technology=base_technology,
            express_technology=express_technology,
        )
        latency = average_latency_cycles(topo, traffic, RoutingTable(topo))
        return latency, topo

    base_latency, base_topo = evaluate([])
    placement: list[ExpressSpec] = []
    best_latency, best_topo = base_latency, base_topo
    candidates = _candidates(width, height, min_span, max_span)

    for _ in range(budget):
        step_best: tuple[float, ExpressSpec] | None = None
        for spec in candidates:
            if spec in placement:
                continue
            latency, _ = evaluate(placement + [spec])
            if latency < best_latency - 1e-12 and (
                step_best is None or latency < step_best[0]
            ):
                step_best = (latency, spec)
        if step_best is None:
            break
        placement.append(step_best[1])
        best_latency, best_topo = evaluate(placement)

    return PlacementResult(
        placement=tuple(placement),
        topology=best_topo,
        base_latency_clks=base_latency,
        final_latency_clks=best_latency,
    )
