"""CLEAR: the paper's unified figure of merit (eq. 1 and eq. 2).

Link level (eq. 1)::

    CLEAR = Capability / (Latency * Energy * Area)

with Capability in Gb/s, Latency in ps, Energy in fJ/bit, Area in µm².
The paper deliberately uses these engineering units (not SI) — only relative
values matter, and we keep the same convention so magnitudes are comparable.

Network level (eq. 2)::

    CLEAR_net = (sum_i C_i / N) / (Latency_clks * Power_W * Area_mm2 * R)

where ``R = dU/dr`` is the rate of increase of average link utilization with
injection rate (paper eq. 3). Network-level evaluation lives in
:mod:`repro.analysis.network_clear`; this module provides the shared
arithmetic plus the link-level sweep used for Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.tech.link import LinkMetrics, LinkModel
from repro.tech.parameters import CapabilityMode, Technology

__all__ = [
    "clear_link",
    "clear_network",
    "LinkClearSweep",
    "sweep_link_clear",
    "find_crossover_m",
]


def clear_link(metrics: LinkMetrics) -> float:
    """Link-level CLEAR (paper eq. 1) in Gb/s / (ps · fJ/bit · µm²)."""
    return metrics.capability_gbps / (
        metrics.latency_ps * metrics.energy_fj_per_bit * metrics.area_um2
    )


def clear_network(
    aggregate_capability_gbps: float,
    n_nodes: int,
    latency_clks: float,
    power_w: float,
    area_mm2: float,
    r_utilization_slope: float,
) -> float:
    """Network-level CLEAR (paper eq. 2).

    Args:
        aggregate_capability_gbps: sum of all link capacities, Gb/s.
        n_nodes: number of network nodes N.
        latency_clks: average packet latency in clock cycles.
        power_w: total network power (static + dynamic), watts.
        area_mm2: total network area, mm².
        r_utilization_slope: R = dU/dr (paper eq. 3).
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be > 0, got {n_nodes}")
    for name, value in (
        ("latency_clks", latency_clks),
        ("power_w", power_w),
        ("area_mm2", area_mm2),
        ("r_utilization_slope", r_utilization_slope),
    ):
        if value <= 0:
            raise ValueError(f"{name} must be > 0, got {value}")
    capability_per_node = aggregate_capability_gbps / n_nodes
    return capability_per_node / (
        latency_clks * power_w * area_mm2 * r_utilization_slope
    )


@dataclass(frozen=True)
class LinkClearSweep:
    """CLEAR of one technology across a sweep of link lengths (Fig. 3)."""

    technology: Technology
    lengths_m: np.ndarray
    clear: np.ndarray
    latency_ps: np.ndarray
    energy_fj_per_bit: np.ndarray
    area_um2: np.ndarray
    capability_gbps: float

    def __post_init__(self) -> None:
        n = len(self.lengths_m)
        for name in ("clear", "latency_ps", "energy_fj_per_bit", "area_um2"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch with lengths_m")


def sweep_link_clear(
    model: LinkModel,
    lengths_m: Sequence[float] | np.ndarray,
    *,
    mode: CapabilityMode = CapabilityMode.DEVICE,
) -> LinkClearSweep:
    """Evaluate link CLEAR for ``model`` at each length (Fig. 3 series)."""
    lengths = np.asarray(lengths_m, dtype=np.float64)
    if lengths.ndim != 1 or lengths.size == 0:
        raise ValueError("lengths_m must be a non-empty 1-D sequence")
    if np.any(lengths < 0):
        raise ValueError("lengths must be >= 0")
    n = lengths.size
    clear = np.empty(n)
    lat = np.empty(n)
    energy = np.empty(n)
    area = np.empty(n)
    cap = 0.0
    for i, length in enumerate(lengths):
        m = model.evaluate(float(length), mode=mode)
        clear[i] = clear_link(m)
        lat[i] = m.latency_ps
        energy[i] = m.energy_fj_per_bit
        area[i] = m.area_um2
        cap = m.capability_gbps
    return LinkClearSweep(
        technology=model.technology,
        lengths_m=lengths,
        clear=clear,
        latency_ps=lat,
        energy_fj_per_bit=energy,
        area_um2=area,
        capability_gbps=cap,
    )


def find_crossover_m(
    model_a: LinkModel,
    model_b: LinkModel,
    lo_m: float,
    hi_m: float,
    *,
    mode: CapabilityMode = CapabilityMode.DEVICE,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float | None:
    """Length at which CLEAR(a) == CLEAR(b), or ``None`` if no sign change.

    Bisection on ``log CLEAR_a - log CLEAR_b`` over ``[lo_m, hi_m]``; the
    technologies' CLEAR curves are smooth and monotone enough that a single
    bracketed root is the norm (e.g. the electronics->HyPPI hand-off).
    """
    if not 0 <= lo_m < hi_m:
        raise ValueError(f"need 0 <= lo < hi, got ({lo_m}, {hi_m})")

    def diff(length: float) -> float:
        a = clear_link(model_a.evaluate(length, mode=mode))
        b = clear_link(model_b.evaluate(length, mode=mode))
        return np.log(a) - np.log(b)

    f_lo, f_hi = diff(lo_m), diff(hi_m)
    if f_lo == 0.0:
        return lo_m
    if f_hi == 0.0:
        return hi_m
    if np.sign(f_lo) == np.sign(f_hi):
        return None
    for _ in range(max_iter):
        mid = 0.5 * (lo_m + hi_m)
        f_mid = diff(mid)
        if abs(hi_m - lo_m) < tol or f_mid == 0.0:
            return mid
        if np.sign(f_mid) == np.sign(f_lo):
            lo_m, f_lo = mid, f_mid
        else:
            hi_m = mid
    return 0.5 * (lo_m + hi_m)
