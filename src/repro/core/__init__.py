"""The paper's primary contribution: CLEAR metric + hybrid-NoC exploration."""

from repro.core.clear import (
    LinkClearSweep,
    clear_link,
    clear_network,
    find_crossover_m,
    sweep_link_clear,
)
from repro.core.config import PAPER_CONFIG, NocExperimentConfig
from repro.core.dse import DEFAULT_NETWORK_TECHS, DesignSpaceExplorer, DSEPoint
from repro.core.placement import PlacementResult, optimize_express_placement

__all__ = [
    "LinkClearSweep",
    "clear_link",
    "clear_network",
    "find_crossover_m",
    "sweep_link_clear",
    "PAPER_CONFIG",
    "NocExperimentConfig",
    "DEFAULT_NETWORK_TECHS",
    "DesignSpaceExplorer",
    "DSEPoint",
    "PlacementResult",
    "optimize_express_placement",
]
