"""Design-space exploration of hybrid NoCs (paper Section III-B, Fig. 5).

Sweeps {base mesh technology} x {express link technology} x {express hop
count} and evaluates each network analytically with the Soteriou traffic
model, producing the data behind the paper's Fig. 5 grid (CLEAR, latency,
power, area per hybridization option) and Table III.

The sweep itself is delegated to the experiment engine
(:mod:`repro.experiments`): each design point becomes a declarative
scenario, evaluation is memoized in a shared cache (duplicate points —
the plain meshes every express option shares, repeated ``evaluate_point``
calls — are computed once), and ``jobs > 1`` runs the grid on a process
pool with bit-identical results.

Plasmonics is excluded from the sweep by default, as in the paper: "pure
plasmonics is not considered any further in our network level explorations"
(its 440 dB/cm loss cannot span even the 1 mm core spacing).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from typing import TYPE_CHECKING, Any

from repro.core.config import PAPER_CONFIG, NocExperimentConfig
from repro.experiments.cache import EvaluationCache
from repro.experiments.registry import paper_point, scenario_family
from repro.experiments.runner import Runner
from repro.tech.parameters import Technology
from repro.topology.graph import Topology

if TYPE_CHECKING:  # avoid a circular import at module load (analysis -> core)
    from repro.analysis.network_clear import NetworkEvaluation
    from repro.experiments.spec import Scenario

__all__ = ["DSEPoint", "DesignSpaceExplorer", "DEFAULT_NETWORK_TECHS"]

#: Technologies explored at the network level (no pure plasmonics).
DEFAULT_NETWORK_TECHS = (
    Technology.ELECTRONIC,
    Technology.PHOTONIC,
    Technology.HYPPI,
)


@dataclass(frozen=True)
class DSEPoint:
    """One hybridization option and its evaluation."""

    base_technology: Technology
    express_technology: Technology | None
    """None for the plain (non-express) mesh."""
    hops: int
    """Express hop count; 0 for the plain mesh."""
    evaluation: "NetworkEvaluation"

    @property
    def label(self) -> str:
        """Short label like ``"E-base + HyPPI x3"`` for tables."""
        base = self.base_technology.value[0].upper()
        if self.express_technology is None:
            return f"{base}-mesh (plain)"
        return f"{base}-base + {self.express_technology.value} x{self.hops}"


def _evaluation_from_metrics(metrics: dict[str, Any]) -> "NetworkEvaluation":
    """Rebuild a :class:`NetworkEvaluation` from engine metrics."""
    from repro.analysis.network_clear import NetworkEvaluation

    return NetworkEvaluation.from_metrics(metrics)


class DesignSpaceExplorer:
    """Sweep hybrid NoC options and rank them by CLEAR (Fig. 5 driver).

    Args:
        config: network parameters (paper Table II by default).
        injection_rate: operating point (defaults to the config maximum).
        seed: Soteriou traffic seed (integer; scenarios must serialize).
        jobs: default worker-process count for :meth:`explore` /
            :meth:`explore_iter` (1 = in-process serial).
        cache: evaluation cache to use; defaults to a private one that
            persists across this explorer's calls.
    """

    def __init__(
        self,
        config: NocExperimentConfig = PAPER_CONFIG,
        *,
        injection_rate: float | None = None,
        seed: int | None = 0,
        jobs: int = 1,
        cache: EvaluationCache | None = None,
    ) -> None:
        self.config = config
        self.injection_rate = (
            config.max_injection_rate if injection_rate is None else injection_rate
        )
        if not 0 < self.injection_rate <= config.max_injection_rate:
            raise ValueError(
                f"injection rate must be in (0, {config.max_injection_rate}], "
                f"got {self.injection_rate}"
            )
        if seed is None:
            seed = 0
        if not isinstance(seed, int):
            raise ValueError(
                "DSE scenarios are serialized records and need an integer "
                f"seed, got {type(seed).__name__}"
            )
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.seed = seed
        self.jobs = jobs
        self.cache = cache if cache is not None else EvaluationCache()

    # -- single-point evaluation -------------------------------------------

    def scenario_for(
        self,
        base_technology: Technology,
        express_technology: Technology | None = None,
        hops: int = 0,
    ) -> "Scenario":
        """The declarative scenario for one hybridization option."""
        return paper_point(
            base_technology,
            express_technology,
            hops,
            config=self.config,
            injection_rate=self.injection_rate,
            seed=self.seed,
        )

    def build_topology(
        self,
        base_technology: Technology,
        express_technology: Technology | None,
        hops: int,
    ) -> Topology:
        """Construct the mesh / express mesh for one design point."""
        return self.scenario_for(
            base_technology, express_technology, hops
        ).topology.build()

    def evaluate_point(
        self,
        base_technology: Technology,
        express_technology: Technology | None = None,
        hops: int = 0,
    ) -> DSEPoint:
        """Evaluate one hybridization option (memoized in the cache)."""
        scenario = self.scenario_for(base_technology, express_technology, hops)
        (result,) = Runner(jobs=1, cache=self.cache).run([scenario])
        return DSEPoint(
            base_technology=base_technology,
            express_technology=express_technology,
            hops=hops if express_technology is not None else 0,
            evaluation=_evaluation_from_metrics(result.metrics),
        )

    # -- full sweep ----------------------------------------------------------

    def explore_iter(
        self,
        base_technologies: Sequence[Technology] = DEFAULT_NETWORK_TECHS,
        express_technologies: Sequence[Technology] = DEFAULT_NETWORK_TECHS,
        hops_options: Sequence[int] | None = None,
        *,
        jobs: int | None = None,
    ) -> Iterator[DSEPoint]:
        """Stream the base x express x hops grid plus plain meshes.

        Points arrive in a stable order: for each base technology, the
        plain mesh first, then express options grouped by technology then
        hop count — the layout of the paper's Fig. 5 panels. Duplicate
        design points (however the axes are spelled) evaluate once via
        the cache; with ``jobs > 1`` the grid runs on a process pool and
        the stream yields each point as its turn completes.
        """
        scenarios = scenario_family(
            "paper-grid",
            config=self.config,
            injection_rate=self.injection_rate,
            seed=self.seed,
            base_technologies=tuple(base_technologies),
            express_technologies=tuple(express_technologies),
            hops_options=hops_options,
        )
        runner = Runner(jobs=self.jobs if jobs is None else jobs, cache=self.cache)
        for result in runner.run_iter(scenarios):
            topo_spec = result.scenario.topology
            yield DSEPoint(
                base_technology=topo_spec.base_technology,
                express_technology=topo_spec.express_technology,
                hops=topo_spec.hops,
                evaluation=_evaluation_from_metrics(result.metrics),
            )

    def explore(
        self,
        base_technologies: Sequence[Technology] = DEFAULT_NETWORK_TECHS,
        express_technologies: Sequence[Technology] = DEFAULT_NETWORK_TECHS,
        hops_options: Sequence[int] | None = None,
        *,
        jobs: int | None = None,
    ) -> list[DSEPoint]:
        """Evaluate the full grid (see :meth:`explore_iter` for ordering)."""
        return list(
            self.explore_iter(
                base_technologies,
                express_technologies,
                hops_options,
                jobs=jobs,
            )
        )

    @staticmethod
    def best_by_clear(points: Sequence[DSEPoint]) -> DSEPoint:
        """The winning design point (highest network CLEAR)."""
        if not points:
            raise ValueError("no design points to rank")
        return max(points, key=lambda pt: pt.evaluation.clear)

    @staticmethod
    def best_by_latency(points: Sequence[DSEPoint]) -> DSEPoint:
        """The lowest-latency design point (the paper's alternative target:
        "if the lowest latency is the target, then a base electronic mesh
        is the better option, augmented with HyPPI links")."""
        if not points:
            raise ValueError("no design points to rank")
        return min(points, key=lambda pt: pt.evaluation.latency_clks)
