"""Design-space exploration of hybrid NoCs (paper Section III-B, Fig. 5).

Sweeps {base mesh technology} x {express link technology} x {express hop
count} and evaluates each network analytically with the Soteriou traffic
model, producing the data behind the paper's Fig. 5 grid (CLEAR, latency,
power, area per hybridization option) and Table III.

Plasmonics is excluded from the sweep by default, as in the paper: "pure
plasmonics is not considered any further in our network level explorations"
(its 440 dB/cm loss cannot span even the 1 mm core spacing).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from typing import TYPE_CHECKING

from repro.core.config import PAPER_CONFIG, NocExperimentConfig
from repro.tech.parameters import Technology
from repro.topology.graph import Topology
from repro.topology.mesh import build_express_mesh, build_mesh
from repro.topology.routing import RoutingTable
from repro.traffic.synthetic import soteriou_traffic
from repro.util.rng import SeedLike

if TYPE_CHECKING:  # avoid a circular import at module load (analysis -> core)
    from repro.analysis.network_clear import NetworkEvaluation

__all__ = ["DSEPoint", "DesignSpaceExplorer", "DEFAULT_NETWORK_TECHS"]

#: Technologies explored at the network level (no pure plasmonics).
DEFAULT_NETWORK_TECHS = (
    Technology.ELECTRONIC,
    Technology.PHOTONIC,
    Technology.HYPPI,
)


@dataclass(frozen=True)
class DSEPoint:
    """One hybridization option and its evaluation."""

    base_technology: Technology
    express_technology: Technology | None
    """None for the plain (non-express) mesh."""
    hops: int
    """Express hop count; 0 for the plain mesh."""
    evaluation: "NetworkEvaluation"

    @property
    def label(self) -> str:
        """Short label like ``"E-base + HyPPI x3"`` for tables."""
        base = self.base_technology.value[0].upper()
        if self.express_technology is None:
            return f"{base}-mesh (plain)"
        return f"{base}-base + {self.express_technology.value} x{self.hops}"


class DesignSpaceExplorer:
    """Sweep hybrid NoC options and rank them by CLEAR (Fig. 5 driver)."""

    def __init__(
        self,
        config: NocExperimentConfig = PAPER_CONFIG,
        *,
        injection_rate: float | None = None,
        seed: SeedLike = 0,
    ) -> None:
        self.config = config
        self.injection_rate = (
            config.max_injection_rate if injection_rate is None else injection_rate
        )
        if not 0 < self.injection_rate <= config.max_injection_rate:
            raise ValueError(
                f"injection rate must be in (0, {config.max_injection_rate}], "
                f"got {self.injection_rate}"
            )
        self.seed = seed

    # -- single-point evaluation -------------------------------------------

    def build_topology(
        self,
        base_technology: Technology,
        express_technology: Technology | None,
        hops: int,
    ) -> Topology:
        """Construct the mesh / express mesh for one design point."""
        if express_technology is None:
            return build_mesh(
                self.config.width,
                self.config.height,
                link_technology=base_technology,
                core_spacing_m=self.config.core_spacing_m,
            )
        return build_express_mesh(
            self.config.width,
            self.config.height,
            hops=hops,
            base_technology=base_technology,
            express_technology=express_technology,
            core_spacing_m=self.config.core_spacing_m,
        )

    def evaluate_point(
        self,
        base_technology: Technology,
        express_technology: Technology | None = None,
        hops: int = 0,
    ) -> DSEPoint:
        """Evaluate one hybridization option."""
        from repro.analysis.network_clear import evaluate_network

        topo = self.build_topology(base_technology, express_technology, hops)
        routing = RoutingTable(topo)
        traffic = soteriou_traffic(
            topo,
            p=self.config.soteriou_p,
            sigma=self.config.soteriou_sigma,
            injection_rate=self.injection_rate,
            seed=self.seed,
        )
        evaluation = evaluate_network(
            topo, traffic, injection_rate=self.injection_rate, routing=routing
        )
        return DSEPoint(
            base_technology=base_technology,
            express_technology=express_technology,
            hops=hops if express_technology is not None else 0,
            evaluation=evaluation,
        )

    # -- full sweep ----------------------------------------------------------

    def explore(
        self,
        base_technologies: Sequence[Technology] = DEFAULT_NETWORK_TECHS,
        express_technologies: Sequence[Technology] = DEFAULT_NETWORK_TECHS,
        hops_options: Sequence[int] | None = None,
    ) -> list[DSEPoint]:
        """Evaluate the full base x express x hops grid plus plain meshes.

        Returns points in a stable order: for each base technology, the
        plain mesh first, then express options grouped by technology then
        hop count — the layout of the paper's Fig. 5 panels.
        """
        hops_list = (
            list(self.config.express_hops_options)
            if hops_options is None
            else list(hops_options)
        )
        points: list[DSEPoint] = []
        for base in base_technologies:
            points.append(self.evaluate_point(base))
            for express in express_technologies:
                for hops in hops_list:
                    points.append(self.evaluate_point(base, express, hops))
        return points

    @staticmethod
    def best_by_clear(points: Sequence[DSEPoint]) -> DSEPoint:
        """The winning design point (highest network CLEAR)."""
        if not points:
            raise ValueError("no design points to rank")
        return max(points, key=lambda pt: pt.evaluation.clear)

    @staticmethod
    def best_by_latency(points: Sequence[DSEPoint]) -> DSEPoint:
        """The lowest-latency design point (the paper's alternative target:
        "if the lowest latency is the target, then a base electronic mesh
        is the better option, augmented with HyPPI links")."""
        if not points:
            raise ValueError("no design points to rank")
        return min(points, key=lambda pt: pt.evaluation.latency_clks)
