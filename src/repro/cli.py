"""Command-line interface: regenerate any of the paper's artefacts.

Usage::

    python -m repro table3              # Table III (C and R)
    python -m repro table4              # Table IV (static power)
    python -m repro fig5 --jobs 4       # Fig. 5 design-space exploration
    python -m repro fig3                # Fig. 3 link CLEAR sweep
    python -m repro fig8                # Fig. 8 all-optical projections
    python -m repro table6              # Table VI router comparison
    python -m repro fig6 --kernel CG    # cycle-simulate one NPB kernel
    python -m repro sweep --hops 3      # latency vs injection rate
    python -m repro workload list       # registered workload models
    python -m repro workload gen --model onoff --out trace.npz
    python -m repro workload stats trace.npz
    python -m repro workload import dump.txt --out trace.npz
    python -m repro workload sweep --model onoff --param duty=0.25
    python -m repro telemetry run --model onoff --rate 0.3
    python -m repro telemetry export --out run.npz  # byte-deterministic
    python -m repro telemetry stats run.npz
    python -m repro telemetry heatmap run.npz       # per-link utilization
    python -m repro control run --rate 0.5 --outstanding 4
    python -m repro control knee --lo 0.1 --hi 0.9  # bisect the knee
    python -m repro control stats run.npz
    python -m repro bench run --quick   # benchmark harness (BENCH_*.json)
    python -m repro bench compare a b   # perf gate: exit 1 on regression
    python -m repro serve --port 8032   # experiment service (HTTP/JSON)
    python -m repro submit --family saturation-sweep --param 'rates=[0.1]'
    python -m repro status job-000001 --wait
    python -m repro fetch job-000001 --out results.npz
    python -m repro jobs                # audit: job history + cache stats
    python -m repro obs metrics --prom  # Prometheus-format metrics dump
    python -m repro obs slo             # SLO rule states + alert history

Each command prints the rendered ASCII table/figure to stdout; heavier
commands expose their main knobs as flags. Sweep-shaped commands route
through the experiment engine (:mod:`repro.experiments`) and share one
option surface: ``--jobs N`` evaluates design points on a process pool
(results are bit-identical to serial runs), ``--engine batched`` routes
eligible points through the vectorized engine, repeated points are
served from the evaluation cache, and saturated simulation points are
flagged instead of crashing. The service commands (serve/submit/status/
fetch/jobs) speak the :mod:`repro.service` HTTP API.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys
from collections.abc import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _status(drained: bool) -> str:
    """Human-readable drain flag for simulation rows."""
    return "ok" if drained else "SATURATED"


def _fmt_latency(value: float) -> object:
    """Render a latency figure, making undefined (nan) values explicit."""
    return "n/a" if isinstance(value, float) and math.isnan(value) else value


def _cmd_table3(args: argparse.Namespace) -> None:
    from repro.experiments import Runner
    from repro.experiments import paper_point
    from repro.tech import Technology
    from repro.util import format_table

    scenarios = [
        paper_point(
            Technology.ELECTRONIC,
            None if hops == 0 else Technology.HYPPI,
            hops,
            seed=args.seed,
        )
        for hops in (0, 3, 5, 15)
    ]
    results = Runner(jobs=args.jobs).run(scenarios)
    rows = [
        [
            "plain mesh" if hops == 0 else f"hops={hops}",
            res.metrics["capability_gbps"],
            res.metrics["r_slope"],
        ]
        for hops, res in zip((0, 3, 5, 15), results)
    ]
    print(format_table(["topology", "C (Gb/s)", "R"], rows, title="Table III"))


def _cmd_table4(args: argparse.Namespace) -> None:
    from repro.experiments import Runner
    from repro.experiments import paper_point
    from repro.tech import Technology
    from repro.util import format_table

    options: list[tuple[Technology | None, int]] = [(None, 0)]
    options += [
        (tech, hops)
        for tech in (Technology.ELECTRONIC, Technology.PHOTONIC, Technology.HYPPI)
        for hops in (3, 5, 15)
    ]
    scenarios = [
        paper_point(Technology.ELECTRONIC, tech, hops, seed=args.seed)
        for tech, hops in options
    ]
    results = Runner(jobs=args.jobs).run(scenarios)
    rows = []
    for (tech, hops), res in zip(options, results):
        static_w = res.metrics["router_static_w"] + res.metrics["link_static_w"]
        if tech is None:
            rows.append(["base mesh", "-", static_w])
        else:
            rows.append([tech.value, hops, static_w])
    print(
        format_table(
            ["express tech", "hops", "static power (W)"], rows, title="Table IV"
        )
    )


def _cmd_fig3(args: argparse.Namespace) -> None:
    from repro.core import sweep_link_clear
    from repro.tech import (
        ElectronicLinkModel,
        HyPPILinkModel,
        PhotonicLinkModel,
        PlasmonicLinkModel,
    )
    from repro.util import ascii_xy_plot

    lengths = np.logspace(-6, np.log10(0.05), 60)
    models = {
        "electronic": ElectronicLinkModel(),
        "photonic": PhotonicLinkModel(),
        "plasmonic": PlasmonicLinkModel(),
        "hyppi": HyPPILinkModel(),
    }
    sweeps = {n: sweep_link_clear(m, lengths) for n, m in models.items()}
    print(
        ascii_xy_plot(
            {n: (s.lengths_m, s.clear) for n, s in sweeps.items()},
            logx=True,
            logy=True,
            width=78,
            height=22,
            title="Fig. 3 — link CLEAR vs length (log-log)",
        )
    )


def _cmd_fig5(args: argparse.Namespace) -> None:
    from repro.core import DesignSpaceExplorer
    from repro.util import format_table

    explorer = DesignSpaceExplorer(
        injection_rate=args.injection_rate, seed=args.seed, jobs=args.jobs
    )
    points = explorer.explore(hops_options=args.hops)
    rows = [
        [
            pt.label,
            pt.evaluation.latency_clks,
            pt.evaluation.power.total_w,
            pt.evaluation.area_mm2,
            pt.evaluation.clear,
        ]
        for pt in points
    ]
    print(
        format_table(
            ["design point", "latency (clk)", "power (W)", "area (mm2)", "CLEAR"],
            rows,
            title=f"Fig. 5 (injection rate {explorer.injection_rate})",
        )
    )


def _cmd_fig6(args: argparse.Namespace) -> None:
    from repro.experiments import Runner, scenario_family
    from repro.util import format_table

    hops_options = (0, 3, 5, 15)
    scenarios = scenario_family(
        "npb-kernels",
        kernels=[args.kernel],
        hops_options=hops_options,
        workloads={args.kernel: (args.volume_scale, None)},
        engine=args.engine,
    )
    results = Runner(jobs=args.jobs).run(scenarios)
    rows = [
        [
            "mesh" if hops == 0 else f"hops={hops}",
            _fmt_latency(res.metrics["avg_latency"]),
            _fmt_latency(res.metrics["p99_latency"]),
            _status(res.metrics["drained"]),
        ]
        for hops, res in zip(hops_options, results)
    ]
    print(
        format_table(
            ["network", "avg latency (clk)", "p99 (clk)", "status"],
            rows,
            title=f"Fig. 6 — NPB {args.kernel.upper()} "
            f"(volume scale {args.volume_scale:g})",
        )
    )
    if any(not res.metrics["drained"] for res in results):
        print(
            "note: SATURATED rows exhausted the cycle budget before the "
            "trace drained; latencies there cover delivered packets only."
        )


def _table6_row(entry: tuple[str, object]) -> list[object]:
    """One Table VI row (module-level so process pools can pickle it)."""
    from repro.optical import optimal_port_assignment

    name, router = entry
    lo, hi = router.loss_range_db()
    _, expected = optimal_port_assignment(router)
    return [
        name,
        router.control_energy_fj_per_bit(),
        f"{lo:.2f}-{hi:.2f}",
        router.area_um2(),
        expected,
    ]


def _cmd_table6(args: argparse.Namespace) -> None:
    from repro.experiments import Runner
    from repro.optical import HYPPI_ROUTER, PHOTONIC_ROUTER
    from repro.util import format_table

    rows = Runner(jobs=args.jobs).map(
        _table6_row, [("photonic", PHOTONIC_ROUTER), ("hyppi", HYPPI_ROUTER)]
    )
    print(
        format_table(
            ["router", "control (fJ/bit)", "loss (dB)", "area (um2)",
             "E[loss|XY] (dB)"],
            rows,
            title="Table VI",
        )
    )


def _cmd_fig8(args: argparse.Namespace) -> None:
    from repro.optical import project_all_optical
    from repro.util import format_table

    cmp = project_all_optical(
        amortization_injection_rate=args.amortization_rate, seed=args.seed
    )
    print(
        format_table(
            ["network", "latency (clk)", "E/bit (fJ)", "area (mm2)"],
            [p.radar_row() for p in cmp.all()],
            title="Fig. 8 — all-optical projections",
        )
    )
    print(
        f"energy ratio electronic/all-HyPPI: "
        f"{cmp.energy_ratio_electronic_over_hyppi:.0f}x"
    )


def _cmd_sweep(args: argparse.Namespace) -> None:
    from repro.experiments import Runner, scenario_family
    from repro.util import format_table

    rates = np.linspace(args.min_rate, args.max_rate, args.points)
    scenarios = scenario_family(
        "saturation-sweep",
        rates=[float(r) for r in rates],
        hops=args.hops,
        cycles=args.cycles,
        drain_budget=args.drain_budget,
        seed=args.seed,
        engine=args.engine,
    )
    results = Runner(jobs=args.jobs).run(scenarios)
    rows = [
        [
            res.scenario.traffic.injection_rate,
            _fmt_latency(res.metrics["avg_latency"]),
            _fmt_latency(res.metrics["p99_latency"]),
            _status(res.metrics["drained"]),
        ]
        for res in results
    ]
    topo_name = results[0].metrics["topology_name"] if results else "mesh"
    print(
        format_table(
            ["injection rate", "avg latency", "p99", "status"],
            rows,
            title=f"latency vs offered load — {topo_name}",
        )
    )
    if any(not res.metrics["drained"] for res in results):
        print(
            "note: SATURATED points did not drain within the cycle budget "
            "(offered load beyond network saturation)."
        )


def _parse_params(pairs: Sequence[str]) -> dict[str, object]:
    """Parse repeated ``--param key=value`` flags (values literal-eval'd)."""
    import ast

    out: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--param expects key=value, got {pair!r}")
        try:
            value: object = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw
        out[key] = tuple(value) if isinstance(value, list) else value
    return out


def _cmd_workload_list(args: argparse.Namespace) -> int:
    from repro.workloads import SKELETONS, TEMPORAL_MODELS
    from repro.util import format_table

    def doc(fn) -> str:
        return (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else "-"

    rows = [
        [name, "temporal", doc(fn)] for name, fn in sorted(TEMPORAL_MODELS.items())
    ]
    rows += [
        [name, "skeleton", doc(fn)] for name, fn in sorted(SKELETONS.items())
    ]
    print(format_table(["model", "kind", "description"], rows, title="workloads"))
    return 0


def _workload_spec(args: argparse.Namespace):
    from repro.workloads import WorkloadSpec

    return WorkloadSpec.make(
        args.model,
        injection_rate=args.rate,
        cycles=args.cycles,
        packet_flits=args.packet_flits,
        seed=args.seed,
        traffic=args.traffic,
        **_parse_params(args.param),
    )


def _cmd_workload_gen(args: argparse.Namespace) -> int:
    from repro.topology import build_mesh
    from repro.util import format_table
    from repro.workloads import save_trace_npz, trace_stats

    spec = _workload_spec(args)
    trace = spec.build(build_mesh(args.width, args.height))
    save_trace_npz(trace, args.out, extra={"workload_spec": spec.to_json()})
    stats = trace_stats(trace)
    print(
        format_table(
            ["metric", "value"],
            stats.rows(),
            title=f"{trace.name} -> {args.out}",
        )
    )
    return 0


def _cmd_workload_stats(args: argparse.Namespace) -> int:
    from repro.util import format_table
    from repro.workloads import stats_from_arrays, trace_columns

    import zipfile

    if zipfile.is_zipfile(args.file):
        # npz store: invalid archives must fail loudly (version/format
        # diagnostics), never fall through to the text parser.
        header, cols = trace_columns(args.file)
        n_nodes, name = int(header["n_nodes"]), header["name"]
        time, src, size = cols["time"], cols["src"], cols["size_flits"]
    else:
        # Line-oriented text format (repro.traffic.io).
        from repro.traffic import load_trace

        trace = load_trace(args.file)
        n_nodes, name = trace.n_nodes, trace.name
        cols = trace.columns()
        time, src, size = cols["time"], cols["src"], cols["size_flits"]
    stats = stats_from_arrays(
        n_nodes, time, src, size, window=args.window, gap=args.gap
    )
    print(format_table(["metric", "value"], stats.rows(), title=str(name)))
    return 0


def _cmd_workload_import(args: argparse.Namespace) -> int:
    import pathlib

    from repro.traffic import load_external_trace
    from repro.util import format_table
    from repro.workloads import save_trace_npz, trace_stats

    trace = load_external_trace(
        args.input, n_nodes=args.nodes, name=args.name
    )
    save_trace_npz(
        trace,
        args.out,
        extra={
            "imported_from": pathlib.Path(args.input).name,
            "source_format": "external-text",
        },
    )
    print(
        format_table(
            ["metric", "value"],
            trace_stats(trace).rows(),
            title=f"{trace.name} -> {args.out}",
        )
    )
    return 0


def _telemetry_scenario(args: argparse.Namespace):
    """The single telemetry-profile scenario the run/export commands use."""
    from repro.experiments import scenario_family

    return scenario_family(
        "telemetry-profile",
        rates=[args.rate],
        model=args.model,
        traffic=args.traffic,
        width=args.width,
        height=args.height,
        cycles=args.cycles,
        window=args.window,
        packet_flits=args.packet_flits,
        drain_budget=args.drain_budget,
        seed=args.seed,
        **_parse_params(args.param),
    )[0]


def _save_telemetry(args: argparse.Namespace, scenario, telemetry, power) -> None:
    from repro.telemetry import save_telemetry_npz

    save_telemetry_npz(
        args.out,
        telemetry,
        power,
        extra={"scenario": scenario.to_json()},
    )
    print(f"telemetry written to {args.out} (byte-deterministic)")


def _cmd_telemetry_run(args: argparse.Namespace) -> int:
    from repro.telemetry import profile_scenario, render_report

    scenario = _telemetry_scenario(args)
    stats, telemetry, power, findings = profile_scenario(scenario)
    print(
        render_report(
            telemetry,
            power,
            findings,
            title=scenario.label,
            max_rows=args.max_rows,
        )
    )
    if not stats.drained:
        print(
            "note: the run did not drain within the cycle budget; the "
            "windowed series shows where it degraded."
        )
    if args.out:
        _save_telemetry(args, scenario, telemetry, power)
    return 0


def _cmd_telemetry_export(args: argparse.Namespace) -> int:
    from repro.telemetry import profile_scenario

    scenario = _telemetry_scenario(args)
    _, telemetry, power, findings = profile_scenario(scenario)
    onset = findings.saturation_onset_cycle
    print(
        f"{scenario.label}: {telemetry.n_windows} windows x "
        f"{telemetry.window} cycles, saturation onset: "
        f"{'none' if onset is None else f'cycle {onset}'}"
    )
    _save_telemetry(args, scenario, telemetry, power)
    return 0


def _cmd_telemetry_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import load_telemetry_npz, render_report

    telemetry, power, header = load_telemetry_npz(args.file)
    title = str(
        header.get("extra", {}).get("scenario", {}).get("name") or args.file
    )
    print(render_report(telemetry, power, title=title, max_rows=args.max_rows))
    return 0


def _cmd_telemetry_heatmap(args: argparse.Namespace) -> int:
    from repro.telemetry import load_telemetry_npz, render_link_heatmap

    telemetry, _, _ = load_telemetry_npz(args.file)
    print(render_link_heatmap(telemetry, csv=args.csv, top=args.top))
    return 0


def _control_scenario(args: argparse.Namespace):
    """The single closed-loop/control scenario ``control run`` evaluates."""
    from repro.experiments import scenario_family

    controllers = tuple(
        name for name in (c.strip() for c in args.controllers.split(",")) if name
    )
    return scenario_family(
        "closed-loop-saturation",
        rates=[args.rate],
        window=args.outstanding,
        think_cycles=args.think,
        reply_flits=args.reply_flits,
        model=args.model,
        traffic=args.traffic,
        width=args.width,
        height=args.height,
        cycles=args.cycles,
        packet_flits=args.packet_flits,
        drain_budget=args.drain_budget,
        telemetry_window=args.window,
        controllers=controllers,
        seed=args.seed,
        **_parse_params(args.param),
    )[0]


def _closed_loop_rows(cl) -> list[list[object]]:
    return [
        ["outstanding window", cl.window],
        ["think cycles", cl.think_cycles],
        ["demand (requests wanted)", cl.demand_total],
        ["requests issued / delivered", f"{cl.requests_issued} / {cl.requests_delivered}"],
        ["replies issued / delivered", f"{cl.replies_issued} / {cl.replies_delivered}"],
        ["outstanding at end", cl.outstanding_at_end],
        ["peak outstanding", cl.peak_outstanding],
        ["stalled demand at end", cl.stalled_demand],
        ["mean round trip (cycles)", _fmt_latency(round(cl.mean_round_trip, 2) if cl.replies_delivered else math.nan)],
    ]


def _control_actions_table(trace, title: str = "control actions") -> str:
    """Rendered action log of one ControlTrace (run- and stats-time view)."""
    from repro.util import format_table

    rows = [
        [
            a.window,
            a.cycle,
            a.controller,
            a.kind,
            a.value,
            ",".join(map(str, a.nodes)) or "-",
        ]
        for a in trace.actions
    ]
    return format_table(
        ["window", "cycle", "controller", "action", "value", "nodes"],
        rows,
        title=f"{title} ({trace.n_actions}, final gate period "
        f"{trace.final_throttle_period})",
    )


def _cmd_control_run(args: argparse.Namespace) -> int:
    from repro.experiments import simulate_scenario
    from repro.util import format_table

    scenario = _control_scenario(args)
    topo, stats = simulate_scenario(scenario)
    rows: list[list[object]] = [
        ["topology", topo.name],
        ["status", _status(stats.drained)],
        ["cycles", stats.cycles],
        ["packets delivered", stats.packet_latencies.size],
        ["avg latency (clk)", _fmt_latency(round(stats.avg_latency, 2) if stats.packet_latencies.size else math.nan)],
    ]
    if stats.closed_loop is not None:
        rows += _closed_loop_rows(stats.closed_loop)
    print(format_table(["metric", "value"], rows, title=scenario.label))
    if stats.control is not None:
        print(_control_actions_table(stats.control))
    if not stats.drained:
        print(
            "note: the run did not drain within the cycle budget "
            "(offered demand beyond this operating point)."
        )
    if args.out:
        if stats.telemetry is None:
            print(
                "error: --out needs windowed telemetry; pass --window > 0",
                file=sys.stderr,
            )
            return 2
        from repro.telemetry import power_trace, save_telemetry_npz

        extra: dict[str, object] = {"scenario": scenario.to_json()}
        if stats.closed_loop is not None:
            extra["closed_loop"] = stats.closed_loop.to_json()
        if stats.control is not None:
            extra["control_trace"] = stats.control.to_json()
        save_telemetry_npz(
            args.out, stats.telemetry, power_trace(topo, stats.telemetry), extra=extra
        )
        print(f"control run written to {args.out} (byte-deterministic)")
    return 0


def _cmd_control_stats(args: argparse.Namespace) -> int:
    from repro.control import ClosedLoopStats, ControlTrace
    from repro.telemetry import load_telemetry_npz
    from repro.util import format_table

    _, _, header = load_telemetry_npz(args.file)
    extra = header.get("extra", {})
    closed = extra.get("closed_loop")
    control = extra.get("control_trace")
    if closed is None and control is None:
        print(
            f"error: {args.file} holds no closed-loop/control record "
            "(written by `repro control run --out`?)",
            file=sys.stderr,
        )
        return 2
    title = str(extra.get("scenario", {}).get("name") or args.file)
    if closed is not None:
        cl = ClosedLoopStats.from_json(closed)
        print(
            format_table(
                ["metric", "value"], _closed_loop_rows(cl), title=f"{title} — closed loop"
            )
        )
    if control is not None:
        trace = ControlTrace.from_json(control)
        print(_control_actions_table(trace, title=f"{title} — control actions"))
    return 0


def _cmd_control_knee(args: argparse.Namespace) -> int:
    from repro.control import locate_knee
    from repro.experiments import Runner
    from repro.util import format_table

    result = locate_knee(
        lo=args.lo,
        hi=args.hi,
        tolerance=args.tol,
        runner=Runner(jobs=args.jobs),
        model=args.model,
        traffic=args.traffic,
        width=args.width,
        height=args.height,
        cycles=args.cycles,
        window=args.window,
        packet_flits=args.packet_flits,
        drain_budget=args.drain_budget,
        seed=args.seed,
        engine=args.engine,
        **_parse_params(args.param),
    )
    rows = [
        [
            f"{p.rate:g}",
            "SATURATED" if p.saturated else "stable",
            "-" if p.onset_cycle is None else p.onset_cycle,
            "cache" if p.cached else "simulated",
        ]
        for p in result.probes
    ]
    print(
        format_table(
            ["rate", "verdict", "onset cycle", "source"],
            rows,
            title=f"knee search — {args.model}/{args.traffic} "
            f"{args.width}x{args.height}",
        )
    )
    grid_points = math.ceil((args.hi - args.lo) / args.tol) + 1
    print(
        f"knee at r = {result.knee_rate:g} (bracket {result.lo:g}..{result.hi:g}, "
        f"tolerance {result.tolerance:g}) in {result.n_simulations} simulations "
        f"— an equivalent sweep is {grid_points} points."
    )
    return 0


def _cmd_workload_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import Runner, scenario_family
    from repro.util import format_table

    rates = np.linspace(args.min_rate, args.max_rate, args.points)
    scenarios = scenario_family(
        "workload-saturation",
        rates=[float(r) for r in rates],
        model=args.model,
        traffic=args.traffic,
        hops=args.hops,
        cycles=args.cycles,
        packet_flits=args.packet_flits,
        drain_budget=args.drain_budget,
        seed=args.seed,
        engine=args.engine,
        **_parse_params(args.param),
    )
    results = Runner(jobs=args.jobs).run(scenarios)
    rows = [
        [
            res.scenario.traffic.injection_rate,
            _fmt_latency(res.metrics["avg_latency"]),
            _fmt_latency(res.metrics["p99_latency"]),
            _status(res.metrics["drained"]),
        ]
        for res in results
    ]
    topo_name = results[0].metrics["topology_name"] if results else "mesh"
    print(
        format_table(
            ["injection rate", "avg latency", "p99", "status"],
            rows,
            title=f"latency vs offered load — {args.model}/{args.traffic} "
            f"on {topo_name}",
        )
    )
    if any(not res.metrics["drained"] for res in results):
        print(
            "note: SATURATED points did not drain within the cycle budget "
            "(bursty models saturate at or below the Bernoulli point)."
        )
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import discover, registered_benchmarks
    from repro.util import format_table

    discover(args.dir)
    benches = registered_benchmarks(tags=args.tag)
    rows = [
        [b.name, ",".join(b.tags) or "-", b.description or "-"] for b in benches
    ]
    print(format_table(["benchmark", "tags", "description"], rows, title="benchmarks"))
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import BenchSuite, discover, registered_benchmarks
    from repro.util import format_table

    discover(args.dir)
    benches = registered_benchmarks(tags=args.tag, names=args.name)
    if not benches:
        print("error: no benchmarks match the given filters", file=sys.stderr)
        return 2
    suite = BenchSuite(args.out, quick=args.quick)
    results = suite.run(benches)
    rows = [
        [
            res.name,
            res.repeats,
            res.median_ns / 1e6,
            res.stdev_ns / 1e6,
            "-" if res.points_per_sec is None else f"{res.points_per_sec:,.1f}",
        ]
        for res in results
    ]
    print(
        format_table(
            ["benchmark", "repeats", "median (ms)", "stdev (ms)", "points/sec"],
            rows,
            title=f"repro bench ({'quick' if args.quick else 'calibrated'} mode)",
        )
    )
    print(f"records written to {suite.results_dir}/BENCH_<name>.json")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare
    from repro.util import format_table

    cmp = compare(args.old, args.new, threshold=args.threshold)
    rows = [
        [
            d.name,
            d.old_median_ns / 1e6,
            d.new_median_ns / 1e6,
            f"{d.ratio:.3f}",
            "REGRESSION"
            if d.ratio > cmp.threshold
            else (
                f"improved {d.speedup:.2f}x"
                if d.ratio < 1.0 / cmp.threshold
                else "ok"
            ),
        ]
        for d in cmp.deltas
    ]
    print(
        format_table(
            ["benchmark", "old median (ms)", "new median (ms)", "new/old", "verdict"],
            rows,
            title=f"bench compare (threshold {cmp.threshold:g}x)",
        )
    )
    for d in cmp.improvements:
        print(
            f"IMPROVED: {d.name} {d.speedup:.2f}x faster "
            f"({d.old_median_ns / 1e6:.2f} ms -> {d.new_median_ns / 1e6:.2f} ms)"
        )
    for name in cmp.missing:
        print(f"MISSING: {name} (in old recording, absent from new)")
    for name in cmp.added:
        print(f"added: {name} (no baseline yet; not gated)")
    if cmp.ok:
        improved = (
            f", {len(cmp.improvements)} improvement(s)"
            if cmp.improvements
            else ""
        )
        print(f"gate: OK ({len(cmp.deltas)} benchmark(s) compared{improved})")
        return 0
    print(
        f"gate: FAIL ({len(cmp.regressions)} regression(s), "
        f"{len(cmp.missing)} missing)"
    )
    return 1


_DEFAULT_SERVICE_URL = "http://127.0.0.1:8032"


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    slo_rules = ()
    if args.slo_rules:
        from repro.obs import load_slo_rules

        slo_rules = load_slo_rules(args.slo_rules)
    return serve(
        args.host,
        args.port,
        args.state_dir,
        jobs=args.jobs,
        log_level=args.log_level,
        log_json=args.log_json,
        sample_interval=args.sample_interval,
        slo_rules=slo_rules,
    )


def _service_client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.url, timeout=args.timeout)


def _print_job(job: dict, *, as_json: bool) -> None:
    import json

    if as_json:
        print(json.dumps(job, sort_keys=True))
        return
    extra = ""
    if job.get("duration_s") is not None:
        extra = f" in {job['duration_s']:g}s"
    if job.get("error"):
        extra += f" — {job['error']}"
    print(
        f"{job['job_id']}: {job['state']} "
        f"({job['points_done']}/{job['n_points']} points, "
        f"{job['cache_hits']} cache hits{extra})"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import REQUEST_VERSION, ServiceError

    if args.spec:
        request = json.loads(pathlib.Path(args.spec).read_text())
    else:
        if not args.family:
            print("error: pass --family NAME or --spec FILE", file=sys.stderr)
            return 2
        params = _parse_params(args.param)
        params.setdefault("engine", args.engine)
        request = {
            "version": REQUEST_VERSION,
            "family": args.family,
            "params": params,
        }
    if args.jobs != 1:
        request["jobs"] = args.jobs
    if args.profile:
        request["profile"] = True
    client = _service_client(args)
    try:
        job = client.submit(request)
        if args.wait:
            job = client.wait(
                job["job_id"], timeout=args.timeout, poll=args.poll_interval
            )
    except ServiceError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 2
    _print_job(job, as_json=args.json)
    return 0 if job["state"] != "failed" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from repro.service import ServiceError

    if args.poll_interval <= 0:
        print("error: --poll-interval must be > 0 seconds", file=sys.stderr)
        return 2
    client = _service_client(args)
    try:
        if args.watch:
            from repro.obs import render_progress_line

            shown = 0
            while True:
                doc = client.progress(args.job_id)
                if args.json:
                    print(json.dumps(doc, sort_keys=True))
                else:
                    print(render_progress_line(doc))
                shown += 1
                if doc["state"] in ("done", "failed"):
                    return 0 if doc["state"] != "failed" else 1
                if args.watch_count and shown >= args.watch_count:
                    return 0
                try:
                    _time.sleep(args.poll_interval)
                except KeyboardInterrupt:
                    return 0
        if args.wait:
            job = client.wait(
                args.job_id, timeout=args.timeout, poll=args.poll_interval
            )
        else:
            job = client.status(args.job_id)
    except ServiceError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 2
    _print_job(job, as_json=args.json)
    return 0 if job["state"] != "failed" else 1


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceError

    client = _service_client(args)
    try:
        if args.out:
            payload = client.result_npz(args.job_id, out=args.out)
            print(f"wrote {len(payload)} bytes to {args.out}")
            return 0
        doc = client.result(args.job_id)
    except ServiceError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(doc, sort_keys=True))
        return 0
    from repro.util import format_table

    metric_keys = sorted({k for m in doc["metrics"] for k in m})
    rows = [
        [i] + [_fmt_latency(m.get(k, "-")) for k in metric_keys]
        for i, m in enumerate(doc["metrics"])
    ]
    release = doc["release"]
    print(
        format_table(
            ["point"] + metric_keys,
            rows,
            title=f"{doc['job_id']} — release {release['release']}",
        )
    )
    print(
        f"{doc['n_points']} points, {doc['cache_hits']} cache hits; "
        f"npz export: repro fetch {doc['job_id']} --out results.npz"
    )
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import format_eta
    from repro.service import ServiceError
    from repro.util import format_table

    client = _service_client(args)
    try:
        doc = client.jobs(state=args.state)
    except ServiceError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(doc, sort_keys=True))
        return 0
    rows = []
    for j in doc["jobs"]:
        n = j["n_points"]
        done = j["points_done"]
        pct = 100.0 * done / n if n else 0.0
        progress = j.get("progress") or {}
        if j["state"] == "running":
            eta = format_eta(progress.get("eta_s"))
        elif j["state"] == "done":
            eta = "0s"
        else:
            eta = "-"
        rows.append(
            [
                j["job_id"],
                j["state"],
                f"{done}/{n} ({pct:.0f}%)",
                eta,
                j["cache_hits"],
                "-" if j.get("duration_s") is None else f"{j['duration_s']:g}",
                j.get("resumed", 0) or "-",
            ]
        )
    cache = doc["cache"]
    title = "experiment service jobs"
    if args.state:
        title += f" ({args.state})"
    print(
        format_table(
            [
                "job",
                "state",
                "progress",
                "eta",
                "cache hits",
                "duration (s)",
                "resumed",
            ],
            rows,
            title=title,
        )
    )
    print(
        f"shared cache: {cache['size']} entries "
        f"({cache['hits']} hits / {cache['misses']} misses this run)"
    )
    return 0


def _cmd_obs_metrics(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from repro.service import ServiceError
    from repro.util import format_table

    if args.json and (args.prom or args.watch is not None):
        print(
            "error: --json cannot combine with --prom/--watch",
            file=sys.stderr,
        )
        return 2

    client = _service_client(args)

    def _hist_row(name: str, h: dict) -> list:
        from repro.obs import percentile_from_snapshot

        if h["count"] == 0:
            return ["histogram", name, "n=0"]
        p50 = percentile_from_snapshot(h, 0.50)
        p99 = percentile_from_snapshot(h, 0.99)
        return [
            "histogram",
            name,
            f"n={h['count']} sum={h['sum']:.3f} p50={p50:.3g} p99={p99:.3g}",
        ]

    def _render(clear: bool) -> int:
        try:
            doc = client.metrics()
        except ServiceError as exc:
            print(f"error ({exc.code}): {exc}", file=sys.stderr)
            return 2
        if clear:
            print("\x1b[2J\x1b[H", end="")
        if args.prom:
            # The same formatter the server's root /metrics uses, run
            # client-side over the fetched JSON snapshot.
            from repro.obs import render_prometheus

            print(render_prometheus(doc["metrics"]), end="")
            return 0
        if args.json:
            print(json.dumps(doc, sort_keys=True))
            return 0
        metrics = doc["metrics"]
        rows = [
            ["counter", name, value]
            for name, value in sorted(metrics["counters"].items())
        ]
        rows += [
            ["gauge", name, value]
            for name, value in sorted(metrics["gauges"].items())
        ]
        rows += [
            _hist_row(name, h)
            for name, h in sorted(metrics["histograms"].items())
        ]
        print(
            format_table(["kind", "metric", "value"], rows, title="service metrics")
        )
        cache = doc["cache"]
        print(
            f"shared cache: {cache['size']} entries "
            f"({cache['hits']} hits / {cache['misses']} misses this run)"
        )
        return 0

    if args.watch is None:
        return _render(clear=False)
    if args.watch <= 0:
        print("error: --watch interval must be > 0 seconds", file=sys.stderr)
        return 2
    shown = 0
    while True:
        rc = _render(clear=shown > 0)
        if rc:
            return rc
        shown += 1
        if args.watch_count and shown >= args.watch_count:
            return 0
        try:
            _time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from repro.obs import render_top
    from repro.service import ServiceError

    if args.interval <= 0:
        print("error: --interval must be > 0 seconds", file=sys.stderr)
        return 2
    client = _service_client(args)

    def _completion_deltas() -> list[float]:
        # Per-sample increments of the cumulative completed-points
        # counter — the footer sparkline. Absent history (sampler off,
        # metric not yet sampled) degrades to no sparkline.
        try:
            hist = client.history("scheduler.points_completed")
        except ServiceError:
            return []
        pts = hist.get("points") or []
        return [
            max(0.0, float(pts[i][1]) - float(pts[i - 1][1]))
            for i in range(1, len(pts))
        ]

    shown = 0
    while True:
        try:
            doc = client.jobs()
        except ServiceError as exc:
            print(f"error ({exc.code}): {exc}", file=sys.stderr)
            return 2
        # Flatten each job's live `progress` sub-document into the row
        # shape render_top consumes (the /progress endpoint shape).
        flat = []
        for j in doc["jobs"]:
            merged = dict(j)
            merged.update(j.get("progress") or {})
            flat.append(merged)
        if args.json:
            print(json.dumps({"jobs": flat}, sort_keys=True))
        else:
            if shown:
                print("\x1b[2J\x1b[H", end="")
            print(render_top(flat, sparkline=_completion_deltas()))
        shown += 1
        if args.count and shown >= args.count:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceError
    from repro.util import format_table

    client = _service_client(args)
    try:
        doc = client.alerts()
    except ServiceError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(doc, sort_keys=True))
        return 1 if doc["firing"] else 0
    if not doc["rules"]:
        print("no SLO rules configured (start the service with --slo-rules FILE)")
        return 0
    rows = [
        [
            r["name"],
            r["state"],
            r["metric"],
            r["signal"],
            f"{r['op']} {r['threshold']:g}",
            "-" if r["value"] is None else f"{r['value']:g}",
        ]
        for r in doc["rules"]
    ]
    print(
        format_table(
            ["rule", "state", "metric", "signal", "threshold", "value"],
            rows,
            title="SLO rules",
        )
    )
    for e in doc["events"][-5:]:
        val = "-" if e["value"] is None else f"{e['value']:g}"
        print(
            f"  {e['state']:<8} {e['rule']} "
            f"value={val} threshold={e['threshold']:g}"
        )
    firing = doc["firing"]
    print(f"firing: {', '.join(firing) if firing else 'none'}")
    return 1 if firing else 0


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceError

    client = _service_client(args)
    try:
        doc = client.spans(args.job_id, deterministic=args.deterministic)
    except ServiceError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(doc, sort_keys=True))
        return 0
    spans = doc["spans"]
    if not spans:
        print(f"{doc['job_id']}: no spans recorded")
        return 0
    known = {s["span_id"] for s in spans}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s["parent_id"] if s["parent_id"] in known else None
        children.setdefault(parent, []).append(s)

    def _walk(parent: str | None, depth: int) -> None:
        for s in children.get(parent, []):
            dur = s.get("duration_ns")
            timing = "" if dur is None else f" [{dur / 1e6:.3f} ms]"
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(s.get("attrs", {}).items())
            )
            line = f"{'  ' * depth}{s['name']}{timing}"
            print(f"{line} {attrs}" if attrs else line)
            _walk(s["span_id"], depth + 1)

    print(f"{doc['job_id']}: {doc['n_spans']} span(s)")
    _walk(None, 0)
    return 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    import json

    from repro.experiments import scenario_family
    from repro.obs import profile_simulation, render_profiles

    if args.job:
        from repro.obs import SweepProfile, render_sweep_profile
        from repro.service import ServiceError

        client = _service_client(args)
        try:
            doc = client.profile(args.job, deterministic=args.deterministic)
        except ServiceError as exc:
            print(f"error ({exc.code}): {exc}", file=sys.stderr)
            return 2
        if args.json or args.deterministic:
            # The deterministic form drops every timing field, so JSON
            # is its only rendering.
            print(json.dumps(doc, sort_keys=True))
            return 0
        print(
            f"sweep profile: {doc['job_id']} "
            f"({doc['state']}, {doc['n_points']} points, "
            f"{doc['n_profiles']} profiled)"
        )
        print(render_sweep_profile(SweepProfile.from_json(doc)))
        return 0

    scenario = scenario_family(
        "saturation-sweep",
        rates=[args.rate],
        hops=args.hops,
        width=args.width,
        height=args.height,
        cycles=args.cycles,
        drain_budget=args.drain_budget,
        seed=args.seed,
    )[0]
    profiles = profile_simulation(scenario)
    if args.engine != "both":
        profiles = {k: v for k, v in profiles.items() if k == args.engine}
        if not profiles:
            print(
                f"error: the {args.engine} engine cannot run this scenario",
                file=sys.stderr,
            )
            return 2
    if args.json:
        print(
            json.dumps(
                {k: v.to_json() for k, v in profiles.items()}, sort_keys=True
            )
        )
        return 0
    print(f"per-phase engine profile: {scenario.label}")
    print(render_profiles(profiles))
    for engine in sorted(profiles):
        counts = profiles[engine].counts
        rendered = " ".join(f"{k}={counts[k]}" for k in sorted(counts))
        print(f"{engine} counts: {rendered}")
    return 0


def _add_service_client_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url",
        default=_DEFAULT_SERVICE_URL,
        help=f"service base URL (default {_DEFAULT_SERVICE_URL})",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="request/wait timeout in seconds",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )


def _add_engine_flags(
    parser: argparse.ArgumentParser, *, engine: bool = False
) -> None:
    """The one shared engine-selection surface for sweep-shaped commands.

    Every command that routes through the experiment engine takes the
    same ``--jobs`` flag here; simulation sweeps additionally take
    ``--engine`` (``engine=True``). Keeping the definitions in one
    helper keeps help text, defaults and choices identical everywhere.
    """
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment engine (1 = serial; "
        "results are identical either way)",
    )
    if engine:
        parser.add_argument(
            "--engine",
            choices=("interpreter", "batched"),
            default="interpreter",
            help="execution engine: the reference interpreter or the "
            "vectorized batched engine (bit-identical; telemetry/"
            "closed-loop/controller points fall back to the interpreter)",
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="HyPPI NoC reproduction toolkit"
    )
    parser.add_argument("--seed", type=int, default=0, help="traffic RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p3 = sub.add_parser("table3", help="Table III: capability and R")
    _add_engine_flags(p3)
    p3.set_defaults(func=_cmd_table3)
    p4 = sub.add_parser("table4", help="Table IV: static power")
    _add_engine_flags(p4)
    p4.set_defaults(func=_cmd_table4)
    sub.add_parser("fig3", help="Fig. 3: link CLEAR sweep").set_defaults(
        func=_cmd_fig3
    )
    p5 = sub.add_parser("fig5", help="Fig. 5: design-space exploration")
    p5.add_argument("--injection-rate", type=float, default=0.1)
    p5.add_argument(
        "--hops",
        type=int,
        nargs="+",
        default=None,
        help="express hop counts to sweep (default: 3 5 15)",
    )
    _add_engine_flags(p5)
    p5.set_defaults(func=_cmd_fig5)
    p6 = sub.add_parser("fig6", help="Fig. 6: NPB trace simulation")
    p6.add_argument("--kernel", choices=["FT", "CG", "MG", "LU"], default="CG")
    p6.add_argument("--volume-scale", type=float, default=3e-4)
    _add_engine_flags(p6, engine=True)
    p6.set_defaults(func=_cmd_fig6)
    p6t = sub.add_parser("table6", help="Table VI: optical routers")
    _add_engine_flags(p6t)
    p6t.set_defaults(func=_cmd_table6)
    p8 = sub.add_parser("fig8", help="Fig. 8: all-optical projections")
    p8.add_argument("--amortization-rate", type=float, default=0.001)
    p8.set_defaults(func=_cmd_fig8)
    ps = sub.add_parser("sweep", help="latency vs offered load")
    ps.add_argument("--hops", type=int, default=0, choices=[0, 3, 5, 15])
    ps.add_argument("--min-rate", type=float, default=0.02)
    ps.add_argument("--max-rate", type=float, default=0.3)
    ps.add_argument("--points", type=int, default=5)
    ps.add_argument("--cycles", type=int, default=1000)
    ps.add_argument(
        "--drain-budget",
        type=int,
        default=200_000,
        help="post-injection cycles before a point is declared saturated",
    )
    _add_engine_flags(ps, engine=True)
    ps.set_defaults(func=_cmd_sweep)

    pw = sub.add_parser(
        "workload", help="workload models & trace files (list/gen/stats/sweep)"
    )
    wsub = pw.add_subparsers(dest="workload_command", required=True)
    pwl = wsub.add_parser("list", help="list registered workload models")
    pwl.set_defaults(func=_cmd_workload_list)

    def _add_model_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--model", default="onoff", help="workload model name (see list)"
        )
        p.add_argument(
            "--traffic",
            default="uniform",
            help="destination matrix generator (temporal models)",
        )
        p.add_argument("--cycles", type=int, default=1000)
        p.add_argument("--packet-flits", type=int, default=1)
        p.add_argument(
            "--param",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="extra model/traffic parameter (repeatable); values are "
            "Python literals, e.g. --param duty=0.25 "
            "--param hotspot_nodes=[0,119]",
        )

    pwg = wsub.add_parser(
        "gen", help="generate a trace file (byte-deterministic npz format)"
    )
    _add_model_flags(pwg)
    pwg.add_argument("--rate", type=float, default=0.1, help="mean flits/node/cycle")
    pwg.add_argument("--width", type=int, default=16)
    pwg.add_argument("--height", type=int, default=16)
    pwg.add_argument("--out", required=True, help="output trace path (.npz)")
    pwg.set_defaults(func=_cmd_workload_gen)
    pws = wsub.add_parser("stats", help="summarize a stored trace file")
    pws.add_argument("file", help="trace file (npz or text format)")
    pws.add_argument("--window", type=int, default=64, help="burstiness window")
    pws.add_argument("--gap", type=int, default=64, help="phase-gap threshold")
    pws.set_defaults(func=_cmd_workload_stats)
    pwi = wsub.add_parser(
        "import",
        help="import a BookSim/Netrace-style text dump into the npz store",
    )
    pwi.add_argument("input", help="external text trace (cycle src dst [size])")
    pwi.add_argument("--out", required=True, help="output trace path (.npz)")
    pwi.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="node count (default: inferred as max endpoint + 1)",
    )
    pwi.add_argument(
        "--name", default=None, help="trace name (default: input file stem)"
    )
    pwi.set_defaults(func=_cmd_workload_import)
    pww = wsub.add_parser(
        "sweep", help="latency vs offered load for any workload model"
    )
    _add_model_flags(pww)
    pww.add_argument("--hops", type=int, default=0, choices=[0, 3, 5, 15])
    pww.add_argument("--min-rate", type=float, default=0.02)
    pww.add_argument("--max-rate", type=float, default=0.3)
    pww.add_argument("--points", type=int, default=5)
    pww.add_argument("--drain-budget", type=int, default=200_000)
    _add_engine_flags(pww, engine=True)
    pww.set_defaults(func=_cmd_workload_sweep)

    pt = sub.add_parser(
        "telemetry",
        help="time-resolved profiling: windowed activity, power, saturation "
        "onset (run/stats/export)",
    )
    tsub = pt.add_subparsers(dest="telemetry_command", required=True)

    def _add_profile_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--model", default="onoff", help="workload model (see workload list)"
        )
        p.add_argument(
            "--traffic", default="uniform", help="destination matrix generator"
        )
        p.add_argument("--rate", type=float, default=0.1, help="mean flits/node/cycle")
        p.add_argument("--width", type=int, default=8)
        p.add_argument("--height", type=int, default=8)
        p.add_argument("--cycles", type=int, default=4000)
        p.add_argument(
            "--window", type=int, default=128, help="telemetry window (cycles)"
        )
        p.add_argument("--packet-flits", type=int, default=1)
        p.add_argument("--drain-budget", type=int, default=200_000)
        p.add_argument(
            "--param",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="extra model/traffic parameter (repeatable)",
        )
        p.add_argument(
            "--max-rows",
            type=int,
            default=24,
            help="window rows shown before the report elides the middle",
        )

    ptr = tsub.add_parser(
        "run", help="profile one workload run and print the windowed report"
    )
    _add_profile_flags(ptr)
    ptr.add_argument(
        "--out", default=None, help="also save the telemetry npz dump here"
    )
    ptr.set_defaults(func=_cmd_telemetry_run)
    pte = tsub.add_parser(
        "export", help="profile and save a byte-deterministic telemetry npz"
    )
    _add_profile_flags(pte)
    pte.add_argument("--out", required=True, help="output telemetry path (.npz)")
    pte.set_defaults(func=_cmd_telemetry_export)
    pts = tsub.add_parser("stats", help="report a stored telemetry npz file")
    pts.add_argument("file", help="telemetry file written by run/export")
    pts.add_argument("--max-rows", type=int, default=24)
    pts.set_defaults(func=_cmd_telemetry_stats)
    pth = tsub.add_parser(
        "heatmap",
        help="render per-link windowed utilization from a telemetry npz",
    )
    pth.add_argument("file", help="telemetry file written by run/export")
    pth.add_argument(
        "--csv", action="store_true", help="exact CSV values instead of shading"
    )
    pth.add_argument(
        "--top",
        type=int,
        default=None,
        help="only the N busiest links (default: all)",
    )
    pth.set_defaults(func=_cmd_telemetry_heatmap)

    pc = sub.add_parser(
        "control",
        help="closed-loop workloads & adaptive control (run/stats/knee)",
    )
    csub = pc.add_subparsers(dest="control_command", required=True)

    def _add_control_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--model", default="bernoulli", help="demand model (see workload list)"
        )
        p.add_argument(
            "--traffic", default="uniform", help="destination matrix generator"
        )
        p.add_argument("--rate", type=float, default=0.1, help="demand flits/node/cycle")
        p.add_argument("--width", type=int, default=8)
        p.add_argument("--height", type=int, default=8)
        p.add_argument("--cycles", type=int, default=2000)
        p.add_argument("--packet-flits", type=int, default=1)
        p.add_argument("--drain-budget", type=int, default=200_000)
        p.add_argument(
            "--param",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="extra model/traffic parameter (repeatable)",
        )

    pcr = csub.add_parser(
        "run", help="run one closed-loop / controlled point, print its record"
    )
    _add_control_flags(pcr)
    pcr.add_argument(
        "--outstanding",
        type=int,
        default=4,
        help="per-source outstanding-request window (0 = open loop)",
    )
    pcr.add_argument(
        "--think", type=int, default=0, help="destination think time (cycles)"
    )
    pcr.add_argument("--reply-flits", type=int, default=1)
    pcr.add_argument(
        "--window",
        type=int,
        default=0,
        help="telemetry/control window in cycles (0 = no sampling)",
    )
    pcr.add_argument(
        "--controllers",
        default="",
        help="comma-separated online controllers (throttle, vc-bias); "
        "needs --window > 0",
    )
    pcr.add_argument(
        "--out", default=None, help="save the telemetry+control npz dump here"
    )
    pcr.set_defaults(func=_cmd_control_run)
    pcs = csub.add_parser(
        "stats", help="report a stored closed-loop/control npz file"
    )
    pcs.add_argument("file", help="file written by `control run --out`")
    pcs.set_defaults(func=_cmd_control_stats)
    pck = csub.add_parser(
        "knee",
        help="bisect the saturation knee in O(log) simulations",
    )
    _add_control_flags(pck)
    pck.add_argument("--lo", type=float, default=0.05, help="stable bracket end")
    pck.add_argument("--hi", type=float, default=0.9, help="saturated bracket end")
    pck.add_argument("--tol", type=float, default=0.02, help="rate tolerance")
    pck.add_argument(
        "--window", type=int, default=128, help="telemetry window (cycles)"
    )
    _add_engine_flags(pck, engine=True)
    # Knee probes lean on the streaming detector, not budget exhaustion;
    # a modest drain budget keeps saturated probes cheap.
    pck.set_defaults(func=_cmd_control_knee, drain_budget=20_000)

    pb = sub.add_parser("bench", help="benchmark harness (run/list/compare)")
    bench_sub = pb.add_subparsers(dest="bench_command", required=True)
    pbl = bench_sub.add_parser("list", help="list registered benchmarks")
    pbl.add_argument("--dir", default="benchmarks", help="benchmark definitions dir")
    pbl.add_argument("--tag", action="append", default=[], help="filter by tag")
    pbl.set_defaults(func=_cmd_bench_list)
    pbr = bench_sub.add_parser(
        "run", help="run benchmarks, write BENCH_<name>.json records"
    )
    pbr.add_argument("--dir", default="benchmarks", help="benchmark definitions dir")
    pbr.add_argument(
        "--out",
        default="benchmarks/results",
        help="results directory for BENCH_<name>.json + BENCH_SUITE.json",
    )
    pbr.add_argument(
        "--quick",
        action="store_true",
        help="single timed iteration per benchmark (smoke/CI mode)",
    )
    pbr.add_argument(
        "--tag",
        action="append",
        default=[],
        help="only benchmarks carrying all given tags (e.g. --tag smoke)",
    )
    pbr.add_argument(
        "--name", action="append", default=[], help="only the named benchmark(s)"
    )
    pbr.set_defaults(func=_cmd_bench_run)
    pbc = bench_sub.add_parser(
        "compare", help="gate a new recording against a baseline"
    )
    pbc.add_argument("old", help="baseline recording (suite or single record)")
    pbc.add_argument("new", help="new recording to gate")
    pbc.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="allowed slowdown factor before the gate fails (default 1.25)",
    )
    pbc.set_defaults(func=_cmd_bench_compare)

    psv = sub.add_parser(
        "serve", help="run the HTTP/JSON experiment service (repro.service)"
    )
    psv.add_argument("--host", default="127.0.0.1", help="bind address")
    psv.add_argument(
        "--port", type=int, default=8032, help="TCP port (0 picks a free one)"
    )
    psv.add_argument(
        "--state-dir",
        default=".repro-service",
        help="job records, shared cache and npz releases live here; "
        "a restarted service resumes unfinished jobs from it",
    )
    psv.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="structured-log threshold for the repro.* loggers "
        "(access log lines are info; per-request detail is debug)",
    )
    psv.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines instead of key=value text",
    )
    psv.add_argument(
        "--slo-rules",
        metavar="FILE",
        help="JSON file of SLO alert rules evaluated every sampling tick "
        "(see EXPERIMENTS.md §10 for the rule schema)",
    )
    psv.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        help="metrics time-series sampling period in seconds (default 1.0)",
    )
    _add_engine_flags(psv)
    psv.set_defaults(func=_cmd_serve)

    psub = sub.add_parser(
        "submit", help="submit a scenario family (or spec file) to the service"
    )
    psub.add_argument("--family", help="registered scenario family name")
    psub.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="family parameter (repeatable; values are literal-eval'd)",
    )
    psub.add_argument(
        "--spec", help="JSON file holding a full request document instead"
    )
    psub.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    psub.add_argument(
        "--profile",
        action="store_true",
        help="capture per-point phase profiles server-side (aggregate "
        "with: repro obs profile --job ID)",
    )
    psub.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="base polling interval for --wait (decorrelated jittered "
        "backoff grows it, capped at 5 s)",
    )
    _add_service_client_flags(psub)
    _add_engine_flags(psub, engine=True)
    psub.set_defaults(func=_cmd_submit)

    pst = sub.add_parser("status", help="one job's state and progress")
    pst.add_argument("job_id", help="job id returned by submit")
    pst.add_argument(
        "--wait", action="store_true", help="poll until done/failed"
    )
    pst.add_argument(
        "--watch",
        action="store_true",
        help="redraw a live progress line (bar, throughput, ETA) until "
        "the job reaches done/failed",
    )
    pst.add_argument(
        "--watch-count",
        type=int,
        default=0,
        metavar="N",
        help="with --watch, stop after N renders (0 = until terminal)",
    )
    pst.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="polling interval for --wait/--watch (--wait applies "
        "decorrelated jittered backoff, capped at 5 s)",
    )
    _add_service_client_flags(pst)
    pst.set_defaults(func=_cmd_status)

    pf = sub.add_parser(
        "fetch", help="fetch a finished job's metrics (or npz release)"
    )
    pf.add_argument("job_id", help="job id returned by submit")
    pf.add_argument(
        "--out", help="write the byte-deterministic npz release here"
    )
    _add_service_client_flags(pf)
    pf.set_defaults(func=_cmd_fetch)

    pj = sub.add_parser(
        "jobs", help="audit listing: job history plus cache counters"
    )
    pj.add_argument(
        "--state",
        choices=("queued", "running", "done", "failed"),
        help="only jobs in one lifecycle state (server-side filter)",
    )
    _add_service_client_flags(pj)
    pj.set_defaults(func=_cmd_jobs)

    pobs = sub.add_parser(
        "obs",
        help="observability: process metrics, live sweep top, SLO alerts, "
        "span traces, profiling",
    )
    obs_sub = pobs.add_subparsers(dest="obs_command", required=True)
    pom = obs_sub.add_parser(
        "metrics", help="running service's process-metrics snapshot"
    )
    pom.add_argument(
        "--prom",
        action="store_true",
        help="print in Prometheus text exposition format (same formatter "
        "as the server's root /metrics)",
    )
    pom.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        help="redraw the snapshot every SECONDS until interrupted",
    )
    pom.add_argument(
        "--watch-count",
        type=int,
        default=0,
        metavar="N",
        help="with --watch, stop after N renders (0 = forever)",
    )
    _add_service_client_flags(pom)
    pom.set_defaults(func=_cmd_obs_metrics)
    ptop = obs_sub.add_parser(
        "top",
        help="live per-job progress screen: bars, in-flight points, "
        "throughput, ETA",
    )
    ptop.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="redraw period (default 2.0)",
    )
    ptop.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="stop after N renders (0 = until interrupted)",
    )
    _add_service_client_flags(ptop)
    ptop.set_defaults(func=_cmd_obs_top)
    posl = obs_sub.add_parser(
        "slo",
        help="SLO rule states and firing/resolved alert history "
        "(exit 1 while any rule is firing)",
    )
    _add_service_client_flags(posl)
    posl.set_defaults(func=_cmd_obs_slo)
    pot = obs_sub.add_parser(
        "trace", help="span trace captured while a job executed"
    )
    pot.add_argument("job_id", help="job id returned by submit")
    pot.add_argument(
        "--deterministic",
        action="store_true",
        help="strip timing/pid fields (byte-stable across identical runs)",
    )
    _add_service_client_flags(pot)
    pot.set_defaults(func=_cmd_obs_trace)
    pop = obs_sub.add_parser(
        "profile",
        help="per-phase engine profile: one local point under both "
        "engines, or a service job's aggregated sweep (--job)",
    )
    pop.add_argument(
        "--job",
        metavar="JOB_ID",
        help="aggregate a service job's captured per-point profiles "
        "(requires the job was submitted with --profile)",
    )
    pop.add_argument(
        "--deterministic",
        action="store_true",
        help="with --job: structural JSON only, no timing fields "
        "(byte-stable across runs)",
    )
    pop.add_argument(
        "--url",
        default=_DEFAULT_SERVICE_URL,
        help=f"service base URL for --job (default {_DEFAULT_SERVICE_URL})",
    )
    pop.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="request timeout in seconds for --job",
    )
    pop.add_argument(
        "--rate", type=float, default=0.30, help="injection rate (flits/node/cycle)"
    )
    pop.add_argument("--width", type=int, default=8, help="mesh width")
    pop.add_argument("--height", type=int, default=8, help="mesh height")
    pop.add_argument(
        "--hops", type=int, default=0, help="express-link hop span (0 = plain mesh)"
    )
    pop.add_argument(
        "--cycles", type=int, default=1200, help="warm measurement window"
    )
    pop.add_argument(
        "--drain-budget", type=int, default=20_000, help="drain cycle cap"
    )
    pop.add_argument(
        "--engine",
        choices=("interpreter", "batched", "both"),
        default="both",
        help="which engine(s) to profile (default both)",
    )
    pop.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    pop.set_defaults(func=_cmd_obs_profile)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        rc = args.func(args)
    except ValueError as exc:
        # Domain validation (bad --jobs, --hops, rates, ...) should read
        # as a usage error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0 if rc is None else int(rc)
