"""Command-line interface: regenerate any of the paper's artefacts.

Usage::

    python -m repro table3              # Table III (C and R)
    python -m repro table4              # Table IV (static power)
    python -m repro fig5                # Fig. 5 design-space exploration
    python -m repro fig3                # Fig. 3 link CLEAR sweep
    python -m repro fig8                # Fig. 8 all-optical projections
    python -m repro table6              # Table VI router comparison
    python -m repro fig6 --kernel CG    # cycle-simulate one NPB kernel
    python -m repro sweep --hops 3      # latency vs injection rate

Each command prints the rendered ASCII table/figure to stdout; heavier
commands expose their main knobs as flags.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_table3(args: argparse.Namespace) -> None:
    from repro.analysis import (
        aggregate_capability_gbps,
        rate_of_utilization_increase,
    )
    from repro.topology import build_express_mesh, build_mesh
    from repro.traffic import soteriou_traffic
    from repro.util import format_table

    rows = []
    for hops in (0, 3, 5, 15):
        topo = build_mesh() if hops == 0 else build_express_mesh(hops=hops)
        c = aggregate_capability_gbps(topo) / topo.n_nodes
        r = rate_of_utilization_increase(topo, soteriou_traffic(topo, seed=args.seed))
        rows.append(["plain mesh" if hops == 0 else f"hops={hops}", c, r])
    print(format_table(["topology", "C (Gb/s)", "R"], rows, title="Table III"))


def _cmd_table4(args: argparse.Namespace) -> None:
    from repro.analysis import network_static_power_w
    from repro.tech import Technology
    from repro.topology import build_express_mesh, build_mesh
    from repro.util import format_table

    rows = [["base mesh", "-", network_static_power_w(build_mesh())]]
    for tech in (Technology.ELECTRONIC, Technology.PHOTONIC, Technology.HYPPI):
        for hops in (3, 5, 15):
            topo = build_express_mesh(hops=hops, express_technology=tech)
            rows.append([tech.value, hops, network_static_power_w(topo)])
    print(
        format_table(
            ["express tech", "hops", "static power (W)"], rows, title="Table IV"
        )
    )


def _cmd_fig3(args: argparse.Namespace) -> None:
    from repro.core import sweep_link_clear
    from repro.tech import (
        ElectronicLinkModel,
        HyPPILinkModel,
        PhotonicLinkModel,
        PlasmonicLinkModel,
    )
    from repro.util import ascii_xy_plot

    lengths = np.logspace(-6, np.log10(0.05), 60)
    models = {
        "electronic": ElectronicLinkModel(),
        "photonic": PhotonicLinkModel(),
        "plasmonic": PlasmonicLinkModel(),
        "hyppi": HyPPILinkModel(),
    }
    sweeps = {n: sweep_link_clear(m, lengths) for n, m in models.items()}
    print(
        ascii_xy_plot(
            {n: (s.lengths_m, s.clear) for n, s in sweeps.items()},
            logx=True,
            logy=True,
            width=78,
            height=22,
            title="Fig. 3 — link CLEAR vs length (log-log)",
        )
    )


def _cmd_fig5(args: argparse.Namespace) -> None:
    from repro.core import DesignSpaceExplorer
    from repro.util import format_table

    explorer = DesignSpaceExplorer(injection_rate=args.injection_rate, seed=args.seed)
    points = explorer.explore()
    rows = [
        [
            pt.label,
            pt.evaluation.latency_clks,
            pt.evaluation.power.total_w,
            pt.evaluation.area_mm2,
            pt.evaluation.clear,
        ]
        for pt in points
    ]
    print(
        format_table(
            ["design point", "latency (clk)", "power (W)", "area (mm2)", "CLEAR"],
            rows,
            title=f"Fig. 5 (injection rate {explorer.injection_rate})",
        )
    )


def _cmd_fig6(args: argparse.Namespace) -> None:
    from repro.simulation import Simulator
    from repro.tech import Technology
    from repro.topology import build_express_mesh, build_mesh
    from repro.traffic import npb_trace
    from repro.util import format_table

    trace = npb_trace(args.kernel, volume_scale=args.volume_scale)
    rows = []
    for hops in (0, 3, 5, 15):
        topo = (
            build_mesh()
            if hops == 0
            else build_express_mesh(hops=hops, express_technology=Technology.HYPPI)
        )
        stats = Simulator(topo).run(trace)
        rows.append(
            ["mesh" if hops == 0 else f"hops={hops}", stats.avg_latency,
             stats.p99_latency, stats.drained]
        )
    print(
        format_table(
            ["network", "avg latency (clk)", "p99 (clk)", "drained"],
            rows,
            title=f"Fig. 6 — NPB {args.kernel.upper()} "
            f"(volume scale {args.volume_scale:g})",
        )
    )


def _cmd_table6(args: argparse.Namespace) -> None:
    from repro.optical import HYPPI_ROUTER, PHOTONIC_ROUTER, optimal_port_assignment
    from repro.util import format_table

    rows = []
    for name, router in (("photonic", PHOTONIC_ROUTER), ("hyppi", HYPPI_ROUTER)):
        lo, hi = router.loss_range_db()
        _, expected = optimal_port_assignment(router)
        rows.append(
            [name, router.control_energy_fj_per_bit(), f"{lo:.2f}-{hi:.2f}",
             router.area_um2(), expected]
        )
    print(
        format_table(
            ["router", "control (fJ/bit)", "loss (dB)", "area (um2)",
             "E[loss|XY] (dB)"],
            rows,
            title="Table VI",
        )
    )


def _cmd_fig8(args: argparse.Namespace) -> None:
    from repro.optical import project_all_optical
    from repro.util import format_table

    cmp = project_all_optical(
        amortization_injection_rate=args.amortization_rate, seed=args.seed
    )
    print(
        format_table(
            ["network", "latency (clk)", "E/bit (fJ)", "area (mm2)"],
            [p.radar_row() for p in cmp.all()],
            title="Fig. 8 — all-optical projections",
        )
    )
    print(
        f"energy ratio electronic/all-HyPPI: "
        f"{cmp.energy_ratio_electronic_over_hyppi:.0f}x"
    )


def _cmd_sweep(args: argparse.Namespace) -> None:
    from repro.simulation import latency_throughput_sweep
    from repro.tech import Technology
    from repro.topology import build_express_mesh, build_mesh
    from repro.traffic import uniform_traffic
    from repro.util import format_table

    topo = (
        build_mesh()
        if args.hops == 0
        else build_express_mesh(hops=args.hops, express_technology=Technology.HYPPI)
    )
    rates = np.linspace(args.min_rate, args.max_rate, args.points)
    points = latency_throughput_sweep(
        topo, uniform_traffic(topo), rates, cycles=args.cycles, seed=args.seed
    )
    rows = [
        [p.injection_rate, p.avg_latency, p.p99_latency, p.drained] for p in points
    ]
    print(
        format_table(
            ["injection rate", "avg latency", "p99", "drained"],
            rows,
            title=f"latency vs offered load — {topo.name}",
        )
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="HyPPI NoC reproduction toolkit"
    )
    parser.add_argument("--seed", type=int, default=0, help="traffic RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table3", help="Table III: capability and R").set_defaults(
        func=_cmd_table3
    )
    sub.add_parser("table4", help="Table IV: static power").set_defaults(
        func=_cmd_table4
    )
    sub.add_parser("fig3", help="Fig. 3: link CLEAR sweep").set_defaults(
        func=_cmd_fig3
    )
    p5 = sub.add_parser("fig5", help="Fig. 5: design-space exploration")
    p5.add_argument("--injection-rate", type=float, default=0.1)
    p5.set_defaults(func=_cmd_fig5)
    p6 = sub.add_parser("fig6", help="Fig. 6: NPB trace simulation")
    p6.add_argument("--kernel", choices=["FT", "CG", "MG", "LU"], default="CG")
    p6.add_argument("--volume-scale", type=float, default=3e-4)
    p6.set_defaults(func=_cmd_fig6)
    sub.add_parser("table6", help="Table VI: optical routers").set_defaults(
        func=_cmd_table6
    )
    p8 = sub.add_parser("fig8", help="Fig. 8: all-optical projections")
    p8.add_argument("--amortization-rate", type=float, default=0.001)
    p8.set_defaults(func=_cmd_fig8)
    ps = sub.add_parser("sweep", help="latency vs offered load")
    ps.add_argument("--hops", type=int, default=0, choices=[0, 3, 5, 15])
    ps.add_argument("--min-rate", type=float, default=0.02)
    ps.add_argument("--max-rate", type=float, default=0.3)
    ps.add_argument("--points", type=int, default=5)
    ps.add_argument("--cycles", type=int, default=1000)
    ps.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0
