"""Per-window trace rows for the service's streaming endpoint.

Interpreter-engine jobs sampled with ``SimSpec.telemetry_window > 0``
expose their time-resolved record over HTTP as newline-delimited JSON:
one prologue object, then one row per telemetry window (control actions
attached to the window they fired in). Rows are derived by replaying the
scenario through the engine's single evaluation recipe
(:func:`repro.experiments.simulate_scenario`); evaluation purity makes
the replay identical to the run whose summary metrics the job cached, so
the stream and the metrics never disagree.
"""

from __future__ import annotations

from typing import Any

from repro.experiments import Scenario, simulate_scenario

__all__ = ["window_rows"]


def window_rows(scenario: Scenario) -> list[dict[str, Any]]:
    """Prologue + per-window rows for one telemetry-enabled scenario.

    Raises ``ValueError`` for scenarios that carry no windowed telemetry
    (non-simulation kinds, ``telemetry_window == 0``, or batched-engine
    points — the vectorized engine keeps no per-window record).
    """
    if scenario.kind != "simulation" or scenario.sim is None:
        raise ValueError(
            f"{scenario.label}: only simulation scenarios stream windows"
        )
    if scenario.sim.telemetry_window < 1:
        raise ValueError(
            f"{scenario.label}: scenario has no telemetry "
            "(submit with sim.telemetry_window > 0)"
        )
    topo, stats = simulate_scenario(scenario)
    tel = stats.telemetry
    if tel is None:
        raise ValueError(f"{scenario.label}: run produced no telemetry")
    actions_by_window: dict[int, list[dict[str, Any]]] = {}
    if stats.control is not None:
        for a in stats.control.actions:
            actions_by_window.setdefault(int(a.window), []).append(
                {
                    "cycle": int(a.cycle),
                    "controller": a.controller,
                    "kind": a.kind,
                    "value": a.value,
                    "nodes": [int(n) for n in a.nodes],
                }
            )
    rows: list[dict[str, Any]] = [
        {
            "type": "prologue",
            "scenario": scenario.label,
            "topology": topo.name,
            "window_cycles": tel.window,
            "n_windows": tel.n_windows,
            "dropped_windows": tel.dropped_windows,
            "cycles": tel.cycles,
            "drained": bool(stats.drained),
        }
    ]
    for i in range(tel.n_windows):
        delivered = int(tel.delivered[i])
        latency_sum = int(tel.latency_sum[i])
        row: dict[str, Any] = {
            "type": "window",
            "window": i + tel.dropped_windows,
            "start": int(tel.starts[i]),
            "end": int(tel.ends[i]),
            "delivered": delivered,
            "avg_latency": (
                round(latency_sum / delivered, 6) if delivered else None
            ),
            "router_flits": int(tel.router_flits[i].sum()),
            "link_flits": int(tel.link_flits[i].sum()),
            "peak_link_flits": int(tel.link_flits[i].max())
            if tel.link_flits.shape[1]
            else 0,
            "occupied_vcs": int(tel.occupied_vcs[i].sum()),
            "in_flight": int(tel.in_flight[i]),
        }
        actions = actions_by_window.get(i + tel.dropped_windows)
        if actions:
            row["control_actions"] = actions
        rows.append(row)
    return rows
