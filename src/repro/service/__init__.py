"""Experiment service: the engine as a long-running, multi-tenant job API.

The first consumer of :mod:`repro` as a *library*: an HTTP/JSON service
(stdlib only — ``http.server``) that accepts scenario submissions, runs
them on a background scheduler, and publishes results as versioned,
byte-deterministic npz releases. Five pillars:

* :mod:`repro.service.schema` — the canonical, versioned submit-request
  schema; violations become structured 400 bodies;
* :mod:`repro.service.jobs` — job lifecycle records persisted per job
  for kill/restart resume;
* :mod:`repro.service.scheduler` — a single dispatcher thread feeding
  the existing :class:`~repro.experiments.Runner` via its
  ``submit``/``poll`` seam, checkpointing every completed point into a
  shared on-disk :class:`~repro.experiments.EvaluationCache` (duplicate
  or overlapping submissions never re-simulate);
* :mod:`repro.service.results` — versioned result releases through the
  npz archive primitives shared with the trace/telemetry stores;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  ThreadingHTTPServer front end and the stdlib client the
  ``repro submit/status/fetch`` CLI commands use.

The CLI exposes the server as ``repro serve``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.dashboard import DASHBOARD_HTML, render_dashboard
from repro.service.jobs import JOB_STATES, JobRecord, JobStore, sweep_hash
from repro.service.results import (
    RESULTS_FORMAT,
    RESULTS_VERSION,
    Release,
    ResultStore,
)
from repro.service.scheduler import (
    ExperimentScheduler,
    JobNotDone,
    JobNotFound,
)
from repro.service.schema import (
    REQUEST_VERSION,
    ParsedRequest,
    SchemaError,
    parse_request,
)
from repro.service.server import (
    ApiResponse,
    ExperimentApi,
    make_server,
    serve,
)

__all__ = [
    "DASHBOARD_HTML",
    "JOB_STATES",
    "REQUEST_VERSION",
    "RESULTS_FORMAT",
    "RESULTS_VERSION",
    "ApiResponse",
    "ExperimentApi",
    "ExperimentScheduler",
    "JobNotDone",
    "JobNotFound",
    "JobRecord",
    "JobStore",
    "ParsedRequest",
    "Release",
    "ResultStore",
    "SchemaError",
    "ServiceClient",
    "ServiceError",
    "make_server",
    "parse_request",
    "render_dashboard",
    "serve",
    "sweep_hash",
]
