"""Self-contained HTML dashboard for the experiment service.

One static page served at ``GET /dashboard`` (outside the API prefix,
like the root Prometheus ``/metrics``): zero dependencies, no build
step, no external assets — inline CSS and a small vanilla-JS loop that
polls the existing JSON API every two seconds:

* ``/api/v1/health`` — uptime, queue depth, cache size tiles;
* ``/api/v1/jobs`` — the jobs table with per-job progress bars (running
  jobs carry a live ``progress`` sub-document: throughput, ETA,
  in-flight points);
* ``/api/v1/metrics/history?metric=scheduler.points_completed`` — the
  completed-points series rendered as an SVG sparkline of per-interval
  deltas.

Keeping the page a module-level string keeps the HTTP handler trivial
(bytes out, no templating) and makes the content testable without a
browser.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML", "render_dashboard"]

DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro service dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
         max-width: 72rem; padding: 0 1rem;
         background: #11151a; color: #d8dee6; }
  h1 { font-size: 1.2rem; font-weight: 600; }
  h1 small { color: #7a8694; font-weight: 400; }
  .tiles { display: flex; gap: 1rem; flex-wrap: wrap; margin: 1rem 0; }
  .tile { background: #1a2028; border: 1px solid #2a323d;
          border-radius: 8px; padding: .7rem 1.1rem; min-width: 9rem; }
  .tile .v { font-size: 1.4rem; font-weight: 600; color: #e8eef5; }
  .tile .k { color: #7a8694; font-size: .8rem; text-transform: uppercase;
             letter-spacing: .05em; }
  table { border-collapse: collapse; width: 100%; margin-top: .5rem; }
  th, td { text-align: left; padding: .45rem .6rem;
           border-bottom: 1px solid #2a323d; white-space: nowrap; }
  th { color: #7a8694; font-weight: 500; font-size: .8rem;
       text-transform: uppercase; letter-spacing: .05em; }
  .bar { background: #2a323d; border-radius: 4px; width: 14rem;
         height: .8rem; overflow: hidden; }
  .bar i { display: block; height: 100%; background: #4da3ff; }
  .bar.done i { background: #3ecf8e; }
  .bar.failed i { background: #e5534b; }
  .state-running { color: #4da3ff; }
  .state-done { color: #3ecf8e; }
  .state-failed { color: #e5534b; }
  .state-queued { color: #d8b45a; }
  .spark { margin-top: 1.5rem; }
  .spark svg { width: 100%; height: 64px; }
  .spark polyline { fill: none; stroke: #4da3ff; stroke-width: 1.5; }
  .muted { color: #7a8694; }
  #err { color: #e5534b; }
</style>
</head>
<body>
<h1>repro experiment service <small id="meta"></small></h1>
<div id="err"></div>
<div class="tiles">
  <div class="tile"><div class="v" id="t-uptime">–</div><div class="k">uptime</div></div>
  <div class="tile"><div class="v" id="t-queue">–</div><div class="k">queue depth</div></div>
  <div class="tile"><div class="v" id="t-cache">–</div><div class="k">cache entries</div></div>
  <div class="tile"><div class="v" id="t-jobs">–</div><div class="k">jobs</div></div>
</div>
<table>
  <thead><tr>
    <th>job</th><th>state</th><th>progress</th><th>points</th>
    <th>cache hits</th><th>pt/s</th><th>eta</th><th>duration</th>
  </tr></thead>
  <tbody id="jobs"></tbody>
</table>
<div class="spark">
  <div class="k muted">points completed per sample interval</div>
  <svg id="spark" viewBox="0 0 320 64" preserveAspectRatio="none"></svg>
</div>
<script>
"use strict";
const API = "/api/v1";
const esc = s => String(s).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
function fmtUptime(s) {
  if (s == null) return "–";
  if (s < 90) return Math.round(s) + "s";
  if (s < 5400) return Math.round(s / 60) + "m";
  return (s / 3600).toFixed(1) + "h";
}
function fmtEta(s) {
  if (s == null) return "–";
  s = Math.max(0, Math.round(s));
  if (s < 60) return s + "s";
  return Math.floor(s / 60) + "m" + String(s % 60).padStart(2, "0") + "s";
}
function row(j) {
  const n = j.n_points || 0, done = j.points_done || 0;
  const pct = n ? (100 * done / n) : 0;
  const p = j.progress || {};
  const thr = p.throughput_pps ? p.throughput_pps.toFixed(2) : "–";
  const eta = j.state === "running" ? fmtEta(p.eta_s)
            : j.state === "done" ? "0s" : "–";
  const dur = j.duration_s != null ? j.duration_s.toFixed(1) + "s" : "–";
  const cls = j.state === "done" ? "done" : j.state === "failed" ? "failed" : "";
  return `<tr><td>${esc(j.job_id)}</td>` +
    `<td class="state-${esc(j.state)}">${esc(j.state)}</td>` +
    `<td><div class="bar ${cls}"><i style="width:${pct.toFixed(1)}%"></i></div></td>` +
    `<td>${done}/${n} (${pct.toFixed(0)}%)</td>` +
    `<td>${j.cache_hits ?? 0}</td><td>${thr}</td>` +
    `<td>${eta}</td><td>${dur}</td></tr>`;
}
function sparkline(points) {
  // Per-interval deltas of the cumulative completed-points counter.
  const deltas = [];
  for (let i = 1; i < points.length; i++)
    deltas.push(Math.max(0, points[i][1] - points[i - 1][1]));
  const tail = deltas.slice(-80);
  if (!tail.length) return "";
  const max = Math.max(...tail, 1);
  const step = 320 / Math.max(tail.length - 1, 1);
  const pts = tail.map((v, i) =>
    `${(i * step).toFixed(1)},${(60 - 56 * v / max).toFixed(1)}`);
  return `<polyline points="${pts.join(" ")}"/>`;
}
async function getJSON(path) {
  const resp = await fetch(path);
  if (!resp.ok) throw new Error(path + " -> HTTP " + resp.status);
  return resp.json();
}
async function refresh() {
  try {
    const health = await getJSON(API + "/health");
    document.getElementById("t-uptime").textContent = fmtUptime(health.uptime_s);
    document.getElementById("t-queue").textContent = health.queue_depth;
    document.getElementById("t-cache").textContent = health.cache_entries;
    const by = health.jobs_by_state || {};
    document.getElementById("t-jobs").textContent =
      Object.values(by).reduce((a, b) => a + b, 0);
    document.getElementById("meta").textContent =
      Object.entries(by).map(([k, v]) => `${v} ${k}`).join(" · ");
    const audit = await getJSON(API + "/jobs");
    document.getElementById("jobs").innerHTML =
      audit.jobs.slice().reverse().map(row).join("") ||
      '<tr><td colspan="8" class="muted">no jobs submitted yet</td></tr>';
    try {
      const hist = await getJSON(
        API + "/metrics/history?metric=scheduler.points_completed");
      document.getElementById("spark").innerHTML = sparkline(hist.points || []);
    } catch (e) { /* metric not sampled yet */ }
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = "refresh failed: " + e.message;
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""


def render_dashboard() -> str:
    """The dashboard page body (a function for symmetry/testability)."""
    return DASHBOARD_HTML
