"""Stdlib HTTP/JSON front end for the experiment scheduler.

A :class:`ThreadingHTTPServer` (one thread per connection, no runtime
dependencies) whose handler delegates every route to
:class:`ExperimentApi` — a transport-free request router that unit tests
drive directly, without a socket. Endpoints, all under ``/api/v1``:

=======  ==============================  =======================================
POST     ``/jobs``                       submit a request document -> job id
GET      ``/jobs``                       audit: job history + cache (``?state=``)
GET      ``/jobs/<id>``                  status/progress (points, cache hits)
GET      ``/jobs/<id>/progress``         live counts, throughput, ETA
GET      ``/jobs/<id>/profile``          aggregated per-phase sweep profile
GET      ``/jobs/<id>/ledger``           run-ledger export (``?deterministic=1``)
GET      ``/jobs/<id>/result``           JSON metrics + release provenance
GET      ``/jobs/<id>/result.npz``       byte-deterministic npz release export
GET      ``/jobs/<id>/trace?point=N``    NDJSON per-window telemetry/control
GET      ``/jobs/<id>/spans``            span trace captured while the job ran
GET      ``/metrics``                    process metrics registry snapshot
GET      ``/metrics/history``            sampled time-series (``?metric=&window=``)
GET      ``/alerts``                     SLO rule states + firing/resolved events
GET      ``/health``                     liveness + uptime/queue/cache gauges
=======  ==============================  =======================================

Two routes live *outside* the prefix: ``GET /metrics`` at the server
root serves the registry in Prometheus text exposition format (0.0.4)
for standard scrapers — the JSON form stays at ``/api/v1/metrics`` —
and ``GET /dashboard`` serves a self-contained zero-dependency HTML
dashboard (jobs table, progress bars, points-per-interval sparkline)
built on the JSON API.

A submit request may carry a ``traceparent`` header (W3C-style,
``00-<span id>-01``); the job's ``service.job`` span adopts that id as
its parent, so a tracing client can later merge the job's span records
(``/jobs/<id>/spans?format=records``) into its own trace as one tree.

Error bodies are structured (``{"error": {"code", "message", "path"}}``)
at every layer: schema violations are 400s, unknown jobs 404s, fetching
an unfinished job 409s. The trace endpoint streams newline-delimited
JSON rows as they serialize instead of buffering the document.

Every request is counted into the :mod:`repro.obs.metrics` registry
(total, by normalized route, by status class) and logged as a structured
access line (method, route, status, duration ms) through the
``repro.service.http`` logger — configure with ``repro serve
--log-level/--log-json``.
"""

from __future__ import annotations

import json
import pathlib
import signal
import threading
import time
from collections.abc import Iterator
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.obs.logs import fields, get_logger, setup_logging
from repro.obs.metrics import counter, histogram
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.promexp import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.obs.promexp import render_prometheus
from repro.obs.slo import SloRule
from repro.obs.trace import TRACEPARENT_HEADER, export_trace, parse_traceparent
from repro.service.scheduler import (
    ExperimentScheduler,
    JobNotDone,
    JobNotFound,
)
from repro.service.schema import REQUEST_VERSION, SchemaError

__all__ = ["ExperimentApi", "ApiResponse", "make_server", "serve"]

API_PREFIX = "/api/v1"
_MAX_BODY = 64 * 1024 * 1024

_http_log = get_logger("service.http")
_REQUESTS = counter("http.requests")
_REQUEST_MS = histogram("http.request_ms")


def _route_label(method: str, path: str) -> str:
    """Normalize a request path to a low-cardinality route label.

    Job ids collapse to ``<id>`` so per-route counters stay bounded no
    matter how many jobs a long-lived service accumulates.
    """
    if not path.startswith(API_PREFIX):
        return f"{method} (outside-api)"
    route = path[len(API_PREFIX):] or "/"
    parts = [p for p in route.split("/") if p]
    if parts and parts[0] == "jobs" and len(parts) > 1:
        parts[1] = "<id>"
    return f"{method} /" + "/".join(parts)


class ApiResponse:
    """One routed response: status, content type, body or row stream."""

    def __init__(
        self,
        status: int,
        *,
        body: bytes = b"",
        content_type: str = "application/json",
        stream: Iterator[bytes] | None = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.stream = stream

    @classmethod
    def json(cls, status: int, payload: Any) -> "ApiResponse":
        text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        return cls(status, body=text.encode("utf-8"))

    @classmethod
    def error(
        cls, status: int, code: str, message: str, path: list[Any] | None = None
    ) -> "ApiResponse":
        return cls.json(
            status,
            {"error": {"code": code, "message": message, "path": path or []}},
        )


class ExperimentApi:
    """Transport-free router mapping (method, path) onto the scheduler."""

    def __init__(self, scheduler: ExperimentScheduler) -> None:
        self.scheduler = scheduler

    # -- dispatch ------------------------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        headers: Any | None = None,
    ) -> ApiResponse:
        """Route one request, timing and counting it into the registry.

        ``headers`` is any case-insensitive mapping with ``.get`` (the
        stdlib handler passes its message object; transport-free tests
        pass a plain dict with lowercase keys or nothing).
        """
        start = time.perf_counter()
        response = self._handle(method, target, body, headers)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        label = _route_label(method, urlsplit(target).path.rstrip("/") or "/")
        _REQUESTS.inc()
        counter(f"http.requests.route.{label}").inc()
        counter(f"http.requests.status.{response.status}").inc()
        _REQUEST_MS.observe(elapsed_ms)
        return response

    def _handle(
        self, method: str, target: str, body: bytes, headers: Any | None = None
    ) -> ApiResponse:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/metrics" and method == "GET":
            # Prometheus text exposition lives at the server root, where
            # scrapers expect it; the JSON snapshot stays under the API.
            return ApiResponse(
                200,
                body=render_prometheus(metrics_snapshot()).encode("utf-8"),
                content_type=PROM_CONTENT_TYPE,
            )
        if path == "/dashboard" and method == "GET":
            from repro.service.dashboard import render_dashboard

            return ApiResponse(
                200,
                body=render_dashboard().encode("utf-8"),
                content_type="text/html; charset=utf-8",
            )
        if not path.startswith(API_PREFIX):
            return ApiResponse.error(
                404, "not_found", f"unknown path {path!r} (try {API_PREFIX}/health)"
            )
        route = path[len(API_PREFIX):] or "/"
        try:
            return self._route(method, route, query, body, headers)
        except SchemaError as exc:
            return ApiResponse.json(400, exc.to_json())
        except JobNotFound as exc:
            return ApiResponse.error(
                404, "not_found", f"no such job {exc.job_id!r}"
            )
        except JobNotDone as exc:
            return ApiResponse.error(
                409,
                "job_failed" if exc.record.state == "failed" else "job_not_done",
                str(exc),
            )
        except ValueError as exc:
            return ApiResponse.error(400, "invalid", str(exc))

    def _route(
        self,
        method: str,
        route: str,
        query: dict[str, list[str]],
        body: bytes,
        headers: Any | None = None,
    ) -> ApiResponse:
        if route == "/health":
            sched = self.scheduler
            return ApiResponse.json(
                200,
                {
                    "ok": True,
                    "api_version": REQUEST_VERSION,
                    "uptime_s": round(sched.uptime_s(), 3),
                    "queue_depth": sched.queue_depth(),
                    "jobs_by_state": sched.jobs_by_state(),
                    "cache_entries": len(sched.cache),
                },
            )
        if route == "/metrics":
            return ApiResponse.json(
                200,
                {
                    "metrics": metrics_snapshot(),
                    "cache": self.scheduler.cache_stats(),
                },
            )
        if route == "/metrics/history":
            metric = query.get("metric", [None])[-1]
            window = query.get("window", [""])[-1]
            window_s = float(window) if window else None
            return ApiResponse.json(
                200, self.scheduler.history_json(metric, window_s)
            )
        if route == "/alerts":
            return ApiResponse.json(200, self.scheduler.alerts_json())
        if route == "/jobs":
            if method == "POST":
                return self._submit(body, headers)
            if method == "GET":
                return self._audit(query)
            return ApiResponse.error(405, "method_not_allowed", f"{method} /jobs")
        if route.startswith("/jobs/"):
            parts = route[len("/jobs/"):].split("/")
            if method != "GET":
                return ApiResponse.error(
                    405, "method_not_allowed", f"{method} {route}"
                )
            job_id = parts[0]
            rest = parts[1:]
            if not rest:
                return ApiResponse.json(
                    200, self.scheduler.job(job_id).status_json()
                )
            if rest == ["progress"]:
                return ApiResponse.json(
                    200, self.scheduler.progress_json(job_id)
                )
            if rest == ["profile"]:
                deterministic = query.get("deterministic", ["0"])[-1] not in (
                    "0",
                    "",
                )
                return ApiResponse.json(
                    200,
                    self.scheduler.profile_json(
                        job_id, deterministic=deterministic
                    ),
                )
            if rest == ["ledger"]:
                return self._ledger(job_id, query)
            if rest == ["result"]:
                return self._result(job_id)
            if rest == ["result.npz"]:
                release = self.scheduler.release(job_id)
                return ApiResponse(
                    200,
                    body=release.read_bytes(),
                    content_type="application/octet-stream",
                )
            if rest == ["trace"]:
                return self._trace(job_id, query)
            if rest == ["spans"]:
                return self._spans(job_id, query)
        return ApiResponse.error(404, "not_found", f"unknown route {route!r}")

    # -- endpoint bodies -----------------------------------------------------

    def _submit(self, body: bytes, headers: Any | None = None) -> ApiResponse:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return ApiResponse.error(
                400, "invalid_json", f"request body is not valid JSON: {exc}"
            )
        trace_parent = None
        if headers is not None:
            trace_parent = parse_traceparent(headers.get(TRACEPARENT_HEADER))
        record = self.scheduler.submit(doc, trace_parent=trace_parent)
        return ApiResponse.json(202, {"job": record.status_json()})

    def _audit(self, query: dict[str, list[str]]) -> ApiResponse:
        state = query.get("state", [None])[-1]
        return ApiResponse.json(
            200,
            {
                "jobs": self.scheduler.audit_json(state),
                "cache": self.scheduler.cache_stats(),
            },
        )

    def _ledger(self, job_id: str, query: dict[str, list[str]]) -> ApiResponse:
        """The job's run-ledger export (``?deterministic=1`` canonical)."""
        from repro.obs.ledger import export_ledger

        deterministic = query.get("deterministic", ["0"])[-1] not in ("0", "")
        events = self.scheduler.ledger_events(job_id)
        doc = export_ledger(events, deterministic=deterministic)
        doc["job_id"] = job_id
        return ApiResponse.json(200, doc)

    def _result(self, job_id: str) -> ApiResponse:
        record = self.scheduler.job(job_id)
        metrics = self.scheduler.result_metrics(job_id)
        release = self.scheduler.release(job_id)
        return ApiResponse.json(
            200,
            {
                "job_id": record.job_id,
                "n_points": record.n_points,
                "cache_hits": record.cache_hits,
                "duration_s": record.duration_s,
                "release": release.to_json(),
                "spec_hashes": record.spec_hashes,
                "metrics": metrics,
            },
        )

    def _spans(self, job_id: str, query: dict[str, list[str]]) -> ApiResponse:
        """The span trace captured while ``job_id`` executed.

        ``?deterministic=1`` strips timing/pid fields, leaving only
        names, nesting and attributes (byte-stable for identical runs).
        ``?format=records`` returns the raw span records instead — ids
        and parent links intact, so a tracing client can merge them into
        its own trace (the export form renumbers ids, which would sever
        the join to the client's submit span).
        """
        spans = self.scheduler.job_spans(job_id)
        if query.get("format", [""])[-1] == "records":
            return ApiResponse.json(
                200,
                {
                    "job_id": job_id,
                    "n_spans": len(spans),
                    "spans": [s.to_json() for s in spans],
                },
            )
        deterministic = query.get("deterministic", ["0"])[-1] not in ("0", "")
        doc = export_trace(spans, deterministic=deterministic)
        doc["job_id"] = job_id
        return ApiResponse.json(200, doc)

    def _trace(self, job_id: str, query: dict[str, list[str]]) -> ApiResponse:
        raw = query.get("point", ["0"])[-1]
        try:
            point = int(raw)
        except ValueError:
            return ApiResponse.error(
                400, "invalid", f"point must be an integer, got {raw!r}"
            )
        rows = self.scheduler.trace_rows(job_id, point)

        def ndjson() -> Iterator[bytes]:
            for row in rows:
                yield (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")

        return ApiResponse(
            200, content_type="application/x-ndjson", stream=ndjson()
        )


class _Handler(BaseHTTPRequestHandler):
    """Thin transport shim: read body, route, write the response."""

    server: "ExperimentServer"
    server_version = "repro-service/1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # BaseHTTPRequestHandler's default per-line stderr chatter is
        # replaced by the structured access line in _dispatch; anything
        # arriving here (protocol errors) routes through the logger too.
        _http_log.debug(format % args if args else format)

    def _respond(self, response: ApiResponse) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        if response.stream is None:
            self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
            self.wfile.write(response.body)
        else:
            # Row-at-a-time write; HTTP/1.0 close-delimited framing.
            self.send_header("Connection", "close")
            self.end_headers()
            for chunk in response.stream:
                self.wfile.write(chunk)
                self.wfile.flush()

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            self._respond(
                ApiResponse.error(
                    413, "too_large", f"request body exceeds {_MAX_BODY} bytes"
                )
            )
            return
        body = self.rfile.read(length) if length else b""
        try:
            response = self.server.api.handle(
                method, self.path, body, headers=self.headers
            )
        except Exception as exc:  # never let a handler thread die silently
            response = ApiResponse.error(
                500, "internal", f"{type(exc).__name__}: {exc}"
            )
        self._respond(response)
        _http_log.info(
            "request",
            extra=fields(
                method=method,
                route=_route_label(method, urlsplit(self.path).path),
                path=self.path,
                status=response.status,
                duration_ms=round((time.perf_counter() - start) * 1e3, 3),
            ),
        )

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


class ExperimentServer(ThreadingHTTPServer):
    """ThreadingHTTPServer owning an API router + scheduler."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        scheduler: ExperimentScheduler,
    ) -> None:
        super().__init__(address, _Handler)
        self.scheduler = scheduler
        self.api = ExperimentApi(scheduler)

    def shutdown(self) -> None:
        super().shutdown()
        self.scheduler.stop()


def make_server(
    host: str,
    port: int,
    state_dir: str | pathlib.Path,
    *,
    jobs: int = 1,
    sample_interval: float = 1.0,
    slo_rules: list[SloRule] | tuple[SloRule, ...] = (),
) -> ExperimentServer:
    """Build a ready-to-serve server (port 0 picks a free port)."""
    scheduler = ExperimentScheduler(
        state_dir,
        jobs=jobs,
        sample_interval=sample_interval,
        slo_rules=slo_rules,
    )
    return ExperimentServer((host, port), scheduler)


def serve(
    host: str,
    port: int,
    state_dir: str | pathlib.Path,
    *,
    jobs: int = 1,
    log_level: str = "info",
    log_json: bool = False,
    sample_interval: float = 1.0,
    slo_rules: list[SloRule] | tuple[SloRule, ...] = (),
    ready: threading.Event | None = None,
) -> int:
    """Run the service until interrupted; returns a process exit code."""
    setup_logging(log_level, json_mode=log_json)
    server = make_server(
        host,
        port,
        state_dir,
        jobs=jobs,
        sample_interval=sample_interval,
        slo_rules=slo_rules,
    )
    def _raise_interrupt(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    try:
        # Supervisors stop services with SIGTERM: fold it into the
        # KeyboardInterrupt path so the scheduler still saves the
        # metrics history and job records on the way down. Only the
        # main thread may install handlers; embedded callers (tests
        # running serve() in a thread) keep their own signal setup.
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:
        pass
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro service listening on http://{bound_host}:{bound_port}{API_PREFIX} "
        f"(state: {pathlib.Path(state_dir)}, jobs: {jobs})",
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("shutting down (checkpointed jobs resume on restart)")
    finally:
        server.shutdown()
        server.server_close()
    return 0
