"""Canonical JSON request schema for the experiment service.

One versioned submit document (``REQUEST_VERSION``) covers both client
shapes:

* explicit scenarios — ``{"version": 1, "scenarios": [<scenario>, ...]}``
  where each ``<scenario>`` is :func:`repro.experiments.scenario_to_json`
  output;
* family expansion — ``{"version": 1, "family": "saturation-sweep",
  "params": {...}}``, expanded server-side through
  :func:`repro.experiments.scenario_family` so CLI clients never have to
  materialize scenario JSON themselves.

An optional top-level ``"jobs"`` hints the per-job worker count (the
scheduler clamps it to its own ceiling). An optional ``"profile": true``
enables opt-in per-point phase profiling (aggregated at
``/api/v1/jobs/<id>/profile``).

Every validation failure raises :class:`SchemaError` carrying a machine
``code``, a human message and a ``path`` into the offending document
node; the HTTP layer serializes it verbatim as a structured 400 body, so
clients can point at the exact field instead of parsing prose.
"""

from __future__ import annotations

from typing import Any

from repro.experiments import Scenario, scenario_from_json, scenario_hash

__all__ = ["REQUEST_VERSION", "ParsedRequest", "SchemaError", "parse_request"]

REQUEST_VERSION = 1

_MAX_POINTS = 100_000


class SchemaError(ValueError):
    """A submit document that violates the request schema.

    ``code`` is a stable machine-readable identifier, ``path`` the JSON
    path (keys and list indices) of the violating node.
    """

    def __init__(
        self, message: str, *, code: str = "invalid", path: tuple[Any, ...] = ()
    ) -> None:
        super().__init__(message)
        self.code = code
        self.path = tuple(path)

    def to_json(self) -> dict[str, Any]:
        """The structured error body HTTP 400 responses carry."""
        return {
            "error": {
                "code": self.code,
                "message": str(self),
                "path": list(self.path),
            }
        }


class ParsedRequest:
    """A validated submit request: its scenarios plus provenance."""

    def __init__(
        self,
        scenarios: list[Scenario],
        *,
        jobs: int | None,
        payload: dict[str, Any],
        profile: bool = False,
    ) -> None:
        self.scenarios = scenarios
        self.jobs = jobs
        self.payload = payload
        self.profile = profile
        self.spec_hashes = [scenario_hash(s) for s in scenarios]

    @property
    def n_points(self) -> int:
        return len(self.scenarios)


def _require_mapping(doc: Any) -> dict[str, Any]:
    if not isinstance(doc, dict):
        raise SchemaError(
            f"request body must be a JSON object, got {type(doc).__name__}",
            code="not_an_object",
        )
    return doc


def _check_version(doc: dict[str, Any]) -> None:
    version = doc.get("version")
    if version is None:
        raise SchemaError(
            "request is missing the 'version' key",
            code="missing_version",
            path=("version",),
        )
    if version != REQUEST_VERSION:
        raise SchemaError(
            f"unsupported request version {version!r} "
            f"(this server speaks version {REQUEST_VERSION})",
            code="unsupported_version",
            path=("version",),
        )


def _parse_jobs(doc: dict[str, Any]) -> int | None:
    jobs = doc.get("jobs")
    if jobs is None:
        return None
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise SchemaError(
            f"'jobs' must be a positive integer, got {jobs!r}",
            code="invalid_jobs",
            path=("jobs",),
        )
    return jobs


def _parse_profile(doc: dict[str, Any]) -> bool:
    profile = doc.get("profile", False)
    if not isinstance(profile, bool):
        raise SchemaError(
            f"'profile' must be a boolean, got {profile!r}",
            code="invalid_profile",
            path=("profile",),
        )
    return profile


def _parse_scenarios(raw: Any) -> list[Scenario]:
    if not isinstance(raw, list):
        raise SchemaError(
            f"'scenarios' must be a list, got {type(raw).__name__}",
            code="invalid_scenarios",
            path=("scenarios",),
        )
    if not raw:
        raise SchemaError(
            "'scenarios' must name at least one design point",
            code="empty_scenarios",
            path=("scenarios",),
        )
    if len(raw) > _MAX_POINTS:
        raise SchemaError(
            f"'scenarios' holds {len(raw)} points; the limit is {_MAX_POINTS}",
            code="too_many_points",
            path=("scenarios",),
        )
    scenarios: list[Scenario] = []
    for i, item in enumerate(raw):
        if not isinstance(item, dict):
            raise SchemaError(
                f"scenario #{i} must be a JSON object, got {type(item).__name__}",
                code="invalid_scenario",
                path=("scenarios", i),
            )
        try:
            scenarios.append(scenario_from_json(item))
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(
                f"scenario #{i} is invalid: {exc}",
                code="invalid_scenario",
                path=("scenarios", i),
            ) from exc
    return scenarios


def _expand_family(doc: dict[str, Any]) -> list[Scenario]:
    from repro.experiments import scenario_family

    family = doc["family"]
    if not isinstance(family, str) or not family:
        raise SchemaError(
            f"'family' must be a non-empty string, got {family!r}",
            code="invalid_family",
            path=("family",),
        )
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise SchemaError(
            f"'params' must be a JSON object, got {type(params).__name__}",
            code="invalid_params",
            path=("params",),
        )
    # JSON has no tuples; scenario specs require hashable (tuple) sequence
    # params, so lists arriving over the wire normalize to tuples.
    norm = {
        k: tuple(v) if isinstance(v, list) else v for k, v in params.items()
    }
    try:
        scenarios = scenario_family(family, **norm)
    except (TypeError, ValueError) as exc:
        raise SchemaError(
            f"family expansion failed: {exc}",
            code="invalid_family",
            path=("family",),
        ) from exc
    if not scenarios:
        raise SchemaError(
            f"family {family!r} expanded to zero scenarios",
            code="empty_scenarios",
            path=("family",),
        )
    return scenarios


def parse_request(doc: Any) -> ParsedRequest:
    """Validate a submit document into a :class:`ParsedRequest`.

    Raises :class:`SchemaError` (with code/path) on any violation.
    """
    doc = _require_mapping(doc)
    _check_version(doc)
    jobs = _parse_jobs(doc)
    profile = _parse_profile(doc)
    has_scenarios = "scenarios" in doc
    has_family = "family" in doc
    if has_scenarios == has_family:
        raise SchemaError(
            "request must carry exactly one of 'scenarios' or 'family'",
            code="ambiguous_spec" if has_scenarios else "missing_spec",
        )
    if has_scenarios:
        scenarios = _parse_scenarios(doc["scenarios"])
    else:
        scenarios = _expand_family(doc)
    return ParsedRequest(scenarios, jobs=jobs, payload=doc, profile=profile)
