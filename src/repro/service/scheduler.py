"""Single-dispatcher job scheduler wrapping the experiment engine.

The service's execution core is deliberately *not* thread-per-request:
one dispatcher thread drains a FIFO of submitted jobs and feeds each one
to the existing :class:`repro.experiments.Runner` through its
``submit``/``poll`` seam (the event-driven, single-writer shape — HTTP
threads only enqueue and read). That gives three properties for free:

* **no duplicate work** — jobs run one at a time against one shared
  :class:`~repro.experiments.EvaluationCache`, so concurrent submissions
  of the same (or overlapping) specs simulate each point exactly once;
  parallelism *within* a job still comes from the runner's process pool
  and the batched engine's grouping, both untouched;
* **checkpointed progress** — every completed point is flushed into the
  on-disk cache checkpoint (atomic, lock-guarded), so a killed service
  resumes a half-done job as cache hits instead of recomputing;
* **simple consistency** — job records mutate on one thread; readers
  take a snapshot under the registry lock.

Finished jobs publish their metrics as a versioned release in the
byte-deterministic :class:`~repro.service.results.ResultStore`.

The scheduler also hosts the telemetry pipeline: a
:class:`~repro.obs.pipeline.MetricsSampler` snapshots the metrics
registry every ``sample_interval`` seconds into a bounded
:class:`~repro.obs.pipeline.SeriesStore` (persisted to
``metrics-history.npz`` across restarts) and runs the attached
:class:`~repro.obs.slo.SloEngine` rules once per tick — what
``/api/v1/metrics/history`` and ``/api/v1/alerts`` serve.
"""

from __future__ import annotations

import math
import pathlib
import threading
import time
from collections import deque
from typing import Any

from repro.experiments import EvaluationCache, Runner, Scenario
from repro.obs.aggregate import SweepProfile, merge_profiles
from repro.obs.ledger import RunLedger, load_ledger
from repro.obs.logs import fields, get_logger
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.profile import PhaseProfile
from repro.obs.progress import ProgressTracker
from repro.obs.pipeline import (
    DEFAULT_CAPACITY,
    MetricsSampler,
    SeriesStore,
    load_history_npz,
    save_history_npz,
)
from repro.obs.slo import SloEngine, SloRule
from repro.obs.trace import (
    SpanRecord,
    adopt_parent,
    enable_tracing,
    span,
    take_spans,
)
from repro.service.jobs import JobRecord, JobStore
from repro.service.results import Release, ResultStore
from repro.service.schema import SchemaError, parse_request

__all__ = ["ExperimentScheduler", "JobNotFound", "JobNotDone"]

_log = get_logger("service.scheduler")

_SUBMITTED = counter("scheduler.jobs.submitted")
_DONE = counter("scheduler.jobs.done")
_FAILED = counter("scheduler.jobs.failed")
_REQUEUED = counter("scheduler.jobs.requeued")
_POINTS = counter("scheduler.points_completed")
_QUEUE_DEPTH = gauge("scheduler.queue_depth")
_DISPATCH_MS = histogram("scheduler.dispatch_latency_ms")


class JobNotFound(KeyError):
    """No job with the requested id exists."""

    def __init__(self, job_id: str) -> None:
        super().__init__(job_id)
        self.job_id = job_id


class JobNotDone(RuntimeError):
    """The job exists but has not published results yet (or failed)."""

    def __init__(self, record: JobRecord) -> None:
        super().__init__(
            f"{record.job_id} is {record.state} "
            f"({record.points_done}/{record.n_points} points)"
        )
        self.record = record


class ExperimentScheduler:
    """Background job execution over a persistent state directory.

    ``state_dir`` owns everything the service must survive a restart
    with: the evaluation-cache checkpoint (``cache.json``), job records
    (``jobs/``) and result releases (``releases/``). ``jobs`` is the
    per-job worker ceiling handed to the runner (a request's own
    ``"jobs"`` hint is clamped to it). ``auto_start=False`` leaves the
    dispatcher stopped — used by tests that stage a "killed mid-run"
    state and by :meth:`resume`-style inspection tooling.
    """

    def __init__(
        self,
        state_dir: str | pathlib.Path,
        *,
        jobs: int = 1,
        auto_start: bool = True,
        poll_interval: float = 0.02,
        sample_interval: float = 1.0,
        slo_rules: list[SloRule] | tuple[SloRule, ...] = (),
        history_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.state_dir = pathlib.Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.jobs = jobs
        self.cache_path = self.state_dir / "cache.json"
        self.cache = EvaluationCache.load_or_create(self.cache_path)
        self.job_store = JobStore(self.state_dir / "jobs")
        self.result_store = ResultStore(self.state_dir / "releases")
        self._poll_interval = poll_interval
        self._lock = threading.RLock()
        self._records: dict[str, JobRecord] = {}
        self._scenarios: dict[str, list[Scenario]] = {}
        self._metrics: dict[str, list[dict[str, Any]]] = {}
        self._trace_rows: dict[tuple[str, int], list[dict[str, Any]]] = {}
        self._queue: deque[str] = deque()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        self._enqueued_at: dict[str, float] = {}
        self._job_spans: dict[str, list[SpanRecord]] = {}
        self._trace_parents: dict[str, str | None] = {}
        # Sweep introspection: the durable per-job run ledger, the live
        # progress tracker, and per-point profile captures (opt-in).
        self.ledger_dir = self.state_dir / "ledger"
        self._ledgers: dict[str, RunLedger] = {}
        self.tracker = ProgressTracker()
        self._profiles: dict[str, list[PhaseProfile | None]] = {}
        # The scheduler is the span producer for the whole service; one
        # trace per job is drained into _job_spans when the job finishes.
        enable_tracing()

        # Telemetry pipeline: time-series history (warm-loaded across
        # restarts) + SLO evaluation once per sampling tick.
        self.history_path = self.state_dir / "metrics-history.npz"
        self.series = self._load_history(history_capacity)
        self.slo = SloEngine(slo_rules)
        self.sampler = MetricsSampler(
            self.series, interval_s=sample_interval, slo=self.slo
        )

        for record in self.job_store.all():
            self._records[record.job_id] = record
            if record.state in ("queued", "running"):
                # A restart re-dispatches interrupted work from the top;
                # the points it already checkpointed return as cache hits.
                _log.info(
                    "boot-requeue of interrupted job",
                    extra=fields(
                        job=record.job_id,
                        prev_state=record.state,
                        resumed=record.resumed + 1,
                    ),
                )
                record.state = "queued"
                record.points_done = 0
                record.cache_hits = 0
                record.resumed += 1
                self.job_store.save(record)
                self._queue.append(record.job_id)
                self._enqueued_at[record.job_id] = time.monotonic()
                self._ledger(record.job_id).append(
                    "job.requeued", resumed=record.resumed
                )
                _REQUEUED.inc()
        _QUEUE_DEPTH.set(len(self._queue))
        if auto_start:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def _load_history(self, capacity: int) -> SeriesStore:
        """Warm-load the persisted metrics history (fresh store on any
        problem — history is an enrichment, never a boot blocker)."""
        if self.history_path.exists():
            try:
                store = load_history_npz(self.history_path, capacity=capacity)
                _log.info(
                    "metrics history loaded",
                    extra=fields(frames=len(store), path=str(self.history_path)),
                )
                return store
            except Exception as exc:
                _log.warning(
                    "metrics history unreadable; starting fresh",
                    extra=fields(path=str(self.history_path), error=str(exc)),
                )
        return SeriesStore(capacity=capacity)

    def start(self) -> None:
        """Start the dispatcher + sampler threads (idempotent)."""
        self.sampler.start()
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatch", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop dispatching; an in-flight job parks as resumable state."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self.sampler.stop()
        try:
            save_history_npz(self.series, self.history_path)
        except Exception as exc:  # history persistence is best-effort
            _log.warning(
                "metrics history save failed",
                extra=fields(path=str(self.history_path), error=str(exc)),
            )
        with self._lock:
            ledgers = list(self._ledgers.values())
            self._ledgers.clear()
        for ledger in ledgers:
            ledger.close()

    def _ledger(self, job_id: str) -> RunLedger:
        """Get-or-open the job's run ledger (``ledger/<job_id>.ndjson``)."""
        with self._lock:
            ledger = self._ledgers.get(job_id)
            if ledger is None:
                ledger = RunLedger(
                    self.ledger_dir / f"{job_id}.ndjson", job_id=job_id
                )
                self._ledgers[job_id] = ledger
            return ledger

    # -- submission & queries ------------------------------------------------

    def submit(self, doc: Any, *, trace_parent: str | None = None) -> JobRecord:
        """Validate a submit document and enqueue it; returns the record.

        Raises :class:`~repro.service.schema.SchemaError` on invalid
        payloads — nothing is enqueued or persisted in that case.
        ``trace_parent`` is a remote caller's span id (parsed from its
        ``traceparent`` header); the job's ``service.job`` span adopts
        it as parent so a merged client+server trace nests correctly.
        """
        parsed = parse_request(doc)
        with self._lock:
            record = self.job_store.create(
                spec_hashes=parsed.spec_hashes, request=parsed.payload
            )
            self._records[record.job_id] = record
            self._scenarios[record.job_id] = parsed.scenarios
            self._queue.append(record.job_id)
            self._enqueued_at[record.job_id] = time.monotonic()
            self._trace_parents[record.job_id] = trace_parent
            _QUEUE_DEPTH.set(len(self._queue))
        ledger = self._ledger(record.job_id)
        ledger.append(
            "job.submitted",
            n_points=record.n_points,
            sweep=record.sweep_hash,
        )
        for i in range(record.n_points):
            ledger.append("point.queued", point=i)
        _SUBMITTED.inc()
        _log.info(
            "job submitted",
            extra=fields(
                job=record.job_id,
                points=record.n_points,
                sweep=record.sweep_hash[:12],
            ),
        )
        self._wake.set()
        return self._snapshot(record)

    def job(self, job_id: str) -> JobRecord:
        """Current state of one job (a snapshot; raises JobNotFound)."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFound(job_id)
            return self._snapshot(record)

    def audit(self) -> list[JobRecord]:
        """Every job ever submitted, oldest first (snapshots)."""
        with self._lock:
            return [
                self._snapshot(r)
                for r in sorted(self._records.values(), key=lambda r: r.job_id)
            ]

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.state in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {record.state} after {timeout:g}s"
                )
            time.sleep(self._poll_interval)

    def result_metrics(self, job_id: str) -> list[dict[str, Any]]:
        """Ordered per-point metrics of a finished job.

        Served from scheduler memory when hot; after a restart, read
        back from the job's published release.
        """
        record = self.job(job_id)
        if record.state != "done":
            raise JobNotDone(record)
        with self._lock:
            metrics = self._metrics.get(job_id)
        if metrics is not None:
            return list(metrics)
        header, _ = self.result_store.read(record.sweep_hash)
        return list(header["metrics"])

    def release(self, job_id: str) -> Release:
        """The published release backing a finished job's npz export."""
        record = self.job(job_id)
        if record.state != "done" or record.release is None:
            raise JobNotDone(record)
        sweep, _, version = record.release.partition(".v")
        found = self.result_store.get(sweep, int(version))
        if found is None:
            raise JobNotFound(job_id)
        return found

    def scenarios(self, job_id: str) -> list[Scenario]:
        """The job's design points (re-parsed from its request if cold)."""
        with self._lock:
            cached = self._scenarios.get(job_id)
            if cached is not None:
                return list(cached)
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFound(job_id)
        scenarios = parse_request(record.request).scenarios
        with self._lock:
            self._scenarios[job_id] = scenarios
        return list(scenarios)

    def trace_rows(self, job_id: str, point: int) -> list[dict[str, Any]]:
        """Per-window telemetry/control rows for one finished point.

        Interpreter-engine points with ``telemetry_window > 0`` only.
        Rows are derived once per (job, point) by deterministically
        replaying the scenario (evaluation purity makes the replay
        byte-equivalent to the run that produced the cached metrics) and
        memoized for subsequent requests.
        """
        record = self.job(job_id)
        if record.state != "done":
            raise JobNotDone(record)
        scenarios = self.scenarios(job_id)
        if not 0 <= point < len(scenarios):
            raise ValueError(
                f"point must be in [0, {len(scenarios)}), got {point}"
            )
        key = (job_id, point)
        with self._lock:
            rows = self._trace_rows.get(key)
        if rows is None:
            from repro.service.stream import window_rows

            rows = window_rows(scenarios[point])
            with self._lock:
                self._trace_rows[key] = rows
        return list(rows)

    def cache_stats(self) -> dict[str, int]:
        return dict(self.cache.stats)

    # -- observability -------------------------------------------------------

    def uptime_s(self) -> float:
        """Seconds since this scheduler instance was constructed."""
        return time.monotonic() - self._started_at

    def queue_depth(self) -> int:
        """Jobs waiting for the dispatcher (excludes the one running)."""
        with self._lock:
            return len(self._queue)

    def jobs_by_state(self) -> dict[str, int]:
        """``{state: count}`` over every known job (zero counts omitted)."""
        out: dict[str, int] = {}
        with self._lock:
            for record in self._records.values():
                out[record.state] = out.get(record.state, 0) + 1
        return dict(sorted(out.items()))

    def audit_json(self, state: str | None = None) -> list[dict[str, Any]]:
        """Job-status documents, oldest first, with live progress merged.

        ``state`` filters to one lifecycle state (ValueError on unknown
        names — the HTTP layer maps it to a 400). Running jobs carry a
        ``progress`` sub-document (throughput/ETA/in-flight) from the
        tracker.
        """
        from repro.service.jobs import JOB_STATES

        if state is not None and state not in JOB_STATES:
            raise ValueError(
                f"unknown state {state!r}; one of {', '.join(JOB_STATES)}"
            )
        docs = []
        for record in self.audit():
            if state is not None and record.state != state:
                continue
            doc = record.status_json()
            snap = self.tracker.snapshot(record.job_id)
            if snap is not None:
                doc["progress"] = snap
            docs.append(doc)
        return docs

    def progress_json(self, job_id: str) -> dict[str, Any]:
        """The ``/api/v1/jobs/<id>/progress`` document.

        Counts come from the job record; while the job runs, the live
        tracker adds in-flight/throughput/ETA/utilization. Terminal
        jobs report an ETA of 0 (done) or None (failed) and their
        realized overall throughput.
        """
        record = self.job(job_id)
        done = record.points_done
        n = record.n_points
        doc: dict[str, Any] = {
            "job_id": record.job_id,
            "state": record.state,
            "n_points": n,
            "points_done": done,
            "cache_hits": record.cache_hits,
            "pct": round(100.0 * done / n, 2) if n else 0.0,
            "resumed": record.resumed,
        }
        snap = self.tracker.snapshot(job_id)
        if snap is not None:
            doc.update(snap)
        else:
            doc.update(
                completed=done - record.cache_hits,
                cached=record.cache_hits,
                failed=0,
                in_flight=0,
                eta_s=0.0 if record.state == "done" else None,
                elapsed_s=record.duration_s,
                throughput_pps=(
                    round(n / record.duration_s, 6)
                    if record.state == "done" and record.duration_s
                    else None
                ),
            )
        return doc

    def profile_json(
        self, job_id: str, *, deterministic: bool = False
    ) -> dict[str, Any]:
        """Aggregated per-phase sweep profile for ``job_id``.

        Merges whatever per-point profiles have been captured so far
        (running jobs aggregate their completed prefix). Jobs submitted
        without ``"profile": true`` — or finished before the last
        restart — report zero profiles.
        """
        record = self.job(job_id)
        with self._lock:
            profs = list(self._profiles.get(job_id, ()))
        merged: SweepProfile = merge_profiles(profs)
        doc = merged.to_json(deterministic=deterministic)
        doc["job_id"] = record.job_id
        doc["state"] = record.state
        doc["n_points"] = record.n_points
        return doc

    def job_profiles(self, job_id: str) -> list[PhaseProfile | None]:
        """Raw per-point profile captures, aligned with point order."""
        with self._lock:
            if job_id not in self._records:
                raise JobNotFound(job_id)
            return list(self._profiles.get(job_id, ()))

    def ledger_events(self, job_id: str) -> list[dict[str, Any]]:
        """The job's ledger events, read back from disk.

        Disk is the source of truth (the writer flushes per line), so
        this survives restarts and reflects events up to the moment of
        the read.
        """
        with self._lock:
            if job_id not in self._records:
                raise JobNotFound(job_id)
        path = self.ledger_dir / f"{job_id}.ndjson"
        if not path.exists():
            return []
        return load_ledger(path)

    def job_spans(self, job_id: str) -> list[SpanRecord]:
        """Spans captured while ``job_id`` executed (empty if none).

        One trace per job: the single-dispatcher design means every span
        recorded between a job's start and finish belongs to that job
        (runner sweep/point spans, pool-worker merges included), so the
        dispatcher drains the tracer into this per-job list when the job
        leaves the running state. Jobs finished before the last restart
        have no spans — traces are process-local, not persisted.
        """
        with self._lock:
            if job_id not in self._records:
                raise JobNotFound(job_id)
            return list(self._job_spans.get(job_id, []))

    def alerts_json(self) -> dict[str, Any]:
        """The ``/api/v1/alerts`` document (rule states + transitions)."""
        return self.slo.to_json()

    def history_json(
        self, metric: str | None = None, window_s: float | None = None
    ) -> dict[str, Any]:
        """The ``/api/v1/metrics/history`` document.

        Without ``metric``: a summary (frame count, time range, sampled
        metric names). With one: the full per-metric series, plus
        windowed delta/rate for counters and p50/p99 for histograms.
        Raises ValueError for metrics the sampler has never seen.
        """
        store = self.series

        def _num(x: float) -> float | None:
            return None if math.isnan(x) else round(x, 6)

        if metric is None:
            frames = store.frames()
            return {
                "n_frames": len(frames),
                "capacity": store.capacity,
                "interval_s": self.sampler.interval_s,
                "start_t": round(frames[0].t, 6) if frames else None,
                "end_t": round(frames[-1].t, 6) if frames else None,
                "metrics": store.metric_names(),
            }
        kind = store.kind(metric)
        if kind is None:
            raise ValueError(f"no sampled metric named {metric!r}")
        doc: dict[str, Any] = {"metric": metric, "kind": kind}
        if kind == "histogram":
            pts = store.hist_series(metric)
        else:
            pts = store.series(metric)
        if window_s is not None and pts:
            cutoff = pts[-1][0] - window_s
            pts = [p for p in pts if p[0] >= cutoff]
        doc["points"] = [[round(t, 6), v] for t, v in pts]
        if kind == "counter":
            doc["delta"] = _num(store.delta(metric, window_s))
            doc["rate"] = _num(store.rate(metric, window_s))
        elif kind == "histogram":
            doc["p50"] = _num(store.percentile(metric, 0.5))
            doc["p99"] = _num(store.percentile(metric, 0.99))
        return doc

    # -- dispatcher ----------------------------------------------------------

    def _snapshot(self, record: JobRecord) -> JobRecord:
        return JobRecord.from_json(record.to_json())

    def _execute(self, job_id: str) -> None:
        """Run one job inside a ``service.job`` span; capture its trace."""
        with self._lock:
            enqueued = self._enqueued_at.pop(job_id, None)
            trace_parent = self._trace_parents.pop(job_id, None)
        if enqueued is not None:
            _DISPATCH_MS.observe((time.monotonic() - enqueued) * 1e3)
        take_spans()  # drop stray spans so the job's trace starts clean
        # Adopt the submitting caller's span id (if it shipped one) so the
        # job's trace joins the caller's tree when merged client-side.
        adopt_parent(trace_parent)
        try:
            with span("service.job", job=job_id):
                self._execute_inner(job_id)
        finally:
            adopt_parent(None)
            self.tracker.job_finished(job_id)
        with self._lock:
            self._job_spans[job_id] = take_spans()

    def _execute_inner(self, job_id: str) -> None:
        with self._lock:
            record = self._records[job_id]
            record.state = "running"
            self.job_store.save(record)
        ledger = self._ledger(job_id)
        ledger.append("job.running")
        _log.info(
            "job state change",
            extra=fields(job=job_id, state="running", points=record.n_points),
        )
        try:
            scenarios = self.scenarios(job_id)
        except SchemaError as exc:
            # A persisted request this server build can no longer parse
            # (e.g. a family removed between versions) fails the job
            # instead of wedging the dispatcher.
            with self._lock:
                record.state = "failed"
                record.error = str(exc)
                self.job_store.save(record)
            ledger.append("job.failed", error=str(exc))
            _FAILED.inc()
            _log.warning(
                "job failed to parse",
                extra=fields(job=job_id, state="failed", error=str(exc)),
            )
            return
        hint = record.request.get("jobs")
        runner_jobs = min(hint, self.jobs) if isinstance(hint, int) else self.jobs
        runner_jobs = max(1, runner_jobs)
        want_profile = bool(record.request.get("profile"))
        tracker = self.tracker

        def observe(event: dict[str, Any]) -> None:
            # Runner lifecycle events land in the durable ledger and the
            # live progress tracker; both run on the sweep drive thread.
            ev = dict(event)
            name = ev.pop("event")
            ledger.append(name, **ev)
            tracker.observe(job_id, name, ev)

        runner = Runner(
            jobs=runner_jobs,
            cache=self.cache,
            observer=observe,
            profile=want_profile,
        )
        started = time.perf_counter()
        metrics = self._metrics.setdefault(job_id, [])
        metrics.clear()
        profiles = self._profiles.setdefault(job_id, [])
        profiles.clear()
        tracker.job_started(
            job_id, n_points=record.n_points, workers=runner_jobs
        )
        handle = runner.submit(scenarios)
        try:
            while True:
                fresh = handle.poll()
                if fresh:
                    with self._lock:
                        for res in fresh:
                            metrics.append(res.metrics)
                            profiles.append(res.profile)
                            record.points_done += 1
                            record.cache_hits += bool(res.cached)
                    _POINTS.inc(len(fresh))
                    # Checkpoint: completed points survive a kill -9.
                    self.cache.flush(self.cache_path)
                    with self._lock:
                        self.job_store.save(record)
                    continue
                if handle.done:
                    break
                if self._stop.is_set():
                    handle.cancel()
                handle.wait(self._poll_interval)
        except Exception as exc:
            with self._lock:
                record.state = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
                record.duration_s = round(time.perf_counter() - started, 6)
                self.job_store.save(record)
            ledger.append("job.failed", error=record.error)
            _FAILED.inc()
            _log.error(
                "job failed",
                extra=fields(job=job_id, state="failed", error=record.error),
            )
            return
        if len(metrics) < record.n_points:
            # Interrupted by stop(): leave the record 'running' on disk so
            # the next boot requeues it from the checkpointed cache.
            with self._lock:
                self.job_store.save(record)
            ledger.append("job.interrupted", points_done=record.points_done)
            _log.info(
                "job interrupted; parked for resume",
                extra=fields(
                    job=job_id, points_done=record.points_done,
                    points=record.n_points,
                ),
            )
            return
        release, _reused = self.result_store.put(
            sweep_hash=record.sweep_hash,
            scenarios=scenarios,
            metrics=metrics,
            spec_hashes=record.spec_hashes,
        )
        with self._lock:
            record.state = "done"
            record.release = release.release_id
            record.duration_s = round(time.perf_counter() - started, 6)
            self.job_store.save(record)
        ledger.append(
            "job.done",
            points_done=record.points_done,
            cache_hits=record.cache_hits,
            duration_s=record.duration_s,
        )
        _DONE.inc()
        _log.info(
            "job state change",
            extra=fields(
                job=job_id,
                state="done",
                duration_s=record.duration_s,
                cache_hits=record.cache_hits,
                release=record.release,
            ),
        )

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                job_id = self._queue.popleft() if self._queue else None
                _QUEUE_DEPTH.set(len(self._queue))
            if job_id is None:
                self._wake.wait(self._poll_interval)
                self._wake.clear()
                continue
            self._execute(job_id)
