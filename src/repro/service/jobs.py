"""Job records and their crash-safe on-disk store.

A job is one submitted request working through the scheduler's lifecycle
``queued -> running -> done | failed``. The :class:`JobStore` persists
every record as ``jobs/<job_id>.json`` (atomic temp-file + rename via
the cache's writer), so a killed service finds its queued and half-run
jobs at the next boot and requeues them; the points such a job already
completed live in the evaluation-cache checkpoint and are served as
cache hits on the re-run instead of being simulated again.

Job metrics themselves are *not* stored here — finished results land in
the versioned :class:`~repro.service.results.ResultStore` release the
record points at, and hot results additionally stay in scheduler memory.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import threading
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.experiments.cache import _atomic_write_text
from repro.obs.logs import fields, get_logger
from repro.obs.metrics import counter

__all__ = ["JOB_STATES", "JobRecord", "JobStore", "sweep_hash"]

_log = get_logger("service.jobs")
_SAVES = counter("jobstore.saves")

JOB_STATES = ("queued", "running", "done", "failed")


def sweep_hash(spec_hashes: list[str]) -> str:
    """Content hash of a whole submission (order-sensitive).

    Two requests naming the same design points in the same order share
    it, which is what keys result-store releases and lets audit output
    show duplicate submissions for what they are.
    """
    digest = hashlib.sha256()
    for h in spec_hashes:
        digest.update(h.encode("ascii"))
    return digest.hexdigest()


@dataclass
class JobRecord:
    """One submission's lifecycle state (JSON-serializable)."""

    job_id: str
    state: str
    n_points: int
    spec_hashes: list[str]
    sweep_hash: str
    request: dict[str, Any]
    """The validated submit payload, verbatim (resume re-parses it)."""
    points_done: int = 0
    cache_hits: int = 0
    duration_s: float | None = None
    error: str | None = None
    release: str | None = None
    """Result-store release id once the job is done."""
    resumed: int = 0
    """How many times a restarted service re-dispatched this job."""

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobRecord":
        return cls(**data)

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of completed points served from the cache."""
        return self.cache_hits / self.points_done if self.points_done else 0.0

    def status_json(self) -> dict[str, Any]:
        """The job-status document API responses carry."""
        doc = self.to_json()
        doc["cache_hit_ratio"] = round(self.cache_hit_ratio, 6)
        del doc["request"]  # available via the audit endpoint's detail view
        return doc


@dataclass
class _Counter:
    value: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class JobStore:
    """Directory-backed job records with monotonic ids.

    Ids are ``job-<NNNNNN>``, continuing from the highest id already on
    disk so restarts never reuse one. All mutations go through
    :meth:`save`, which writes atomically.
    """

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        highest = 0
        for path in self.root.glob("job-*.json"):
            try:
                highest = max(highest, int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        self._counter = _Counter(highest)

    def _next_id(self) -> str:
        with self._counter.lock:
            self._counter.value += 1
            return f"job-{self._counter.value:06d}"

    def _path(self, job_id: str) -> pathlib.Path:
        if not job_id.startswith("job-") or "/" in job_id or "\\" in job_id:
            raise KeyError(job_id)
        return self.root / f"{job_id}.json"

    def create(
        self,
        *,
        spec_hashes: list[str],
        request: dict[str, Any],
    ) -> JobRecord:
        """Mint a queued record for a validated request and persist it."""
        record = JobRecord(
            job_id=self._next_id(),
            state="queued",
            n_points=len(spec_hashes),
            spec_hashes=list(spec_hashes),
            sweep_hash=sweep_hash(spec_hashes),
            request=request,
        )
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        """Atomically persist ``record`` (create or overwrite)."""
        if record.state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {record.state!r}; one of {JOB_STATES}"
            )
        _atomic_write_text(
            self._path(record.job_id),
            json.dumps(record.to_json(), indent=2, sort_keys=True) + "\n",
        )
        _SAVES.inc()
        _log.debug(
            "job record saved",
            extra=fields(job=record.job_id, state=record.state),
        )

    def get(self, job_id: str) -> JobRecord | None:
        try:
            path = self._path(job_id)
        except KeyError:
            return None
        if not path.exists():
            return None
        return JobRecord.from_json(json.loads(path.read_text()))

    def all(self) -> list[JobRecord]:
        """Every persisted record, oldest submission first."""
        records = []
        for path in sorted(self.root.glob("job-*.json")):
            records.append(JobRecord.from_json(json.loads(path.read_text())))
        return records

    def unfinished(self) -> list[JobRecord]:
        """Jobs a restarted service must requeue (queued or interrupted)."""
        return [r for r in self.all() if r.state in ("queued", "running")]
