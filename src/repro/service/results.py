"""Versioned, byte-deterministic result releases for finished jobs.

Each completed submission is published as one npz release through the
same archive primitives as the trace and telemetry stores
(:func:`repro.workloads.write_npz_archive` — pinned ZIP metadata,
canonical JSON header, so identical results always serialize to the
identical file). Releases are keyed by the submission's
:func:`~repro.service.jobs.sweep_hash` and numbered ``v1, v2, ...``:

* re-publishing byte-identical results (the normal case — evaluation is
  deterministic) *reuses* the existing release instead of minting a new
  version;
* results that genuinely changed (a new engine semantics, a metrics
  schema addition) get the next version, and every prior release stays
  fetchable — clients pin ``(sweep_hash, version)`` for reproducibility.

The header carries the full scenario specs and metric dictionaries;
numeric metrics shared by every point are additionally materialized as
float64 column arrays for vectorized consumers.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any

import numpy as np

from repro.experiments import Scenario, scenario_to_json
from repro.workloads import open_npz_archive, write_npz_archive

__all__ = ["RESULTS_FORMAT", "RESULTS_VERSION", "Release", "ResultStore"]

RESULTS_FORMAT = "repro-results-npz"
RESULTS_VERSION = 1

_RELEASE_RE = re.compile(r"^(?P<sweep>[0-9a-f]{64})\.v(?P<version>[1-9]\d*)\.npz$")


class Release:
    """One immutable published result set ``(sweep_hash, version)``."""

    def __init__(self, sweep_hash: str, version: int, path: pathlib.Path) -> None:
        self.sweep_hash = sweep_hash
        self.version = version
        self.path = path

    @property
    def release_id(self) -> str:
        return f"{self.sweep_hash}.v{self.version}"

    def read_bytes(self) -> bytes:
        return self.path.read_bytes()

    def to_json(self) -> dict[str, Any]:
        return {
            "release": self.release_id,
            "sweep_hash": self.sweep_hash,
            "version": self.version,
        }


def _numeric_columns(metrics: list[dict[str, Any]]) -> list[tuple[str, np.ndarray]]:
    """Float64 columns for metric keys numeric in every point.

    ``None`` (an undefined latency, say) becomes NaN so the column stays
    rectangular; booleans count as numeric (0/1). Key order is sorted,
    keeping the archive canonical.
    """
    if not metrics:
        return []
    shared: set[str] | None = None
    for m in metrics:
        keys = {
            k
            for k, v in m.items()
            if isinstance(v, (int, float, bool)) or v is None
        }
        shared = keys if shared is None else shared & keys
    columns = []
    for key in sorted(shared or ()):
        values = [
            np.nan if m[key] is None else float(m[key]) for m in metrics
        ]
        if all(m[key] is None for m in metrics):
            continue  # an all-None key carries no numeric information
        columns.append((f"metric_{key}.npy", np.asarray(values, dtype=np.float64)))
    return columns


class ResultStore:
    """Directory of versioned result releases (``<sweep>.v<N>.npz``)."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- publish -------------------------------------------------------------

    def put(
        self,
        *,
        sweep_hash: str,
        scenarios: list[Scenario],
        metrics: list[dict[str, Any]],
        spec_hashes: list[str],
    ) -> tuple[Release, bool]:
        """Publish one result set; returns ``(release, reused)``.

        ``reused`` is True when the bytes match the latest existing
        release for this sweep (no new version is minted).
        """
        if not (len(scenarios) == len(metrics) == len(spec_hashes)):
            raise ValueError(
                f"ragged result set: {len(scenarios)} scenarios, "
                f"{len(metrics)} metrics, {len(spec_hashes)} hashes"
            )
        header = {
            "format": RESULTS_FORMAT,
            "version": RESULTS_VERSION,
            "sweep_hash": sweep_hash,
            "n_points": len(scenarios),
            "spec_hashes": list(spec_hashes),
            "scenarios": [scenario_to_json(s) for s in scenarios],
            "metrics": metrics,
        }
        columns = _numeric_columns(metrics)
        header["columns"] = [name for name, _ in columns]
        latest = self.latest(sweep_hash)
        next_version = 1 if latest is None else latest.version + 1
        tmp = self.root / f".{sweep_hash}.v{next_version}.pending"
        write_npz_archive(tmp, header, columns)
        try:
            payload = tmp.read_bytes()
            if latest is not None and latest.read_bytes() == payload:
                return latest, True
            release = Release(
                sweep_hash, next_version, self.root / f"{sweep_hash}.v{next_version}.npz"
            )
            tmp.replace(release.path)
            return release, False
        finally:
            tmp.unlink(missing_ok=True)

    # -- lookup --------------------------------------------------------------

    def versions(self, sweep_hash: str) -> list[Release]:
        """All releases of one sweep, oldest version first."""
        releases = []
        for path in self.root.glob(f"{sweep_hash}.v*.npz"):
            m = _RELEASE_RE.match(path.name)
            if m and m.group("sweep") == sweep_hash:
                releases.append(Release(sweep_hash, int(m.group("version")), path))
        return sorted(releases, key=lambda r: r.version)

    def latest(self, sweep_hash: str) -> Release | None:
        versions = self.versions(sweep_hash)
        return versions[-1] if versions else None

    def get(self, sweep_hash: str, version: int | None = None) -> Release | None:
        if version is None:
            return self.latest(sweep_hash)
        path = self.root / f"{sweep_hash}.v{version}.npz"
        return Release(sweep_hash, version, path) if path.exists() else None

    def read(
        self, sweep_hash: str, version: int | None = None
    ) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        """Load ``(header, columns)`` of a release; validates the format."""
        release = self.get(sweep_hash, version)
        if release is None:
            raise KeyError(f"no release for sweep {sweep_hash}")
        zf, header = open_npz_archive(
            release.path,
            expected_format=RESULTS_FORMAT,
            max_version=RESULTS_VERSION,
            kind="results",
        )
        import io

        with zf:
            columns = {
                name: np.load(io.BytesIO(zf.read(name)), allow_pickle=False)
                for name in header.get("columns", ())
            }
        return header, columns
