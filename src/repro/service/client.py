"""Stdlib HTTP client for the experiment service.

A thin, dependency-free wrapper over :mod:`urllib.request` speaking the
service's JSON API. Structured error bodies (including schema 400s)
surface as :class:`ServiceError` with the server's machine code and
message attached, so CLI commands and tests branch on ``exc.code``
rather than scraping prose.

When tracing is enabled in the calling process, every request carries a
``traceparent`` header with the innermost open span id, and
:meth:`ServiceClient.submit` opens a ``client.submit`` span around the
POST — so the server-side ``service.job`` span (and everything under
it) joins the client's trace once :meth:`ServiceClient.merge_job_spans`
pulls the raw records back.
"""

from __future__ import annotations

import json
import pathlib
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from collections.abc import Iterator
from typing import Any

from repro.obs.trace import (
    TRACEPARENT_HEADER,
    current_span_id,
    format_traceparent,
    merge_exported,
    span,
    tracing_enabled,
)
from repro.service.server import API_PREFIX

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service (or an unreachable server)."""

    def __init__(
        self,
        message: str,
        *,
        status: int = 0,
        code: str = "unreachable",
        path: list[Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.path = path or []


def _raise_for(status: int, body: bytes) -> None:
    try:
        doc = json.loads(body.decode("utf-8"))
        err = doc.get("error", {})
        raise ServiceError(
            err.get("message", f"HTTP {status}"),
            status=status,
            code=err.get("code", "error"),
            path=err.get("path"),
        )
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ServiceError(
            f"HTTP {status}: {body[:200]!r}", status=status, code="error"
        ) from None


class ServiceClient:
    """Talk to one service instance at ``base_url``."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _open(self, method: str, path: str, payload: Any | None = None):
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if tracing_enabled():
            parent = current_span_id()
            if parent:
                headers[TRACEPARENT_HEADER] = format_traceparent(parent)
        req = urllib.request.Request(
            f"{self.base_url}{API_PREFIX}{path}",
            data=body,
            method=method,
            headers=headers,
        )
        try:
            return urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            _raise_for(exc.code, exc.read())
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from exc

    def _json(self, method: str, path: str, payload: Any | None = None) -> Any:
        with self._open(method, path, payload) as resp:
            return json.loads(resp.read().decode("utf-8"))

    # -- API surface ---------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._json("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        """Process metrics registry snapshot + cache counters."""
        return self._json("GET", "/metrics")

    def prometheus(self) -> str:
        """The server's root ``/metrics`` in Prometheus text format."""
        req = urllib.request.Request(
            f"{self.base_url}/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            _raise_for(exc.code, exc.read())
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from exc

    def history(
        self, metric: str | None = None, *, window_s: float | None = None
    ) -> dict[str, Any]:
        """Sampled metrics history (summary, or one metric's series)."""
        params = []
        if metric:
            params.append(f"metric={urllib.parse.quote(metric, safe='')}")
        if window_s is not None:
            params.append(f"window={window_s:g}")
        suffix = "?" + "&".join(params) if params else ""
        return self._json("GET", f"/metrics/history{suffix}")

    def alerts(self) -> dict[str, Any]:
        """SLO rule states plus the firing/resolved event history."""
        return self._json("GET", "/alerts")

    def spans(self, job_id: str, *, deterministic: bool = False) -> dict[str, Any]:
        """Span-trace document captured while ``job_id`` executed."""
        suffix = "?deterministic=1" if deterministic else ""
        return self._json("GET", f"/jobs/{job_id}/spans{suffix}")

    def span_records(self, job_id: str) -> dict[str, Any]:
        """Raw span records for ``job_id`` (ids + parent links intact)."""
        return self._json("GET", f"/jobs/{job_id}/spans?format=records")

    def merge_job_spans(self, job_id: str) -> list[Any]:
        """Merge the job's raw spans into this process's trace.

        The server's ``service.job`` span keeps its original parent link
        — the client span id it adopted from the ``traceparent`` header
        — so after merging, :func:`repro.obs.trace.export_trace` renders
        one joined tree with the client's submit span as ancestor.
        """
        doc = self.span_records(job_id)
        return merge_exported(doc["spans"])

    def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """POST a submit document; returns the job-status document.

        Runs inside a ``client.submit`` span when tracing is enabled, so
        the request's ``traceparent`` header carries that span's id.
        """
        with span("client.submit"):
            return self._json("POST", "/jobs", request)["job"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def progress(self, job_id: str) -> dict[str, Any]:
        """Live progress document: counts, throughput, ETA, in-flight."""
        return self._json("GET", f"/jobs/{job_id}/progress")

    def profile(
        self, job_id: str, *, deterministic: bool = False
    ) -> dict[str, Any]:
        """Aggregated per-phase sweep profile (``"profile": true`` jobs)."""
        suffix = "?deterministic=1" if deterministic else ""
        return self._json("GET", f"/jobs/{job_id}/profile{suffix}")

    def ledger(
        self, job_id: str, *, deterministic: bool = False
    ) -> dict[str, Any]:
        """The job's run-ledger export document."""
        suffix = "?deterministic=1" if deterministic else ""
        return self._json("GET", f"/jobs/{job_id}/ledger{suffix}")

    def jobs(self, *, state: str | None = None) -> dict[str, Any]:
        """Audit listing: every job plus server cache counters.

        ``state`` filters server-side to one lifecycle state.
        """
        suffix = f"?state={urllib.parse.quote(state, safe='')}" if state else ""
        return self._json("GET", f"/jobs{suffix}")

    def result(self, job_id: str) -> dict[str, Any]:
        """Finished job's metrics document (409 -> ServiceError)."""
        return self._json("GET", f"/jobs/{job_id}/result")

    def result_npz(
        self, job_id: str, out: str | pathlib.Path | None = None
    ) -> bytes:
        """The job's npz release bytes; also written to ``out`` if given."""
        with self._open("GET", f"/jobs/{job_id}/result.npz") as resp:
            payload = resp.read()
        if out is not None:
            pathlib.Path(out).write_bytes(payload)
        return payload

    def trace(self, job_id: str, point: int = 0) -> Iterator[dict[str, Any]]:
        """Stream per-window NDJSON rows of one finished point."""
        with self._open("GET", f"/jobs/{job_id}/trace?point={point}") as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll: float = 0.2,
        max_poll: float = 5.0,
        backoff: bool = True,
    ) -> dict[str, Any]:
        """Poll until the job reaches ``done``/``failed``; returns status.

        ``poll`` is the base interval. With ``backoff`` (the default)
        each sleep is drawn by decorrelated jitter —
        ``min(max_poll, uniform(poll, 3 * previous))`` — so many clients
        waiting on the same service desynchronize instead of hammering
        it in lockstep; the interval is capped at ``max_poll`` (5 s).
        ``backoff=False`` keeps the fixed-interval behaviour for tests
        that need deterministic pacing.
        """
        deadline = time.monotonic() + timeout
        delay = poll
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            now = time.monotonic()
            if now >= deadline:
                raise ServiceError(
                    f"{job_id} still {status['state']} after {timeout:g}s "
                    f"({status['points_done']}/{status['n_points']} points)",
                    code="timeout",
                )
            time.sleep(min(delay, max(deadline - now, 0.0)))
            if backoff:
                delay = min(max_poll, random.uniform(poll, delay * 3))
