"""Evaluation memoization keyed on scenario content hashes.

The expensive evaluations behind the paper's sweeps (DSENT-backed
analytical CLEAR points, cycle simulations) are pure functions of their
:class:`~repro.experiments.spec.Scenario`; this cache remembers their
metric dictionaries so repeated design points — the plain meshes that
recur across every express option, a re-run of a benchmark, a CLI
invocation over a previously-explored grid — cost one dictionary lookup.
Entries can be persisted as JSON for the analysis/report layer and
reloaded in a later process (the content hash is process-stable).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.experiments.spec import Scenario, scenario_hash, scenario_to_json

__all__ = ["EvaluationCache"]

_FORMAT_VERSION = 1


class EvaluationCache:
    """In-memory scenario -> metrics store with JSON persistence."""

    def __init__(self) -> None:
        self._store: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, scenario: Scenario) -> bool:
        return scenario_hash(scenario) in self._store

    def get(self, scenario: Scenario) -> dict[str, Any] | None:
        """Cached metrics for ``scenario``, counting the hit or miss."""
        entry = self._store.get(scenario_hash(scenario))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry["metrics"]

    def put(self, scenario: Scenario, metrics: dict[str, Any]) -> None:
        """Store ``metrics`` for ``scenario`` (overwrites silently)."""
        self._store[scenario_hash(scenario)] = {
            "scenario": scenario_to_json(scenario),
            "metrics": dict(metrics),
        }

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (for logs and benchmark reports)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | pathlib.Path) -> None:
        """Write all entries to ``path`` as indented, diffable JSON."""
        payload = {"version": _FORMAT_VERSION, "entries": self._store}
        pathlib.Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "EvaluationCache":
        """Rebuild a cache from :meth:`save` output."""
        payload = json.loads(pathlib.Path(path).read_text())
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported cache format version {version!r}")
        cache = cls()
        cache._store = dict(payload["entries"])
        return cache

    def merge(self, other: "EvaluationCache") -> None:
        """Absorb ``other``'s entries (other wins on key collisions)."""
        self._store.update(other._store)
