"""Evaluation memoization keyed on scenario content hashes.

The expensive evaluations behind the paper's sweeps (DSENT-backed
analytical CLEAR points, cycle simulations) are pure functions of their
:class:`~repro.experiments.spec.Scenario`; this cache remembers their
metric dictionaries so repeated design points — the plain meshes that
recur across every express option, a re-run of a benchmark, a CLI
invocation over a previously-explored grid — cost one dictionary lookup.
Entries can be persisted as JSON for the analysis/report layer and
reloaded in a later process (the content hash is process-stable).

Persistence is safe under concurrent writers: :meth:`EvaluationCache.save`
publishes atomically (temp file + rename, so readers never observe a
half-written file) and :meth:`EvaluationCache.flush` additionally
serializes read-merge-write cycles through a sidecar lock file, so two
runners or service workers checkpointing into the same path union their
entries instead of silently dropping whichever flush lost the race.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
import time
from collections.abc import Iterator
from typing import Any

from repro.experiments.spec import Scenario, scenario_hash, scenario_to_json
from repro.obs.logs import fields, get_logger
from repro.obs.metrics import counter, gauge, histogram

__all__ = ["EvaluationCache"]

_FORMAT_VERSION = 1

_log = get_logger("experiments.cache")

# Process-wide mirrors of the per-instance hit/miss counters: the service
# runs one cache per process, so ``/api/v1/metrics`` reports exactly
# ``EvaluationCache.stats`` (pinned by the service-smoke CI assertion).
_HITS = counter("cache.hits")
_MISSES = counter("cache.misses")
_ENTRIES = gauge("cache.entries")
_FLUSHES = counter("cache.flushes")
_FLUSH_MS = histogram("cache.flush_ms")
_LOCK_CONTENDED = counter("cache.lock_contention")
_LOCK_BROKEN = counter("cache.stale_locks_broken")

#: A lock file older than this is assumed to be a dead writer's leftovers.
_STALE_LOCK_S = 30.0


@contextlib.contextmanager
def _file_lock(path: pathlib.Path, timeout: float) -> Iterator[None]:
    """Advisory inter-process lock via exclusive sidecar-file creation.

    ``O_CREAT | O_EXCL`` is atomic on every platform/filesystem the repo
    targets; holders that die leave the lock behind, so acquisition
    breaks locks older than ``timeout`` seconds rather than deadlocking
    on a stale file.
    """
    lock = path.with_name(path.name + ".lock")
    deadline = time.monotonic() + timeout
    contended = False
    while True:
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            if not contended:
                contended = True
                _LOCK_CONTENDED.inc()
                _log.debug(
                    "cache lock contended",
                    extra=fields(path=str(path), timeout_s=timeout),
                )
            if time.monotonic() >= deadline:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:  # raced with the holder's release; retry
                    continue
                # Stale-breaking uses its own (long) threshold so a short
                # acquisition timeout never steals a *live* writer's lock.
                if age >= max(timeout, _STALE_LOCK_S):
                    _LOCK_BROKEN.inc()
                    _log.warning(
                        "breaking stale cache lock",
                        extra=fields(lock=str(lock), age_s=round(age, 3)),
                    )
                    with contextlib.suppress(OSError):
                        lock.unlink()
                    continue
                raise TimeoutError(
                    f"could not lock {path} within {timeout:g}s "
                    f"(held by another process via {lock})"
                ) from None
            time.sleep(0.005)
    try:
        os.write(fd, f"{os.getpid()}\n".encode())
        yield
    finally:
        os.close(fd)
        with contextlib.suppress(OSError):
            lock.unlink()


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp-file-in-dir + atomic rename."""
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


class EvaluationCache:
    """In-memory scenario -> metrics store with JSON persistence."""

    def __init__(self) -> None:
        self._store: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, scenario: Scenario) -> bool:
        return scenario_hash(scenario) in self._store

    def get(self, scenario: Scenario) -> dict[str, Any] | None:
        """Cached metrics for ``scenario``, counting the hit or miss."""
        entry = self._store.get(scenario_hash(scenario))
        if entry is None:
            self.misses += 1
            _MISSES.inc()
            return None
        self.hits += 1
        _HITS.inc()
        return entry["metrics"]

    def put(self, scenario: Scenario, metrics: dict[str, Any]) -> None:
        """Store ``metrics`` for ``scenario`` (overwrites silently)."""
        self._store[scenario_hash(scenario)] = {
            "scenario": scenario_to_json(scenario),
            "metrics": dict(metrics),
        }
        _ENTRIES.set(len(self._store))

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (for logs and benchmark reports)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | pathlib.Path) -> None:
        """Write all entries to ``path`` as indented, diffable JSON.

        The write is atomic (temp file + rename): a concurrent
        :meth:`load` sees either the previous complete file or the new
        one, never a truncated JSON document.
        """
        payload = {"version": _FORMAT_VERSION, "entries": self._store}
        _atomic_write_text(
            pathlib.Path(path), json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def flush(self, path: str | pathlib.Path, *, timeout: float = 10.0) -> int:
        """Merge this cache into the file at ``path`` under a lock.

        The concurrent-writer checkpoint primitive: read the current
        on-disk entries (if any), union them with this cache's (memory
        wins on hash collisions — entries are content-addressed, so a
        collision is the same metrics anyway), and atomically publish
        the merged set, all while holding ``path``'s sidecar lock file.
        The in-memory store absorbs the merged view, so concurrent
        flushers converge on the union instead of overwriting each
        other. Returns the merged entry count.
        """
        start = time.perf_counter()
        p = pathlib.Path(path)
        with _file_lock(p, timeout):
            merged: dict[str, dict[str, Any]] = {}
            if p.exists():
                merged.update(self._parse(p)["entries"])
            merged.update(self._store)
            payload = {"version": _FORMAT_VERSION, "entries": merged}
            _atomic_write_text(
                p, json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        self._store = merged
        _ENTRIES.set(len(merged))
        _FLUSHES.inc()
        elapsed_ms = (time.perf_counter() - start) * 1e3
        _FLUSH_MS.observe(elapsed_ms)
        _log.debug(
            "cache flushed",
            extra=fields(path=str(p), entries=len(merged), ms=round(elapsed_ms, 3)),
        )
        return len(merged)

    @staticmethod
    def _parse(path: pathlib.Path) -> dict[str, Any]:
        payload = json.loads(path.read_text())
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported cache format version {version!r}")
        return payload

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "EvaluationCache":
        """Rebuild a cache from :meth:`save` output."""
        cache = cls()
        cache._store = dict(cls._parse(pathlib.Path(path))["entries"])
        _ENTRIES.set(len(cache._store))
        return cache

    @classmethod
    def load_or_create(cls, path: str | pathlib.Path) -> "EvaluationCache":
        """Load ``path`` if it exists, else an empty cache (new deployments)."""
        p = pathlib.Path(path)
        return cls.load(p) if p.exists() else cls()

    def merge(self, other: "EvaluationCache") -> None:
        """Absorb ``other``'s entries (other wins on key collisions)."""
        self._store.update(other._store)
