"""Unified parallel experiment engine.

Every paper artefact is a Cartesian sweep over {topology x technology x
hops x traffic x injection rate}; this package gives those sweeps one
home instead of a hand-rolled serial loop per layer:

* :mod:`repro.experiments.spec` — declarative, hashable, JSON-serializable
  :class:`Scenario` records naming one design point each;
* :mod:`repro.experiments.registry` — named scenario *families* (the
  paper's Fig. 5 grid, saturation sweeps, NPB kernels, the all-optical
  projection) plus a hook for registering new ones;
* :mod:`repro.experiments.runner` — a :class:`Runner` with serial and
  process-pool executors; per-scenario seeds make serial and parallel
  runs bit-identical;
* :mod:`repro.experiments.cache` — an :class:`EvaluationCache` keyed on
  the scenario's stable content hash, persistable as JSON.

The DSE (:mod:`repro.core.dse`), the CLI (``--jobs``) and the benchmark
suite all route their evaluation loops through this engine.
"""

from repro.experiments.cache import EvaluationCache
from repro.experiments.registry import (
    family_names,
    paper_point,
    register_family,
    scenario_family,
)
from repro.experiments.runner import (
    Runner,
    ScenarioResult,
    SweepHandle,
    evaluate_scenario,
    simulate_scenario,
)
from repro.experiments.spec import (
    Scenario,
    SimSpec,
    TopologySpec,
    TrafficSpec,
    scenario_from_json,
    scenario_hash,
    scenario_to_json,
)

__all__ = [
    "EvaluationCache",
    "family_names",
    "paper_point",
    "register_family",
    "scenario_family",
    "Runner",
    "ScenarioResult",
    "SweepHandle",
    "evaluate_scenario",
    "simulate_scenario",
    "Scenario",
    "SimSpec",
    "TopologySpec",
    "TrafficSpec",
    "scenario_from_json",
    "scenario_hash",
    "scenario_to_json",
]
