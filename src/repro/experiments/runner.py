"""Scenario evaluation and the serial / process-pool runner.

:func:`evaluate_scenario` is a *pure* function: every stochastic input
(traffic seed, injection schedule) is named inside the scenario itself,
so evaluating the same scenario in this process, a worker process, or
next week yields identical metrics. That purity is what lets the
:class:`Runner` swap its serial loop for a ``ProcessPoolExecutor``
(``jobs=N``) with bit-identical results, and what makes the
:class:`~repro.experiments.cache.EvaluationCache` sound.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, TypeVar

from repro.experiments.cache import EvaluationCache
from repro.experiments.spec import Scenario, TopologySpec, scenario_hash
from repro.obs.logs import get_logger
from repro.obs.metrics import counter
from repro.obs.profile import PhaseProfile
from repro.obs.trace import (
    adopt_parent,
    clear_spans,
    current_span_id,
    merge_exported,
    span,
    take_spans,
    tracing_enabled,
)
from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable

__all__ = [
    "Runner",
    "ScenarioResult",
    "SweepHandle",
    "evaluate_scenario",
    "simulate_scenario",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

_POINTS_EVALUATED = counter("runner.points.evaluated")
_POINTS_CACHED = counter("runner.points.cached")

_log = get_logger("experiments.runner")


def _engine_label(scenario: Scenario) -> str:
    """The engine that will actually evaluate this scenario."""
    if scenario.kind == "simulation":
        return "batched" if _batched_eligible(scenario) else "interpreter"
    return scenario.kind


def _count_point(scenario: Scenario) -> None:
    """Count one fresh evaluation, keyed by the engine that actually ran it."""
    _POINTS_EVALUATED.inc()
    counter(f"runner.points.engine.{_engine_label(scenario)}").inc()


@lru_cache(maxsize=8)
def _materialize(spec: TopologySpec) -> tuple[Topology, RoutingTable]:
    """Build (topology, routing) once per distinct spec in this process.

    Multi-point sweeps share one topology across many scenarios; reusing
    the routing table keeps its memoized path cache warm instead of
    rebuilding it per point (the routing-table build is a tracked hot
    path). Sharing is safe: both objects are immutable with respect to
    evaluation, and the path memo is deterministic.
    """
    topo = spec.build()
    return topo, RoutingTable(topo)


@lru_cache(maxsize=8)
def _materialize_batched(spec: TopologySpec, cfg):
    """One shared :class:`BatchSimulator` per (topology, SimConfig) family.

    The batched engine's family tables (link layout, dense routing LUT,
    dateline VC ranges) are built once here and amortized across every
    scenario of the family — single runs and grouped sweeps alike.
    """
    from repro.simulation.batch import BatchSimulator

    topo, routing = _materialize(spec)
    return BatchSimulator(topo, routing, cfg)


def _batched_eligible(scenario: Scenario) -> bool:
    """True when the scenario can run on the batched engine.

    Telemetry sampling, closed-loop sessions and online controllers are
    interpreter-only (sequential per-packet hooks); such scenarios fall
    back to the interpreter regardless of ``SimSpec.engine``.
    """
    sim = scenario.sim
    return (
        scenario.kind == "simulation"
        and sim is not None
        and sim.engine == "batched"
        and sim.telemetry_window == 0
        and sim.closed_loop_window == 0
        and not sim.controllers
    )


def evaluate_scenario(
    scenario: Scenario, *, profile: PhaseProfile | None = None
) -> dict[str, Any]:
    """Evaluate one scenario into a flat, JSON-safe metrics dictionary.

    ``profile`` attaches an opt-in per-phase timer to simulation
    scenarios (ignored for analytical/all-optical kinds); the engine it
    ran on is recorded in ``profile.engine``.
    """
    if scenario.kind == "analytical":
        return _evaluate_analytical(scenario)
    if scenario.kind == "simulation":
        return _evaluate_simulation(scenario, profile=profile)
    return _evaluate_all_optical(scenario)


def _traced_evaluate(
    scenario: Scenario, want_profile: bool = False
) -> tuple[dict[str, Any], list[dict], dict[str, Any]]:
    """Pool-worker seam: evaluate one scenario and ship its spans home.

    Workers inherit the parent's tracing flag (and, under fork, a copy
    of its span buffer — dropped here so only this point's spans ship).
    Returns ``(metrics, span_payloads, info)``; the submitting process
    merges the payloads into its trace via
    :func:`repro.obs.trace.merge_exported`, re-parented under the span
    that submitted the point. ``info`` carries the worker's identity for
    the run ledger (pid, start wall time) and — when ``want_profile`` —
    the point's serialized :class:`PhaseProfile`. With tracing and
    profiling disabled the wrapper is a tuple allocation around
    :func:`evaluate_scenario`.
    """
    info: dict[str, Any] = {
        "pid": os.getpid(),
        "worker_t": round(time.time(), 6),
    }
    prof = (
        PhaseProfile()
        if want_profile and scenario.kind == "simulation"
        else None
    )
    payloads: list[dict] = []
    if not tracing_enabled():
        metrics = evaluate_scenario(scenario, profile=prof)
    else:
        clear_spans()
        with span("runner.point", point=scenario.label, pool_worker=True):
            metrics = evaluate_scenario(scenario, profile=prof)
        payloads = [rec.to_json() for rec in take_spans()]
    if prof is not None:
        info["profile"] = prof.to_json()
    return metrics, payloads, info


def _evaluate_analytical(scenario: Scenario) -> dict[str, Any]:
    # Lazy import: analysis pulls in the DSENT substrate (analysis -> core).
    from repro.analysis.network_clear import evaluate_network

    topo, routing = _materialize(scenario.topology)
    tm = scenario.traffic.matrix(topo)
    ev = evaluate_network(
        topo,
        tm,
        injection_rate=scenario.traffic.injection_rate,
        routing=routing,
    )
    return {"kind": "analytical", **ev.to_metrics()}


def simulate_scenario(scenario: Scenario, *, profile: PhaseProfile | None = None):
    """Run a simulation scenario's cycle simulation; ``(topology, stats)``.

    The engine's single evaluation recipe — shared per-process topology
    cache, trace generation from the traffic spec, the spec's cycle
    budget, and telemetry sampling when ``SimSpec.telemetry_window`` is
    set. Both the flat-metrics path below and the rich
    :func:`repro.telemetry.report.profile_scenario` view go through
    here, so the CLI's windowed reports are provably the same runs the
    engine caches metrics for.
    """
    from repro.simulation.simulator import Simulator
    from repro.traffic.trace import Trace

    if scenario.kind != "simulation" or scenario.sim is None:
        raise ValueError(f"not a simulation scenario: {scenario.label}")
    sim_spec = scenario.sim
    topo, routing = _materialize(scenario.topology)
    trace = scenario.traffic.trace(topo, sim=sim_spec)
    if _batched_eligible(scenario):
        if profile is not None:
            profile.engine = "batched"
        bsim = _materialize_batched(scenario.topology, sim_spec.sim_config())
        stats = bsim.run(
            trace,
            max_cycles=sim_spec.cycle_budget(scenario.traffic.trace_based),
            profile=profile,
        )
        return topo, stats
    if profile is not None:
        profile.engine = "interpreter"
    sim = Simulator(topo, routing, sim_spec.sim_config())
    telemetry_cfg = None
    if sim_spec.telemetry_window > 0:
        from repro.telemetry import TelemetryConfig

        telemetry_cfg = TelemetryConfig(window=sim_spec.telemetry_window)
    closed = None
    if sim_spec.closed_loop_window > 0:
        # The generated trace becomes closed-loop *demand*; the simulator
        # itself injects nothing open-loop.
        from repro.control import ClosedLoopConfig, ClosedLoopSession

        closed = ClosedLoopSession(
            ClosedLoopConfig(
                window=sim_spec.closed_loop_window,
                think_cycles=sim_spec.think_cycles,
                reply_flits=sim_spec.reply_flits,
            ),
            trace,
        )
        trace = Trace(topo.n_nodes, [], name=f"{trace.name}-closed")
    control = None
    if sim_spec.controllers:
        from repro.control import ControlSession, make_controllers

        control = ControlSession(
            make_controllers(sim_spec.controllers, n_vcs=sim_spec.n_vcs),
            window=sim_spec.telemetry_window,
            n_nodes=topo.n_nodes,
            n_vcs=sim_spec.n_vcs,
        )
    stats = sim.run(
        trace,
        max_cycles=sim_spec.cycle_budget(scenario.traffic.trace_based),
        telemetry=telemetry_cfg,
        closed_loop=closed,
        control=control,
        profile=profile,
    )
    return topo, stats


def _evaluate_simulation(
    scenario: Scenario, *, profile: PhaseProfile | None = None
) -> dict[str, Any]:
    topo, stats = simulate_scenario(scenario, profile=profile)
    return _sim_metrics(scenario, topo, stats)


def _sim_metrics(scenario: Scenario, topo: Topology, stats) -> dict[str, Any]:
    """Flatten one simulation run's stats into the metrics dictionary.

    Shared by the per-scenario path and the batched-group path, so both
    engines report through the identical recipe.
    """
    import math

    def _finite(x: float) -> float | None:
        return None if math.isnan(x) else float(x)

    metrics = {
        "kind": "simulation",
        "topology_name": topo.name,
        "injection_rate": scenario.traffic.injection_rate,
        "n_packets": stats.n_packets,
        "n_flits": stats.n_flits,
        "cycles": stats.cycles,
        "drained": stats.drained,
        "avg_latency": stats.avg_latency,
        "p99_latency": stats.p99_latency,
        "avg_hops": stats.avg_hops,
        "total_link_traversals": int(stats.link_flit_counts.sum()),
        "total_router_traversals": int(stats.router_flit_counts.sum()),
    }
    if stats.telemetry is not None:
        from repro.telemetry import analyze, power_trace

        findings = analyze(stats.telemetry)
        power = power_trace(topo, stats.telemetry)
        metrics.update(
            telemetry_window=stats.telemetry.window,
            telemetry_windows=stats.telemetry.n_windows,
            saturation_onset_cycle=findings.saturation_onset_cycle,
            baseline_latency=_finite(findings.baseline_latency),
            hotspot_nodes=list(findings.hotspot_nodes),
            first_collapse_cycle=findings.first_collapse_cycle,
            static_w=power.static_w,
            peak_dynamic_w=_finite(power.peak_dynamic_w),
            mean_dynamic_w=_finite(power.mean_dynamic_w),
            dynamic_energy_j=power.total.dynamic_j,
        )
    if stats.closed_loop is not None:
        cl = stats.closed_loop
        metrics.update(
            closed_loop_window=cl.window,
            requests_issued=cl.requests_issued,
            replies_delivered=cl.replies_delivered,
            outstanding_at_end=cl.outstanding_at_end,
            peak_outstanding=cl.peak_outstanding,
            stalled_demand=cl.stalled_demand,
            mean_round_trip=_finite(cl.mean_round_trip),
            request_p50_latency=_finite(cl.request_latency_percentile(50)),
            request_p99_latency=_finite(cl.request_latency_percentile(99)),
            reply_p50_latency=_finite(cl.reply_latency_percentile(50)),
            reply_p99_latency=_finite(cl.reply_latency_percentile(99)),
        )
    if stats.control is not None:
        ct = stats.control
        metrics.update(
            control_actions=ct.n_actions,
            final_throttle_period=ct.final_throttle_period,
            restricted_nodes=list(ct.restricted_nodes),
        )
    return metrics


def _evaluate_all_optical(scenario: Scenario) -> dict[str, Any]:
    from repro.optical.projection import project_all_optical

    params = dict(scenario.traffic.params)
    cmp = project_all_optical(
        width=scenario.topology.width,
        height=scenario.topology.height,
        core_spacing_m=scenario.topology.core_spacing_m,
        injection_rate=scenario.traffic.injection_rate,
        amortization_injection_rate=params.get(
            "amortization_injection_rate", 0.001
        ),
        seed=scenario.traffic.seed,
    )
    metrics: dict[str, Any] = {"kind": "all_optical"}
    for proj in cmp.all():
        key = proj.name.replace("-", "_").replace(" ", "_")
        metrics[f"{key}_latency_clks"] = proj.latency_clks
        metrics[f"{key}_energy_per_bit_fj"] = proj.energy_per_bit_fj
        metrics[f"{key}_area_mm2"] = proj.area_mm2
    metrics["energy_ratio_electronic_over_hyppi"] = (
        cmp.energy_ratio_electronic_over_hyppi
    )
    metrics["area_ratio_photonic_over_hyppi"] = cmp.area_ratio_photonic_over_hyppi
    return metrics


@dataclass(frozen=True)
class ScenarioResult:
    """One evaluated scenario: the spec, its metrics, and provenance."""

    scenario: Scenario
    metrics: dict[str, Any]
    cached: bool
    """True if the metrics were served from the cache (including an
    earlier duplicate within the same batch)."""
    profile: PhaseProfile | None = None
    """Per-phase engine profile when the runner captured one
    (``Runner(profile=True)`` and a freshly simulated point)."""


class SweepHandle:
    """An in-flight batch submitted via :meth:`Runner.submit`.

    A background thread drives the runner's ordered result stream;
    :meth:`poll` drains whatever completed since the previous poll
    without blocking, which is the seam long-running consumers (the
    experiment service's dispatcher, progress UIs) build job progress
    on. :meth:`results` blocks until the batch finishes and re-raises
    any evaluation error. Results always arrive in input order.
    """

    def __init__(self, runner: "Runner", scenarios: Sequence[Scenario]) -> None:
        self.n_points = len(scenarios)
        self._results: list[ScenarioResult] = []
        self._cursor = 0
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._cancel = threading.Event()
        self._error: BaseException | None = None
        # Threads start with a fresh contextvar context: capture the
        # submitter's span so the drive thread's spans nest under it.
        parent_span = current_span_id()

        def drive() -> None:
            try:
                adopt_parent(parent_span)
                with span(
                    "runner.sweep", points=self.n_points, jobs=runner.jobs
                ):
                    for res in runner.run_iter(scenarios):
                        with self._lock:
                            self._results.append(res)
                        if self._cancel.is_set():
                            break
            except BaseException as exc:  # surfaced via results()/poll()
                self._error = exc
            finally:
                self._finished.set()

        self._thread = threading.Thread(
            target=drive, name="repro-sweep", daemon=True
        )
        self._thread.start()

    @property
    def done(self) -> bool:
        """True once every point completed, failed, or was cancelled."""
        return self._finished.is_set()

    @property
    def completed(self) -> int:
        """Points evaluated so far (monotonic, ``<= n_points``)."""
        with self._lock:
            return len(self._results)

    def poll(self) -> list[ScenarioResult]:
        """Results completed since the last :meth:`poll` (non-blocking).

        Raises the evaluation error, if any, once all prior results
        have been drained.
        """
        with self._lock:
            fresh = self._results[self._cursor:]
            self._cursor = len(self._results)
        if not fresh and self._finished.is_set() and self._error is not None:
            raise self._error
        return fresh

    def cancel(self) -> None:
        """Stop after the point currently evaluating (best effort)."""
        self._cancel.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the batch finishes; True if it did within ``timeout``."""
        return self._finished.wait(timeout)

    def results(self, timeout: float | None = None) -> list[ScenarioResult]:
        """All results in input order, blocking until the batch completes."""
        if not self._finished.wait(timeout):
            raise TimeoutError(
                f"batch still running after {timeout:g}s "
                f"({self.completed}/{self.n_points} points)"
            )
        if self._error is not None:
            raise self._error
        with self._lock:
            return list(self._results)


class Runner:
    """Run batches of scenarios serially or on a process pool.

    Duplicate scenarios within a batch are evaluated once; everything
    flows through the runner's :class:`EvaluationCache` (pass a shared
    cache to amortize across runners, or persist it between processes).
    Results preserve input order regardless of executor, and — because
    evaluation is pure with per-scenario seeds — ``jobs=1`` and
    ``jobs=N`` produce bit-identical metrics.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: EvaluationCache | None = None,
        observer: Callable[[dict[str, Any]], None] | None = None,
        profile: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache if cache is not None else EvaluationCache()
        self.observer = observer
        self.profile = profile

    def _emit(self, event: str, **fields: Any) -> None:
        """Report one lifecycle event to the observer (if any).

        Observer failures must never take the sweep down with them —
        they are logged and swallowed (the ledger is an enrichment, the
        results are the product).
        """
        if self.observer is None:
            return
        try:
            self.observer({"event": event, **fields})
        except Exception:
            _log.exception("progress observer failed on %s", event)

    def run(self, scenarios: Iterable[Scenario]) -> list[ScenarioResult]:
        """Evaluate all scenarios, preserving input order."""
        scenarios = list(scenarios)
        with span("runner.sweep", points=len(scenarios), jobs=self.jobs):
            return list(self.run_iter(scenarios))

    def submit(self, scenarios: Iterable[Scenario]) -> SweepHandle:
        """Start evaluating a batch asynchronously; returns its handle.

        The non-blocking face of :meth:`run`: evaluation proceeds on a
        background thread (sharing this runner's cache and executor
        settings) while the caller polls progress via
        :meth:`SweepHandle.poll`. ``handle.results()`` is equivalent to
        ``runner.run(scenarios)`` — same order, same cache flow.
        """
        return SweepHandle(self, list(scenarios))

    def run_iter(self, scenarios: Iterable[Scenario]) -> Iterator[ScenarioResult]:
        """Stream results in input order as they become available.

        Serial mode evaluates lazily (one point per ``next()``); parallel
        mode submits every unique uncached scenario up front and yields
        each result as soon as its turn comes.
        """
        batch = list(scenarios)

        if self.jobs > 1:
            hashes = [scenario_hash(s) for s in batch]
            pending: dict[str, Scenario] = {}
            first_index: dict[str, int] = {}
            for i, (s, h) in enumerate(zip(batch, hashes)):
                if h not in pending and s not in self.cache:
                    pending[h] = s
                    first_index[h] = i
            if len(pending) > 1:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending))
                )
                try:
                    futures = {}
                    for h, s in pending.items():
                        futures[h] = pool.submit(
                            _traced_evaluate, s, self.profile
                        )
                        self._emit(
                            "point.dispatched",
                            point=first_index[h],
                            engine=_engine_label(s),
                        )
                    for i, (s, h) in enumerate(zip(batch, hashes)):
                        metrics = self.cache.get(s)
                        if metrics is None:
                            engine = _engine_label(s)
                            try:
                                metrics, worker_spans, info = futures[h].result()
                            except Exception as exc:
                                self._emit(
                                    "point.failed",
                                    point=i,
                                    error=f"{type(exc).__name__}: {exc}",
                                )
                                raise
                            self._emit(
                                "point.simulating",
                                point=i,
                                worker=info.get("pid"),
                                worker_t=info.get("worker_t"),
                                engine=engine,
                            )
                            if worker_spans:
                                merge_exported(
                                    worker_spans, parent_id=current_span_id()
                                )
                            self.cache.put(s, metrics)
                            _count_point(s)
                            self._emit(
                                "point.completed",
                                point=i,
                                worker=info.get("pid"),
                                engine=engine,
                                cached=False,
                            )
                            prof = (
                                PhaseProfile.from_json(info["profile"])
                                if info.get("profile")
                                else None
                            )
                            yield ScenarioResult(
                                s, metrics, cached=False, profile=prof
                            )
                        else:
                            _POINTS_CACHED.inc()
                            self._emit("point.cached", point=i)
                            yield ScenarioResult(s, metrics, cached=True)
                finally:
                    # An abandoned stream must not join the whole batch:
                    # drop queued work and let running points finish alone.
                    pool.shutdown(wait=False, cancel_futures=True)
                return

        fresh = self._run_batched_groups(batch)
        for i, s in enumerate(batch):
            metrics = self.cache.get(s)
            if metrics is None:
                engine = _engine_label(s)
                self._emit("point.dispatched", point=i, engine=engine)
                self._emit(
                    "point.simulating",
                    point=i,
                    worker=os.getpid(),
                    worker_t=round(time.time(), 6),
                    engine=engine,
                )
                prof = (
                    PhaseProfile()
                    if self.profile and s.kind == "simulation"
                    else None
                )
                try:
                    with span("runner.point", point=s.label):
                        metrics = evaluate_scenario(s, profile=prof)
                except Exception as exc:
                    self._emit(
                        "point.failed",
                        point=i,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    raise
                self.cache.put(s, metrics)
                _count_point(s)
                self._emit(
                    "point.completed",
                    point=i,
                    worker=os.getpid(),
                    engine=engine,
                    cached=False,
                )
                yield ScenarioResult(s, metrics, cached=False, profile=prof)
            else:
                h = scenario_hash(s)
                if h in fresh:
                    # Evaluated moments ago by the batched group pass,
                    # which emitted this point's lifecycle events.
                    fresh.discard(h)
                    yield ScenarioResult(s, metrics, cached=False)
                else:
                    _POINTS_CACHED.inc()
                    self._emit("point.cached", point=i)
                    yield ScenarioResult(s, metrics, cached=True)

    def _run_batched_groups(self, batch: Sequence[Scenario]) -> set[str]:
        """Evaluate batched-engine scenarios family-by-family up front.

        Uncached scenarios requesting the batched engine are grouped by
        (topology spec, simulator config) and each group is evaluated in
        one :meth:`~repro.simulation.BatchSimulator.run_batch` call, so
        family state is built once and the per-cycle work of all points
        is amortized. Returns the hashes evaluated here, so the stream
        can report their first occurrence as ``cached=False``.

        With ``profile=True`` the group pass is skipped entirely:
        lockstep batching cannot attribute phase time to individual
        points, so profiled sweeps evaluate each point through the
        single-run path (which still uses the batched engine, one trace
        at a time).
        """
        if self.profile:
            return set()
        groups: dict[tuple, list[tuple[int, str, Scenario]]] = {}
        seen: set[str] = set()
        for i, s in enumerate(batch):
            if not _batched_eligible(s) or s in self.cache:
                continue
            h = scenario_hash(s)
            if h in seen:
                continue
            seen.add(h)
            groups.setdefault((s.topology, s.sim.sim_config()), []).append(
                (i, h, s)
            )
        fresh: set[str] = set()
        pid = os.getpid()
        for (topo_spec, cfg), items in groups.items():
            topo, _ = _materialize(topo_spec)
            bsim = _materialize_batched(topo_spec, cfg)
            traces = [s.traffic.trace(topo, sim=s.sim) for _, _, s in items]
            caps = [
                s.sim.cycle_budget(s.traffic.trace_based) for _, _, s in items
            ]
            for i, _, _s in items:
                self._emit("point.dispatched", point=i, engine="batched")
            # The group's points genuinely advance in lockstep, so they
            # all enter the simulating stage together.
            now = round(time.time(), 6)
            for i, _, _s in items:
                self._emit(
                    "point.simulating",
                    point=i,
                    worker=pid,
                    worker_t=now,
                    engine="batched",
                )
            with span("runner.batch_group", points=len(items)):
                stats_list = bsim.run_batch(traces, max_cycles=caps)
            for (i, h, s), stats in zip(items, stats_list):
                self.cache.put(s, _sim_metrics(s, topo, stats))
                _count_point(s)
                fresh.add(h)
                self._emit(
                    "point.completed",
                    point=i,
                    worker=pid,
                    engine="batched",
                    cached=False,
                )
        return fresh

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        """Order-preserving map on this runner's executor.

        A convenience for non-scenario work that should still honour
        ``--jobs`` (e.g. the Table VI router evaluations). With
        ``jobs > 1`` the callable and items must be picklable
        (module-level function, plain-data arguments); results are not
        cached.
        """
        items = list(items)
        if self.jobs == 1 or len(items) < 2:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))
