"""Declarative experiment scenarios (the engine's unit of work).

A :class:`Scenario` names one design point — topology construction,
technologies, traffic generation, injection rate, simulator
microarchitecture and seed — as a frozen, hashable, JSON-serializable
record. Because a scenario is *data*, it can be deduplicated, cached by
content hash, shipped to a worker process, and persisted next to its
results; the evaluation itself (:func:`repro.experiments.runner
.evaluate_scenario`) is a pure function of the scenario, which is what
makes serial and parallel runs bit-identical.

Three kinds of scenario cover the paper's artefacts:

* ``"analytical"`` — the CLEAR evaluation pipeline (Fig. 5, Tables III/IV);
* ``"simulation"`` — a cycle-accurate run of a synthetic or NPB trace
  (Fig. 6, saturation sweeps);
* ``"all_optical"`` — the Fig. 8 three-way all-optical projection.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.simulation.simulator import SimConfig
from repro.tech.parameters import Technology
from repro.topology.graph import Topology
from repro.topology.mesh import build_express_mesh, build_mesh
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.npb import NPB_KERNELS
from repro.traffic.trace import Trace

__all__ = [
    "KINDS",
    "Scenario",
    "SimSpec",
    "TopologySpec",
    "TrafficSpec",
    "scenario_from_json",
    "scenario_hash",
    "scenario_to_json",
]

KINDS = ("analytical", "simulation", "all_optical")


def _matrix_generator_names() -> list[str]:
    """Matrix generators a :class:`TrafficSpec` may name (the registry is
    owned by :mod:`repro.workloads.spec`; imported lazily to keep import
    time low)."""
    from repro.workloads.spec import matrix_generator_names

    return matrix_generator_names()


def _params_tuple(params: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Hashable params view (shared normalization with WorkloadSpec)."""
    from repro.workloads.spec import params_tuple

    return params_tuple(params)


@dataclass(frozen=True)
class TopologySpec:
    """How to build the network of one design point."""

    builder: str = "mesh"
    """``"mesh"`` or ``"express_mesh"``."""
    width: int = 16
    height: int = 16
    base_technology: Technology = Technology.ELECTRONIC
    express_technology: Technology | None = None
    hops: int = 0
    core_spacing_m: float = 1e-3

    def __post_init__(self) -> None:
        if self.builder not in ("mesh", "express_mesh"):
            raise ValueError(f"unknown topology builder {self.builder!r}")
        if self.builder == "express_mesh":
            if self.express_technology is None:
                raise ValueError("express_mesh needs an express technology")
            if self.hops < 2:
                raise ValueError(f"express hops must be >= 2, got {self.hops}")
        elif self.express_technology is not None or self.hops != 0:
            raise ValueError("plain mesh takes no express technology / hops")

    @classmethod
    def plain(
        cls,
        technology: Technology,
        *,
        width: int = 16,
        height: int = 16,
        core_spacing_m: float = 1e-3,
    ) -> "TopologySpec":
        return cls(
            builder="mesh",
            width=width,
            height=height,
            base_technology=technology,
            core_spacing_m=core_spacing_m,
        )

    @classmethod
    def express(
        cls,
        base_technology: Technology,
        express_technology: Technology,
        hops: int,
        *,
        width: int = 16,
        height: int = 16,
        core_spacing_m: float = 1e-3,
    ) -> "TopologySpec":
        return cls(
            builder="express_mesh",
            width=width,
            height=height,
            base_technology=base_technology,
            express_technology=express_technology,
            hops=hops,
            core_spacing_m=core_spacing_m,
        )

    def build(self) -> Topology:
        """Materialize the topology."""
        if self.builder == "mesh":
            return build_mesh(
                self.width,
                self.height,
                link_technology=self.base_technology,
                core_spacing_m=self.core_spacing_m,
            )
        return build_express_mesh(
            self.width,
            self.height,
            hops=self.hops,
            base_technology=self.base_technology,
            express_technology=self.express_technology,
            core_spacing_m=self.core_spacing_m,
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "builder": self.builder,
            "width": self.width,
            "height": self.height,
            "base_technology": self.base_technology.value,
            "express_technology": (
                None
                if self.express_technology is None
                else self.express_technology.value
            ),
            "hops": self.hops,
            "core_spacing_m": self.core_spacing_m,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "TopologySpec":
        return cls(
            builder=data["builder"],
            width=data["width"],
            height=data["height"],
            base_technology=Technology(data["base_technology"]),
            express_technology=(
                None
                if data["express_technology"] is None
                else Technology(data["express_technology"])
            ),
            hops=data["hops"],
            core_spacing_m=data["core_spacing_m"],
        )


@dataclass(frozen=True)
class TrafficSpec:
    """How to generate the offered traffic of one design point.

    ``generator`` is a traffic-matrix generator name (soteriou, uniform,
    transpose, ...), ``"npb"`` for the synthetic NAS kernels, or
    ``"workload"`` for a :class:`repro.workloads.WorkloadSpec` model (a
    ``"model"`` param names the temporal model or application skeleton,
    an optional ``"traffic"`` param its destination matrix); extra
    generator keywords live in ``params`` as a sorted tuple of
    ``(key, value)`` pairs so the spec stays hashable.
    """

    generator: str = "soteriou"
    injection_rate: float = 0.1
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if (
            self.generator not in ("npb", "workload")
            and self.generator not in _matrix_generator_names()
        ):
            raise ValueError(
                f"unknown traffic generator {self.generator!r}; expected "
                f"'npb', 'workload' or one of {_matrix_generator_names()}"
            )
        if self.injection_rate < 0:
            raise ValueError(
                f"injection rate must be >= 0, got {self.injection_rate}"
            )
        if self.generator == "npb" and "kernel" not in dict(self.params):
            raise ValueError("npb traffic needs a 'kernel' param")
        if self.generator == "workload" and "model" not in dict(self.params):
            raise ValueError("workload traffic needs a 'model' param")

    @classmethod
    def make(
        cls,
        generator: str,
        *,
        injection_rate: float = 0.1,
        seed: int = 0,
        **params: Any,
    ) -> "TrafficSpec":
        """Build a spec from keyword generator parameters."""
        return cls(
            generator=generator,
            injection_rate=injection_rate,
            seed=seed,
            params=_params_tuple(params),
        )

    @property
    def trace_based(self) -> bool:
        """True when the workload fixes its own injection schedule (NPB
        kernels and application skeletons), so the simulator should use
        the hard ``max_cycles`` cap instead of the open-loop
        cycles + drain budget."""
        if self.generator == "npb":
            return True
        if self.generator == "workload":
            from repro.workloads import SKELETONS

            return dict(self.params)["model"] in SKELETONS
        return False

    def matrix(self, topo: Topology) -> TrafficMatrix:
        """Generate the traffic matrix (matrix generators only)."""
        if self.generator in ("npb", "workload"):
            raise ValueError(
                f"{self.generator} traffic is trace-based; use trace()"
            )
        from repro.workloads.spec import build_traffic_matrix

        return build_traffic_matrix(
            self.generator,
            topo,
            injection_rate=self.injection_rate,
            seed=self.seed,
            **dict(self.params),
        )

    def trace(self, topo: Topology, *, sim: "SimSpec") -> Trace:
        """Generate the workload trace for a simulation scenario."""
        if self.generator == "npb":
            kwargs = dict(self.params)
            kernel = kwargs.pop("kernel")
            builder = NPB_KERNELS.get(str(kernel).upper())
            if builder is None:
                raise ValueError(f"unknown NPB kernel {kernel!r}")
            return builder(**kwargs)
        if self.generator == "workload":
            from repro.workloads import WorkloadSpec

            kwargs = dict(self.params)
            model = str(kwargs.pop("model"))
            return WorkloadSpec.make(
                model,
                injection_rate=self.injection_rate,
                cycles=sim.cycles,
                packet_flits=sim.packet_flits,
                seed=self.seed,
                traffic=str(kwargs.pop("traffic", "uniform")),
                **kwargs,
            ).build(topo)
        from repro.simulation.workload import synthetic_trace

        return synthetic_trace(
            self.matrix(topo),
            injection_rate=self.injection_rate,
            cycles=sim.cycles,
            packet_flits=sim.packet_flits,
            seed=self.seed,
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "generator": self.generator,
            "injection_rate": self.injection_rate,
            "seed": self.seed,
            "params": [[k, v] for k, v in self.params],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "TrafficSpec":
        return cls(
            generator=data["generator"],
            injection_rate=data["injection_rate"],
            seed=data["seed"],
            params=tuple((k, v) for k, v in data["params"]),
        )


@dataclass(frozen=True)
class SimSpec:
    """Simulator microarchitecture + workload window for one scenario."""

    n_vcs: int = 4
    vc_depth: int = 8
    router_pipeline: int = 3
    electronic_link_cycles: int = 1
    optical_link_cycles: int = 2
    cycles: int = 1000
    """Injection window for synthetic open-loop traffic."""
    packet_flits: int = 1
    drain_budget: int = 200_000
    """Post-injection drain allowance for synthetic traffic."""
    max_cycles: int = 2_000_000
    """Hard cycle cap for trace workloads (NPB)."""
    telemetry_window: int = 0
    """Windowed-telemetry sampling period in cycles (0 = disabled; see
    :mod:`repro.telemetry`). Enabled runs additionally report saturation
    onset, hotspots and windowed power in their metrics."""
    closed_loop_window: int = 0
    """Per-source outstanding-request window (0 = open loop; see
    :mod:`repro.control.sources`). Closed-loop scenarios reinterpret the
    generated traffic as *demand*: requests are released only while fewer
    than this many are in flight, and each delivered request generates a
    reply that returns the credit."""
    think_cycles: int = 0
    """Destination service time before a closed-loop reply is offered."""
    reply_flits: int = 1
    """Closed-loop reply packet size in flits."""
    controllers: tuple[Any, ...] = ()
    """Online controllers acting at telemetry window boundaries.
    Entries are controller names (from
    :func:`repro.control.controller_names`) or ``{"name": ...,
    "params": {...}}`` dicts carrying factory keywords; dict entries are
    normalized to hashable ``(name, ((key, value), ...))`` pairs.
    Requires ``telemetry_window > 0``."""
    engine: str = "interpreter"
    """Execution engine: ``"interpreter"`` (reference) or ``"batched"``
    (the vectorized :class:`repro.simulation.BatchSimulator`; scenarios
    using telemetry, closed-loop sessions or controllers fall back to
    the interpreter — see :mod:`repro.simulation.batch`)."""

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")
        if self.engine not in ("interpreter", "batched"):
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                "one of ('interpreter', 'batched')"
            )
        if self.drain_budget < 1 or self.max_cycles < 1:
            raise ValueError(f"cycle budgets must be >= 1: {self}")
        if self.telemetry_window < 0:
            raise ValueError(
                f"telemetry window must be >= 0, got {self.telemetry_window}"
            )
        if self.closed_loop_window < 0 or self.think_cycles < 0:
            raise ValueError(f"closed-loop knobs must be >= 0: {self}")
        if self.reply_flits < 1:
            raise ValueError(
                f"reply size must be >= 1 flit, got {self.reply_flits}"
            )
        if self.controllers:
            from repro.control.controllers import (
                controller_entry,
                controller_names,
            )

            if self.telemetry_window < 1:
                raise ValueError(
                    "controllers act on telemetry windows; set "
                    "telemetry_window > 0"
                )
            norm: list[Any] = []
            for raw in self.controllers:
                name, params = controller_entry(raw)
                if name not in controller_names():
                    raise ValueError(
                        f"unknown controller {name!r}; one of "
                        f"{controller_names()}"
                    )
                norm.append(name if not params else (name, _params_tuple(params)))
            object.__setattr__(self, "controllers", tuple(norm))
        else:
            object.__setattr__(self, "controllers", tuple(self.controllers))

    def sim_config(self) -> SimConfig:
        return SimConfig(
            n_vcs=self.n_vcs,
            vc_depth=self.vc_depth,
            router_pipeline=self.router_pipeline,
            electronic_link_cycles=self.electronic_link_cycles,
            optical_link_cycles=self.optical_link_cycles,
        )

    def cycle_budget(self, trace_based: bool) -> int:
        """Simulation cycle cap for this workload style."""
        return self.max_cycles if trace_based else self.cycles + self.drain_budget

    def to_json(self) -> dict[str, Any]:
        return {
            "n_vcs": self.n_vcs,
            "vc_depth": self.vc_depth,
            "router_pipeline": self.router_pipeline,
            "electronic_link_cycles": self.electronic_link_cycles,
            "optical_link_cycles": self.optical_link_cycles,
            "cycles": self.cycles,
            "packet_flits": self.packet_flits,
            "drain_budget": self.drain_budget,
            "max_cycles": self.max_cycles,
            "telemetry_window": self.telemetry_window,
            "closed_loop_window": self.closed_loop_window,
            "think_cycles": self.think_cycles,
            "reply_flits": self.reply_flits,
            "controllers": [
                c
                if isinstance(c, str)
                else {"name": c[0], "params": dict(c[1])}
                for c in self.controllers
            ],
            "engine": self.engine,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SimSpec":
        data = dict(data)
        data["controllers"] = tuple(data.get("controllers", ()))
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """One named design point. The engine's unit of work.

    ``name`` is a display label and is *excluded* from the content hash:
    two scenarios that describe the same experiment share cache entries
    no matter what they are called.
    """

    kind: str
    topology: TopologySpec
    traffic: TrafficSpec
    sim: SimSpec | None = None
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}; one of {KINDS}")
        if self.kind == "simulation" and self.sim is None:
            raise ValueError("simulation scenarios need a SimSpec")

    @property
    def label(self) -> str:
        """Display label (falls back to a content summary)."""
        if self.name:
            return self.name
        t = self.topology
        topo = (
            f"{t.base_technology.value}-mesh"
            if t.builder == "mesh"
            else f"{t.base_technology.value}+{t.express_technology.value}"
            f"x{t.hops}"
        )
        return f"{self.kind}:{topo}:{self.traffic.generator}"

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "topology": self.topology.to_json(),
            "traffic": self.traffic.to_json(),
            "sim": None if self.sim is None else self.sim.to_json(),
        }


def scenario_to_json(scenario: Scenario) -> dict[str, Any]:
    """Serialize a scenario to JSON-safe data."""
    return scenario.to_json()


def scenario_from_json(data: dict[str, Any]) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_json` output."""
    return Scenario(
        kind=data["kind"],
        name=data.get("name", ""),
        topology=TopologySpec.from_json(data["topology"]),
        traffic=TrafficSpec.from_json(data["traffic"]),
        sim=None if data["sim"] is None else SimSpec.from_json(data["sim"]),
    )


def scenario_hash(scenario: Scenario) -> str:
    """Stable content hash of a scenario (cache key).

    Canonical-JSON SHA-256 over everything except the display name, so
    the hash survives process boundaries, interpreter restarts and JSON
    round-trips — unlike Python's salted ``hash()``.
    """
    payload = scenario.to_json()
    del payload["name"]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
