"""Built-in scenario families and a registry for new ones.

A *family* is a callable that expands a few knobs into an ordered list of
:class:`~repro.experiments.spec.Scenario` records — the declarative form
of the paper's sweeps. Built-ins cover the headline artefacts:

* ``"paper-grid"`` — the Fig. 5 design-space grid (plain meshes plus
  base x express x hops, Soteriou traffic at the paper's operating point);
* ``"saturation-sweep"`` — open-loop latency-vs-load simulation points;
* ``"workload-saturation"`` — latency-vs-load for any registered
  :mod:`repro.workloads` temporal model (bursty, self-similar, ...);
* ``"npb-kernels"`` — cycle simulations of the NAS kernels on the mesh
  and the express hybrids (Fig. 6);
* ``"all-optical-projection"`` — the Fig. 8 three-way comparison.

Register additional families with :func:`register_family` to make new
workloads addressable by name from the CLI, benchmarks and reports.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.config import PAPER_CONFIG, NocExperimentConfig
from repro.experiments.spec import Scenario, SimSpec, TopologySpec, TrafficSpec
from repro.tech.parameters import Technology
from repro.util.rng import derive_seed
from repro.util.sweep import grid

__all__ = [
    "DEFAULT_NPB_WORKLOADS",
    "family_names",
    "paper_point",
    "register_family",
    "scenario_family",
]

_FAMILIES: dict[str, Callable[..., list[Scenario]]] = {}

#: Per-kernel (volume_scale, iterations) keeping NPB traces within the
#: simulation budget while preserving the paper's latency trends.
DEFAULT_NPB_WORKLOADS: dict[str, tuple[float, int]] = {
    "FT": (3e-3, 1),
    "CG": (3e-4, 1),
    "MG": (5e-3, 1),
    "LU": (1e-2, 2),
}


def register_family(
    name: str,
) -> Callable[[Callable[..., list[Scenario]]], Callable[..., list[Scenario]]]:
    """Decorator: make a scenario-family builder addressable by ``name``."""

    def wrap(fn: Callable[..., list[Scenario]]) -> Callable[..., list[Scenario]]:
        if name in _FAMILIES:
            raise ValueError(f"scenario family {name!r} already registered")
        _FAMILIES[name] = fn
        return fn

    return wrap


def scenario_family(name: str, /, **kwargs: object) -> list[Scenario]:
    """Expand the named family with the given knobs into scenarios."""
    try:
        fn = _FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario family {name!r}; expected one of {family_names()}"
        ) from None
    return fn(**kwargs)


def family_names() -> list[str]:
    """All registered family names, sorted."""
    return sorted(_FAMILIES)


def _topology_spec(
    config: NocExperimentConfig,
    base: Technology,
    express: Technology | None,
    hops: int,
) -> TopologySpec:
    if express is None:
        return TopologySpec.plain(
            base,
            width=config.width,
            height=config.height,
            core_spacing_m=config.core_spacing_m,
        )
    return TopologySpec.express(
        base,
        express,
        hops,
        width=config.width,
        height=config.height,
        core_spacing_m=config.core_spacing_m,
    )


def paper_point(
    base: Technology,
    express: Technology | None = None,
    hops: int = 0,
    *,
    config: NocExperimentConfig = PAPER_CONFIG,
    injection_rate: float | None = None,
    seed: int = 0,
) -> Scenario:
    """One analytical design point of the paper grid (a single Fig. 5 bar).

    The single source of truth for how a (base, express, hops) triple maps
    to a scenario — the DSE's ``evaluate_point`` and the ``"paper-grid"``
    family both build points here, so their cache entries interchange.
    """
    rate = config.max_injection_rate if injection_rate is None else injection_rate
    return Scenario(
        kind="analytical",
        topology=_topology_spec(config, base, express, hops if express else 0),
        traffic=TrafficSpec.make(
            "soteriou",
            injection_rate=rate,
            seed=seed,
            p=config.soteriou_p,
            sigma=config.soteriou_sigma,
        ),
        name=(
            f"{base.value}-mesh (plain)"
            if express is None
            else f"{base.value}-base + {express.value} x{hops}"
        ),
    )


@register_family("paper-grid")
def paper_grid(
    *,
    config: NocExperimentConfig = PAPER_CONFIG,
    injection_rate: float | None = None,
    seed: int = 0,
    base_technologies: Sequence[Technology] | None = None,
    express_technologies: Sequence[Technology] | None = None,
    hops_options: Sequence[int] | None = None,
) -> list[Scenario]:
    """The Fig. 5 DSE grid: per base, the plain mesh then express options.

    Point order matches :meth:`repro.core.dse.DesignSpaceExplorer.explore`
    (base -> plain first -> express technology -> hop count), which is
    the layout of the paper's Fig. 5 panels.
    """
    # Imported here, not at module top: repro.core.dse routes back into
    # this package at call time.
    from repro.core.dse import DEFAULT_NETWORK_TECHS

    bases = (
        tuple(DEFAULT_NETWORK_TECHS)
        if base_technologies is None
        else tuple(base_technologies)
    )
    expresses = (
        tuple(DEFAULT_NETWORK_TECHS)
        if express_technologies is None
        else tuple(express_technologies)
    )
    hops_list = (
        tuple(config.express_hops_options)
        if hops_options is None
        else tuple(hops_options)
    )
    scenarios: list[Scenario] = []
    for base in bases:
        points: list[tuple[Technology | None, int]] = [(None, 0)]
        points += [
            (combo["express"], combo["hops"])
            for combo in grid({"express": expresses, "hops": hops_list})
        ]
        for express, hops in points:
            scenarios.append(
                paper_point(
                    base,
                    express,
                    hops,
                    config=config,
                    injection_rate=injection_rate,
                    seed=seed,
                )
            )
    return scenarios


@register_family("saturation-sweep")
def saturation_sweep(
    *,
    rates: Sequence[float],
    hops: int = 0,
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
    traffic: str = "uniform",
    width: int = 16,
    height: int = 16,
    cycles: int = 1200,
    packet_flits: int = 1,
    drain_budget: int = 200_000,
    seed: int = 0,
    engine: str = "interpreter",
) -> list[Scenario]:
    """Open-loop latency-vs-offered-load points, one scenario per rate.

    Each point derives its own workload seed from ``(seed, index)``, so
    a point's trace is identical whether the sweep runs serially, on a
    process pool, or as a single re-evaluated scenario.
    """
    topo = (
        TopologySpec.plain(base_technology, width=width, height=height)
        if hops == 0
        else TopologySpec.express(
            base_technology, express_technology, hops, width=width, height=height
        )
    )
    sim = SimSpec(
        cycles=cycles,
        packet_flits=packet_flits,
        drain_budget=drain_budget,
        engine=engine,
    )
    scenarios = []
    for i, rate in enumerate(rates):
        scenarios.append(
            Scenario(
                kind="simulation",
                topology=topo,
                traffic=TrafficSpec.make(
                    traffic,
                    injection_rate=float(rate),
                    seed=derive_seed(seed, i),
                ),
                sim=sim,
                name=f"{traffic}-r{float(rate):g}",
            )
        )
    return scenarios


@register_family("workload-saturation")
def workload_saturation(
    *,
    rates: Sequence[float],
    model: str = "onoff",
    traffic: str = "uniform",
    hops: int = 0,
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
    width: int = 16,
    height: int = 16,
    cycles: int = 1200,
    packet_flits: int = 1,
    drain_budget: int = 200_000,
    seed: int = 0,
    engine: str = "interpreter",
    **model_params: object,
) -> list[Scenario]:
    """Latency-vs-load points for *any* registered workload model.

    The generalization of ``"saturation-sweep"``: ``model`` names a
    temporal model from :mod:`repro.workloads` (``bernoulli``, ``onoff``,
    ``pareto``, ``modulated``) and ``model_params`` forwards its knobs
    (``duty``, ``burst_len``, ``alpha``, ``hotspot_nodes``, ...; sequence
    values must be tuples so scenarios stay hashable). At equal mean rate
    a bursty model saturates at or below the Bernoulli saturation point —
    comparing the ``drained`` flags across models at the same ``rates``
    locates how much headroom burstiness costs. Per-rate workload seeds
    derive from ``(seed, index)`` exactly like ``"saturation-sweep"``.
    """
    topo = (
        TopologySpec.plain(base_technology, width=width, height=height)
        if hops == 0
        else TopologySpec.express(
            base_technology, express_technology, hops, width=width, height=height
        )
    )
    sim = SimSpec(
        cycles=cycles,
        packet_flits=packet_flits,
        drain_budget=drain_budget,
        engine=engine,
    )
    return [
        Scenario(
            kind="simulation",
            topology=topo,
            traffic=TrafficSpec.make(
                "workload",
                injection_rate=float(rate),
                seed=derive_seed(seed, i),
                model=model,
                traffic=traffic,
                **model_params,
            ),
            sim=sim,
            name=f"{model}-{traffic}-r{float(rate):g}",
        )
        for i, rate in enumerate(rates)
    ]


@register_family("telemetry-profile")
def telemetry_profile(
    *,
    rates: Sequence[float] = (0.1,),
    model: str = "onoff",
    traffic: str = "uniform",
    hops: int = 0,
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
    width: int = 8,
    height: int = 8,
    cycles: int = 4000,
    window: int = 128,
    packet_flits: int = 1,
    drain_budget: int = 200_000,
    seed: int = 0,
    engine: str = "interpreter",
    **model_params: object,
) -> list[Scenario]:
    """Time-resolved profiling points: simulation with telemetry sampling.

    The observability companion of ``"workload-saturation"``: identical
    workload knobs, but every run samples windowed activity every
    ``window`` cycles (:mod:`repro.telemetry`), so its metrics include the
    saturation-onset cycle, sustained hotspot routers and windowed power
    figures instead of only the end-of-run SATURATED flag. Defaults to an
    8x8 mesh — profiling runs are longer than sweep points, and transient
    structure (bursts, phases) shows at small scale just as well.
    """
    topo = (
        TopologySpec.plain(base_technology, width=width, height=height)
        if hops == 0
        else TopologySpec.express(
            base_technology, express_technology, hops, width=width, height=height
        )
    )
    sim = SimSpec(
        cycles=cycles,
        packet_flits=packet_flits,
        drain_budget=drain_budget,
        telemetry_window=window,
        engine=engine,
    )
    return [
        Scenario(
            kind="simulation",
            topology=topo,
            traffic=TrafficSpec.make(
                "workload",
                injection_rate=float(rate),
                seed=derive_seed(seed, i),
                model=model,
                traffic=traffic,
                **model_params,
            ),
            sim=sim,
            name=f"telemetry-{model}-{traffic}-r{float(rate):g}",
        )
        for i, rate in enumerate(rates)
    ]


@register_family("closed-loop-saturation")
def closed_loop_saturation(
    *,
    rates: Sequence[float],
    window: int = 4,
    think_cycles: int = 0,
    reply_flits: int = 1,
    model: str = "bernoulli",
    traffic: str = "uniform",
    hops: int = 0,
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
    width: int = 16,
    height: int = 16,
    cycles: int = 1200,
    packet_flits: int = 1,
    drain_budget: int = 200_000,
    telemetry_window: int = 0,
    controllers: Sequence[str] = (),
    seed: int = 0,
    engine: str = "interpreter",
    **model_params: object,
) -> list[Scenario]:
    """Closed-loop request/reply latency-vs-demand points.

    The shape of ``"workload-saturation"`` with the generated traffic
    reinterpreted as *demand*: each source keeps at most ``window``
    requests outstanding, destinations serve replies after
    ``think_cycles``, and offered load self-limits under congestion
    (:mod:`repro.control.sources`). At a demand rate where the open-loop
    equivalent is SATURATED, the windowed points plateau — they drain,
    later, instead of jamming. ``controllers`` additionally attaches
    online adaptive control (requires ``telemetry_window > 0``).
    """
    topo = (
        TopologySpec.plain(base_technology, width=width, height=height)
        if hops == 0
        else TopologySpec.express(
            base_technology, express_technology, hops, width=width, height=height
        )
    )
    sim = SimSpec(
        cycles=cycles,
        packet_flits=packet_flits,
        drain_budget=drain_budget,
        telemetry_window=telemetry_window,
        closed_loop_window=window,
        think_cycles=think_cycles,
        reply_flits=reply_flits,
        controllers=tuple(controllers),
        engine=engine,
    )
    return [
        Scenario(
            kind="simulation",
            topology=topo,
            traffic=TrafficSpec.make(
                "workload",
                injection_rate=float(rate),
                seed=derive_seed(seed, i),
                model=model,
                traffic=traffic,
                **model_params,
            ),
            sim=sim,
            name=f"closed-{model}-w{window}-r{float(rate):g}",
        )
        for i, rate in enumerate(rates)
    ]


@register_family("knee-search")
def knee_search(
    *,
    rates: Sequence[float],
    model: str = "bernoulli",
    traffic: str = "uniform",
    hops: int = 0,
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
    width: int = 8,
    height: int = 8,
    cycles: int = 2000,
    window: int = 128,
    packet_flits: int = 1,
    drain_budget: int = 20_000,
    seed: int = 0,
    engine: str = "interpreter",
    **model_params: object,
) -> list[Scenario]:
    """Telemetry-enabled saturation probes for knee location.

    One scenario per rate, sampled every ``window`` cycles so the
    streaming :class:`~repro.telemetry.detectors.SaturationDetector`
    delivers the stable/saturated verdict
    (:func:`repro.control.probe_is_saturated`). Unlike the sweep
    families, every rate shares the *same* workload seed: a probe at
    rate ``r`` is the identical scenario whether it came from
    :func:`repro.control.locate_knee`'s bisection, a brute-force grid,
    or an earlier search — which is what lets the evaluation cache
    deduplicate across all of them. The default drain budget is modest
    on purpose: the detector, not budget exhaustion, is the verdict.
    """
    topo = (
        TopologySpec.plain(base_technology, width=width, height=height)
        if hops == 0
        else TopologySpec.express(
            base_technology, express_technology, hops, width=width, height=height
        )
    )
    sim = SimSpec(
        cycles=cycles,
        packet_flits=packet_flits,
        drain_budget=drain_budget,
        telemetry_window=window,
        engine=engine,
    )
    return [
        Scenario(
            kind="simulation",
            topology=topo,
            traffic=TrafficSpec.make(
                "workload",
                injection_rate=float(rate),
                seed=seed,
                model=model,
                traffic=traffic,
                **model_params,
            ),
            sim=sim,
            name=f"knee-{model}-r{float(rate):g}",
        )
        for rate in rates
    ]


@register_family("npb-kernels")
def npb_kernels(
    *,
    kernels: Sequence[str] = ("FT", "CG", "MG", "LU"),
    hops_options: Sequence[int] = (0, 3, 5, 15),
    base_technology: Technology = Technology.ELECTRONIC,
    express_technology: Technology = Technology.HYPPI,
    workloads: dict[str, tuple[float, int | None]] | None = None,
    max_cycles: int = 2_000_000,
    engine: str = "interpreter",
) -> list[Scenario]:
    """Fig. 6 NPB cycle simulations: kernel outer, topology inner.

    ``hops_options`` may include 0 for the plain mesh. ``workloads`` maps
    kernel -> (volume_scale, iterations), defaulting to
    :data:`DEFAULT_NPB_WORKLOADS`; an iterations of ``None`` keeps the
    kernel builder's own default.
    """
    loads = DEFAULT_NPB_WORKLOADS if workloads is None else workloads
    sim = SimSpec(max_cycles=max_cycles, engine=engine)
    scenarios = []
    for combo in grid({"kernel": list(kernels), "hops": list(hops_options)}):
        kernel = str(combo["kernel"]).upper()
        hops = int(combo["hops"])
        volume_scale, iterations = loads[kernel]
        params: dict[str, object] = {
            "kernel": kernel,
            "volume_scale": volume_scale,
        }
        if iterations is not None:
            params["iterations"] = iterations
        topo = (
            TopologySpec.plain(base_technology)
            if hops == 0
            else TopologySpec.express(base_technology, express_technology, hops)
        )
        scenarios.append(
            Scenario(
                kind="simulation",
                topology=topo,
                traffic=TrafficSpec.make("npb", injection_rate=0.0, **params),
                sim=sim,
                name=f"npb-{kernel.lower()}-{'mesh' if hops == 0 else f'h{hops}'}",
            )
        )
    return scenarios


@register_family("all-optical-projection")
def all_optical_projection(
    *,
    amortization_injection_rate: float = 0.001,
    injection_rate: float = 0.1,
    seed: int = 0,
    width: int = 16,
    height: int = 16,
    core_spacing_m: float = 1e-3,
) -> list[Scenario]:
    """The Fig. 8 three-way all-optical projection as one scenario."""
    return [
        Scenario(
            kind="all_optical",
            topology=TopologySpec.plain(
                Technology.ELECTRONIC,
                width=width,
                height=height,
                core_spacing_m=core_spacing_m,
            ),
            traffic=TrafficSpec.make(
                "soteriou",
                injection_rate=injection_rate,
                seed=seed,
                amortization_injection_rate=amortization_injection_rate,
            ),
            name="all-optical-projection",
        )
    ]
