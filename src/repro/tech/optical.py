"""Shared optical link physics for photonic, plasmonic and HyPPI links.

All three optical technologies share the same structure (Fig. 1 of the
paper): laser -> modulator -> waveguide (with optional couplers) -> detector.
The model closes the loop between Table I parameters and energy/latency:

* **Latency** = fixed E-O/O-E conversion latency + time of flight
  (``group_index * L / c``).
* **Receiver-limited laser power**: the detector must integrate
  ``receiver_charge_fc`` of photocurrent per bit, so the minimum received
  power at data rate ``B`` is ``P_rx = Q * B / responsivity``; the laser must
  emit ``P_rx * 10^(loss/10)`` and draws wall-plug power ``/ efficiency``.
  Dividing by ``B`` again gives a laser **energy per bit that is independent
  of data rate** and exponential in path loss — the term that kills pure
  plasmonics beyond a few tens of micrometres (440 dB/cm).
* **Energy/bit** = modulator + detector energies (Table I) + laser energy.
* **Area** = laser + modulator + detector footprints + waveguide track at
  the technology's pitch.
"""

from __future__ import annotations

from repro.tech.link import LinkMetrics, LinkModel
from repro.tech.parameters import (
    HYPPI,
    PHOTONIC,
    PLASMONIC,
    CapabilityMode,
    OpticalTechnologyParams,
    Technology,
    optical_params,
)
from repro.util.units import SPEED_OF_LIGHT_M_S, db_to_linear

__all__ = [
    "OpticalLinkModel",
    "PhotonicLinkModel",
    "PlasmonicLinkModel",
    "HyPPILinkModel",
    "laser_energy_fj_per_bit",
    "laser_output_power_w",
]


def laser_output_power_w(
    params: OpticalTechnologyParams, loss_db: float, data_rate_gbps: float
) -> float:
    """Laser *output* power (W) needed to close the link budget.

    ``P_laser = Q_rx * B / responsivity * 10^(loss/10)`` where ``Q_rx`` is the
    receiver's required charge per bit. Wall-plug power divides this by the
    laser efficiency.
    """
    if data_rate_gbps <= 0:
        raise ValueError(f"data rate must be > 0, got {data_rate_gbps}")
    charge_c = params.receiver_charge_fc * 1e-15
    rate_bps = data_rate_gbps * 1e9
    received_w = charge_c * rate_bps / params.photodetector.responsivity_a_per_w
    return received_w * db_to_linear(loss_db)


def laser_energy_fj_per_bit(params: OpticalTechnologyParams, loss_db: float) -> float:
    """Laser wall-plug energy per bit (fJ), independent of data rate.

    Because both the required received power and the energy window scale with
    the bit rate, the rate cancels:
    ``E = Q_rx / (responsivity * efficiency) * 10^(loss/10)``.
    """
    charge_fc = params.receiver_charge_fc
    base_fj = charge_fc / (
        params.photodetector.responsivity_a_per_w * params.laser.efficiency
    )
    return base_fj * db_to_linear(loss_db)


class OpticalLinkModel(LinkModel):
    """Analytical optical point-to-point link for one Table I column."""

    def __init__(self, params: OpticalTechnologyParams) -> None:
        self.params = params
        self.technology = params.technology

    def evaluate(
        self, length_m: float, *, mode: CapabilityMode = CapabilityMode.DEVICE
    ) -> LinkMetrics:
        """Compute link figures for ``length_m`` under the rate convention."""
        if length_m < 0:
            raise ValueError(f"length must be >= 0, got {length_m}")
        p = self.params
        rate_gbps = p.data_rate_gbps(mode)
        loss_db = p.path_loss_db(length_m)

        tof_ps = p.waveguide.group_index * length_m / SPEED_OF_LIGHT_M_S * 1e12
        latency_ps = p.conversion_latency_ps + tof_ps

        energy_fj = (
            p.modulator.energy_fj_per_bit
            + p.photodetector.energy_fj_per_bit
            + laser_energy_fj_per_bit(p, loss_db)
        )

        area_um2 = (
            p.laser.area_um2
            + p.modulator.area_um2
            + p.photodetector.area_um2
            + p.waveguide.pitch_um * (length_m * 1e6)
        )

        # The laser is continuous-wave: at full utilization its wall-plug
        # power is the per-bit energy times the bit rate. Bare link-level
        # comparisons assume full utilization, so static power here reports
        # the CW laser draw; NoC-level models amortize it explicitly.
        laser_w = laser_output_power_w(p, loss_db, rate_gbps) / p.laser.efficiency
        return LinkMetrics(
            technology=self.technology,
            length_m=length_m,
            capability_gbps=rate_gbps,
            latency_ps=latency_ps,
            energy_fj_per_bit=energy_fj,
            area_um2=area_um2,
            static_power_mw=laser_w * 1e3,
        )

    def max_reach_m(self, loss_budget_db: float) -> float:
        """Longest link the technology can drive within a loss budget.

        Returns 0 if the fixed losses alone already exceed the budget.
        """
        if loss_budget_db <= 0:
            raise ValueError(f"loss budget must be > 0 dB, got {loss_budget_db}")
        remaining = loss_budget_db - self.params.total_fixed_loss_db()
        if remaining <= 0:
            return 0.0
        per_m = self.params.waveguide.propagation_loss_db_per_cm * 100.0
        return remaining / per_m


class PhotonicLinkModel(OpticalLinkModel):
    """Conventional MRR-based nanophotonic link (Fig. 1a)."""

    def __init__(self, params: OpticalTechnologyParams = PHOTONIC) -> None:
        if params.technology is not Technology.PHOTONIC:
            raise ValueError(f"expected photonic params, got {params.technology}")
        super().__init__(params)


class PlasmonicLinkModel(OpticalLinkModel):
    """Pure plasmonic link; ohmic loss restricts reach to micrometres."""

    def __init__(self, params: OpticalTechnologyParams = PLASMONIC) -> None:
        if params.technology is not Technology.PLASMONIC:
            raise ValueError(f"expected plasmonic params, got {params.technology}")
        super().__init__(params)


class HyPPILinkModel(OpticalLinkModel):
    """Hybrid plasmonic-photonic link (plasmonic devices, SOI waveguide)."""

    def __init__(self, params: OpticalTechnologyParams = HYPPI) -> None:
        if params.technology is not Technology.HYPPI:
            raise ValueError(f"expected HyPPI params, got {params.technology}")
        super().__init__(params)


def link_model_for(technology: Technology) -> LinkModel:
    """Construct the default link model for any :class:`Technology`."""
    from repro.tech.electronic import ElectronicLinkModel

    if technology is Technology.ELECTRONIC:
        return ElectronicLinkModel()
    return OpticalLinkModel(optical_params(technology))
