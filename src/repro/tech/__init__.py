"""Link technology models: Table I parameters and per-technology physics."""

from repro.tech.electronic import ElectronicLinkModel
from repro.tech.link import LinkMetrics, LinkModel
from repro.tech.optical import (
    HyPPILinkModel,
    OpticalLinkModel,
    PhotonicLinkModel,
    PlasmonicLinkModel,
    laser_energy_fj_per_bit,
    laser_output_power_w,
    link_model_for,
)
from repro.tech.parameters import (
    ELECTRONIC_14NM,
    HYPPI,
    PHOTONIC,
    PLASMONIC,
    CapabilityMode,
    ElectronicLinkParams,
    LaserParams,
    ModulatorParams,
    OpticalTechnologyParams,
    PhotodetectorParams,
    Technology,
    WaveguideParams,
    optical_params,
)

__all__ = [
    "ElectronicLinkModel",
    "LinkMetrics",
    "LinkModel",
    "HyPPILinkModel",
    "OpticalLinkModel",
    "PhotonicLinkModel",
    "PlasmonicLinkModel",
    "laser_energy_fj_per_bit",
    "laser_output_power_w",
    "link_model_for",
    "ELECTRONIC_14NM",
    "HYPPI",
    "PHOTONIC",
    "PLASMONIC",
    "CapabilityMode",
    "ElectronicLinkParams",
    "LaserParams",
    "ModulatorParams",
    "OpticalTechnologyParams",
    "PhotodetectorParams",
    "Technology",
    "WaveguideParams",
    "optical_params",
]
