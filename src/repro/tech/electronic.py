"""Electronic (repeated RC wire) link model, ITRS 14 nm class.

The model is per-wire: a NoC link of W bits is W parallel instances (the
:class:`~repro.tech.electronic.ElectronicLinkModel.bus` helper scales
capability, energy, area and static power accordingly; latency is unchanged).

Delay and energy are linear in length, the standard result for optimally
repeated global wires; the driver/receiver contribute small fixed terms that
make electronics unbeatable at very short range — the behaviour Fig. 3 of the
paper highlights.
"""

from __future__ import annotations

from dataclasses import replace

from repro.tech.link import LinkMetrics, LinkModel
from repro.tech.parameters import (
    ELECTRONIC_14NM,
    CapabilityMode,
    ElectronicLinkParams,
    Technology,
)

__all__ = ["ElectronicLinkModel"]


class ElectronicLinkModel(LinkModel):
    """Analytical repeated-wire link (one wire wide unless scaled)."""

    technology = Technology.ELECTRONIC

    def __init__(self, params: ElectronicLinkParams = ELECTRONIC_14NM) -> None:
        self.params = params

    def evaluate(
        self, length_m: float, *, mode: CapabilityMode = CapabilityMode.DEVICE
    ) -> LinkMetrics:
        """Latency/energy/area of a single wire of ``length_m`` metres.

        ``mode`` is accepted for interface uniformity; electronic wires have
        no SERDES distinction, so it does not change the result.
        """
        if length_m < 0:
            raise ValueError(f"length must be >= 0, got {length_m}")
        p = self.params
        mm = length_m * 1e3
        latency_ps = p.fixed_latency_ps + p.latency_ps_per_mm * mm
        energy_fj = p.energy_fj_per_bit_fixed + p.energy_fj_per_bit_per_mm * mm
        area_um2 = (
            p.fixed_area_um2
            + p.wire_pitch_um * (length_m * 1e6)
            + p.repeater_area_um2_per_mm * mm
        )
        static_mw = p.static_power_mw_per_mm * mm
        return LinkMetrics(
            technology=self.technology,
            length_m=length_m,
            capability_gbps=p.rate_gbps_per_wire,
            latency_ps=latency_ps,
            energy_fj_per_bit=energy_fj,
            area_um2=area_um2,
            static_power_mw=static_mw,
        )

    def bus(self, length_m: float, width_bits: int) -> LinkMetrics:
        """Metrics for a parallel bus of ``width_bits`` wires.

        Capability, energy (per transferred word-bit the energy is the same,
        but a *word* costs width × per-wire energy; per-bit figures therefore
        stay constant), area and static power scale with width; latency does
        not.
        """
        if width_bits < 1:
            raise ValueError(f"bus width must be >= 1, got {width_bits}")
        one = self.evaluate(length_m)
        return replace(
            one,
            capability_gbps=one.capability_gbps * width_bits,
            area_um2=one.area_um2 * width_bits,
            static_power_mw=one.static_power_mw * width_bits,
        )
