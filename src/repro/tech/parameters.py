"""Device and technology parameters (paper Table I + electronic baseline).

Table I of the paper lists laser, modulator, photodetector and waveguide
parameters for the three optical technologies (Photonic, Plasmonic, HyPPI).
They are transcribed here as frozen dataclasses so every model in the
reproduction draws from a single authoritative source.

The electronic link baseline is "borrowed from the 14 nm technology node ITRS
roadmap" in the paper; the paper does not tabulate it, so
:data:`ELECTRONIC_14NM` holds our calibrated ITRS-14nm-class values (see
DESIGN.md section 5 for the calibration targets).

Two data-rate conventions exist in the paper (Table I footnote †):

* ``device`` rates — the peak rate each modulator/detector supports
  (e.g. 2.1 Tb/s for the HyPPI modulator), used for the bare link-level
  CLEAR comparison of Fig. 3;
* ``serdes`` rates — the 50 Gb/s cap imposed by driver/SERDES electronics,
  used for all NoC-system-level evaluations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Technology",
    "CapabilityMode",
    "LaserParams",
    "ModulatorParams",
    "PhotodetectorParams",
    "WaveguideParams",
    "OpticalTechnologyParams",
    "ElectronicLinkParams",
    "PHOTONIC",
    "PLASMONIC",
    "HYPPI",
    "ELECTRONIC_14NM",
    "optical_params",
]


class Technology(enum.Enum):
    """Interconnect technology options explored by the paper."""

    ELECTRONIC = "electronic"
    PHOTONIC = "photonic"
    PLASMONIC = "plasmonic"
    HYPPI = "hyppi"

    @property
    def is_optical(self) -> bool:
        """True for technologies that carry data as light on a waveguide."""
        return self is not Technology.ELECTRONIC

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CapabilityMode(enum.Enum):
    """Which data-rate convention a link model should use (Table I, †)."""

    DEVICE = "device"
    SERDES = "serdes"


@dataclass(frozen=True)
class LaserParams:
    """On-chip laser source parameters (Table I, "Laser" block)."""

    efficiency: float
    """Wall-plug efficiency as a fraction (Table I lists percent)."""

    area_um2: float
    """Footprint of the laser in square micrometres."""

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"laser efficiency must be in (0, 1], got {self.efficiency}")
        if self.area_um2 < 0:
            raise ValueError(f"laser area must be >= 0, got {self.area_um2}")


@dataclass(frozen=True)
class ModulatorParams:
    """E-O modulator parameters (Table I, "Modulator" block)."""

    device_rate_gbps: float
    """Peak modulation rate supported by the device itself."""

    serdes_rate_gbps: float
    """Rate achievable once driver/SERDES electronics are accounted for
    (the parenthesized values in Table I)."""

    energy_fj_per_bit: float
    """Modulator switching energy, fJ/bit (bare link-level value, Table I *)."""

    insertion_loss_db: float
    """Optical insertion loss of the modulator, dB."""

    extinction_ratio_db: float
    """Ratio between the optical "1" and "0" levels, dB."""

    area_um2: float
    """Modulator footprint, µm² (excluding thermal-isolation spacing)."""

    capacitance_ff: float
    """Device capacitance, fF; sets the intrinsic speed and drive energy."""

    bias_voltage_v: tuple[float, float]
    """(low, high) drive/bias voltage range, volts."""

    def __post_init__(self) -> None:
        if self.device_rate_gbps <= 0 or self.serdes_rate_gbps <= 0:
            raise ValueError("modulator rates must be > 0")
        if self.insertion_loss_db < 0:
            raise ValueError("insertion loss cannot be negative")
        if self.extinction_ratio_db <= 0:
            raise ValueError("extinction ratio must be > 0 dB")


@dataclass(frozen=True)
class PhotodetectorParams:
    """O-E photodetector parameters (Table I, "Photodetector" block)."""

    rate_gbps: float
    """Detection rate usable at the system level."""

    device_rate_gbps: float
    """Intrinsic detector bandwidth (second number of Table I's "x/y")."""

    energy_fj_per_bit: float
    """Receiver energy, fJ/bit (bare link-level value)."""

    responsivity_a_per_w: float
    """Photocurrent produced per watt of incident light, A/W."""

    area_um2: float
    """Detector footprint, µm²."""

    def __post_init__(self) -> None:
        if self.responsivity_a_per_w <= 0:
            raise ValueError("responsivity must be > 0")


@dataclass(frozen=True)
class WaveguideParams:
    """Waveguide parameters (Table I, "Waveguide" block)."""

    propagation_loss_db_per_cm: float
    """Propagation loss along the waveguide, dB/cm."""

    coupling_loss_db: float
    """Loss per coupler transition (photonic<->plasmonic or fibre), dB.
    Photonic links have no such transition (Table I lists "-" == 0)."""

    pitch_um: float
    """Centre-to-centre spacing required between adjacent waveguides, µm.
    Used as the effective layout width for area accounting."""

    width_um: float
    """Physical waveguide width, µm."""

    group_index: float
    """Group index setting time-of-flight = group_index * L / c."""

    def __post_init__(self) -> None:
        if self.propagation_loss_db_per_cm < 0:
            raise ValueError("propagation loss cannot be negative")
        if self.pitch_um < self.width_um:
            raise ValueError(
                f"pitch ({self.pitch_um} um) must be >= width ({self.width_um} um)"
            )


@dataclass(frozen=True)
class OpticalTechnologyParams:
    """Full Table I column for one optical technology, plus receiver/latency
    constants needed to close the link model (documented per field)."""

    technology: Technology
    laser: LaserParams
    modulator: ModulatorParams
    photodetector: PhotodetectorParams
    waveguide: WaveguideParams

    coupler_count: int
    """Number of coupler transitions a point-to-point link traverses
    (2 for plasmonic/HyPPI: in and out of the plasmonic section)."""

    receiver_charge_fc: float
    """Charge the receiver must integrate per bit to resolve it, fC.

    Determines the minimum received optical power at data rate ``B``:
    ``P_min = Q * B / responsivity``. Scales with detector capacitance, so
    the bulky photonic ring detector (100 µm²) needs more charge than the
    4 µm² plasmonic-class detectors.
    """

    conversion_latency_ps: float
    """Fixed E-O + O-E conversion latency of the link (driver, modulator
    response, receiver TIA chain), ps. Ring-resonator photonics pays photon
    lifetime + CDR; plasmonic MOS devices are markedly faster."""

    def __post_init__(self) -> None:
        if self.coupler_count < 0:
            raise ValueError("coupler count must be >= 0")
        if self.receiver_charge_fc <= 0:
            raise ValueError("receiver charge must be > 0")
        if self.conversion_latency_ps < 0:
            raise ValueError("conversion latency must be >= 0")

    def data_rate_gbps(self, mode: CapabilityMode) -> float:
        """Link data rate under the given capability convention.

        The link is limited by the slower of modulator and detector in
        ``DEVICE`` mode and by the SERDES cap in ``SERDES`` mode.
        """
        if mode is CapabilityMode.DEVICE:
            return min(
                self.modulator.device_rate_gbps, self.photodetector.device_rate_gbps
            )
        return min(self.modulator.serdes_rate_gbps, self.photodetector.rate_gbps)

    def total_fixed_loss_db(self) -> float:
        """Length-independent optical loss: modulator insertion + couplers."""
        return (
            self.modulator.insertion_loss_db
            + self.coupler_count * self.waveguide.coupling_loss_db
        )

    def propagation_loss_db(self, length_m: float) -> float:
        """Length-dependent waveguide propagation loss for ``length_m``."""
        if length_m < 0:
            raise ValueError(f"length must be >= 0, got {length_m}")
        return self.waveguide.propagation_loss_db_per_cm * (length_m * 100.0)

    def path_loss_db(self, length_m: float) -> float:
        """Total link loss (fixed + propagation) in dB."""
        return self.total_fixed_loss_db() + self.propagation_loss_db(length_m)


@dataclass(frozen=True)
class ElectronicLinkParams:
    """ITRS-14nm-class electronic (repeated RC wire) link parameters.

    The paper borrows electronic numbers from the ITRS 14 nm roadmap without
    tabulating them; these values are our calibration (DESIGN.md section 5):
    global repeated wires at ~50 ps/mm and ~100 fJ/bit/mm, 160 nm wire width
    with 160 nm spacing (stated in the paper's Section III-B discussion:
    "each electronic wire is 160nm wide with 160nm spacing").
    """

    rate_gbps_per_wire: float = 20.0
    """Signalling rate per wire."""

    fixed_latency_ps: float = 2.0
    """Driver + receiver latch latency, ps."""

    latency_ps_per_mm: float = 50.0
    """Optimally repeated wire delay, ps/mm."""

    energy_fj_per_bit_fixed: float = 0.5
    """Driver/receiver energy independent of length, fJ/bit."""

    energy_fj_per_bit_per_mm: float = 100.0
    """Switching energy of the repeated wire, fJ/bit/mm."""

    wire_pitch_um: float = 0.32
    """Wire width + spacing (0.16 µm + 0.16 µm), µm."""

    fixed_area_um2: float = 5.0
    """Driver + receiver area per wire, µm²."""

    repeater_area_um2_per_mm: float = 8.0
    """Repeater area amortized per wire-millimetre, µm²/mm."""

    static_power_mw_per_mm: float = 0.020
    """Repeater leakage per wire-millimetre, mW/mm."""

    def __post_init__(self) -> None:
        if self.rate_gbps_per_wire <= 0:
            raise ValueError("electronic wire rate must be > 0")
        if self.latency_ps_per_mm <= 0:
            raise ValueError("wire delay must be > 0")


# --------------------------------------------------------------------------
# Table I transcription
# --------------------------------------------------------------------------

PHOTONIC = OpticalTechnologyParams(
    technology=Technology.PHOTONIC,
    laser=LaserParams(efficiency=0.25, area_um2=200.0),
    modulator=ModulatorParams(
        device_rate_gbps=25.0,
        serdes_rate_gbps=25.0,
        energy_fj_per_bit=2.77,
        insertion_loss_db=1.02,
        extinction_ratio_db=6.18,
        area_um2=100.0,
        capacitance_ff=16.0,
        bias_voltage_v=(-2.2, 0.4),
    ),
    photodetector=PhotodetectorParams(
        rate_gbps=40.0,
        device_rate_gbps=40.0,
        energy_fj_per_bit=0.0,
        responsivity_a_per_w=0.8,
        area_um2=100.0,
    ),
    waveguide=WaveguideParams(
        propagation_loss_db_per_cm=1.0,
        coupling_loss_db=0.0,
        pitch_um=4.0,
        width_um=0.35,
        group_index=4.2,
    ),
    coupler_count=0,
    receiver_charge_fc=5.0,
    conversion_latency_ps=150.0,
)
"""Conventional MRR-based nanophotonic link (Table I, "Photonic" column)."""

PLASMONIC = OpticalTechnologyParams(
    technology=Technology.PLASMONIC,
    laser=LaserParams(efficiency=0.20, area_um2=0.003),
    modulator=ModulatorParams(
        device_rate_gbps=59.0,
        serdes_rate_gbps=50.0,
        energy_fj_per_bit=6.8,
        insertion_loss_db=1.1,
        extinction_ratio_db=17.0,
        area_um2=4.0,
        capacitance_ff=14.0,
        bias_voltage_v=(0.7, 0.7),
    ),
    photodetector=PhotodetectorParams(
        rate_gbps=50.0,
        device_rate_gbps=700.0,
        energy_fj_per_bit=0.14,
        responsivity_a_per_w=0.1,
        area_um2=4.0,
    ),
    waveguide=WaveguideParams(
        propagation_loss_db_per_cm=440.0,
        coupling_loss_db=0.63,
        pitch_um=0.5,
        width_um=0.1,
        group_index=3.0,
    ),
    coupler_count=2,
    receiver_charge_fc=1.0,
    conversion_latency_ps=20.0,
)
"""Pure plasmonic link (Table I, "Plasmonic" column). The 440 dB/cm ohmic
propagation loss confines useful lengths to tens of micrometres."""

HYPPI = OpticalTechnologyParams(
    technology=Technology.HYPPI,
    laser=LaserParams(efficiency=0.20, area_um2=0.003),
    modulator=ModulatorParams(
        device_rate_gbps=2100.0,
        serdes_rate_gbps=50.0,
        energy_fj_per_bit=4.25,
        insertion_loss_db=0.6,
        extinction_ratio_db=12.0,
        area_um2=1.0,
        capacitance_ff=0.94,
        bias_voltage_v=(2.0, 3.0),
    ),
    photodetector=PhotodetectorParams(
        rate_gbps=50.0,
        device_rate_gbps=700.0,
        energy_fj_per_bit=0.14,
        responsivity_a_per_w=0.1,
        area_um2=4.0,
    ),
    waveguide=WaveguideParams(
        propagation_loss_db_per_cm=1.0,
        coupling_loss_db=1.0,
        pitch_um=1.0,
        width_um=0.35,
        group_index=4.2,
    ),
    coupler_count=2,
    receiver_charge_fc=1.0,
    conversion_latency_ps=30.0,
)
"""Hybrid plasmonic-photonic link (Table I, "HyPPI" column): plasmonic MOS
modulator/detector, conventional low-loss SOI photonic waveguide."""

ELECTRONIC_14NM = ElectronicLinkParams()
"""Calibrated ITRS-14nm-class electronic repeated-wire link."""

_OPTICAL_BY_TECH = {
    Technology.PHOTONIC: PHOTONIC,
    Technology.PLASMONIC: PLASMONIC,
    Technology.HYPPI: HYPPI,
}


def optical_params(technology: Technology) -> OpticalTechnologyParams:
    """Look up the Table I column for an optical technology.

    Raises:
        KeyError: for :data:`Technology.ELECTRONIC` (use
            :data:`ELECTRONIC_14NM` instead).
    """
    try:
        return _OPTICAL_BY_TECH[technology]
    except KeyError:
        raise KeyError(
            f"{technology} has no optical parameter set; "
            "electronic links use ELECTRONIC_14NM"
        ) from None
