"""Common point-to-point link abstraction.

Every technology model produces a :class:`LinkMetrics` for a given length:
capability (Gb/s), latency (ps), energy (fJ/bit) and area (µm²) — exactly the
four quantities the CLEAR figure of merit consumes (paper eq. 1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.tech.parameters import CapabilityMode, Technology

__all__ = ["LinkMetrics", "LinkModel"]


@dataclass(frozen=True)
class LinkMetrics:
    """Point-to-point link figures for one technology at one length."""

    technology: Technology
    length_m: float
    capability_gbps: float
    """Peak data rate the link sustains."""
    latency_ps: float
    """End-to-end propagation latency of one bit."""
    energy_fj_per_bit: float
    """Total energy per transmitted bit (laser, modulator, receiver, wire)."""
    area_um2: float
    """Layout footprint (devices + wiring track at the technology's pitch)."""
    static_power_mw: float = 0.0
    """Always-on power (repeater leakage, laser bias, thermal tuning)."""

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise ValueError(f"length must be >= 0, got {self.length_m}")
        for field in ("capability_gbps", "latency_ps", "energy_fj_per_bit", "area_um2"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be > 0, got {getattr(self, field)}")


class LinkModel(abc.ABC):
    """A technology's analytical model of a point-to-point link.

    Concrete models are pure functions of length (plus the capability-mode
    convention); they hold frozen parameter dataclasses and no mutable state.
    """

    technology: Technology

    @abc.abstractmethod
    def evaluate(
        self, length_m: float, *, mode: CapabilityMode = CapabilityMode.DEVICE
    ) -> LinkMetrics:
        """Compute the link figures for a link of ``length_m`` metres."""

    def capability_gbps(
        self, *, mode: CapabilityMode = CapabilityMode.DEVICE
    ) -> float:
        """Length-independent data rate of the link under ``mode``."""
        return self.evaluate(1e-6, mode=mode).capability_gbps

    def latency_ps(self, length_m: float) -> float:
        """Convenience accessor for the latency at ``length_m``."""
        return self.evaluate(length_m).latency_ps

    def energy_fj_per_bit(self, length_m: float) -> float:
        """Convenience accessor for the energy/bit at ``length_m``."""
        return self.evaluate(length_m).energy_fj_per_bit

    def area_um2(self, length_m: float) -> float:
        """Convenience accessor for the area at ``length_m``."""
        return self.evaluate(length_m).area_um2
