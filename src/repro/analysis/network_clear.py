"""Network-level CLEAR evaluation (paper eq. 2, Fig. 5).

Combines every analytical ingredient into one :class:`NetworkEvaluation`:

* aggregate link capability C (Gb/s) — pure topology arithmetic (Table III);
* average zero-load latency (clocks);
* total power (static + dynamic at the given injection rate, Table IV-style);
* total area (mm²);
* R = dU/dr (Table III);
* CLEAR = (C / N) / (latency * power * area * R).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.latency import average_latency_cycles
from repro.analysis.power import NetworkPower, network_area_m2, network_power
from repro.analysis.utilization import rate_of_utilization_increase
from repro.core.clear import clear_network
from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix

__all__ = ["NetworkEvaluation", "evaluate_network", "aggregate_capability_gbps"]

#: All NoC links run at 50 Gb/s (paper Table II).
LINK_CAPACITY_GBPS = 50.0


def aggregate_capability_gbps(
    topo: Topology, link_capacity_gbps: float = LINK_CAPACITY_GBPS
) -> float:
    """Sum of all unidirectional link capacities, Gb/s (Table III's C * N)."""
    if link_capacity_gbps <= 0:
        raise ValueError(f"link capacity must be > 0, got {link_capacity_gbps}")
    return topo.n_links * link_capacity_gbps


@dataclass(frozen=True)
class NetworkEvaluation:
    """All figures entering network CLEAR, plus the CLEAR value itself."""

    topology_name: str
    n_nodes: int
    capability_gbps: float
    """Aggregate capability / N — Table III's C."""
    latency_clks: float
    power: NetworkPower
    area_mm2: float
    r_slope: float
    clear: float

    def summary_row(self) -> list[object]:
        """Row for the Fig. 5 result tables."""
        return [
            self.topology_name,
            self.capability_gbps,
            self.latency_clks,
            self.power.total_w,
            self.area_mm2,
            self.r_slope,
            self.clear,
        ]

    def to_metrics(self) -> dict[str, object]:
        """Flat JSON-safe form (the experiment engine's cacheable unit).

        Inverse of :meth:`from_metrics`; keep the two in sync when fields
        change.
        """
        return {
            "topology_name": self.topology_name,
            "n_nodes": self.n_nodes,
            "capability_gbps": self.capability_gbps,
            "latency_clks": self.latency_clks,
            "router_static_w": self.power.router_static_w,
            "link_static_w": self.power.link_static_w,
            "router_dynamic_w": self.power.router_dynamic_w,
            "link_dynamic_w": self.power.link_dynamic_w,
            "power_total_w": self.power.total_w,
            "area_mm2": self.area_mm2,
            "r_slope": self.r_slope,
            "clear": self.clear,
        }

    @classmethod
    def from_metrics(cls, metrics: dict[str, object]) -> "NetworkEvaluation":
        """Rebuild an evaluation from :meth:`to_metrics` output."""
        return cls(
            topology_name=str(metrics["topology_name"]),
            n_nodes=int(metrics["n_nodes"]),
            capability_gbps=float(metrics["capability_gbps"]),
            latency_clks=float(metrics["latency_clks"]),
            power=NetworkPower(
                router_static_w=float(metrics["router_static_w"]),
                link_static_w=float(metrics["link_static_w"]),
                router_dynamic_w=float(metrics["router_dynamic_w"]),
                link_dynamic_w=float(metrics["link_dynamic_w"]),
            ),
            area_mm2=float(metrics["area_mm2"]),
            r_slope=float(metrics["r_slope"]),
            clear=float(metrics["clear"]),
        )


def evaluate_network(
    topo: Topology,
    traffic: TrafficMatrix,
    *,
    injection_rate: float = 0.1,
    routing: RoutingTable | None = None,
) -> NetworkEvaluation:
    """Full analytical evaluation of one network (one Fig. 5 bar).

    Args:
        topo: the network.
        traffic: traffic *pattern*; it is rescaled to ``injection_rate``.
        injection_rate: mean flits/node/cycle (paper evaluates at 0.1).
        routing: optional prebuilt routing table (reused for flows,
            latency and R).
    """
    if injection_rate <= 0:
        raise ValueError(f"injection rate must be > 0, got {injection_rate}")
    rt = routing if routing is not None else RoutingTable(topo)
    tm = traffic.scaled_to_injection_rate(injection_rate)

    capability = aggregate_capability_gbps(topo) / topo.n_nodes
    latency = average_latency_cycles(topo, tm, rt)
    power = network_power(topo, tm, rt)
    area_mm2 = network_area_m2(topo) * 1e6
    r_slope = rate_of_utilization_increase(topo, tm, routing=rt)
    clear = clear_network(
        aggregate_capability_gbps(topo),
        topo.n_nodes,
        latency,
        power.total_w,
        area_mm2,
        r_slope,
    )
    return NetworkEvaluation(
        topology_name=topo.name,
        n_nodes=topo.n_nodes,
        capability_gbps=capability,
        latency_clks=latency,
        power=power,
        area_mm2=area_mm2,
        r_slope=r_slope,
        clear=clear,
    )
