"""Analytical network evaluation: flows, utilization, latency, power, CLEAR."""

from repro.analysis.flows import FlowAssignment, assign_flows
from repro.analysis.latency import (
    average_latency_cycles,
    link_latency_cycles,
    path_latency_cycles,
)
from repro.analysis.network_clear import (
    LINK_CAPACITY_GBPS,
    NetworkEvaluation,
    aggregate_capability_gbps,
    evaluate_network,
)
from repro.analysis.report import (
    evaluation_to_dict,
    load_points_to_dicts,
    load_report,
    save_report,
    sim_stats_to_dict,
)
from repro.analysis.power import (
    CORE_CLOCK_HZ,
    NetworkEnergy,
    NetworkPower,
    RouterFigures,
    dynamic_energy_from_counts,
    evaluate_link,
    evaluate_router,
    link_config_for,
    network_area_m2,
    network_power,
    network_static_power_w,
    per_flit_energies,
    router_config_for_node,
    trace_dynamic_energy_j,
)
from repro.analysis.utilization import (
    average_utilization,
    max_link_utilization,
    rate_of_utilization_increase,
    utilization_curve,
)

__all__ = [
    "FlowAssignment",
    "assign_flows",
    "average_latency_cycles",
    "link_latency_cycles",
    "path_latency_cycles",
    "LINK_CAPACITY_GBPS",
    "NetworkEvaluation",
    "aggregate_capability_gbps",
    "evaluate_network",
    "CORE_CLOCK_HZ",
    "NetworkEnergy",
    "NetworkPower",
    "RouterFigures",
    "dynamic_energy_from_counts",
    "evaluate_link",
    "evaluate_router",
    "link_config_for",
    "per_flit_energies",
    "network_area_m2",
    "network_power",
    "network_static_power_w",
    "router_config_for_node",
    "trace_dynamic_energy_j",
    "evaluation_to_dict",
    "load_points_to_dicts",
    "load_report",
    "save_report",
    "sim_stats_to_dict",
    "average_utilization",
    "max_link_utilization",
    "rate_of_utilization_increase",
    "utilization_curve",
]
