"""Result serialization: experiment records as JSON.

Benchmarks and downstream users persist evaluation results
(:class:`~repro.analysis.network_clear.NetworkEvaluation`, simulation
stats, sweep points) as plain JSON dictionaries so runs can be diffed and
post-processed without re-running the models.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.analysis.network_clear import NetworkEvaluation
from repro.analysis.power import NetworkPower
from repro.simulation.simulator import SimStats
from repro.simulation.workload import LoadPoint

__all__ = [
    "evaluation_to_dict",
    "sim_stats_to_dict",
    "load_points_to_dicts",
    "save_report",
    "load_report",
]


def evaluation_to_dict(ev: NetworkEvaluation) -> dict[str, Any]:
    """Flatten a :class:`NetworkEvaluation` into JSON-ready primitives."""
    return {
        "topology": ev.topology_name,
        "n_nodes": ev.n_nodes,
        "capability_gbps": ev.capability_gbps,
        "latency_clks": ev.latency_clks,
        "power_w": {
            "router_static": ev.power.router_static_w,
            "link_static": ev.power.link_static_w,
            "router_dynamic": ev.power.router_dynamic_w,
            "link_dynamic": ev.power.link_dynamic_w,
            "total": ev.power.total_w,
        },
        "area_mm2": ev.area_mm2,
        "r_slope": ev.r_slope,
        "clear": ev.clear,
    }


def sim_stats_to_dict(stats: SimStats) -> dict[str, Any]:
    """Summarize a simulation run (omits per-packet arrays; keeps moments)."""
    out: dict[str, Any] = {
        "n_packets": stats.n_packets,
        "n_flits": stats.n_flits,
        "cycles": stats.cycles,
        "drained": stats.drained,
        "total_link_traversals": int(stats.link_flit_counts.sum()),
        "total_router_traversals": int(stats.router_flit_counts.sum()),
    }
    if stats.packet_latencies.size:
        out["avg_latency"] = stats.avg_latency
        out["p99_latency"] = stats.p99_latency
        out["max_latency"] = int(stats.packet_latencies.max())
    return out


def load_points_to_dicts(points: list[LoadPoint]) -> list[dict[str, Any]]:
    """Serialize a latency-throughput sweep."""
    return [
        {
            "injection_rate": p.injection_rate,
            "avg_latency": p.avg_latency,
            "p99_latency": p.p99_latency,
            "drained": p.drained,
        }
        for p in points
    ]


def save_report(data: dict[str, Any], path: str | pathlib.Path) -> None:
    """Write a JSON report (stable key order, human-diffable)."""
    pathlib.Path(path).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_report(path: str | pathlib.Path) -> dict[str, Any]:
    """Read a report written by :func:`save_report`."""
    return json.loads(pathlib.Path(path).read_text())
