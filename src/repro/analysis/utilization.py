"""Link utilization and the paper's R = dU/dr factor (eq. 3).

``U`` is the average link utilization of the network; with all links at the
same 50 Gb/s capacity and flows expressed in flits/cycle, a link's
utilization equals its flow directly (1 flit/cycle == 50 Gb/s == 100%).

Because routing is deterministic and flows are linear in the injection
rate, ``U(r)`` is exactly linear and ``R = dU/dr`` is a topology x traffic
constant. We still expose a finite-difference estimator (fitting ``U`` over
an injection-rate sweep) to mirror the paper's procedure; the two agree to
machine precision and a property test pins that down.

The paper's interpretation: "If R is large, then as the injection rate is
increased, link utilizations increase faster (possibly due to a few
congested paths in the topology), thus saturating the network faster" —
express links add capacity and shorten paths, so R drops (Table III: 1.122
for the plain mesh down to 0.808 for Hops=3).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.flows import FlowAssignment, assign_flows
from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "average_utilization",
    "utilization_curve",
    "rate_of_utilization_increase",
    "max_link_utilization",
]


def average_utilization(flows: FlowAssignment) -> float:
    """Mean link utilization U (flows in flits/cycle, capacity 1)."""
    return float(flows.link_flow.mean())


def max_link_utilization(flows: FlowAssignment) -> float:
    """Utilization of the most loaded link (saturation indicator)."""
    return float(flows.link_flow.max())


def utilization_curve(
    topo: Topology,
    traffic: TrafficMatrix,
    injection_rates: np.ndarray,
    routing: RoutingTable | None = None,
) -> np.ndarray:
    """U(r) over a sweep of mean injection rates.

    The traffic matrix is rescaled to each rate; flows are computed once at
    a reference rate and rescaled (linearity).
    """
    rates = np.asarray(injection_rates, dtype=np.float64)
    if rates.ndim != 1 or rates.size == 0:
        raise ValueError("injection_rates must be a non-empty 1-D array")
    if np.any(rates < 0):
        raise ValueError("injection rates must be >= 0")
    reference = traffic.scaled_to_injection_rate(1.0)
    base_flows = assign_flows(topo, reference, routing)
    base_u = average_utilization(base_flows)
    return base_u * rates


def rate_of_utilization_increase(
    topo: Topology,
    traffic: TrafficMatrix,
    *,
    max_injection_rate: float = 0.1,
    n_points: int = 10,
    routing: RoutingTable | None = None,
) -> float:
    """R = dU/dr (paper eq. 3) via a least-squares fit of U over r.

    Args:
        topo: network under evaluation.
        traffic: traffic *pattern* (its absolute scale is irrelevant).
        max_injection_rate: top of the sweep (paper: 0.1).
        n_points: sweep resolution.
        routing: optional prebuilt routing table.
    """
    if max_injection_rate <= 0:
        raise ValueError(f"max injection rate must be > 0, got {max_injection_rate}")
    if n_points < 2:
        raise ValueError(f"need >= 2 sweep points, got {n_points}")
    rates = np.linspace(max_injection_rate / n_points, max_injection_rate, n_points)
    u = utilization_curve(topo, traffic, rates, routing)
    slope, _ = np.polyfit(rates, u, 1)
    return float(slope)
