"""Network power, energy and area roll-ups (Tables IV and V).

"Based on the injection rate information obtained for each link, the power
consumption was computed based on the static power and dynamic energy per
flit numbers from DSENT ... across all network components, the links and
routers" (paper, Section III-B).

Static power sums every router and link-direction model; dynamic power
multiplies per-flit energies by per-component flit rates from the flow
assignment. For trace energy (Table V) the same machinery runs on flit
*counts* instead of rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.analysis.flows import FlowAssignment, assign_flows
from repro.dsent.link_model import LinkFigures, NocLinkConfig, NocLinkModel
from repro.dsent.router_model import RouterConfig, RouterPowerArea
from repro.topology.graph import LinkKind, Topology
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.trace import Trace

__all__ = [
    "NetworkPower",
    "NetworkEnergy",
    "network_static_power_w",
    "network_power",
    "network_area_m2",
    "trace_dynamic_energy_j",
    "router_config_for_node",
]

#: The paper's core clock (Table II).
CORE_CLOCK_HZ = 0.78125e9


def router_config_for_node(topo: Topology, node: int) -> RouterConfig:
    """Router configuration at ``node``: 5 base ports plus one express port
    per distinct express neighbour (paper: 5 base / 7 hybrid)."""
    express_neighbors = {
        l.dst for l in topo.out_links(node) if l.kind is LinkKind.EXPRESS
    }
    return RouterConfig(base_ports=5, express_ports=len(express_neighbors))


@lru_cache(maxsize=None)
def _router_eval(config: RouterConfig) -> tuple[float, float, float]:
    r = RouterPowerArea(config).evaluate()
    return r.static_w, r.dynamic_j_per_event, r.area_m2


@lru_cache(maxsize=None)
def _link_eval(config: NocLinkConfig) -> LinkFigures:
    return NocLinkModel(config).evaluate()


def _link_config(topo: Topology, link_id: int) -> NocLinkConfig:
    link = topo.links[link_id]
    return NocLinkConfig(
        technology=link.technology,
        length_m=link.length_m,
        express=link.kind is LinkKind.EXPRESS,
    )


@dataclass(frozen=True)
class NetworkPower:
    """Power breakdown of one network at one operating point, watts."""

    router_static_w: float
    link_static_w: float
    router_dynamic_w: float
    link_dynamic_w: float

    @property
    def static_w(self) -> float:
        """Total static power."""
        return self.router_static_w + self.link_static_w

    @property
    def dynamic_w(self) -> float:
        """Total dynamic power."""
        return self.router_dynamic_w + self.link_dynamic_w

    @property
    def total_w(self) -> float:
        """Static + dynamic."""
        return self.static_w + self.dynamic_w


@dataclass(frozen=True)
class NetworkEnergy:
    """Energy breakdown for a finite workload (trace), joules."""

    router_dynamic_j: float
    link_dynamic_j: float

    @property
    def dynamic_j(self) -> float:
        """Total dynamic energy (the paper's Table V quantity)."""
        return self.router_dynamic_j + self.link_dynamic_j


def network_static_power_w(topo: Topology) -> float:
    """Total static power of routers + all link directions (Table IV)."""
    total = 0.0
    for node in range(topo.n_nodes):
        total += _router_eval(router_config_for_node(topo, node))[0]
    for link_id in range(topo.n_links):
        total += _link_eval(_link_config(topo, link_id)).static_w
    return total


def network_power(
    topo: Topology,
    traffic: TrafficMatrix,
    routing: RoutingTable | None = None,
    *,
    clock_hz: float = CORE_CLOCK_HZ,
) -> NetworkPower:
    """Static + dynamic power with ``traffic`` in flits/cycle.

    Dynamic power converts per-flit energies to watts via the clock:
    ``P = flow(flits/cycle) * f(cycles/s) * E(J/flit)``.
    """
    if clock_hz <= 0:
        raise ValueError(f"clock must be > 0, got {clock_hz}")
    flows = assign_flows(topo, traffic, routing)

    router_static = 0.0
    router_dynamic = 0.0
    for node in range(topo.n_nodes):
        static_w, dyn_j, _ = _router_eval(router_config_for_node(topo, node))
        router_static += static_w
        router_dynamic += flows.router_flow[node] * clock_hz * dyn_j

    link_static = 0.0
    link_dynamic = 0.0
    for link_id in range(topo.n_links):
        fig = _link_eval(_link_config(topo, link_id))
        link_static += fig.static_w
        link_dynamic += flows.link_flow[link_id] * clock_hz * fig.dynamic_j_per_flit
    return NetworkPower(
        router_static_w=router_static,
        link_static_w=link_static,
        router_dynamic_w=router_dynamic,
        link_dynamic_w=link_dynamic,
    )


def network_area_m2(topo: Topology) -> float:
    """Total layout area: routers + all link directions, m²."""
    total = 0.0
    for node in range(topo.n_nodes):
        total += _router_eval(router_config_for_node(topo, node))[2]
    for link_id in range(topo.n_links):
        total += _link_eval(_link_config(topo, link_id)).area_m2
    return total


def trace_dynamic_energy_j(
    topo: Topology,
    trace: Trace | TrafficMatrix,
    routing: RoutingTable | None = None,
) -> NetworkEnergy:
    """Total dynamic energy to deliver a trace's flits (Table V).

    "we obtain the dynamic energy consumption per flit from our modified
    DSENT, and use it to compute the total dynamic energy based on the
    communication volume and the network paths taken by the flits."

    Accepts either a :class:`Trace` (its flit-count matrix is used) or a
    flit-count :class:`TrafficMatrix` directly.
    """
    counts = trace.flit_count_matrix() if isinstance(trace, Trace) else trace
    flows = assign_flows(topo, counts, routing)

    router_j = 0.0
    for node in range(topo.n_nodes):
        _, dyn_j, _ = _router_eval(router_config_for_node(topo, node))
        router_j += flows.router_flow[node] * dyn_j

    link_j = 0.0
    for link_id in range(topo.n_links):
        fig = _link_eval(_link_config(topo, link_id))
        link_j += flows.link_flow[link_id] * fig.dynamic_j_per_flit
    return NetworkEnergy(router_dynamic_j=router_j, link_dynamic_j=link_j)
