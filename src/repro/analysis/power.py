"""Network power, energy and area roll-ups (Tables IV and V).

"Based on the injection rate information obtained for each link, the power
consumption was computed based on the static power and dynamic energy per
flit numbers from DSENT ... across all network components, the links and
routers" (paper, Section III-B).

Static power sums every router and link-direction model; dynamic power
multiplies per-flit energies by per-component flit rates from the flow
assignment. For trace energy (Table V) the same machinery runs on flit
*counts* instead of rates.

The per-component evaluation API — :func:`evaluate_router`,
:func:`evaluate_link`, :func:`link_config_for`, :func:`per_flit_energies`
and :func:`dynamic_energy_from_counts` — is public: the simulation energy
accounting (:mod:`repro.simulation.energy`) and the telemetry power
traces (:mod:`repro.telemetry.power_trace`) consume the *same* cached
DSENT figures this module's roll-ups use, which is what makes simulated,
windowed and analytical energies directly comparable (and, for the
telemetry conservation invariant, bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.flows import FlowAssignment, assign_flows
from repro.dsent.link_model import LinkFigures, NocLinkConfig, NocLinkModel
from repro.dsent.router_model import RouterConfig, RouterPowerArea
from repro.topology.graph import LinkKind, Topology
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.trace import Trace

__all__ = [
    "NetworkPower",
    "NetworkEnergy",
    "RouterFigures",
    "dynamic_energy_from_counts",
    "evaluate_link",
    "evaluate_router",
    "link_config_for",
    "network_static_power_w",
    "network_power",
    "network_area_m2",
    "per_flit_energies",
    "trace_dynamic_energy_j",
    "router_config_for_node",
]

#: The paper's core clock (Table II).
CORE_CLOCK_HZ = 0.78125e9


def router_config_for_node(topo: Topology, node: int) -> RouterConfig:
    """Router configuration at ``node``: 5 base ports plus one express port
    per distinct express neighbour (paper: 5 base / 7 hybrid)."""
    express_neighbors = {
        l.dst for l in topo.out_links(node) if l.kind is LinkKind.EXPRESS
    }
    return RouterConfig(base_ports=5, express_ports=len(express_neighbors))


@dataclass(frozen=True)
class RouterFigures:
    """Cached DSENT router figures: the per-component evaluation result."""

    static_w: float
    dynamic_j_per_flit: float
    area_m2: float


@lru_cache(maxsize=None)
def evaluate_router(config: RouterConfig) -> RouterFigures:
    """DSENT figures for one router configuration (process-wide cache)."""
    r = RouterPowerArea(config).evaluate()
    return RouterFigures(
        static_w=r.static_w,
        dynamic_j_per_flit=r.dynamic_j_per_event,
        area_m2=r.area_m2,
    )


@lru_cache(maxsize=None)
def evaluate_link(config: NocLinkConfig) -> LinkFigures:
    """DSENT figures for one link configuration (process-wide cache)."""
    return NocLinkModel(config).evaluate()


def link_config_for(topo: Topology, link_id: int) -> NocLinkConfig:
    """Link-model configuration of ``topo``'s link ``link_id``."""
    link = topo.links[link_id]
    return NocLinkConfig(
        technology=link.technology,
        length_m=link.length_m,
        express=link.kind is LinkKind.EXPRESS,
    )


def per_flit_energies(topo: Topology) -> tuple[np.ndarray, np.ndarray]:
    """``(router_j_per_flit, link_j_per_flit)`` vectors over ``topo``.

    The vectorized view of the cached DSENT evaluations — one dynamic
    energy per node (indexed by node id) and per link direction (indexed
    by link id). Telemetry converts windowed flit counts into energy
    series with a single matrix product against these.
    """
    router_j = np.fromiter(
        (
            evaluate_router(router_config_for_node(topo, node)).dynamic_j_per_flit
            for node in range(topo.n_nodes)
        ),
        dtype=np.float64,
        count=topo.n_nodes,
    )
    link_j = np.fromiter(
        (
            evaluate_link(link_config_for(topo, link_id)).dynamic_j_per_flit
            for link_id in range(topo.n_links)
        ),
        dtype=np.float64,
        count=topo.n_links,
    )
    return router_j, link_j


def dynamic_energy_from_counts(
    topo: Topology,
    router_counts,
    link_counts,
) -> "NetworkEnergy":
    """Dynamic energy of measured per-component flit counts.

    The single accumulation path shared by the simulator's whole-run
    energy (:func:`repro.simulation.energy.sim_dynamic_energy_j`) and the
    telemetry power trace's conservation total: both sum
    ``count * E_per_flit`` in component order, so a telemetry trace whose
    summed window counts equal the run totals yields a **bit-identical**
    energy figure.
    """
    router_j = 0.0
    for node in range(topo.n_nodes):
        fig = evaluate_router(router_config_for_node(topo, node))
        router_j += float(router_counts[node]) * fig.dynamic_j_per_flit
    link_j = 0.0
    for link_id in range(topo.n_links):
        fig = evaluate_link(link_config_for(topo, link_id))
        link_j += float(link_counts[link_id]) * fig.dynamic_j_per_flit
    return NetworkEnergy(router_dynamic_j=router_j, link_dynamic_j=link_j)


@dataclass(frozen=True)
class NetworkPower:
    """Power breakdown of one network at one operating point, watts."""

    router_static_w: float
    link_static_w: float
    router_dynamic_w: float
    link_dynamic_w: float

    @property
    def static_w(self) -> float:
        """Total static power."""
        return self.router_static_w + self.link_static_w

    @property
    def dynamic_w(self) -> float:
        """Total dynamic power."""
        return self.router_dynamic_w + self.link_dynamic_w

    @property
    def total_w(self) -> float:
        """Static + dynamic."""
        return self.static_w + self.dynamic_w


@dataclass(frozen=True)
class NetworkEnergy:
    """Energy breakdown for a finite workload (trace), joules."""

    router_dynamic_j: float
    link_dynamic_j: float

    @property
    def dynamic_j(self) -> float:
        """Total dynamic energy (the paper's Table V quantity)."""
        return self.router_dynamic_j + self.link_dynamic_j


def network_static_power_w(topo: Topology) -> float:
    """Total static power of routers + all link directions (Table IV)."""
    total = 0.0
    for node in range(topo.n_nodes):
        total += evaluate_router(router_config_for_node(topo, node)).static_w
    for link_id in range(topo.n_links):
        total += evaluate_link(link_config_for(topo, link_id)).static_w
    return total


def network_power(
    topo: Topology,
    traffic: TrafficMatrix,
    routing: RoutingTable | None = None,
    *,
    clock_hz: float = CORE_CLOCK_HZ,
) -> NetworkPower:
    """Static + dynamic power with ``traffic`` in flits/cycle.

    Dynamic power converts per-flit energies to watts via the clock:
    ``P = flow(flits/cycle) * f(cycles/s) * E(J/flit)``.
    """
    if clock_hz <= 0:
        raise ValueError(f"clock must be > 0, got {clock_hz}")
    flows = assign_flows(topo, traffic, routing)

    router_static = 0.0
    router_dynamic = 0.0
    for node in range(topo.n_nodes):
        rf = evaluate_router(router_config_for_node(topo, node))
        router_static += rf.static_w
        router_dynamic += flows.router_flow[node] * clock_hz * rf.dynamic_j_per_flit

    link_static = 0.0
    link_dynamic = 0.0
    for link_id in range(topo.n_links):
        fig = evaluate_link(link_config_for(topo, link_id))
        link_static += fig.static_w
        link_dynamic += flows.link_flow[link_id] * clock_hz * fig.dynamic_j_per_flit
    return NetworkPower(
        router_static_w=router_static,
        link_static_w=link_static,
        router_dynamic_w=router_dynamic,
        link_dynamic_w=link_dynamic,
    )


def network_area_m2(topo: Topology) -> float:
    """Total layout area: routers + all link directions, m²."""
    total = 0.0
    for node in range(topo.n_nodes):
        total += evaluate_router(router_config_for_node(topo, node)).area_m2
    for link_id in range(topo.n_links):
        total += evaluate_link(link_config_for(topo, link_id)).area_m2
    return total


def trace_dynamic_energy_j(
    topo: Topology,
    trace: Trace | TrafficMatrix,
    routing: RoutingTable | None = None,
) -> NetworkEnergy:
    """Total dynamic energy to deliver a trace's flits (Table V).

    "we obtain the dynamic energy consumption per flit from our modified
    DSENT, and use it to compute the total dynamic energy based on the
    communication volume and the network paths taken by the flits."

    Accepts either a :class:`Trace` (its flit-count matrix is used) or a
    flit-count :class:`TrafficMatrix` directly.
    """
    counts = trace.flit_count_matrix() if isinstance(trace, Trace) else trace
    flows = assign_flows(topo, counts, routing)

    router_j = 0.0
    for node in range(topo.n_nodes):
        rf = evaluate_router(router_config_for_node(topo, node))
        router_j += flows.router_flow[node] * rf.dynamic_j_per_flit

    link_j = 0.0
    for link_id in range(topo.n_links):
        fig = evaluate_link(link_config_for(topo, link_id))
        link_j += flows.link_flow[link_id] * fig.dynamic_j_per_flit
    return NetworkEnergy(router_dynamic_j=router_j, link_dynamic_j=link_j)
