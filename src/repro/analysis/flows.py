"""Per-link flow assignment from a traffic matrix and routing table.

"After setting up the traffic, each network was then analyzed in order to
compute the resulting injection rate across every link in the network"
(paper, Section III-B). This module performs exactly that step: push every
(src, dst) pair's rate along its deterministic path and accumulate per-link
and per-router flows.

Flows are unit-agnostic: feed rates (flits/cycle) to get link loads, feed
flit *counts* (trace volumes) to get per-link traversal totals for energy
accounting (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix

__all__ = ["FlowAssignment", "assign_flows"]


@dataclass
class FlowAssignment:
    """Result of routing a traffic matrix over a topology.

    Attributes:
        topology: the network the flows live on.
        link_flow: per-link accumulated traffic, shape ``(n_links,)``;
            same units as the traffic matrix entries.
        router_flow: per-router accumulated traffic, shape ``(n_nodes,)``.
            Every flit visits ``hops + 1`` routers (source router included,
            so pairs with zero hops never occur — the diagonal is zero).
        mean_hops: traffic-weighted mean link traversals per flit.
        total_traffic: sum of all matrix entries.
    """

    topology: Topology
    link_flow: np.ndarray
    router_flow: np.ndarray
    mean_hops: float
    total_traffic: float

    def __post_init__(self) -> None:
        if self.link_flow.shape != (self.topology.n_links,):
            raise ValueError(
                f"link_flow shape {self.link_flow.shape} != "
                f"({self.topology.n_links},)"
            )
        if self.router_flow.shape != (self.topology.n_nodes,):
            raise ValueError(
                f"router_flow shape {self.router_flow.shape} != "
                f"({self.topology.n_nodes},)"
            )

    def scaled(self, factor: float) -> "FlowAssignment":
        """Linearly rescale all flows (flows are linear in injection)."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return FlowAssignment(
            topology=self.topology,
            link_flow=self.link_flow * factor,
            router_flow=self.router_flow * factor,
            mean_hops=self.mean_hops,
            total_traffic=self.total_traffic * factor,
        )


def assign_flows(
    topo: Topology,
    traffic: TrafficMatrix,
    routing: RoutingTable | None = None,
) -> FlowAssignment:
    """Route ``traffic`` over ``topo`` and accumulate per-link/router flows.

    Args:
        topo: target topology.
        traffic: N x N rates or counts; N must equal ``topo.n_nodes``.
        routing: optional prebuilt routing table (reuse across calls —
            building all-pairs paths is the expensive part).
    """
    if traffic.n_nodes != topo.n_nodes:
        raise ValueError(
            f"traffic has {traffic.n_nodes} nodes, topology has {topo.n_nodes}"
        )
    rt = routing if routing is not None else RoutingTable(topo)
    if rt.topology is not topo:
        raise ValueError("routing table belongs to a different topology")

    # Vectorized accumulation (the guides' rule: this is the hot loop of
    # every analytical experiment). Per-pair paths are flattened once into
    # (pair index, link id) arrays cached on the routing table; each call
    # then reduces to two np.bincount passes over per-pair rates.
    flat_pair, flat_link, path_lengths = _flattened_paths(rt)
    n = topo.n_nodes
    m = traffic.matrix
    rates = m.reshape(-1)  # pair index = s * n + d

    pair_rates = rates[flat_pair]
    link_flow = np.bincount(
        flat_link, weights=pair_rates, minlength=topo.n_links
    )
    # Routers: every link arrival enters links[l].dst, plus the source
    # router once per pair.
    dst_nodes = _link_dst_nodes(rt)
    router_flow = np.bincount(
        dst_nodes[flat_link], weights=pair_rates, minlength=n
    )
    router_flow += m.sum(axis=1)

    total = float(m.sum())
    mean_hops = float((path_lengths * rates).sum() / total) if total > 0 else 0.0
    return FlowAssignment(
        topology=topo,
        link_flow=link_flow,
        router_flow=router_flow,
        mean_hops=mean_hops,
        total_traffic=total,
    )


def _flattened_paths(rt: RoutingTable) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(pair indices, link ids, per-pair path lengths) for all N² pairs.

    Built once per routing table and cached on it (the table is already the
    per-topology routing cache, so its lifetime is the right scope).
    """
    cached = getattr(rt, "_flow_cache", None)
    if cached is not None:
        return cached
    topo = rt.topology
    n = topo.n_nodes
    pair_idx: list[int] = []
    link_ids: list[int] = []
    lengths = np.zeros(n * n)
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            path = rt.path(s, d)
            pair = s * n + d
            lengths[pair] = len(path)
            pair_idx.extend([pair] * len(path))
            link_ids.extend(link.link_id for link in path)
    cache = (
        np.asarray(pair_idx, dtype=np.int64),
        np.asarray(link_ids, dtype=np.int64),
        lengths,
    )
    rt._flow_cache = cache  # type: ignore[attr-defined]
    return cache


def _link_dst_nodes(rt: RoutingTable) -> np.ndarray:
    """Per-link destination-node array, cached on the routing table."""
    cached = getattr(rt, "_link_dst_cache", None)
    if cached is None:
        cached = np.asarray(
            [l.dst for l in rt.topology.links], dtype=np.int64
        )
        rt._link_dst_cache = cached  # type: ignore[attr-defined]
    return cached
