"""Analytical (zero-load) latency estimation.

"The average latency is also estimated based on the shortest paths, using
the individual latency values for the links and routers" (paper,
Section III-B). Per traversed hop the cost is the router pipeline (3
cycles, Table II) plus the link latency (1 cycle electronic, 2 cycles
optical — the extra cycle is the O-E conversion at the receiver).

Optionally the serialization delay of a multi-flit packet (``size - 1``
cycles) can be added; the paper's design-space exploration works at flit
granularity so it is off by default.
"""

from __future__ import annotations

import numpy as np

from repro.dsent.router_model import RouterConfig
from repro.tech.parameters import Technology
from repro.topology.graph import Topology
from repro.topology.routing import RoutingTable
from repro.traffic.matrix import TrafficMatrix

__all__ = ["link_latency_cycles", "path_latency_cycles", "average_latency_cycles"]


def link_latency_cycles(technology: Technology) -> int:
    """Paper Table II: "1 clk Elec., else 2 clks"."""
    return 1 if technology is Technology.ELECTRONIC else 2


def path_latency_cycles(
    topo: Topology,
    src: int,
    dst: int,
    routing: RoutingTable,
    *,
    router_pipeline: int = RouterConfig().pipeline_stages,
    packet_flits: int = 1,
) -> int:
    """Zero-load latency of one packet from ``src`` to ``dst``, cycles."""
    if packet_flits < 1:
        raise ValueError(f"packet size must be >= 1 flit, got {packet_flits}")
    path = routing.path(src, dst)
    cycles = 0
    for link in path:
        cycles += router_pipeline + link_latency_cycles(link.technology)
    # Ejection through the destination router.
    cycles += router_pipeline
    # Serialization: the tail flit leaves (size - 1) cycles after the head.
    cycles += packet_flits - 1
    return cycles


def average_latency_cycles(
    topo: Topology,
    traffic: TrafficMatrix,
    routing: RoutingTable | None = None,
    *,
    router_pipeline: int = RouterConfig().pipeline_stages,
    packet_flits: int = 1,
) -> float:
    """Traffic-weighted mean zero-load latency, cycles.

    Args:
        topo: network under evaluation.
        traffic: N x N weights (rates or counts — only ratios matter).
        routing: optional prebuilt routing table.
        router_pipeline: router traversal cycles (paper: 3).
        packet_flits: packet length for serialization accounting.
    """
    if traffic.n_nodes != topo.n_nodes:
        raise ValueError(
            f"traffic has {traffic.n_nodes} nodes, topology has {topo.n_nodes}"
        )
    rt = routing if routing is not None else RoutingTable(topo)
    m = traffic.matrix
    total = m.sum()
    if total == 0:
        raise ValueError("cannot average latency over zero traffic")
    weighted = 0.0
    n = topo.n_nodes
    for s in range(n):
        nz = np.nonzero(m[s])[0]
        for d in nz:
            weighted += m[s, d] * path_latency_cycles(
                topo,
                s,
                int(d),
                rt,
                router_pipeline=router_pipeline,
                packet_flits=packet_flits,
            )
    return float(weighted / total)
