"""Property-based tests (hypothesis) for the control subsystem.

Two contracts:

* **closed-loop conservation** — for *any* demand trace, outstanding
  window, think time and reply size: requests issued equals replies
  delivered plus outstanding when the run stops, per-source outstanding
  never exceeds the window (so the global peak is bounded by it), and a
  drained run has retired every round trip and consumed all demand;
* **controller determinism** — replaying the telemetry trace of a
  controlled run through fresh controller instances reproduces the
  recorded :class:`~repro.control.ControlTrace` exactly.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.control import (
    ClosedLoopConfig,
    ClosedLoopSession,
    ControlSession,
    make_controllers,
    replay_control,
)
from repro.simulation import Simulator
from repro.topology import build_mesh
from repro.traffic import PacketRecord, Trace

MESH = build_mesh(4, 4)
SIM = Simulator(MESH)


@st.composite
def demand_traces(draw):
    """Small demand traces with clustered and far-future request times."""
    n = draw(st.integers(min_value=0, max_value=50))
    packets = []
    for _ in range(n):
        src = draw(st.integers(min_value=0, max_value=15))
        dst = draw(st.integers(min_value=0, max_value=15).filter(lambda d: d != src))
        time = draw(
            st.one_of(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=150, max_value=400),
            )
        )
        size = draw(st.sampled_from([1, 2, 8]))
        packets.append(PacketRecord(time, src, dst, size))
    return Trace(16, packets)


@settings(max_examples=40, deadline=None)
@given(
    demand=demand_traces(),
    window=st.integers(min_value=1, max_value=9),
    think=st.integers(min_value=0, max_value=12),
    reply_flits=st.integers(min_value=1, max_value=4),
    max_cycles=st.integers(min_value=30, max_value=3000),
)
def test_closed_loop_conservation(demand, window, think, reply_flits, max_cycles):
    session = ClosedLoopSession(
        ClosedLoopConfig(window=window, think_cycles=think, reply_flits=reply_flits),
        demand,
    )
    stats = SIM.run(
        Trace(MESH.n_nodes, []), max_cycles=max_cycles, closed_loop=session
    )
    cl = stats.closed_loop

    # Conservation: every issued request is either acknowledged by a
    # delivered reply or still outstanding when the clock stopped.
    assert cl.requests_issued == cl.replies_delivered + cl.outstanding_at_end
    # The credit window is a hard cap, whatever the schedule does.
    assert 0 <= cl.peak_outstanding <= window
    # Issue/delivery pipelines never run ahead of each other.
    assert cl.requests_delivered <= cl.requests_issued
    assert cl.replies_issued == cl.requests_delivered
    assert cl.replies_delivered <= cl.replies_issued
    # Released + still-pending demand is exactly the demand offered.
    assert cl.requests_issued + cl.stalled_demand == cl.demand_total
    # The simulator counted both directions of every completed exchange.
    assert stats.n_packets == cl.requests_issued + cl.replies_issued
    if stats.drained:
        assert cl.outstanding_at_end == 0
        assert cl.stalled_demand == 0
        assert cl.replies_delivered == cl.demand_total
        assert stats.packet_latencies.size == stats.n_packets


@settings(max_examples=15, deadline=None)
@given(
    demand=demand_traces(),
    window=st.integers(min_value=8, max_value=64),
    max_cycles=st.integers(min_value=100, max_value=2000),
    names=st.sampled_from(
        [("throttle",), ("vc-bias",), ("throttle", "vc-bias")]
    ),
)
def test_control_trace_replays_deterministically(demand, window, max_cycles, names):
    control = ControlSession(
        make_controllers(names, n_vcs=SIM.config.n_vcs),
        window=window,
        n_nodes=MESH.n_nodes,
        n_vcs=SIM.config.n_vcs,
    )
    stats = SIM.run(demand, max_cycles=max_cycles, control=control)
    assert stats.control is not None
    assert stats.telemetry is not None  # control implies sampling

    replayed = replay_control(
        stats.telemetry, make_controllers(names, n_vcs=SIM.config.n_vcs)
    )
    assert replayed == stats.control
