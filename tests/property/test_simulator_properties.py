"""Property-based tests of the cycle simulator against the analytical model.

The strongest cross-validation in the suite: for random uncongested traffic,
the simulator must agree with the analytical pipeline on flit counts
(identical routing) and must never beat the zero-load analytical latency.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import assign_flows, path_latency_cycles
from repro.simulation import SimConfig, Simulator
from repro.topology import RoutingTable, build_express_mesh, build_mesh
from repro.traffic import PacketRecord, Trace


def _random_trace(seed: int, n_packets: int, n_nodes: int = 64, spread: int = 40):
    rng = np.random.default_rng(seed)
    records = []
    for _ in range(n_packets):
        s, d = rng.choice(n_nodes, size=2, replace=False)
        size = int(rng.choice([1, 32], p=[0.8, 0.2]))
        records.append(
            PacketRecord(int(rng.integers(0, spread)), int(s), int(d), size)
        )
    return Trace(n_nodes, records)


@pytest.fixture(scope="module")
def mesh8():
    return build_mesh(8, 8)


@pytest.fixture(scope="module")
def routing8(mesh8):
    return RoutingTable(mesh8)


class TestSimulatorInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_everything_delivered(self, seed):
        mesh = build_mesh(8, 8)
        trace = _random_trace(seed, 60)
        stats = Simulator(mesh).run(trace)
        assert stats.drained
        assert stats.packet_latencies.size == trace.n_packets

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_flit_counts_match_analytical_flows(self, seed):
        mesh = build_mesh(8, 8)
        routing = RoutingTable(mesh)
        trace = _random_trace(seed, 50)
        stats = Simulator(mesh, routing).run(trace)
        flows = assign_flows(mesh, trace.flit_count_matrix(), routing)
        assert np.allclose(stats.link_flit_counts, flows.link_flow)
        assert np.allclose(stats.router_flit_counts, flows.router_flow)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_latency_never_beats_zero_load(self, seed):
        mesh = build_mesh(8, 8)
        routing = RoutingTable(mesh)
        trace = _random_trace(seed, 40)
        stats = Simulator(mesh, routing).run(trace)
        # Reconstruct per-packet zero-load bounds (sim ejects at t+1).
        for rec, latency in zip(
            sorted(trace.packets, key=lambda p: (p.time, p.src, p.dst)),
            stats.packet_latencies,
        ):
            bound = (
                path_latency_cycles(
                    mesh, rec.src, rec.dst, routing, packet_flits=rec.size_flits
                )
                + 1
            )
            assert latency >= bound

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([3, 5]),
    )
    def test_express_mesh_also_drains(self, seed, hops):
        topo = build_express_mesh(8, 8, hops=hops)
        trace = _random_trace(seed, 50, n_nodes=64)
        stats = Simulator(topo).run(trace)
        assert stats.drained

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_determinism(self, seed):
        mesh = build_mesh(8, 8)
        trace = _random_trace(seed, 40)
        a = Simulator(mesh).run(trace)
        b = Simulator(mesh).run(trace)
        assert np.array_equal(a.packet_latencies, b.packet_latencies)
        assert a.cycles == b.cycles

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_fresh_simulator_state_not_required(self, seed):
        # Running two traces back-to-back on one Simulator instance must
        # equal running them on fresh instances (no state leaks), because
        # every run drains the network completely.
        mesh = build_mesh(8, 8)
        t1 = _random_trace(seed, 30)
        t2 = _random_trace(seed + 1, 30)
        sim = Simulator(mesh)
        r1 = sim.run(t1)
        r2 = sim.run(t2)
        fresh = Simulator(mesh).run(t2)
        assert np.array_equal(r2.packet_latencies, fresh.packet_latencies)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_single_vc_still_correct(self, seed):
        mesh = build_mesh(8, 8)
        trace = _random_trace(seed, 30)
        stats = Simulator(mesh, config=SimConfig(n_vcs=1, vc_depth=2)).run(trace)
        assert stats.drained
