"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clear import clear_link, clear_network
from repro.tech import (
    CapabilityMode,
    ElectronicLinkModel,
    HyPPILinkModel,
    PhotonicLinkModel,
    PlasmonicLinkModel,
)
from repro.topology import RoutingTable, build_express_mesh, build_mesh, route_path
from repro.traffic import TrafficMatrix, packetize_flits
from repro.util import units

# 2 cm cap: beyond that the plasmonic 440 dB/cm loss overflows float
# exponents, which is outside any physically meaningful regime.
lengths = st.floats(min_value=1e-7, max_value=0.02, allow_nan=False)
db_values = st.floats(min_value=-60.0, max_value=60.0, allow_nan=False)


class TestUnitProperties:
    @given(db_values)
    def test_db_roundtrip(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)

    @given(st.floats(min_value=1e-12, max_value=1e3))
    def test_dbm_roundtrip(self, watts):
        assert units.dbm_to_watts(units.watts_to_dbm(watts)) == pytest.approx(
            watts, rel=1e-9
        )

    @given(db_values, db_values)
    def test_db_addition_is_linear_multiplication(self, a, b):
        assert units.db_to_linear(a + b) == pytest.approx(
            units.db_to_linear(a) * units.db_to_linear(b), rel=1e-9
        )


class TestLinkModelProperties:
    @given(lengths)
    def test_electronic_metrics_positive(self, length):
        m = ElectronicLinkModel().evaluate(length)
        assert m.latency_ps > 0
        assert m.energy_fj_per_bit > 0
        assert m.area_um2 > 0
        assert clear_link(m) > 0

    @given(lengths)
    def test_optical_metrics_positive(self, length):
        for model in (PhotonicLinkModel(), PlasmonicLinkModel(), HyPPILinkModel()):
            m = model.evaluate(length)
            assert m.latency_ps > 0
            assert m.energy_fj_per_bit > 0
            assert clear_link(m) > 0

    @given(st.floats(min_value=1e-7, max_value=0.01), st.floats(min_value=1.01, max_value=2.0))
    def test_longer_links_cost_no_less(self, length, factor):
        for model in (
            ElectronicLinkModel(),
            PhotonicLinkModel(),
            PlasmonicLinkModel(),
            HyPPILinkModel(),
        ):
            near = model.evaluate(length)
            far = model.evaluate(length * factor)
            assert far.latency_ps >= near.latency_ps
            assert far.energy_fj_per_bit >= near.energy_fj_per_bit
            assert far.area_um2 >= near.area_um2

    @given(lengths)
    def test_serdes_capability_never_exceeds_device(self, length):
        for model in (PhotonicLinkModel(), PlasmonicLinkModel(), HyPPILinkModel()):
            dev = model.evaluate(length, mode=CapabilityMode.DEVICE)
            ser = model.evaluate(length, mode=CapabilityMode.SERDES)
            assert ser.capability_gbps <= dev.capability_gbps


class TestClearProperties:
    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.integers(min_value=1, max_value=4096),
        st.floats(min_value=0.1, max_value=1e3),
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=1e-3, max_value=10.0),
    )
    def test_clear_monotonicity(self, cap, n, lat, pw, area, r):
        base = clear_network(cap, n, lat, pw, area, r)
        assert clear_network(2 * cap, n, lat, pw, area, r) == pytest.approx(2 * base)
        assert clear_network(cap, n, 2 * lat, pw, area, r) == pytest.approx(base / 2)
        assert clear_network(cap, n, lat, 2 * pw, area, r) == pytest.approx(base / 2)


class TestRoutingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.sampled_from([0, 3, 5, 15]),
    )
    def test_paths_connected_and_terminate(self, src, dst, hops):
        topo = build_mesh() if hops == 0 else build_express_mesh(hops=hops)
        path = route_path(topo, src, dst)
        node = src
        for link in path:
            assert link.src == node
            node = link.dst
        assert node == dst

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.sampled_from([3, 5, 15]),
    )
    def test_express_never_increases_hops(self, src, dst, hops):
        mesh = build_mesh()
        topo = build_express_mesh(hops=hops)
        base = len(route_path(mesh, src, dst))
        express = len(route_path(topo, src, dst))
        assert express <= base

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_plain_mesh_paths_are_minimal(self, src, dst):
        mesh = build_mesh()
        assert len(route_path(mesh, src, dst)) == mesh.manhattan_distance(src, dst)


class TestPacketizationProperties:
    @given(st.integers(min_value=1, max_value=100_000))
    def test_flits_conserved(self, n):
        assert sum(packetize_flits(n)) == n

    @given(st.integers(min_value=1, max_value=100_000))
    def test_only_paper_packet_sizes(self, n):
        assert set(packetize_flits(n)) <= {1, 32}


class TestTrafficProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=1e-4, max_value=0.5),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_scaling_hits_target_rate(self, rate, seed):
        rng = np.random.default_rng(seed)
        m = rng.random((16, 16))
        np.fill_diagonal(m, 0.0)
        tm = TrafficMatrix(m).scaled_to_injection_rate(rate)
        assert tm.mean_injection_rate() == pytest.approx(rate, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_soteriou_rows_are_distributions(self, seed):
        from repro.traffic import soteriou_traffic

        mesh = build_mesh(4, 4)
        tm = soteriou_traffic(mesh, injection_rate=0.1, seed=seed)
        assert np.all(tm.matrix >= 0)
        assert np.all(np.diag(tm.matrix) == 0)
        assert tm.mean_injection_rate() == pytest.approx(0.1)


class TestFlowProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_flow_conservation_random_traffic(self, seed):
        from repro.analysis import assign_flows

        mesh = build_mesh(8, 8)
        rng = np.random.default_rng(seed)
        m = rng.random((64, 64)) * (rng.random((64, 64)) > 0.8)
        np.fill_diagonal(m, 0.0)
        tm = TrafficMatrix(m)
        flows = assign_flows(mesh, tm)
        assert flows.link_flow.sum() == pytest.approx(
            flows.total_traffic * flows.mean_hops
        )
        # Router flow >= link flow sum because every link arrival enters a
        # router and sources count too.
        assert flows.router_flow.sum() == pytest.approx(
            flows.link_flow.sum() + flows.total_traffic
        )


class TestVectorizedFlowsMatchReference:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_fast_path_equals_naive_accumulation(self, seed):
        from repro.analysis import assign_flows

        topo = build_express_mesh(8, 8, hops=3)
        rt = RoutingTable(topo)
        rng = np.random.default_rng(seed)
        m = rng.random((64, 64)) * (rng.random((64, 64)) > 0.7)
        np.fill_diagonal(m, 0.0)
        tm = TrafficMatrix(m)
        flows = assign_flows(topo, tm, rt)

        link_ref = np.zeros(topo.n_links)
        router_ref = np.zeros(64)
        for s in range(64):
            for d in np.nonzero(m[s])[0]:
                rate = m[s, d]
                router_ref[s] += rate
                for link in rt.path(s, int(d)):
                    link_ref[link.link_id] += rate
                    router_ref[link.dst] += rate
        assert np.allclose(flows.link_flow, link_ref)
        assert np.allclose(flows.router_flow, router_ref)
