"""Property-based tests (hypothesis) for trace and workload invariants."""

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic import (
    Message,
    PacketRecord,
    Trace,
    packetize_flits,
    schedule_phases,
)
from repro.workloads import load_trace_npz, onoff_trace, save_trace_npz


def _synthetic_trace(n_packets: int) -> Trace:
    """A deterministic trace with all-distinct (time, src, dst) packets."""
    packets = [
        PacketRecord(time=i, src=i % 4, dst=(i + 1) % 4, size_flits=1 + i % 32)
        for i in range(n_packets)
    ]
    return Trace(4, packets)


class TestPacketizeProperties:
    @given(st.integers(min_value=1, max_value=1_000_000))
    def test_flit_conservation(self, n):
        sizes = packetize_flits(n)
        assert sum(sizes) == n
        assert all(1 <= s <= 32 for s in sizes)


class TestScaledProperties:
    @given(
        st.integers(min_value=1, max_value=400),
        st.floats(
            min_value=1e-3, max_value=1.0, exclude_min=False, allow_nan=False
        ),
    )
    def test_scaled_picks_strictly_increasing_unique_packets(self, n, factor):
        trace = _synthetic_trace(n)
        scaled = trace.scaled(factor)
        # Expected size, never out of range.
        assert scaled.n_packets == (n if factor == 1.0 else int(n * factor))
        # Stride sampling must pick strictly increasing, unique originals:
        # times are unique by construction, so strictly increasing times
        # prove both order and uniqueness of the picked indices.
        times = [p.time for p in scaled.packets]
        assert all(a < b for a, b in zip(times, times[1:]))
        assert len(set(times)) == len(times)
        # Every picked packet is an original packet.
        original = set(trace.packets)
        assert all(p in original for p in scaled.packets)

    @given(st.integers(min_value=1, max_value=400))
    def test_factor_one_is_identity(self, n):
        trace = _synthetic_trace(n)
        assert trace.scaled(1.0).packets == trace.packets


@st.composite
def phased_messages(draw):
    """Random phases of random messages on a small node set."""
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    pair = st.tuples(
        st.integers(min_value=0, max_value=n_nodes - 1),
        st.integers(min_value=0, max_value=n_nodes - 1),
    ).filter(lambda sd: sd[0] != sd[1])
    phase = st.lists(
        st.tuples(pair, st.integers(min_value=1, max_value=600)),
        min_size=1,
        max_size=8,
    )
    phases = draw(st.lists(phase, min_size=1, max_size=4))
    return n_nodes, [
        [Message(src, dst, size) for (src, dst), size in ph] for ph in phases
    ]


class TestSchedulePhasesProperties:
    @settings(max_examples=60, deadline=None)
    @given(phased_messages(), st.integers(min_value=1, max_value=4))
    def test_no_source_injection_overlap(self, data, flit_interval):
        n_nodes, phases = data
        trace = schedule_phases(
            n_nodes, phases, flit_interval=flit_interval, inter_phase_gap=16
        )
        # A source's next injection may start only after the previous
        # packet finished serializing (size * flit_interval cycles).
        by_src: dict[int, list[PacketRecord]] = {}
        for p in trace.packets:
            by_src.setdefault(p.src, []).append(p)
        for packets in by_src.values():
            packets.sort(key=lambda p: p.time)
            for prev, nxt in zip(packets, packets[1:]):
                assert nxt.time >= prev.time + prev.size_flits * flit_interval

    @settings(max_examples=30, deadline=None)
    @given(phased_messages())
    def test_flits_conserved_through_packetization(self, data):
        n_nodes, phases = data
        trace = schedule_phases(n_nodes, phases)
        wanted = sum(msg.size_flits for ph in phases for msg in ph)
        assert trace.total_flits == wanted


class TestStoreProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=10_000))
    def test_round_trip_any_trace(self, n, seed):
        packets = [
            PacketRecord(
                time=(i * 7 + seed) % 10_000,
                src=i % 5,
                dst=(i + 1 + seed) % 5 if (i + 1 + seed) % 5 != i % 5 else (i + 2) % 5,
                size_flits=1 + (i + seed) % 32,
            )
            for i in range(n)
        ]
        packets = [p for p in packets if p.src != p.dst]
        trace = Trace(5, packets, name=f"prop-{seed}")
        fd, path = tempfile.mkstemp(suffix=".npz")
        os.close(fd)
        try:
            save_trace_npz(trace, path)
            assert load_trace_npz(path) == trace
        finally:
            os.unlink(path)


class TestTemporalModelProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        # duty above 32/33 makes the mean OFF period sub-cycle, which the
        # model rejects; duty=1.0 (no OFF) stays valid.
        st.floats(min_value=0.3, max_value=0.95) | st.just(1.0),
    )
    def test_onoff_structurally_valid(self, seed, duty):
        from repro.topology import build_mesh
        from repro.traffic import uniform_traffic

        tm = uniform_traffic(build_mesh(4, 4), injection_rate=0.1)
        trace = onoff_trace(
            tm, injection_rate=0.2, cycles=300, duty=duty, seed=seed
        )
        assert all(0 <= p.time < 300 for p in trace.packets)
        assert all(p.src != p.dst for p in trace.packets)
        # Mean rate within loose statistical bounds for a short window.
        rate = trace.total_flits / (16 * 300)
        assert 0.05 < rate < 0.5
