"""Property-based tests for the optical and DSENT substrates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsent import (
    Allocator,
    Crossbar,
    FlitBuffer,
    NocLinkConfig,
    NocLinkModel,
    RepeatedWire,
    RouterConfig,
    RouterPowerArea,
)
from repro.optical import (
    HYPPI_ROUTER,
    N_PORTS,
    PHOTONIC_ROUTER,
    PathLossModel,
    optimal_port_assignment,
)
from repro.tech import Technology
from repro.topology import RoutingTable, build_mesh


class TestDsentMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=32),
    )
    def test_buffer_cost_monotone_in_storage(self, vcs, depth):
        small = FlitBuffer(64, vcs, depth).evaluate()
        bigger = FlitBuffer(64, vcs, depth + 1).evaluate()
        assert bigger.static_w > small.static_w
        assert bigger.area_m2 > small.area_m2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=16))
    def test_crossbar_cost_monotone_in_radix(self, ports):
        small = Crossbar(ports, ports, 64).evaluate()
        bigger = Crossbar(ports + 1, ports + 1, 64).evaluate()
        assert bigger.static_w > small.static_w
        assert bigger.dynamic_j_per_event > small.dynamic_j_per_event

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=20.0),
        st.integers(min_value=1, max_value=128),
    )
    def test_wire_express_never_cheaper(self, length_mm, bits):
        normal = RepeatedWire(length_mm, bits).evaluate()
        express = RepeatedWire(length_mm, bits, express=True).evaluate()
        assert express.dynamic_j_per_event >= normal.dynamic_j_per_event
        assert express.static_w >= normal.static_w

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    def test_router_figures_positive(self, ports, vcs):
        r = RouterPowerArea(RouterConfig(base_ports=ports, n_vcs=vcs)).evaluate()
        assert r.static_w > 0
        assert r.dynamic_j_per_event > 0
        assert r.area_m2 > 0

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1e-4, max_value=0.02))
    def test_noc_links_positive_any_length(self, length_m):
        for tech in (Technology.ELECTRONIC, Technology.PHOTONIC, Technology.HYPPI):
            fig = NocLinkModel(NocLinkConfig(tech, length_m)).evaluate()
            assert fig.static_w >= 0
            assert fig.dynamic_j_per_flit > 0
            assert fig.area_m2 > 0


class TestOpticalRouterProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=N_PORTS - 1),
        st.integers(min_value=0, max_value=N_PORTS - 1),
    )
    def test_loss_within_published_range(self, i, o):
        for router in (HYPPI_ROUTER, PHOTONIC_ROUTER):
            lo, hi = router.loss_range_db()
            if i == o:
                with pytest.raises(ValueError):
                    router.loss_db(i, o)
            else:
                assert lo <= router.loss_db(i, o) <= hi

    @settings(max_examples=10, deadline=None)
    @given(st.permutations(list(range(N_PORTS))))
    def test_optimal_assignment_is_optimal(self, perm):
        # No permutation beats the one the brute-force search returns.
        from repro.optical.router import DOR_TURN_WEIGHTS

        _, best = optimal_port_assignment(HYPPI_ROUTER)
        total = sum(DOR_TURN_WEIGHTS.values())
        loss = (
            sum(
                w * HYPPI_ROUTER.loss_db(perm[a], perm[b])
                for (a, b), w in DOR_TURN_WEIGHTS.items()
            )
            / total
        )
        assert loss >= best - 1e-12


class TestPathLossProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    def test_loss_positive_and_bounded(self, s, d):
        topo = build_mesh(8, 8, link_technology=Technology.HYPPI)
        model = PathLossModel(
            topology=topo, technology=Technology.HYPPI, routing=RoutingTable(topo)
        )
        if s == d:
            with pytest.raises(ValueError):
                model.path_loss_db(s, d)
            return
        loss = model.path_loss_db(s, d)
        # At least the fixed losses, at most fixed + worst-case fabric.
        assert loss > model.params.total_fixed_loss_db()
        hops = topo.manhattan_distance(s, d)
        _, worst = model.router.loss_range_db()
        assert loss <= model.params.total_fixed_loss_db() + (
            hops + 1
        ) * worst + model.params.propagation_loss_db(hops * 1e-3) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=63))
    def test_longer_paths_lose_no_less_along_a_line(self, d):
        # Moving the destination further along the same row cannot reduce
        # the loss (same turns, more straight-through routers + waveguide).
        topo = build_mesh(8, 8, link_technology=Technology.HYPPI)
        model = PathLossModel(
            topology=topo, technology=Technology.HYPPI, routing=RoutingTable(topo)
        )
        x = d % 8
        if x in (0, 7):
            return
        src = topo.node_id(0, d // 8)
        near = model.path_loss_db(src, topo.node_id(x, d // 8))
        far = model.path_loss_db(src, topo.node_id(x + 1, d // 8))
        assert far >= near - 1e-9
