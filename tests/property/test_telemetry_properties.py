"""Property-based tests (hypothesis) for the telemetry conservation invariant.

The acceptance contract of the telemetry subsystem: for *any* run with
telemetry enabled — arbitrary window sizes, ring capacities, injection
schedules and drain tails — the windowed series must telescope exactly to
the whole-run :class:`~repro.simulation.simulator.SimStats` totals, and
the power-trace total evaluated on the summed counts must be bit-equal to
:func:`~repro.simulation.energy.sim_dynamic_energy_j`.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simulation import SimConfig, Simulator, sim_dynamic_energy_j
from repro.telemetry import TelemetryConfig, power_trace
from repro.topology import build_mesh
from repro.traffic import PacketRecord, Trace

MESH = build_mesh(4, 4)
SIM = Simulator(MESH)


@st.composite
def traces(draw):
    """Small random traces with bursty schedules and long idle gaps.

    Times cluster near zero with occasional far-future packets so runs
    exercise the idle fast-forward (multi-window flush) and drain tails.
    """
    n = draw(st.integers(min_value=0, max_value=40))
    packets = []
    for _ in range(n):
        src = draw(st.integers(min_value=0, max_value=15))
        dst = draw(st.integers(min_value=0, max_value=15).filter(lambda d: d != src))
        time = draw(
            st.one_of(
                st.integers(min_value=0, max_value=60),
                st.integers(min_value=200, max_value=700),
            )
        )
        size = draw(st.sampled_from([1, 2, 8]))
        packets.append(PacketRecord(time, src, dst, size))
    return Trace(16, packets)


@settings(max_examples=40, deadline=None)
@given(
    trace=traces(),
    window=st.integers(min_value=1, max_value=300),
    max_windows=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    max_cycles=st.integers(min_value=50, max_value=2000),
)
def test_windowed_sums_equal_whole_run_totals(trace, window, max_windows, max_cycles):
    stats = SIM.run(
        trace,
        max_cycles=max_cycles,
        telemetry=TelemetryConfig(window=window, max_windows=max_windows),
    )
    tel = stats.telemetry
    # Flit-count conservation is exact integer arithmetic.
    assert np.array_equal(tel.total_router_flits(), stats.router_flit_counts)
    assert np.array_equal(tel.total_link_flits(), stats.link_flit_counts)
    # Delivery/latency binning over the same window grid.
    assert tel.total_delivered() == stats.packet_latencies.size
    assert tel.total_latency_sum() == int(stats.packet_latencies.sum())
    # The window grid tiles the simulated span without gaps or overlap.
    if tel.n_windows:
        assert int(tel.ends[-1]) == stats.cycles
        assert np.array_equal(tel.starts[1:], tel.ends[:-1])
        assert int(tel.starts[0]) == tel.dropped_windows * window
    # Energy through the shared evaluation path is bit-identical.
    pw = power_trace(MESH, tel)
    whole = sim_dynamic_energy_j(MESH, stats)
    assert pw.total.router_dynamic_j == whole.router_dynamic_j
    assert pw.total.link_dynamic_j == whole.link_dynamic_j
    # The per-window float series telescopes up to reassociation error.
    assert pw.series_conservation_error() < 1e-12


@settings(max_examples=15, deadline=None)
@given(
    trace=traces(),
    window=st.integers(min_value=1, max_value=120),
)
def test_sampling_never_changes_the_run(trace, window):
    config = SimConfig(n_vcs=2, vc_depth=4)
    sim = Simulator(MESH, config=config)
    plain = sim.run(trace, max_cycles=1500)
    sampled = sim.run(
        trace, max_cycles=1500, telemetry=TelemetryConfig(window=window)
    )
    assert plain.cycles == sampled.cycles
    assert plain.drained == sampled.drained
    assert np.array_equal(plain.packet_latencies, sampled.packet_latencies)
    assert np.array_equal(plain.link_flit_counts, sampled.link_flit_counts)
    assert np.array_equal(plain.router_flit_counts, sampled.router_flit_counts)
